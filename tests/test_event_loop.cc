// Epoll front end (svc/event_loop.h) end-to-end over real sockets: one
// event-loop thread multiplexing hundreds of concurrent connections into a
// sharded service, per-connection response ordering under pipelining,
// protocol errors that keep (or, for framing violations, close) the
// connection, the overload/retry_after_ms backpressure contract, and the
// shutdown-op drain.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "svc/config.h"
#include "svc/event_loop.h"
#include "svc/protocol.h"
#include "svc/router.h"

namespace melody::svc {
namespace {

ServiceConfig serve_config(int shards) {
  ServiceConfig config;
  config.scenario.num_workers = 42;
  config.scenario.num_tasks = 30;
  config.scenario.runs = 1000;
  config.scenario.budget = 120.0;
  config.seed = 2017;
  config.manual_clock = true;  // no wall-clock batch deadlines mid-test
  config.shards = shards;
  return config;
}

/// A served deployment on an ephemeral port: shards started, the event
/// loop running on its own thread until stop() (or a shutdown op).
struct Server {
  explicit Server(ServiceConfig config, std::size_t max_line = 1 << 20,
                  bool start_shards = true)
      : service(std::move(config)) {
    EventLoopOptions options;
    options.port = 0;
    options.max_line = max_line;
    options.should_stop = [this] { return stop_flag.load(); };
    front = std::make_unique<EventLoop>(service, options);
    front->listen();
    if (start_shards) service.start();
    thread = std::thread([this] { stats = front->run(); });
  }

  ~Server() {
    stop();
    if (thread.joinable()) thread.join();
  }

  void stop() { stop_flag.store(true); }
  int port() const { return front->actual_port(); }

  ShardedService service;
  std::unique_ptr<EventLoop> front;
  std::thread thread;
  std::atomic<bool> stop_flag{false};
  EventLoopStats stats{};
};

int connect_client(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  timeval timeout{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  return fd;
}

void send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::send(fd, text.data() + sent, text.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

/// Read one '\n'-terminated line (without the terminator); empty on
/// EOF/timeout. Byte-at-a-time is plenty for tests.
std::string read_line(int fd) {
  std::string line;
  char c = 0;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return {};
    if (c == '\n') return line;
    line += c;
  }
}

Request query_worker(int worker, std::int64_t id) {
  Request r;
  r.op = Op::kQueryWorker;
  r.id = id;
  r.worker = "w" + std::to_string(worker);
  return r;
}

// The headline deliverable: hundreds of concurrent connections through ONE
// event-loop thread, every one answered correctly.
TEST(EventLoopE2E, Serves256ConcurrentConnectionsOnOneThread) {
  Server server(serve_config(4));
  constexpr int kClients = 256;
  std::vector<int> fds;
  fds.reserve(kClients);
  // All sockets connected (and held open) before any request flows: the
  // front end is multiplexing 256 live connections at once.
  for (int k = 0; k < kClients; ++k) fds.push_back(connect_client(server.port()));

  for (int k = 0; k < kClients; ++k) {
    send_all(fds[static_cast<std::size_t>(k)],
             format_request(query_worker(k % 42, k + 1)) + "\n");
  }
  for (int k = 0; k < kClients; ++k) {
    const std::string line = read_line(fds[static_cast<std::size_t>(k)]);
    ASSERT_FALSE(line.empty()) << "client " << k;
    const Response response = parse_response(line);
    EXPECT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.id, k + 1);
    EXPECT_EQ(response.fields.text_or("worker", ""),
              "w" + std::to_string(k % 42));
  }
  for (const int fd : fds) ::close(fd);
  server.stop();
  server.thread.join();
  EXPECT_GE(server.stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_GE(server.stats.requests, static_cast<std::uint64_t>(kClients));
}

TEST(EventLoopE2E, PipelinedRequestsAnswerInRequestOrder) {
  Server server(serve_config(4));
  const int fd = connect_client(server.port());
  constexpr int kRequests = 200;
  // One write carrying 200 requests that fan across all four shards: the
  // shards complete out of order, the reorder map restores request order.
  std::string burst;
  for (int k = 0; k < kRequests; ++k) {
    burst += format_request(query_worker((k * 7) % 42, k + 1)) + "\n";
  }
  send_all(fd, burst);
  for (int k = 0; k < kRequests; ++k) {
    const std::string line = read_line(fd);
    ASSERT_FALSE(line.empty()) << "response " << k;
    const Response response = parse_response(line);
    EXPECT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.id, k + 1) << "out-of-order response";
  }
  ::close(fd);
}

TEST(EventLoopE2E, MalformedAndUnknownOpsKeepTheConnectionOpen) {
  Server server(serve_config(2));
  const int fd = connect_client(server.port());
  send_all(fd, "this is not json\n");
  Response response = parse_response(read_line(fd));
  EXPECT_FALSE(response.ok);

  send_all(fd, std::string(R"({"op":"frobnicate","id":9})") + "\n");
  response = parse_response(read_line(fd));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "unsupported_op");
  EXPECT_EQ(response.id, 9);
  EXPECT_EQ(response.fields.number("proto_version"),
            static_cast<double>(kProtoVersion));

  // Same connection, still serving.
  send_all(fd, format_request(query_worker(3, 10)) + "\n");
  response = parse_response(read_line(fd));
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.id, 10);
  ::close(fd);
}

TEST(EventLoopE2E, OversizedRequestLineAnswersAndCloses) {
  Server server(serve_config(1), /*max_line=*/128);
  const int fd = connect_client(server.port());
  // 4 KiB without a newline: a framing violation, not a parse error.
  send_all(fd, std::string(4096, 'x'));
  const std::string line = read_line(fd);
  ASSERT_FALSE(line.empty());
  const Response response = parse_response(line);
  EXPECT_FALSE(response.ok);
  // ... and then EOF: the connection is closed, not left half-dead.
  EXPECT_TRUE(read_line(fd).empty());
  ::close(fd);
}

TEST(EventLoopE2E, FullQueueAnswersOverloadedWithRetryAfter) {
  // Shard consumers NOT started and capacity 1: the first bid parks in the
  // queue, the next two are rejected inline — the deterministic overload.
  ServiceConfig config = serve_config(1);
  config.queue_capacity = 1;
  Server server(std::move(config), 1 << 20, /*start_shards=*/false);
  const int fd = connect_client(server.port());

  Request bid;
  bid.op = Op::kSubmitBid;
  bid.worker = "w0";
  bid.id = 1;
  send_all(fd, format_request(bid) + "\n");
  // Let the loop ingest line 1 before lines 2 and 3 arrive.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  bid.id = 2;
  send_all(fd, format_request(bid) + "\n");
  bid.id = 3;
  send_all(fd, format_request(bid) + "\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Nothing can flush yet — responses leave in request order and request 1
  // is still queued. Drain it from this thread (the consumers are ours).
  while (!server.service.poll_once(std::chrono::nanoseconds{0})) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const Response first = parse_response(read_line(fd));
  EXPECT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.id, 1);
  for (const std::int64_t id : {2, 3}) {
    const Response rejectedResponse = parse_response(read_line(fd));
    EXPECT_FALSE(rejectedResponse.ok);
    EXPECT_EQ(rejectedResponse.id, id);
    EXPECT_EQ(rejectedResponse.error, "overloaded");
    EXPECT_GT(rejectedResponse.retry_after_ms, 0);
  }
  ::close(fd);
}

TEST(EventLoopE2E, ShutdownOpDrainsAndStopsTheLoop) {
  Server server(serve_config(2));
  const int fd = connect_client(server.port());
  Request shutdown;
  shutdown.op = Op::kShutdown;
  shutdown.id = 42;
  send_all(fd, format_request(shutdown) + "\n");
  const Response response = parse_response(read_line(fd));
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.id, 42);
  EXPECT_TRUE(response.fields.has("runs_total"));
  // The loop exits on its own — no stop flag — and closes the connection.
  server.thread.join();
  EXPECT_TRUE(server.service.shutdown_requested());
  EXPECT_TRUE(read_line(fd).empty());
  ::close(fd);
}

}  // namespace
}  // namespace melody::svc
