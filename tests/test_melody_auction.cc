// Hand-verified instances for Algorithm 1 plus structural behaviour tests.
#include "auction/melody_auction.h"

#include <gtest/gtest.h>

#include <vector>

namespace melody::auction {
namespace {

AuctionConfig open_config(double budget) {
  AuctionConfig config;
  config.budget = budget;
  return config;  // no qualification filtering
}

// Ranking queue (mu/c): w0 (4/1), w1 (3/1), w2 (4/2), w3 (2/2).
std::vector<WorkerProfile> four_workers(int frequency = 5) {
  return {{0, {1.0, frequency}, 4.0},
          {1, {1.0, frequency}, 3.0},
          {2, {2.0, frequency}, 4.0},
          {3, {2.0, frequency}, 2.0}};
}

TEST(MelodyAuction, HandComputedSingleTask) {
  MelodyAuction auction;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}};
  const auto result = auction.run({workers, tasks, open_config(100.0)});

  // Prefix w0 + w1 covers 6; reference worker is w2 with c/mu = 0.5.
  ASSERT_EQ(result.selected_tasks.size(), 1u);
  EXPECT_TRUE(result.is_assigned(0, 0));
  EXPECT_TRUE(result.is_assigned(1, 0));
  EXPECT_FALSE(result.is_assigned(2, 0));
  ASSERT_EQ(result.assignments.size(), 2u);
  EXPECT_DOUBLE_EQ(result.payment_to(0), 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(result.payment_to(1), 0.5 * 3.0);
  EXPECT_DOUBLE_EQ(result.total_payment(), 3.5);
}

TEST(MelodyAuction, HandComputedTwoTasksPaperRule) {
  // Under the paper-literal rule task 1 (Q = 10) is priced from w3.
  MelodyAuction auction(PaymentRule::kPaperNextInQueue);
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}, {1, 10.0}};
  const auto result = auction.run({workers, tasks, open_config(100.0)});

  ASSERT_EQ(result.selected_tasks.size(), 2u);
  // Task 1 needs w0+w1+w2 = 11 >= 10; reference is w3 with c/mu = 1.
  EXPECT_DOUBLE_EQ(result.payment_to(0), 0.5 * 4.0 + 1.0 * 4.0);
  EXPECT_DOUBLE_EQ(result.payment_to(1), 0.5 * 3.0 + 1.0 * 3.0);
  EXPECT_DOUBLE_EQ(result.payment_to(2), 1.0 * 4.0);
  EXPECT_DOUBLE_EQ(result.total_payment(), 3.5 + 11.0);
}

TEST(MelodyAuction, CriticalRuleDropsMonopolizedTask) {
  // Task 1 (Q = 10) cannot be covered without w0 (3 + 4 + 2 = 9 < 10), so
  // w0 has no critical price: under the critical-value rule the task is
  // unpriceable and dropped, while task 0 is still served.
  MelodyAuction auction(PaymentRule::kCriticalValue);
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}, {1, 10.0}};
  const auto result = auction.run({workers, tasks, open_config(100.0)});
  ASSERT_EQ(result.selected_tasks.size(), 1u);
  EXPECT_EQ(result.selected_tasks[0], 0);
  EXPECT_DOUBLE_EQ(result.total_payment(), 3.5);
}

TEST(MelodyAuction, CriticalRuleReferencesCompletionWithoutWinner) {
  // Workers: w0 (mu 4, c 1), w1 (mu 3, c 1), w2 (mu 4, c 2), w3 (mu 2, c 2).
  // Task Q = 7 -> winners w0 + w1. Without w0 coverage completes at w2
  // (3 + 4 = 7); without w1 it also completes at w2 (4 + 4 = 8). Both pay
  // ratio 0.5.
  MelodyAuction auction(PaymentRule::kCriticalValue);
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 7.0}};
  const auto result = auction.run({workers, tasks, open_config(100.0)});
  ASSERT_EQ(result.selected_tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(result.payment_to(0), 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(result.payment_to(1), 0.5 * 3.0);
}

TEST(MelodyAuction, BudgetSelectsCheapestTasks) {
  MelodyAuction auction;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}, {1, 10.0}};
  // P_0 = 3.5, P_1 = 11: a budget of 10 only affords task 0.
  const auto result = auction.run({workers, tasks, open_config(10.0)});
  ASSERT_EQ(result.selected_tasks.size(), 1u);
  EXPECT_EQ(result.selected_tasks[0], 0);
  EXPECT_DOUBLE_EQ(result.total_payment(), 3.5);
}

TEST(MelodyAuction, ZeroBudgetSelectsNothing) {
  MelodyAuction auction;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}};
  const auto result = auction.run({workers, tasks, open_config(0.0)});
  EXPECT_TRUE(result.selected_tasks.empty());
  EXPECT_TRUE(result.assignments.empty());
}

TEST(MelodyAuction, FrequencyLimitsReuse) {
  MelodyAuction auction;
  const auto workers = four_workers(/*frequency=*/1);
  const std::vector<Task> tasks{{0, 6.0}, {1, 10.0}};
  const auto result = auction.run({workers, tasks, open_config(100.0)});
  // Task 0 exhausts w0 and w1; the rest (w2 + w3 = 6) cannot cover 10.
  ASSERT_EQ(result.selected_tasks.size(), 1u);
  EXPECT_EQ(result.selected_tasks[0], 0);
}

TEST(MelodyAuction, TaskNeedingWholeQueueIsDropped) {
  // Coverage requires every worker, so no (k+1)-th critical worker exists:
  // the task cannot be truthfully priced and must be dropped.
  MelodyAuction auction;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 12.5}};  // total quality is 13
  const auto result = auction.run({workers, tasks, open_config(1000.0)});
  EXPECT_TRUE(result.selected_tasks.empty());
}

TEST(MelodyAuction, UncoverableTaskIsDropped) {
  MelodyAuction auction;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 14.0}};  // exceeds total quality 13
  const auto result = auction.run({workers, tasks, open_config(1000.0)});
  EXPECT_TRUE(result.selected_tasks.empty());
}

TEST(MelodyAuction, TasksProcessedInThresholdOrder) {
  MelodyAuction auction;
  const auto workers = four_workers(/*frequency=*/1);
  // Given in reverse order; the easy task (id 7) must still be pre-allocated
  // first and win the scarce workers.
  const std::vector<Task> tasks{{3, 10.0}, {7, 6.0}};
  const auto result = auction.run({workers, tasks, open_config(100.0)});
  ASSERT_EQ(result.selected_tasks.size(), 1u);
  EXPECT_EQ(result.selected_tasks[0], 7);
}

TEST(MelodyAuction, QualificationFilterExcludesWorkers) {
  MelodyAuction auction;
  auto config = open_config(100.0);
  config.theta_min = 3.0;  // w3 (mu=2) is unqualified
  config.theta_max = 10.0;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 10.0}};
  // Qualified queue: w0, w1, w2 with total 11; covering 10 needs all three,
  // leaving no critical worker -> dropped.
  const auto result = auction.run({workers, tasks, config});
  EXPECT_TRUE(result.selected_tasks.empty());
}

TEST(MelodyAuction, CostFilterExcludesWorkers) {
  MelodyAuction auction;
  auto config = open_config(100.0);
  config.cost_max = 1.5;  // w2, w3 excluded
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 3.0}};
  const auto result = auction.run({workers, tasks, config});
  // Queue: w0, w1. Task needs w0 only (4 >= 3); without w0 coverage
  // completes at w1 (3 >= 3), so w0 pays ratio 1/3.
  ASSERT_EQ(result.selected_tasks.size(), 1u);
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_EQ(result.assignments[0].worker, 0);
  EXPECT_DOUBLE_EQ(result.assignments[0].payment, (1.0 / 3.0) * 4.0);
}

TEST(MelodyAuction, InvalidWorkersIgnored) {
  MelodyAuction auction;
  std::vector<WorkerProfile> workers{
      {0, {0.0, 3}, 4.0},   // zero cost
      {1, {1.0, 0}, 4.0},   // zero frequency
      {2, {1.0, 3}, 0.0},   // zero quality
      {3, {1.0, 3}, 4.0},   // valid
      {4, {1.0, 3}, 4.0},   // valid (critical reference)
  };
  const std::vector<Task> tasks{{0, 4.0}};
  const auto result = auction.run({workers, tasks, open_config(100.0)});
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_EQ(result.assignments[0].worker, 3);
}

TEST(MelodyAuction, EmptyInputs) {
  MelodyAuction auction;
  const std::vector<WorkerProfile> no_workers;
  const std::vector<Task> no_tasks;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}};
  EXPECT_TRUE(auction.run({no_workers, tasks, open_config(10.0)})
                  .selected_tasks.empty());
  EXPECT_TRUE(auction.run({workers, no_tasks, open_config(10.0)})
                  .selected_tasks.empty());
}

TEST(MelodyAuction, PaymentNeverBelowCost) {
  // Individual rationality on the hand instance: every winner's payment per
  // task is at least his bid cost.
  MelodyAuction auction;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}, {1, 10.0}, {2, 8.0}};
  const auto result = auction.run({workers, tasks, open_config(1000.0)});
  for (const auto& a : result.assignments) {
    const double cost = workers[static_cast<std::size_t>(a.worker)].bid.cost;
    EXPECT_GE(a.payment, cost - 1e-12);
  }
}

TEST(MelodyAuction, ResultPassesAllValidators) {
  MelodyAuction auction;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}, {1, 10.0}, {2, 8.0}, {3, 3.0}};
  const auto config = open_config(20.0);
  const auto result = auction.run({workers, tasks, config});
  EXPECT_EQ(check_budget_feasibility(result, config), "");
  EXPECT_EQ(check_frequency_feasibility(result, workers), "");
  EXPECT_EQ(check_task_satisfaction(result, workers, tasks), "");
}

TEST(MelodyAuction, DeterministicAcrossCalls) {
  MelodyAuction auction;
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}, {1, 10.0}};
  const auto a = auction.run({workers, tasks, open_config(50.0)});
  const auto b = auction.run({workers, tasks, open_config(50.0)});
  EXPECT_EQ(a.selected_tasks, b.selected_tasks);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].worker, b.assignments[i].worker);
    EXPECT_EQ(a.assignments[i].task, b.assignments[i].task);
    EXPECT_EQ(a.assignments[i].payment, b.assignments[i].payment);
  }
}

TEST(MelodyAuction, NameIsStable) {
  EXPECT_EQ(MelodyAuction().name(), "MELODY");
}

}  // namespace
}  // namespace melody::auction
