// Integration tests for the multi-run platform loop (Fig. 2 workflow).
#include "sim/platform.h"

#include <gtest/gtest.h>

#include "auction/melody_auction.h"
#include "auction/random_auction.h"
#include "estimators/melody_estimator.h"
#include "estimators/ml_cr_estimator.h"

namespace melody::sim {
namespace {

LongTermScenario small_scenario() {
  LongTermScenario s;
  s.num_workers = 40;
  s.num_tasks = 30;
  s.runs = 25;
  s.budget = 120.0;
  return s;
}

estimators::MelodyEstimatorConfig tracker_config(const LongTermScenario& s) {
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {s.initial_mu, s.initial_sigma};
  config.reestimation_period = s.reestimation_period;
  return config;
}

TEST(Platform, RunsProduceConsistentRecords) {
  const auto scenario = small_scenario();
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(1);
  Platform platform(scenario, mechanism, estimator,
                    sample_population(scenario.population_config(), rng), 99);

  const auto records = platform.run_all();
  ASSERT_EQ(records.size(), 25u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    EXPECT_EQ(r.run, static_cast<int>(i + 1));
    EXPECT_LE(r.true_utility, static_cast<std::size_t>(scenario.num_tasks));
    EXPECT_LE(r.total_payment, scenario.budget + 1e-9);
    EXPECT_GE(r.estimation_error, 0.0);
    EXPECT_LE(r.qualified_workers, static_cast<std::size_t>(scenario.num_workers));
  }
}

TEST(Platform, StepInvariantsEachRun) {
  const auto scenario = small_scenario();
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(2);
  auto workers = sample_population(scenario.population_config(), rng);
  Platform platform(scenario, mechanism, estimator, workers, 7);

  for (int r = 0; r < 10; ++r) {
    platform.step();
    const auto& result = platform.last_result();
    // Frequency feasibility against true bids (everyone is truthful here).
    for (const auto& w : workers) {
      EXPECT_LE(result.tasks_assigned_to(w.id()), w.true_bid().frequency);
    }
    EXPECT_LE(result.total_payment(), scenario.budget + 1e-9);
  }
}

TEST(Platform, WorkerTotalUtilityUnknownIdReturnsZero) {
  const auto scenario = small_scenario();
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(5);
  Platform platform(scenario, mechanism, estimator,
                    sample_population(scenario.population_config(), rng), 17);

  // Before any step: every id (known or not) has earned nothing.
  EXPECT_EQ(platform.worker_total_utility(0), 0.0);
  EXPECT_EQ(platform.worker_total_utility(auction::WorkerId{999999}), 0.0);

  platform.step();
  // An id the platform has never seen still reports 0.0 and does not throw
  // (documented contract; contrast QualityEstimator::estimate).
  EXPECT_EQ(platform.worker_total_utility(auction::WorkerId{999999}), 0.0);
  // Querying an unknown id must not create an entry that shadows a later
  // legitimate read (the const map is never default-inserted into).
  EXPECT_EQ(platform.worker_total_utility(auction::WorkerId{999999}), 0.0);
}

TEST(Platform, DeterministicForSeed) {
  const auto scenario = small_scenario();
  util::Rng rng_a(3), rng_b(3);

  auction::MelodyAuction mech_a, mech_b;
  estimators::MelodyEstimator est_a(tracker_config(scenario));
  estimators::MelodyEstimator est_b(tracker_config(scenario));
  Platform a(scenario, mech_a, est_a,
             sample_population(scenario.population_config(), rng_a), 42);
  Platform b(scenario, mech_b, est_b,
             sample_population(scenario.population_config(), rng_b), 42);
  const auto ra = a.run_all();
  const auto rb = b.run_all();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].true_utility, rb[i].true_utility);
    EXPECT_DOUBLE_EQ(ra[i].total_payment, rb[i].total_payment);
    EXPECT_DOUBLE_EQ(ra[i].estimation_error, rb[i].estimation_error);
  }
}

TEST(Platform, TruthfulWorkersAccrueNonNegativeUtility) {
  const auto scenario = small_scenario();
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(4);
  auto workers = sample_population(scenario.population_config(), rng);
  Platform platform(scenario, mechanism, estimator, workers, 5);
  platform.run_all();
  for (const auto& w : workers) {
    EXPECT_GE(platform.worker_total_utility(w.id()), -1e-9);
  }
}

TEST(Platform, EstimationErrorDropsFromInitialGuess) {
  // After enough observed runs the tracker must beat the run-1 error,
  // where every estimate is still the prior mean.
  const auto scenario = small_scenario();
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(5);
  Platform platform(scenario, mechanism, estimator,
                    sample_population(scenario.population_config(), rng), 17);
  const auto records = platform.run_all();
  const double first = records.front().estimation_error;
  const double last = records.back().estimation_error;
  EXPECT_LT(last, first);
}

TEST(Platform, NewcomerIsRegisteredAndParticipates) {
  auto scenario = small_scenario();
  scenario.runs = 10;
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(6);
  Platform platform(scenario, mechanism, estimator,
                    sample_population(scenario.population_config(), rng), 23);
  platform.step();

  TrajectoryConfig traj;
  traj.kind = TrajectoryKind::kStable;
  traj.start_level = 9.0;
  SimWorker newcomer(1000, {1.0, 5},
                     generate_trajectory(traj, scenario.runs, rng));
  platform.add_worker(std::move(newcomer));
  EXPECT_NO_THROW(platform.step());
  EXPECT_EQ(platform.workers().size(), 41u);
}

TEST(Platform, PolicyOverrideChangesBids) {
  auto scenario = small_scenario();
  scenario.runs = 5;
  auction::MelodyAuction mechanism;
  estimators::MlCurrentRunEstimator estimator(scenario.initial_mu);
  util::Rng rng(7);
  auto workers = sample_population(scenario.population_config(), rng);
  Platform platform(scenario, mechanism, estimator, workers, 31);

  // A true cost at the very top of [C_m, C_M]: any upward perturbation
  // leaves the qualification band, independent of the drawn magnitude.
  TrajectoryConfig traj;
  traj.kind = TrajectoryKind::kStable;
  traj.start_level = 8.0;
  SimWorker overbidder(500, {2.0, 3},
                       generate_trajectory(traj, scenario.runs, rng));
  platform.add_worker(overbidder);

  BidPolicy always_overbid;
  always_overbid.cheat_probability = 1.0;
  always_overbid.direction = MisreportDirection::kHigher;
  always_overbid.cost_magnitude = 10.0;  // bid far outside [C_m, C_M]
  platform.set_policy(overbidder.id(), always_overbid);
  platform.run_all();
  // The always-overbidding worker is disqualified every run: zero utility.
  EXPECT_EQ(platform.worker_total_utility(overbidder.id()), 0.0);
}

TEST(Platform, WorksWithRandomMechanism) {
  // The platform is mechanism-agnostic: the RANDOM baseline must satisfy
  // the same per-run invariants.
  auto scenario = small_scenario();
  scenario.runs = 15;
  auction::RandomAuction mechanism(99);
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(9);
  auto workers = sample_population(scenario.population_config(), rng);
  Platform platform(scenario, mechanism, estimator, workers, 10);
  for (const auto& record : platform.run_all()) {
    EXPECT_LE(record.total_payment, scenario.budget + 1e-9);
    EXPECT_LE(record.true_utility, static_cast<std::size_t>(scenario.num_tasks));
  }
  for (const auto& w : workers) {
    EXPECT_GE(platform.worker_total_utility(w.id()), -1e-9);
  }
}

TEST(Platform, ZeroBudgetYieldsZeroEverything) {
  auto scenario = small_scenario();
  scenario.budget = 0.0;
  scenario.runs = 5;
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(11);
  Platform platform(scenario, mechanism, estimator,
                    sample_population(scenario.population_config(), rng), 12);
  for (const auto& record : platform.run_all()) {
    EXPECT_EQ(record.estimated_utility, 0u);
    EXPECT_EQ(record.true_utility, 0u);
    EXPECT_EQ(record.total_payment, 0.0);
    EXPECT_EQ(record.assignments, 0u);
  }
}

TEST(Platform, EmptyPopulationIsHarmless) {
  auto scenario = small_scenario();
  scenario.runs = 3;
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  Platform platform(scenario, mechanism, estimator, {}, 13);
  for (const auto& record : platform.run_all()) {
    EXPECT_EQ(record.true_utility, 0u);
    EXPECT_EQ(record.qualified_workers, 0u);
    EXPECT_EQ(record.estimation_error, 0.0);
  }
}

TEST(Platform, CurrentRunAdvances) {
  const auto scenario = small_scenario();
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(8);
  Platform platform(scenario, mechanism, estimator,
                    sample_population(scenario.population_config(), rng), 3);
  EXPECT_EQ(platform.current_run(), 1);
  platform.step();
  EXPECT_EQ(platform.current_run(), 2);
}

}  // namespace
}  // namespace melody::sim
