// Multi-type market wrapper (Section 3.1).
#include "core/multi_type.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace melody::core {
namespace {

MelodyOptions open_options() {
  MelodyOptions options;
  options.theta_min = 0.1;
  options.theta_max = 100.0;
  options.cost_min = 0.01;
  options.cost_max = 100.0;
  return options;
}

TEST(MultiTypeMarket, TypesAreIndependentMarkets) {
  MultiTypeMarket market(open_options());
  market.add_type("labeling");
  market.add_type("transcription");
  ASSERT_TRUE(market.has_type("labeling"));
  ASSERT_TRUE(market.has_type("transcription"));
  EXPECT_FALSE(market.has_type("translation"));

  market.market("labeling").register_worker(1);
  lds::ScoreSet good;
  good.add(9.0);
  market.market("labeling").submit_scores(1, good);
  market.end_run();

  // Worker 1's transcription market never saw him.
  EXPECT_TRUE(market.market("labeling").is_registered(1));
  EXPECT_FALSE(market.market("transcription").is_registered(1));
  EXPECT_GT(market.market("labeling").estimated_quality(1), 5.5);
}

TEST(MultiTypeMarket, PerTypeQualityProfile) {
  MultiTypeMarket market(open_options());
  market.add_type("labeling");
  market.add_type("transcription");
  market.market("labeling").register_worker(7);
  market.market("transcription").register_worker(7);

  lds::ScoreSet good, bad;
  good.add(9.0);
  bad.add(2.0);
  market.market("labeling").submit_scores(7, good);
  market.market("transcription").submit_scores(7, bad);
  market.end_run();

  const auto profile = market.quality_profile(7);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_GT(profile.at("labeling"), profile.at("transcription"));
}

TEST(MultiTypeMarket, SharedRunClock) {
  MultiTypeMarket market(open_options());
  market.add_type("a");
  market.add_type("b");
  EXPECT_EQ(market.end_run(), 1);
  EXPECT_EQ(market.end_run(), 2);
  EXPECT_EQ(market.completed_runs(), 2);
  EXPECT_EQ(market.market("a").completed_runs(), 2);
  EXPECT_EQ(market.market("b").completed_runs(), 2);
}

TEST(MultiTypeMarket, AddTypeIsIdempotent) {
  MultiTypeMarket market(open_options());
  market.add_type("a");
  market.market("a").register_worker(1);
  market.add_type("a");  // must not reset the existing market
  EXPECT_TRUE(market.market("a").is_registered(1));
  EXPECT_EQ(market.types().size(), 1u);
}

TEST(MultiTypeMarket, UnknownTypeThrows) {
  MultiTypeMarket market(open_options());
  EXPECT_THROW(market.market("nope"), std::out_of_range);
  const MultiTypeMarket& const_market = market;
  EXPECT_THROW(const_market.market("nope"), std::out_of_range);
}

TEST(MultiTypeMarket, PerTypeOptionsOverride) {
  MultiTypeMarket market(open_options());
  MelodyOptions strict = open_options();
  strict.tracker.initial_posterior = {2.0, 1.0};
  market.add_type("strict", strict);
  market.add_type("default");
  market.market("strict").register_worker(1);
  market.market("default").register_worker(1);
  EXPECT_DOUBLE_EQ(market.market("strict").estimated_quality(1), 2.0);
  EXPECT_DOUBLE_EQ(market.market("default").estimated_quality(1), 5.5);
}

TEST(MultiTypeMarket, AuctionsRunIndependently) {
  MultiTypeMarket market(open_options());
  market.add_type("labeling");
  const std::vector<BidSubmission> bids{{1, {1.0, 2}}, {2, {1.0, 2}},
                                        {3, {1.5, 2}}};
  const std::vector<auction::Task> tasks{{0, 9.0}};
  const auto result =
      market.market("labeling").run_auction(bids, tasks, 50.0);
  EXPECT_FALSE(result.selected_tasks.empty());
  EXPECT_EQ(market.quality_profile(1).size(), 1u);
}

}  // namespace
}  // namespace melody::core
