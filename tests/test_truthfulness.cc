// Property-based verification of the mechanism-design guarantees.
//
// What holds exactly, and is asserted strictly here:
//   * Single-task auctions under the critical-value payment rule are
//     dominant-strategy truthful in cost (Theorem 4's argument is sound
//     when a unilateral misreport cannot change the critical reference of
//     other tasks).
//   * Underreporting frequency never profits (the worker merely truncates
//     his portfolio of non-negative-utility assignments).
//   * Individual rationality (Theorem 6) and budget feasibility hold for
//     every instance.
//
// What holds statistically and is asserted in aggregate: in multi-task
// auctions a worker's limited frequency is spent on the earliest tasks, so
// a misreport can occasionally shift his portfolio toward better-paying
// later tasks. The paper's own evaluation (Fig. 7) makes the long-run
// claim — cheating loses in expectation — and that is what we check here;
// the per-instance gap is quantified by bench_ablation_truthfulness_gap.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "auction/melody_auction.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace melody::auction {
namespace {

/// A worker's utility given his true cost: payments minus true cost per
/// assigned task (Definition 1).
double utility_of(const AllocationResult& result, WorkerId id, double true_cost) {
  return result.payment_to(id) - true_cost * result.tasks_assigned_to(id);
}

class SingleTaskTruthfulness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SingleTaskTruthfulness, CostMisreportNeverProfits) {
  sim::SraScenario scenario;
  scenario.num_workers = 20;
  scenario.num_tasks = 1;
  scenario.budget = 1000.0;
  util::Rng rng(GetParam());
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  MelodyAuction auction(PaymentRule::kCriticalValue);
  const auto truthful = auction.run({workers, tasks, config});

  for (std::size_t w = 0; w < workers.size(); ++w) {
    const double true_cost = workers[w].bid.cost;
    const double baseline = utility_of(truthful, workers[w].id, true_cost);
    for (double factor = 0.5; factor <= 2.0; factor += 0.1) {
      auto misreported = workers;
      misreported[w].bid.cost = true_cost * factor;
      const auto outcome = auction.run({misreported, tasks, config});
      EXPECT_LE(utility_of(outcome, workers[w].id, true_cost), baseline + 1e-9)
          << "worker " << w << " profited by reporting cost x" << factor;
    }
  }
}

TEST_P(SingleTaskTruthfulness, WinnerPaymentIndependentOfOwnBid) {
  // While a worker keeps winning, his payment must not move with his bid —
  // the hallmark of a critical-value rule.
  sim::SraScenario scenario;
  scenario.num_workers = 15;
  scenario.num_tasks = 1;
  scenario.budget = 1000.0;
  util::Rng rng(GetParam() + 1000);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  MelodyAuction auction(PaymentRule::kCriticalValue);
  const auto truthful = auction.run({workers, tasks, config});

  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (truthful.tasks_assigned_to(workers[w].id) == 0) continue;
    const double paid = truthful.payment_to(workers[w].id);
    for (double factor : {0.6, 0.8, 1.2}) {
      auto misreported = workers;
      misreported[w].bid.cost = workers[w].bid.cost * factor;
      if (!config.qualifies(misreported[w])) continue;
      const auto outcome = auction.run({misreported, tasks, config});
      if (outcome.tasks_assigned_to(workers[w].id) == 0) continue;  // lost
      EXPECT_NEAR(outcome.payment_to(workers[w].id), paid, 1e-9)
          << "worker " << w << "'s payment moved with his own bid";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleTaskTruthfulness,
                         ::testing::Range<std::uint64_t>(1, 13));

struct InstanceCase {
  std::uint64_t seed;
  int num_workers;
  int num_tasks;
  double budget;
};

class TruthfulnessSweep : public ::testing::TestWithParam<InstanceCase> {
 protected:
  void SetUp() override {
    const auto& c = GetParam();
    sim::SraScenario scenario;
    scenario.num_workers = c.num_workers;
    scenario.num_tasks = c.num_tasks;
    scenario.budget = c.budget;
    util::Rng rng(c.seed);
    workers_ = scenario.sample_workers(rng);
    tasks_ = scenario.sample_tasks(rng);
    config_ = scenario.auction_config();
  }

  std::vector<WorkerProfile> workers_;
  std::vector<Task> tasks_;
  AuctionConfig config_;
  MelodyAuction auction_;
};

TEST_P(TruthfulnessSweep, CostMisreportLosesInAggregate) {
  const auto truthful = auction_.run({workers_, tasks_, config_});
  double total_gain = 0.0;
  int probes = 0;
  for (std::size_t w = 0; w < workers_.size(); w += workers_.size() / 12 + 1) {
    const double true_cost = workers_[w].bid.cost;
    const double baseline = utility_of(truthful, workers_[w].id, true_cost);
    for (double factor : {0.55, 0.7, 0.85, 0.95, 1.05, 1.2, 1.5, 1.9}) {
      auto misreported = workers_;
      misreported[w].bid.cost = true_cost * factor;
      const auto outcome = auction_.run({misreported, tasks_, config_});
      total_gain += utility_of(outcome, workers_[w].id, true_cost) - baseline;
      ++probes;
    }
  }
  ASSERT_GT(probes, 0);
  // Cheating must lose in expectation (the Fig. 7 claim). A strictly
  // per-probe guarantee does not hold in multi-task auctions; see the file
  // header comment.
  EXPECT_LE(total_gain / probes, 1e-9);
}

TEST_P(TruthfulnessSweep, FrequencyUnderreportNeverProfits) {
  const auto truthful = auction_.run({workers_, tasks_, config_});
  for (std::size_t w = 0; w < workers_.size(); w += workers_.size() / 8 + 1) {
    const double true_cost = workers_[w].bid.cost;
    const int true_frequency = workers_[w].bid.frequency;
    const double baseline = utility_of(truthful, workers_[w].id, true_cost);
    for (int frequency = 1; frequency < true_frequency; ++frequency) {
      auto misreported = workers_;
      misreported[w].bid.frequency = frequency;
      const auto outcome = auction_.run({misreported, tasks_, config_});
      const double cheating = utility_of(outcome, workers_[w].id, true_cost);
      EXPECT_LE(cheating, baseline + 1e-9)
          << "worker " << w << " profited by underreporting frequency "
          << frequency << " < " << true_frequency;
    }
  }
}

TEST_P(TruthfulnessSweep, IndividualRationality) {
  const auto result = auction_.run({workers_, tasks_, config_});
  for (const auto& w : workers_) {
    EXPECT_GE(utility_of(result, w.id, w.bid.cost), -1e-9);
  }
  // Stronger: every single assignment pays at least the worker's cost.
  for (const auto& a : result.assignments) {
    const auto& w = workers_[static_cast<std::size_t>(a.worker)];
    EXPECT_GE(a.payment, w.bid.cost - 1e-9);
  }
}

TEST_P(TruthfulnessSweep, IndividualRationalityUnderPaperRule) {
  MelodyAuction paper(PaymentRule::kPaperNextInQueue);
  const auto result = paper.run({workers_, tasks_, config_});
  for (const auto& a : result.assignments) {
    const auto& w = workers_[static_cast<std::size_t>(a.worker)];
    EXPECT_GE(a.payment, w.bid.cost - 1e-9);
  }
}

TEST_P(TruthfulnessSweep, BudgetAndConstraintFeasibility) {
  for (PaymentRule rule :
       {PaymentRule::kCriticalValue, PaymentRule::kPaperNextInQueue}) {
    MelodyAuction auction(rule);
    const auto result = auction.run({workers_, tasks_, config_});
    EXPECT_EQ(check_budget_feasibility(result, config_), "");
    EXPECT_EQ(check_frequency_feasibility(result, workers_), "");
    EXPECT_EQ(check_task_satisfaction(result, workers_, tasks_), "");
  }
}

TEST_P(TruthfulnessSweep, SelectedTasksAreExactlyAssignedTasks) {
  const auto result = auction_.run({workers_, tasks_, config_});
  for (TaskId id : result.selected_tasks) {
    EXPECT_FALSE(result.workers_of(id).empty());
  }
  for (const auto& a : result.assignments) {
    EXPECT_NE(std::find(result.selected_tasks.begin(),
                        result.selected_tasks.end(), a.task),
              result.selected_tasks.end());
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, TruthfulnessSweep,
    ::testing::Values(InstanceCase{1, 30, 20, 50.0},
                      InstanceCase{2, 60, 40, 100.0},
                      InstanceCase{3, 100, 50, 200.0},
                      InstanceCase{4, 50, 80, 80.0},
                      InstanceCase{5, 20, 10, 30.0},
                      InstanceCase{6, 150, 60, 400.0},
                      InstanceCase{7, 40, 40, 25.0},
                      InstanceCase{8, 80, 30, 1000.0}));

}  // namespace
}  // namespace melody::auction
