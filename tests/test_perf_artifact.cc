// The perf-trajectory artifact contract: schema validation of emitted
// BENCH_*.json (required keys, sorted repeats with true medians, git-sha
// and config echo) and the perf_compare regression gate (threshold logic,
// ok/regression/error classification — the CLI's exit codes 0/1/2).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "perf/artifact.h"
#include "perf/compare.h"

namespace melody::perf {
namespace {

/// A minimal valid artifact with one benchmark; tests perturb one field at
/// a time and assert the exact validation failure.
PerfArtifact valid_artifact() {
  PerfArtifact artifact;
  artifact.date = "2026-08-07";
  artifact.git_sha = "abc1234";
  artifact.quick = false;
  artifact.threads = 1;
  artifact.repeats = 3;

  BenchmarkResult bench;
  bench.name = "kalman_chain";
  bench.repeats = 3;
  bench.wall_ms = {10.0, 11.0, 14.0};
  bench.cpu_ms = {9.5, 10.8, 13.9};
  bench.median_wall_ms = 11.0;
  bench.median_cpu_ms = 10.8;
  bench.peak_rss_kb = 2048;
  bench.config = {{"workers", 50000.0}, {"seed", 779716.0}};
  bench.counters = {{"speedup_vs_scalar", 2.0}};
  bench.phases.push_back({"estimator/em", 10, 5.0, 0.4, 0.6, 0.9});
  artifact.benchmarks.push_back(std::move(bench));
  return artifact;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(PerfArtifact, ValidArtifactPassesValidation) {
  EXPECT_NO_THROW(validate(valid_artifact()));
}

TEST(PerfArtifact, JsonRoundTripPreservesEverything) {
  const PerfArtifact artifact = valid_artifact();
  const PerfArtifact parsed = parse_artifact(to_json(artifact).dump());

  EXPECT_EQ(parsed.schema_version, kArtifactSchemaVersion);
  EXPECT_EQ(parsed.date, "2026-08-07");
  EXPECT_EQ(parsed.git_sha, "abc1234");  // git-sha echo
  EXPECT_FALSE(parsed.quick);
  EXPECT_EQ(parsed.threads, 1);
  EXPECT_EQ(parsed.repeats, 3);
  ASSERT_EQ(parsed.benchmarks.size(), 1u);

  const BenchmarkResult& bench = parsed.benchmarks[0];
  EXPECT_EQ(bench.name, "kalman_chain");
  EXPECT_EQ(bench.wall_ms, artifact.benchmarks[0].wall_ms);
  EXPECT_EQ(bench.cpu_ms, artifact.benchmarks[0].cpu_ms);
  EXPECT_EQ(bench.median_wall_ms, 11.0);
  EXPECT_EQ(bench.peak_rss_kb, 2048);
  EXPECT_EQ(bench.config, artifact.benchmarks[0].config);  // config echo
  EXPECT_EQ(bench.counter_or("speedup_vs_scalar", 0.0), 2.0);
  ASSERT_EQ(bench.phases.size(), 1u);
  EXPECT_EQ(bench.phases[0].name, "estimator/em");
  EXPECT_EQ(bench.phases[0].count, 10);
}

TEST(PerfArtifact, FileRoundTrip) {
  const std::string path = temp_path("bench_roundtrip.json");
  write_artifact(valid_artifact(), path);
  const PerfArtifact loaded = read_artifact(path);
  EXPECT_EQ(loaded.git_sha, "abc1234");
  ASSERT_EQ(loaded.benchmarks.size(), 1u);
  EXPECT_EQ(loaded.benchmarks[0].median_wall_ms, 11.0);
  std::remove(path.c_str());
}

TEST(PerfArtifact, FileNameCarriesDateAndSha) {
  EXPECT_EQ(artifact_file_name(valid_artifact()),
            "BENCH_2026-08-07_abc1234.json");
}

TEST(PerfArtifact, MedianOddEvenAndEmpty) {
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);  // middle pair averaged
  EXPECT_THROW(median({}), std::invalid_argument);
}

TEST(PerfArtifactValidation, RejectsWrongSchemaVersion) {
  PerfArtifact artifact = valid_artifact();
  artifact.schema_version = kArtifactSchemaVersion + 1;
  EXPECT_THROW(validate(artifact), std::runtime_error);
}

TEST(PerfArtifactValidation, RejectsMissingDateOrSha) {
  PerfArtifact artifact = valid_artifact();
  artifact.date.clear();
  EXPECT_THROW(validate(artifact), std::runtime_error);
  artifact = valid_artifact();
  artifact.git_sha.clear();
  EXPECT_THROW(validate(artifact), std::runtime_error);
}

TEST(PerfArtifactValidation, RejectsEmptyBenchmarks) {
  PerfArtifact artifact = valid_artifact();
  artifact.benchmarks.clear();
  EXPECT_THROW(validate(artifact), std::runtime_error);
}

TEST(PerfArtifactValidation, RejectsDuplicateBenchmarkNames) {
  PerfArtifact artifact = valid_artifact();
  artifact.benchmarks.push_back(artifact.benchmarks[0]);
  EXPECT_THROW(validate(artifact), std::runtime_error);
}

TEST(PerfArtifactValidation, RejectsRepeatCountMismatch) {
  PerfArtifact artifact = valid_artifact();
  artifact.benchmarks[0].wall_ms.push_back(15.0);
  EXPECT_THROW(validate(artifact), std::runtime_error);
}

TEST(PerfArtifactValidation, RejectsUnsortedRepeats) {
  // The suite emits wall_ms sorted ascending; an out-of-order sample means
  // the artifact was hand-edited or the writer broke.
  PerfArtifact artifact = valid_artifact();
  std::swap(artifact.benchmarks[0].wall_ms[0],
            artifact.benchmarks[0].wall_ms[2]);
  std::swap(artifact.benchmarks[0].cpu_ms[0],
            artifact.benchmarks[0].cpu_ms[2]);
  EXPECT_THROW(validate(artifact), std::runtime_error);
}

TEST(PerfArtifactValidation, RejectsWrongMedian) {
  PerfArtifact artifact = valid_artifact();
  artifact.benchmarks[0].median_wall_ms = 12.0;  // true median is 11.0
  EXPECT_THROW(validate(artifact), std::runtime_error);
}

TEST(PerfArtifactValidation, RejectsNegativeTimes) {
  PerfArtifact artifact = valid_artifact();
  artifact.benchmarks[0].wall_ms = {-1.0, 11.0, 14.0};
  artifact.benchmarks[0].median_wall_ms = 11.0;
  EXPECT_THROW(validate(artifact), std::runtime_error);
}

TEST(PerfArtifactValidation, ParseRejectsMissingRequiredKey) {
  JsonValue json = to_json(valid_artifact());
  // Drop "benchmarks" wholesale: still syntactically valid JSON.
  std::string text = json.dump();
  const auto at = text.find("\"benchmarks\"");
  ASSERT_NE(at, std::string::npos);
  text = text.substr(0, at) + "\"other\"" +
         text.substr(at + std::string("\"benchmarks\"").size());
  EXPECT_THROW(parse_artifact(text), std::runtime_error);
}

TEST(PerfArtifactValidation, ReadRejectsMissingAndMalformedFiles) {
  EXPECT_THROW(read_artifact(temp_path("no_such_bench.json")),
               std::runtime_error);
  const std::string path = temp_path("bench_malformed.json");
  std::ofstream(path) << "{ not json";
  EXPECT_THROW(read_artifact(path), std::runtime_error);
  std::remove(path.c_str());
}

/// Two-benchmark artifacts for the gate tests: `factor` scales the
/// candidate's medians relative to the baseline.
PerfArtifact gate_artifact(double greedy_ms, double kalman_ms) {
  PerfArtifact artifact = valid_artifact();
  artifact.benchmarks.clear();
  for (const auto& [name, ms] : {std::pair<std::string, double>{
                                     "greedy_scoring_100k", greedy_ms},
                                 {"kalman_chain", kalman_ms}}) {
    BenchmarkResult bench;
    bench.name = name;
    bench.repeats = 1;
    bench.wall_ms = {ms};
    bench.cpu_ms = {ms};
    bench.median_wall_ms = ms;
    bench.median_cpu_ms = ms;
    artifact.benchmarks.push_back(std::move(bench));
  }
  return artifact;
}

TEST(PerfCompare, WithinThresholdIsOk) {
  const CompareReport report =
      compare(gate_artifact(10.0, 50.0), gate_artifact(12.0, 55.0),
              {.threshold = 0.25});
  EXPECT_EQ(report.status, CompareStatus::kOk);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(report.rows[0].ratio, 1.2);
  EXPECT_FALSE(report.rows[0].regression);
}

TEST(PerfCompare, ImprovementIsOk) {
  const CompareReport report = compare(
      gate_artifact(10.0, 50.0), gate_artifact(5.0, 25.0), {.threshold = 0.0});
  EXPECT_EQ(report.status, CompareStatus::kOk);
  EXPECT_DOUBLE_EQ(report.rows[0].ratio, 0.5);
}

TEST(PerfCompare, PastThresholdIsRegression) {
  const CompareReport report =
      compare(gate_artifact(10.0, 50.0), gate_artifact(13.0, 50.0),
              {.threshold = 0.25});
  EXPECT_EQ(report.status, CompareStatus::kRegression);
  EXPECT_TRUE(report.rows[0].regression);   // 1.3 > 1.25
  EXPECT_FALSE(report.rows[1].regression);  // 1.0
}

TEST(PerfCompare, ThresholdBoundaryIsNotRegression) {
  // Exactly (1 + threshold) passes: the gate fires strictly above it.
  const CompareReport report =
      compare(gate_artifact(10.0, 50.0), gate_artifact(12.5, 50.0),
              {.threshold = 0.25});
  EXPECT_EQ(report.status, CompareStatus::kOk);
}

TEST(PerfCompare, MissingBenchmarksListedAndGatedByRequireAll) {
  PerfArtifact candidate = gate_artifact(10.0, 50.0);
  candidate.benchmarks.pop_back();  // drop kalman_chain
  const PerfArtifact baseline = gate_artifact(10.0, 50.0);

  CompareReport lenient = compare(baseline, candidate, {.threshold = 0.25});
  EXPECT_EQ(lenient.status, CompareStatus::kOk);
  ASSERT_EQ(lenient.missing.size(), 1u);
  EXPECT_EQ(lenient.missing[0], "kalman_chain");

  const CompareReport strict =
      compare(baseline, candidate, {.threshold = 0.25, .require_all = true});
  EXPECT_EQ(strict.status, CompareStatus::kError);
}

TEST(PerfCompare, EmptyIntersectionIsError) {
  PerfArtifact candidate = gate_artifact(10.0, 50.0);
  for (auto& bench : candidate.benchmarks) bench.name += "_renamed";
  const CompareReport report =
      compare(gate_artifact(10.0, 50.0), candidate, {.threshold = 0.25});
  EXPECT_EQ(report.status, CompareStatus::kError);
}

TEST(PerfCompare, InvalidThresholdIsError) {
  const CompareReport report = compare(
      gate_artifact(10.0, 50.0), gate_artifact(10.0, 50.0), {.threshold = -1.0});
  EXPECT_EQ(report.status, CompareStatus::kError);
}

TEST(PerfCompareFiles, ExitCodeContract) {
  // compare_files returns the CLI's exit codes: 0 ok, 1 regression,
  // 2 malformed input — the CI gate scripts against exactly these.
  const std::string baseline = temp_path("gate_baseline.json");
  const std::string good = temp_path("gate_good.json");
  const std::string slow = temp_path("gate_slow.json");
  const std::string broken = temp_path("gate_broken.json");
  write_artifact(gate_artifact(10.0, 50.0), baseline);
  write_artifact(gate_artifact(10.5, 51.0), good);
  write_artifact(gate_artifact(20.0, 50.0), slow);
  std::ofstream(broken) << "[]";

  std::ostringstream sink;
  EXPECT_EQ(compare_files(baseline, good, {.threshold = 0.25}, sink),
            CompareStatus::kOk);
  EXPECT_EQ(compare_files(baseline, slow, {.threshold = 0.25}, sink),
            CompareStatus::kRegression);
  EXPECT_EQ(compare_files(baseline, broken, {.threshold = 0.25}, sink),
            CompareStatus::kError);
  EXPECT_EQ(compare_files(temp_path("gate_absent.json"), good,
                          {.threshold = 0.25}, sink),
            CompareStatus::kError);

  EXPECT_EQ(static_cast<int>(CompareStatus::kOk), 0);
  EXPECT_EQ(static_cast<int>(CompareStatus::kRegression), 1);
  EXPECT_EQ(static_cast<int>(CompareStatus::kError), 2);

  for (const auto& path : {baseline, good, slow, broken}) {
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace melody::perf
