// Record/replay end to end over the real epoll front end: a 256-connection
// traced session against an 8-shard faulted deployment with a mid-trace
// checkpoint, a kill (event-loop stop + drain), a resumed second session
// recording its own trace — and both traces replaying with ZERO response
// diffs at 1, 2, and 8 worker threads. This is the PR's headline contract:
// the single event-loop thread makes submission order the only order, so a
// trace plus a manual clock pins every byte the service ever sent.
//
// Also here (real sockets, so not tier-1): the stats op surfacing the
// event loop's own tallies (loop_* fields + live connection gauge).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/fault.h"
#include "svc/config.h"
#include "svc/event_loop.h"
#include "svc/protocol.h"
#include "svc/replay.h"
#include "svc/router.h"
#include "svc/trace_log.h"
#include "util/thread_pool.h"

namespace melody::svc {
namespace {

/// 8 shards over 42 workers (remainder split), faults on, manual clock:
/// the deployment the acceptance criteria name.
ServiceConfig traced_config() {
  ServiceConfig config;
  config.scenario.num_workers = 42;
  config.scenario.num_tasks = 30;
  config.scenario.runs = 1000;
  config.scenario.budget = 120.0;
  config.seed = 2017;
  config.manual_clock = true;
  config.shards = 8;
  config.faults = sim::FaultPlan::parse("no-show=0.05,drop=0.1");
  return config;
}

/// A served deployment on an ephemeral port with a TraceRecorder attached,
/// the event loop running on its own thread until stop().
struct TracedServer {
  explicit TracedServer(ServiceConfig config, std::ostream& trace_out,
                        const std::string& resume_path = "")
      : service(std::move(config)), recorder(trace_out) {
    if (!resume_path.empty()) service.restore(resume_path);
    EventLoopOptions options;
    options.port = 0;
    options.should_stop = [this] { return stop_flag.load(); };
    options.recorder = &recorder;
    front = std::make_unique<EventLoop>(service, options);
    front->listen();
    service.start();
    thread = std::thread([this] { stats = front->run(); });
  }

  ~TracedServer() {
    stop();
    if (thread.joinable()) thread.join();
  }

  /// Kill: stop the loop (drain), join, finalize shards, publish the trace.
  void stop() {
    stop_flag.store(true);
    if (thread.joinable()) thread.join();
    service.finalize();
    recorder.finish();
  }

  int port() const { return front->actual_port(); }

  ShardedService service;
  TraceRecorder recorder;
  std::unique_ptr<EventLoop> front;
  std::thread thread;
  std::atomic<bool> stop_flag{false};
  EventLoopStats stats{};
};

int connect_client(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
      0);
  timeval timeout{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  return fd;
}

void send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::send(fd, text.data() + sent, text.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

std::string read_line(int fd) {
  std::string line;
  char c = 0;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return {};
    if (c == '\n') return line;
    line += c;
  }
}

Request bid_for(int worker, std::int64_t id) {
  Request r;
  r.op = Op::kSubmitBid;
  r.id = id;
  r.worker = "w" + std::to_string(worker);
  return r;
}

/// One client: a handful of pipelined requests (bids + a query), all
/// answered before the socket closes so every frame lands in the trace.
void run_client(int port, int client, int requests) {
  const int fd = connect_client(port);
  std::string burst;
  for (int k = 0; k < requests; ++k) {
    const int worker = (client + k * 37) % 42;
    burst += format_request(bid_for(worker, client * 100 + k + 1)) + "\n";
  }
  send_all(fd, burst);
  for (int k = 0; k < requests; ++k) {
    const std::string line = read_line(fd);
    ASSERT_FALSE(line.empty()) << "client " << client << " response " << k;
  }
  ::close(fd);
}

/// Replay `trace` (optionally restoring `resume_path` first) at the given
/// worker-thread count and assert zero diffs.
void expect_clean_replay(const TraceFile& trace, int threads,
                         const std::string& resume_path = "") {
  util::set_shared_thread_count(threads);
  ShardedService service(config_from_trace(trace));
  if (!resume_path.empty()) service.restore(resume_path);
  const ReplayResult result = replay_trace(trace, service);
  for (const FrameDiff& diff : result.diffs) {
    ADD_FAILURE() << "threads=" << threads << ": " << format_diff(diff);
  }
  EXPECT_TRUE(result.clean()) << "threads=" << threads;
  EXPECT_GT(result.compared, 0u);
  util::set_shared_thread_count(1);
}

// The acceptance scenario: 256 traced connections, faults on, an explicit
// mid-trace checkpoint, a kill, a resume recording a second trace — and
// both traces replay byte-clean at 1/2/8 threads.
TEST(TraceReplayE2E, KilledAndResumedTracedSessionReplaysCleanAt128Threads) {
  const std::string checkpoint =
      testing::TempDir() + "trace_replay_e2e.ckpt";
  const std::string resume_copy = checkpoint + ".frozen";
  std::remove(checkpoint.c_str());
  std::remove(resume_copy.c_str());

  constexpr int kClients = 256;
  std::ostringstream trace1_bytes;
  {
    TracedServer server(traced_config(), trace1_bytes);
    {
      // Wave 1: 128 concurrent clients, 4 requests each.
      std::vector<std::thread> clients;
      clients.reserve(kClients / 2);
      for (int c = 0; c < kClients / 2; ++c) {
        clients.emplace_back(
            [&server, c] { run_client(server.port(), c, 4); });
      }
      for (std::thread& t : clients) t.join();
    }
    {
      // Mid-trace checkpoint through the wire, like any other client.
      const int fd = connect_client(server.port());
      Request ckpt;
      ckpt.op = Op::kCheckpoint;
      ckpt.id = 77777;
      ckpt.path = checkpoint;
      send_all(fd, format_request(ckpt) + "\n");
      const Response response = parse_response(read_line(fd));
      ASSERT_TRUE(response.ok) << response.error;
      ::close(fd);
    }
    {
      // Wave 2: the other 128 clients land after the checkpoint, so the
      // first trace's tail diverges from the checkpointed state.
      std::vector<std::thread> clients;
      clients.reserve(kClients / 2);
      for (int c = kClients / 2; c < kClients; ++c) {
        clients.emplace_back(
            [&server, c] { run_client(server.port(), c, 4); });
      }
      for (std::thread& t : clients) t.join();
    }
    server.stop();  // the kill: drain, join, publish the trace
    EXPECT_GE(server.stats.accepted,
              static_cast<std::uint64_t>(kClients + 1));
  }

  // Freeze the checkpoint: replaying trace 1 re-executes its checkpoint op
  // against the same path (writing bit-identical bytes); the resume must
  // not depend on that ordering.
  {
    std::ifstream src(checkpoint, std::ios::binary);
    ASSERT_TRUE(src.good());
    std::ofstream dst(resume_copy, std::ios::binary | std::ios::trunc);
    dst << src.rdbuf();
  }

  // Resume from the mid-trace checkpoint and record a second session.
  std::ostringstream trace2_bytes;
  {
    TracedServer server(traced_config(), trace2_bytes, resume_copy);
    std::vector<std::thread> clients;
    clients.reserve(64);
    for (int c = 0; c < 64; ++c) {
      clients.emplace_back(
          [&server, c] { run_client(server.port(), c, 3); });
    }
    for (std::thread& t : clients) t.join();
    server.stop();
  }

  std::istringstream trace1_in(trace1_bytes.str());
  const TraceFile trace1 = parse_trace(trace1_in);
  std::istringstream trace2_in(trace2_bytes.str());
  const TraceFile trace2 = parse_trace(trace2_in);
  ASSERT_EQ(trace1.shards(), 8);
  // 256 clients x 4 requests + 1 checkpoint, each an in/out pair.
  ASSERT_GE(trace1.frames.size(), 2u * (kClients * 4 + 1));
  ASSERT_GE(trace2.frames.size(), 2u * 64 * 3);

  for (const int threads : {1, 2, 8}) {
    expect_clean_replay(trace1, threads);
    expect_clean_replay(trace2, threads, resume_copy);
  }

  std::remove(checkpoint.c_str());
  std::remove(resume_copy.c_str());
}

// Replay catches real divergence: replaying the resumed-session trace
// WITHOUT restoring the checkpoint is a genuinely different trajectory,
// and the diff report names the frame and field.
TEST(TraceReplayE2E, ReplayWithoutTheRecordedResumeStateDiverges) {
  const std::string checkpoint =
      testing::TempDir() + "trace_replay_diverge.ckpt";
  std::remove(checkpoint.c_str());

  // Session 1: enough bids to run several auctions, then checkpoint.
  std::ostringstream trace1_bytes;
  {
    TracedServer server(traced_config(), trace1_bytes);
    std::vector<std::thread> clients;
    for (int c = 0; c < 16; ++c) {
      clients.emplace_back([&server, c] { run_client(server.port(), c, 8); });
    }
    for (std::thread& t : clients) t.join();
    const int fd = connect_client(server.port());
    Request ckpt;
    ckpt.op = Op::kCheckpoint;
    ckpt.id = 88888;
    ckpt.path = checkpoint;
    send_all(fd, format_request(ckpt) + "\n");
    ASSERT_TRUE(parse_response(read_line(fd)).ok);
    ::close(fd);
    server.stop();
  }

  // Session 2 resumes; its very first bid acks report the carried-over
  // book (pending bids, internal ids), which a cold replay cannot match.
  std::ostringstream trace2_bytes;
  {
    TracedServer server(traced_config(), trace2_bytes, checkpoint);
    const int fd = connect_client(server.port());
    std::string burst;
    for (int k = 0; k < 16; ++k) {
      burst += format_request(bid_for(k, 1000 + k)) + "\n";
    }
    send_all(fd, burst);
    for (int k = 0; k < 16; ++k) ASSERT_FALSE(read_line(fd).empty());
    ::close(fd);
    server.stop();
  }

  std::istringstream trace2_in(trace2_bytes.str());
  const TraceFile trace2 = parse_trace(trace2_in);
  ShardedService cold(config_from_trace(trace2));  // no restore()
  const ReplayResult result = replay_trace(trace2, cold);
  ASSERT_FALSE(result.clean());
  const FrameDiff& diff = result.diffs.front();
  EXPECT_FALSE(diff.field.empty());
  const std::string report = format_diff(diff);
  EXPECT_NE(report.find("frame"), std::string::npos);
  EXPECT_NE(report.find(diff.field), std::string::npos);

  std::remove(checkpoint.c_str());
}

// The stats op answered over TCP carries the event loop's own tallies —
// live introspection without scraping stderr.
TEST(TraceReplayE2E, StatsOpSurfacesEventLoopTallies) {
  std::ostringstream trace_bytes;
  TracedServer server(traced_config(), trace_bytes);
  run_client(server.port(), 3, 5);

  const int fd = connect_client(server.port());
  send_all(fd, "definitely not json\n");
  ASSERT_FALSE(parse_response(read_line(fd)).ok);

  Request stats;
  stats.op = Op::kStats;
  stats.id = 4242;
  send_all(fd, format_request(stats) + "\n");
  const Response response = parse_response(read_line(fd));
  ASSERT_TRUE(response.ok) << response.error;
  // Per-shard views (8 shards) plus the loop's own counters.
  EXPECT_TRUE(response.fields.has("shard0/requests"));
  EXPECT_TRUE(response.fields.has("shard7/requests"));
  EXPECT_GE(response.fields.number("connections"), 1.0);
  EXPECT_GE(response.fields.number("loop_accepted"), 2.0);
  EXPECT_GE(response.fields.number("loop_requests"), 6.0);
  EXPECT_GE(response.fields.number("loop_parse_errors"), 1.0);
  EXPECT_TRUE(response.fields.has("loop_rejected"));
  ::close(fd);
}

}  // namespace
}  // namespace melody::svc
