#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace melody::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "melody_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.write_row({"run", "utility"});
    csv.write_numeric_row({1.0, 94.6});
  }
  EXPECT_EQ(read_file(path_), "run,utility\n1,94.6\n");
}

TEST_F(CsvTest, NumericPrecision) {
  {
    CsvWriter csv(path_);
    csv.write_numeric_row({0.1234567890123, 1e-9});
  }
  EXPECT_EQ(read_file(path_), "0.123456789,1e-09\n");
}

TEST_F(CsvTest, VectorRowOverloads) {
  {
    CsvWriter csv(path_);
    csv.write_row(std::vector<std::string>{"a", "b"});
    csv.write_numeric_row(std::vector<double>{2.0, 3.0});
  }
  EXPECT_EQ(read_file(path_), "a,b\n2,3\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.write_row({"has,comma", "has\"quote", "plain"});
  }
  EXPECT_EQ(read_file(path_), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(CsvEscape, RulesMatchRfc4180) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(CsvWriterErrors, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zzz/file.csv"), std::runtime_error);
}

TEST(CsvParse, SimpleRows) {
  const CsvRows rows = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvParse, NoTrailingNewline) {
  const CsvRows rows = parse_csv("x,y");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "y"}));
}

TEST(CsvParse, CrLfEndings) {
  const CsvRows rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvParse, BareCrEndsRow) {
  const CsvRows rows = parse_csv("a\rb");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][0], "b");
}

TEST(CsvParse, QuotedCellsWithCommasAndNewlines) {
  const CsvRows rows = parse_csv("\"a,b\",\"line1\nline2\",plain\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "line1\nline2");
  EXPECT_EQ(rows[0][2], "plain");
}

TEST(CsvParse, DoubledQuotes) {
  const CsvRows rows = parse_csv("\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "he said \"hi\"");
}

TEST(CsvParse, EmptyCellsPreserved) {
  const CsvRows rows = parse_csv(",,\na,,b\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1][1], "");
}

TEST(CsvParse, QuotedEmptyCellProducesRow) {
  const CsvRows rows = parse_csv("\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{""}));
}

TEST(CsvParse, EmptyInputNoRows) { EXPECT_TRUE(parse_csv("").empty()); }

TEST(CsvParse, MalformedInputsThrow) {
  EXPECT_THROW(parse_csv("ab\"c\n"), std::invalid_argument);
  EXPECT_THROW(parse_csv("\"unterminated"), std::invalid_argument);
}

TEST_F(CsvTest, WriteThenReadRoundTrip) {
  {
    CsvWriter csv(path_);
    csv.write_row({"id", "note"});
    csv.write_row({"1", "has,comma"});
    csv.write_row({"2", "has\"quote"});
  }
  const CsvRows rows = read_csv_file(path_);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][1], "has,comma");
  EXPECT_EQ(rows[2][1], "has\"quote");
}

TEST(CsvReadFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent_zzz.csv"), std::runtime_error);
}

}  // namespace
}  // namespace melody::util
