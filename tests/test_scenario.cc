#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace melody::sim {
namespace {

TEST(SraScenarioTest, DefaultsMatchTable3) {
  const SraScenario s;
  EXPECT_DOUBLE_EQ(s.quality.lo, 2.0);
  EXPECT_DOUBLE_EQ(s.quality.hi, 4.0);
  EXPECT_DOUBLE_EQ(s.cost.lo, 1.0);
  EXPECT_DOUBLE_EQ(s.cost.hi, 2.0);
  EXPECT_EQ(s.frequency.lo, 1);
  EXPECT_EQ(s.frequency.hi, 5);
  EXPECT_DOUBLE_EQ(s.threshold.lo, 6.0);
  EXPECT_DOUBLE_EQ(s.threshold.hi, 12.0);
  EXPECT_EQ(s.num_tasks, 500);
}

TEST(SraScenarioTest, AuctionConfigMirrorsRanges) {
  SraScenario s;
  s.budget = 777.0;
  const auto config = s.auction_config();
  EXPECT_DOUBLE_EQ(config.budget, 777.0);
  EXPECT_DOUBLE_EQ(config.theta_min, 2.0);
  EXPECT_DOUBLE_EQ(config.theta_max, 4.0);
  EXPECT_DOUBLE_EQ(config.cost_min, 1.0);
  EXPECT_DOUBLE_EQ(config.cost_max, 2.0);
}

TEST(SraScenarioTest, SampledEntitiesWithinRanges) {
  SraScenario s;
  s.num_workers = 100;
  s.num_tasks = 50;
  util::Rng rng(1);
  const auto workers = s.sample_workers(rng);
  const auto tasks = s.sample_tasks(rng);
  const auto config = s.auction_config();
  ASSERT_EQ(workers.size(), 100u);
  ASSERT_EQ(tasks.size(), 50u);
  for (const auto& w : workers) {
    EXPECT_TRUE(config.qualifies(w));  // sampling range == filter range
    EXPECT_GE(w.bid.frequency, 1);
    EXPECT_LE(w.bid.frequency, 5);
  }
  for (const auto& t : tasks) {
    EXPECT_GE(t.quality_threshold, 6.0);
    EXPECT_LE(t.quality_threshold, 12.0);
  }
}

TEST(SraScenarioTest, SettingFactories) {
  const auto i = table3_setting_i(350, 600.0);
  EXPECT_EQ(i.num_workers, 350);
  EXPECT_EQ(i.num_tasks, 500);
  EXPECT_DOUBLE_EQ(i.budget, 600.0);

  const auto ii = table3_setting_ii(1210.0, 250);
  EXPECT_EQ(ii.num_workers, 250);
  EXPECT_DOUBLE_EQ(ii.budget, 1210.0);

  const auto iii = table3_setting_iii(300, 400);
  EXPECT_EQ(iii.num_tasks, 300);
  EXPECT_EQ(iii.num_workers, 400);
  EXPECT_DOUBLE_EQ(iii.budget, 2000.0);
}

TEST(LongTermScenarioTest, DefaultsMatchTable4) {
  const LongTermScenario s;
  EXPECT_EQ(s.num_workers, 300);
  EXPECT_EQ(s.num_tasks, 500);
  EXPECT_EQ(s.runs, 1000);
  EXPECT_DOUBLE_EQ(s.budget, 800.0);
  EXPECT_DOUBLE_EQ(s.threshold.lo, 20.0);
  EXPECT_DOUBLE_EQ(s.threshold.hi, 40.0);
  EXPECT_DOUBLE_EQ(s.score_model.noise_stddev, 3.0);
  EXPECT_DOUBLE_EQ(s.initial_mu, 5.5);
  EXPECT_DOUBLE_EQ(s.initial_sigma, 2.25);
  EXPECT_EQ(s.reestimation_period, 10);
}

TEST(LongTermScenarioTest, AuctionConfigUsesScoreRange) {
  const LongTermScenario s;
  const auto config = s.auction_config();
  EXPECT_DOUBLE_EQ(config.theta_min, 1.0);
  EXPECT_DOUBLE_EQ(config.theta_max, 10.0);
  EXPECT_DOUBLE_EQ(config.budget, 800.0);
}

TEST(LongTermScenarioTest, PopulationConfigMirrorsScenario) {
  LongTermScenario s;
  s.num_workers = 42;
  s.runs = 123;
  const auto pop = s.population_config();
  EXPECT_EQ(pop.count, 42);
  EXPECT_EQ(pop.horizon, 123);
  EXPECT_DOUBLE_EQ(pop.cost_min, 1.0);
  EXPECT_DOUBLE_EQ(pop.cost_max, 2.0);
}

TEST(LongTermScenarioTest, TaskSamplingWithinThresholds) {
  LongTermScenario s;
  s.num_tasks = 64;
  util::Rng rng(2);
  const auto tasks = s.sample_tasks(rng);
  ASSERT_EQ(tasks.size(), 64u);
  for (const auto& t : tasks) {
    EXPECT_GE(t.quality_threshold, 20.0);
    EXPECT_LE(t.quality_threshold, 40.0);
  }
}

}  // namespace
}  // namespace melody::sim
