// Crash-resume robustness: a platform restored from a checkpoint must
// continue bit-identically to one that never stopped — same RunRecord
// stream, same estimator state, same snapshot bytes — at any thread count,
// with and without an active fault plan.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "auction/melody_auction.h"
#include "estimators/melody_estimator.h"
#include "sim/platform.h"
#include "util/binio.h"
#include "util/thread_pool.h"

namespace melody::sim {
namespace {

LongTermScenario small_scenario() {
  LongTermScenario s;
  s.num_workers = 40;
  s.num_tasks = 30;
  s.runs = 16;
  s.budget = 120.0;
  return s;
}

estimators::MelodyEstimatorConfig tracker_config(const LongTermScenario& s) {
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {s.initial_mu, s.initial_sigma};
  config.reestimation_period = s.reestimation_period;
  return config;
}

FaultPlan test_plan() {
  FaultPlan plan;
  plan.no_show_rate = 0.1;
  plan.score_drop_rate = 0.1;
  plan.score_corrupt_rate = 0.05;
  plan.churn_rate = 0.2;
  plan.churn_min_absence = 2;
  plan.churn_max_absence = 5;
  return plan;
}

constexpr std::uint64_t kPopulationSeed = 3;
constexpr std::uint64_t kPlatformSeed = 44;

/// One self-owning simulation: Platform borrows its mechanism and
/// estimator, so every independent run needs its own copies.
struct Rig {
  LongTermScenario scenario;
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator;
  Platform platform;

  Rig(const LongTermScenario& s, std::vector<SimWorker> workers)
      : scenario(s),
        estimator(tracker_config(s)),
        platform(scenario, mechanism, estimator, std::move(workers),
                 kPlatformSeed) {}
};

std::vector<SimWorker> population(const LongTermScenario& s) {
  util::Rng rng(kPopulationSeed);
  return sample_population(s.population_config(), rng);
}

struct Outcome {
  std::vector<RunRecord> records;
  std::string snapshot;
  std::unordered_map<auction::WorkerId, double> estimates;
};

Outcome finish(Rig& rig, std::vector<RunRecord> prefix) {
  auto rest = rig.platform.run_all();
  prefix.insert(prefix.end(), rest.begin(), rest.end());
  std::ostringstream snap;
  rig.platform.save(snap);
  Outcome outcome{std::move(prefix), snap.str(), {}};
  for (const auto& w : rig.platform.workers()) {
    outcome.estimates[w.id()] = rig.estimator.estimate(w.id());
  }
  return outcome;
}

Outcome run_straight(const LongTermScenario& s, const FaultPlan& plan) {
  Rig rig(s, population(s));
  if (plan.active()) rig.platform.set_fault_plan(plan);
  return finish(rig, {});
}

Outcome run_resumed(const LongTermScenario& s, const FaultPlan& plan,
                    int interrupt_after) {
  std::string checkpoint;
  std::vector<RunRecord> prefix;
  {
    Rig rig(s, population(s));
    if (plan.active()) rig.platform.set_fault_plan(plan);
    for (int r = 0; r < interrupt_after; ++r) {
      prefix.push_back(rig.platform.step());
    }
    std::ostringstream snap;
    rig.platform.save(snap);
    checkpoint = snap.str();
  }  // the "crashed" process is gone; only the checkpoint bytes survive
  // The resumed platform starts from an EMPTY population: everything it
  // needs — workers, trajectories, RNG position, fault plan, estimator
  // state — must come out of the snapshot.
  Rig rig(s, {});
  std::istringstream snap(checkpoint);
  rig.platform.load(snap);
  EXPECT_EQ(rig.platform.fault_plan().active(), plan.active());
  EXPECT_EQ(rig.platform.current_run(), interrupt_after + 1);
  return finish(rig, std::move(prefix));
}

void expect_identical(const Outcome& a, const Outcome& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i], b.records[i]) << "run " << i + 1;
  }
  EXPECT_EQ(a.snapshot, b.snapshot);
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (const auto& [id, estimate] : a.estimates) {
    const auto it = b.estimates.find(id);
    ASSERT_NE(it, b.estimates.end()) << "worker " << id;
    EXPECT_DOUBLE_EQ(estimate, it->second) << "worker " << id;
  }
}

class CheckpointThreadMatrix : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { util::set_shared_thread_count(GetParam()); }
  void TearDown() override { util::set_shared_thread_count(1); }
};

TEST_P(CheckpointThreadMatrix, ResumeIsBitIdenticalWithoutFaults) {
  const auto scenario = small_scenario();
  const auto straight = run_straight(scenario, FaultPlan{});
  for (const int k : {1, 7, scenario.runs - 1}) {
    expect_identical(straight, run_resumed(scenario, FaultPlan{}, k));
  }
}

TEST_P(CheckpointThreadMatrix, ResumeIsBitIdenticalWithFaults) {
  const auto scenario = small_scenario();
  const auto straight = run_straight(scenario, test_plan());
  for (const int k : {1, 7, scenario.runs - 1}) {
    expect_identical(straight, run_resumed(scenario, test_plan(), k));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, CheckpointThreadMatrix,
                         ::testing::Values(1, 2, 8));

TEST(Checkpoint, SerialAndParallelRunsProduceIdenticalOutcomes) {
  const auto scenario = small_scenario();
  util::set_shared_thread_count(1);
  const auto serial = run_straight(scenario, test_plan());
  for (const int threads : {2, 8}) {
    util::set_shared_thread_count(threads);
    expect_identical(serial, run_straight(scenario, test_plan()));
  }
  util::set_shared_thread_count(1);
}

TEST(Checkpoint, SnapshotBytesAreDeterministic) {
  const auto scenario = small_scenario();
  Rig rig(scenario, population(scenario));
  rig.platform.set_policy(5, BidPolicy{.cheat_probability = 0.5});
  for (int r = 0; r < 5; ++r) rig.platform.step();
  std::ostringstream a, b;
  rig.platform.save(a);
  rig.platform.save(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Checkpoint, PoliciesSurviveResume) {
  const auto scenario = small_scenario();
  BidPolicy overbid;
  overbid.cheat_probability = 1.0;
  overbid.direction = MisreportDirection::kHigher;
  overbid.cost_magnitude = 10.0;

  auto with_policy = [&](bool through_snapshot) {
    Rig rig(scenario, population(scenario));
    rig.platform.set_policy(rig.platform.workers().front().id(), overbid);
    if (through_snapshot) {
      std::stringstream snap;
      rig.platform.save(snap);
      Rig restored(scenario, {});
      restored.platform.load(snap);
      return finish(restored, {});
    }
    return finish(rig, {});
  };
  expect_identical(with_policy(false), with_policy(true));
}

TEST(Checkpoint, BadMagicRejected) {
  std::istringstream bad("NOTACKPT garbage");
  Rig rig(small_scenario(), {});
  EXPECT_THROW(rig.platform.load(bad), std::runtime_error);
}

TEST(Checkpoint, UnsupportedVersionRejected) {
  std::ostringstream out;
  out.write("MLDYCKPT", 8);
  util::binio::write_u32(out, 999);
  std::istringstream in(out.str());
  Rig rig(small_scenario(), {});
  EXPECT_THROW(rig.platform.load(in), std::runtime_error);
}

TEST(Checkpoint, TruncatedSnapshotRejected) {
  const auto scenario = small_scenario();
  Rig rig(scenario, population(scenario));
  for (int r = 0; r < 3; ++r) rig.platform.step();
  std::ostringstream snap;
  rig.platform.save(snap);
  const std::string bytes = snap.str();
  for (const std::size_t cut :
       {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream truncated(bytes.substr(0, cut));
    Rig target(scenario, {});
    EXPECT_THROW(target.platform.load(truncated), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(Checkpoint, FileHelpersRoundTripAtomically) {
  const auto scenario = small_scenario();
  const std::string path =
      ::testing::TempDir() + "melody_checkpoint_test.bin";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  Rig rig(scenario, population(scenario));
  for (int r = 0; r < 4; ++r) rig.platform.step();
  save_checkpoint(rig.platform, path);
  // The temp file was renamed away, the checkpoint is in place.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  ASSERT_TRUE(std::ifstream(path).good());

  Rig restored(scenario, {});
  load_checkpoint(restored.platform, path);
  EXPECT_EQ(restored.platform.current_run(), rig.platform.current_run());
  expect_identical(finish(rig, {}), finish(restored, {}));
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadFromMissingFileThrows) {
  Rig rig(small_scenario(), {});
  EXPECT_THROW(
      load_checkpoint(rig.platform,
                      ::testing::TempDir() + "melody_no_such_checkpoint.bin"),
      std::runtime_error);
}

/// Forwards everything to a wrapped MELODY estimator while counting the
/// register_worker calls per id — the instrument for the newcomer test.
class CountingEstimator final : public estimators::QualityEstimator {
 public:
  explicit CountingEstimator(const estimators::MelodyEstimatorConfig& config)
      : inner_(config) {}

  void register_worker(auction::WorkerId id) override {
    ++registrations_[id];
    inner_.register_worker(id);
  }
  void observe(auction::WorkerId id, const lds::ScoreSet& scores) override {
    inner_.observe(id, scores);
  }
  void observe_run(std::span<const auction::WorkerId> ids,
                   std::span<const lds::ScoreSet> scores) override {
    inner_.observe_run(ids, scores);
  }
  double estimate(auction::WorkerId id) const override {
    return inner_.estimate(id);
  }
  std::string name() const override { return inner_.name(); }
  void save(std::ostream& out) const override { inner_.save(out); }
  void load(std::istream& in) override { inner_.load(in); }

  int registrations(auction::WorkerId id) const {
    const auto it = registrations_.find(id);
    return it == registrations_.end() ? 0 : it->second;
  }

 private:
  estimators::MelodyEstimator inner_;
  std::unordered_map<auction::WorkerId, int> registrations_;
};

TEST(Checkpoint, NewcomerAfterResumeIsRegisteredExactlyOnce) {
  auto scenario = small_scenario();
  scenario.runs = 10;
  const auto config = tracker_config(scenario);

  std::string checkpoint;
  {
    auction::MelodyAuction mechanism;
    CountingEstimator estimator(config);
    Platform platform(scenario, mechanism, estimator, population(scenario),
                      kPlatformSeed);
    for (int r = 0; r < 3; ++r) platform.step();
    std::ostringstream snap;
    platform.save(snap);
    checkpoint = snap.str();
  }

  auction::MelodyAuction mechanism;
  CountingEstimator estimator(config);
  Platform platform(scenario, mechanism, estimator, {}, kPlatformSeed);
  std::istringstream snap(checkpoint);
  platform.load(snap);
  // The restored estimator state covers the whole population even though
  // this platform was constructed with nobody to register.
  EXPECT_EQ(estimator.registrations(population(scenario).front().id()), 0);
  EXPECT_NO_THROW(estimator.estimate(population(scenario).front().id()));

  const auction::WorkerId newcomer_id = 1000;
  TrajectoryConfig traj;
  traj.kind = TrajectoryKind::kStable;
  traj.start_level = 9.0;
  util::Rng rng(8);
  SimWorker newcomer(newcomer_id, {1.0, 5},
                     generate_trajectory(traj, scenario.runs, rng));
  platform.add_worker(std::move(newcomer));
  EXPECT_EQ(estimator.registrations(newcomer_id), 1);

  // The newcomer participates immediately and never gets re-registered.
  platform.run_all();
  EXPECT_EQ(estimator.registrations(newcomer_id), 1);
  EXPECT_NO_THROW(estimator.estimate(newcomer_id));
}

}  // namespace
}  // namespace melody::sim
