#include "util/flags.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace melody::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, KeyEqualsValue) {
  const Flags f = parse({"--workers=42"});
  EXPECT_TRUE(f.has("workers"));
  EXPECT_EQ(f.get_int("workers", 0), 42);
}

TEST(Flags, KeySpaceValue) {
  const Flags f = parse({"--budget", "123.5"});
  EXPECT_DOUBLE_EQ(f.get_double("budget", 0.0), 123.5);
}

TEST(Flags, BareSwitchIsTrue) {
  const Flags f = parse({"--quiet"});
  EXPECT_TRUE(f.get_bool("quiet", false));
}

TEST(Flags, SwitchFollowedByFlag) {
  const Flags f = parse({"--quiet", "--workers=5"});
  EXPECT_TRUE(f.get_bool("quiet", false));
  EXPECT_EQ(f.get_int("workers", 0), 5);
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = parse({});
  EXPECT_FALSE(f.has("anything"));
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_EQ(f.get_string("s", "dflt"), "dflt");
  EXPECT_TRUE(f.get_bool("b", true));
}

TEST(Flags, PositionalArguments) {
  const Flags f = parse({"first", "--k=v", "second"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "first");
  EXPECT_EQ(f.positional()[1], "second");
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=no"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=false"}).get_bool("a", true));
}

TEST(Flags, TypeErrorsThrow) {
  EXPECT_THROW(parse({"--n=abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(parse({"--n=12x"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(parse({"--x=?"}).get_double("x", 0), std::invalid_argument);
  EXPECT_THROW(parse({"--b=maybe"}).get_bool("b", false), std::invalid_argument);
}

TEST(Flags, MalformedFlagThrows) {
  EXPECT_THROW(parse({"---x=1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Flags, NegativeNumbersAsValues) {
  const Flags f = parse({"--delta=-3"});
  EXPECT_EQ(f.get_int("delta", 0), -3);
}

TEST(Flags, UnusedDetection) {
  const Flags f = parse({"--used=1", "--typo=2"});
  (void)f.get_int("used", 0);
  const auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, DuplicateEqualsFormThrows) {
  EXPECT_THROW(parse({"--n=1", "--n=2"}), std::invalid_argument);
}

TEST(Flags, DuplicateSpaceFormThrows) {
  EXPECT_THROW(parse({"--n", "1", "--n", "2"}), std::invalid_argument);
}

TEST(Flags, DuplicateAcrossFormsThrows) {
  EXPECT_THROW(parse({"--n=1", "--n", "2"}), std::invalid_argument);
  EXPECT_THROW(parse({"--quiet", "--quiet"}), std::invalid_argument);
}

TEST(Flags, DistinctFlagsDoNotThrow) {
  const Flags f = parse({"--n=1", "--m", "2"});
  EXPECT_EQ(f.get_int("n", 0), 1);
  EXPECT_EQ(f.get_int("m", 0), 2);
}

}  // namespace
}  // namespace melody::util
