#include "lds/gaussian.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace melody::lds {
namespace {

TEST(Gaussian, DefaultIsStandardNormal) {
  const Gaussian g;
  EXPECT_EQ(g.mean, 0.0);
  EXPECT_EQ(g.var, 1.0);
  EXPECT_NEAR(g.pdf(0.0), 1.0 / std::sqrt(2.0 * std::numbers::pi), 1e-12);
}

TEST(Gaussian, PdfIntegratesToOne) {
  const Gaussian g{2.0, 4.0};
  double integral = 0.0;
  const double dx = 0.001;
  for (double x = -20.0; x < 24.0; x += dx) integral += g.pdf(x) * dx;
  EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST(Gaussian, LogPdfMatchesPdf) {
  const Gaussian g{1.5, 0.25};
  for (double x : {-1.0, 0.0, 1.5, 3.0}) {
    EXPECT_NEAR(std::exp(g.log_pdf(x)), g.pdf(x), 1e-12);
  }
}

TEST(Gaussian, PdfSymmetricAroundMean) {
  const Gaussian g{5.0, 2.0};
  EXPECT_NEAR(g.pdf(4.0), g.pdf(6.0), 1e-12);
}

TEST(Gaussian, NonPositiveVarianceThrows) {
  const Gaussian g{0.0, 0.0};
  EXPECT_THROW(g.log_pdf(0.0), std::domain_error);
  const Gaussian neg{0.0, -1.0};
  EXPECT_THROW(neg.pdf(0.0), std::domain_error);
}

TEST(Gaussian, StdDev) {
  const Gaussian g{0.0, 9.0};
  EXPECT_DOUBLE_EQ(g.stddev(), 3.0);
}

TEST(GaussianProduct, PrecisionWeightedMean) {
  const Gaussian a{0.0, 1.0};
  const Gaussian b{10.0, 1.0};
  const Gaussian p = product(a, b);
  EXPECT_NEAR(p.mean, 5.0, 1e-12);
  EXPECT_NEAR(p.var, 0.5, 1e-12);
}

TEST(GaussianProduct, TighterComponentDominates) {
  const Gaussian broad{0.0, 100.0};
  const Gaussian tight{3.0, 0.01};
  const Gaussian p = product(broad, tight);
  EXPECT_NEAR(p.mean, 3.0, 0.01);
  EXPECT_LT(p.var, tight.var);
}

TEST(GaussianProduct, Commutative) {
  const Gaussian a{1.0, 2.0};
  const Gaussian b{4.0, 3.0};
  const Gaussian ab = product(a, b);
  const Gaussian ba = product(b, a);
  EXPECT_NEAR(ab.mean, ba.mean, 1e-12);
  EXPECT_NEAR(ab.var, ba.var, 1e-12);
}

TEST(GaussianProduct, InvalidVarianceThrows) {
  EXPECT_THROW(product({0.0, 0.0}, {0.0, 1.0}), std::domain_error);
}

TEST(ScoreSetTest, Accumulates) {
  ScoreSet s;
  EXPECT_TRUE(s.empty());
  s.add(2.0);
  s.add(4.0);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);
  EXPECT_DOUBLE_EQ(s.sum_squares, 20.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(ScoreSetTest, EmptyMeanIsZero) {
  const ScoreSet s;
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(ScoreSetTest, FromSpan) {
  const std::vector<double> scores{1.0, 2.0, 3.0};
  const ScoreSet s = ScoreSet::from(scores);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);
  EXPECT_DOUBLE_EQ(s.sum_squares, 14.0);
}

}  // namespace
}  // namespace melody::lds
