// Direct unit tests of the internal greedy machinery shared by the primal
// and dual auctions.
#include "auction/greedy_core.h"

#include <gtest/gtest.h>

#include <vector>

namespace melody::auction::internal {
namespace {

AuctionConfig open_config() { return AuctionConfig{}; }

TEST(BuildRankingQueue, SortsByQualityPerCostDescending) {
  const std::vector<WorkerProfile> workers{
      {0, {2.0, 1}, 4.0},  // ratio 2
      {1, {1.0, 1}, 4.0},  // ratio 4
      {2, {1.0, 1}, 3.0},  // ratio 3
  };
  const auto queue = build_ranking_queue(workers, open_config());
  ASSERT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.ids[0], 1);
  EXPECT_EQ(queue.ids[1], 2);
  EXPECT_EQ(queue.ids[2], 0);
}

TEST(BuildRankingQueue, TiesBreakById) {
  const std::vector<WorkerProfile> workers{
      {5, {1.0, 1}, 3.0}, {2, {1.0, 1}, 3.0}, {9, {1.0, 1}, 3.0}};
  const auto queue = build_ranking_queue(workers, open_config());
  EXPECT_EQ(queue.ids[0], 2);
  EXPECT_EQ(queue.ids[1], 5);
  EXPECT_EQ(queue.ids[2], 9);
}

TEST(BuildRankingQueue, FiltersInvalidAndUnqualified) {
  AuctionConfig config;
  config.theta_min = 2.0;
  const std::vector<WorkerProfile> workers{
      {0, {1.0, 1}, 3.0},   // ok
      {1, {0.0, 1}, 3.0},   // zero cost
      {2, {1.0, 0}, 3.0},   // zero frequency
      {3, {1.0, 1}, 0.0},   // zero quality
      {4, {1.0, 1}, 1.5},   // below theta_min
  };
  const auto queue = build_ranking_queue(workers, config);
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.ids[0], 0);
}

TEST(PreAllocate, ResultSortedByTotalPayment) {
  const std::vector<WorkerProfile> workers{
      {0, {1.0, 5}, 4.0}, {1, {1.0, 5}, 3.0}, {2, {2.0, 5}, 4.0},
      {3, {2.0, 5}, 2.0}};
  const auto queue = build_ranking_queue(workers, open_config());
  const std::vector<Task> tasks{{0, 7.0}, {1, 3.0}, {2, 5.0}};
  const auto pre =
      pre_allocate(queue, tasks, PaymentRule::kCriticalValue);
  ASSERT_GE(pre.size(), 2u);
  for (std::size_t i = 1; i < pre.size(); ++i) {
    EXPECT_LE(pre[i - 1].total_payment, pre[i].total_payment);
  }
}

TEST(PreAllocate, PaymentsParallelWinners) {
  const std::vector<WorkerProfile> workers{
      {0, {1.0, 5}, 4.0}, {1, {1.0, 5}, 3.0}, {2, {2.0, 5}, 4.0},
      {3, {2.0, 5}, 2.0}};
  const auto queue = build_ranking_queue(workers, open_config());
  const std::vector<Task> tasks{{0, 6.0}};
  const auto pre = pre_allocate(queue, tasks, PaymentRule::kCriticalValue);
  ASSERT_EQ(pre.size(), 1u);
  EXPECT_EQ(pre[0].winners.size(), pre[0].payments.size());
  double total = 0.0;
  for (double p : pre[0].payments) total += p;
  EXPECT_NEAR(pre[0].total_payment, total, 1e-12);
}

TEST(PreAllocate, EmptyQueueProducesNothing) {
  const RankingQueue queue;
  const std::vector<Task> tasks{{0, 5.0}};
  EXPECT_TRUE(pre_allocate(queue, tasks, PaymentRule::kCriticalValue).empty());
}

TEST(Commit, AppendsAssignmentsAndSelection) {
  const std::vector<WorkerProfile> workers{{0, {1.0, 5}, 4.0},
                                           {1, {1.0, 5}, 3.0},
                                           {2, {2.0, 5}, 4.0}};
  const auto queue = build_ranking_queue(workers, open_config());
  const std::vector<Task> tasks{{7, 4.0}};
  const auto pre = pre_allocate(queue, tasks, PaymentRule::kCriticalValue);
  ASSERT_EQ(pre.size(), 1u);
  AllocationResult result;
  commit(pre[0], queue, tasks, result);
  ASSERT_EQ(result.selected_tasks.size(), 1u);
  EXPECT_EQ(result.selected_tasks[0], 7);
  ASSERT_EQ(result.assignments.size(), pre[0].winners.size());
  EXPECT_EQ(result.assignments[0].task, 7);
}

TEST(PreAllocate, PaperRuleUsesSingleReference) {
  // All winners of a task share the same payment ratio under the paper
  // rule; under the critical rule ratios may differ per winner.
  const std::vector<WorkerProfile> workers{
      {0, {1.0, 5}, 4.0}, {1, {1.2, 5}, 3.0}, {2, {2.0, 5}, 4.0},
      {3, {2.0, 5}, 2.0}};
  const auto queue = build_ranking_queue(workers, open_config());
  const std::vector<Task> tasks{{0, 6.5}};
  const auto paper = pre_allocate(queue, tasks, PaymentRule::kPaperNextInQueue);
  ASSERT_EQ(paper.size(), 1u);
  ASSERT_EQ(paper[0].winners.size(), 2u);
  const double ratio0 =
      paper[0].payments[0] / queue.quality[paper[0].winners[0]];
  const double ratio1 =
      paper[0].payments[1] / queue.quality[paper[0].winners[1]];
  EXPECT_NEAR(ratio0, ratio1, 1e-12);
}

}  // namespace
}  // namespace melody::auction::internal
