// RANDOM baseline mechanism tests: feasibility properties, payment rule,
// and determinism under a fixed seed.
#include "auction/random_auction.h"

#include <gtest/gtest.h>

#include <vector>

#include "auction/melody_auction.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace melody::auction {
namespace {

sim::SraScenario small_scenario(int workers, int tasks, double budget) {
  sim::SraScenario s;
  s.num_workers = workers;
  s.num_tasks = tasks;
  s.budget = budget;
  return s;
}

TEST(RandomAuction, Name) { EXPECT_EQ(RandomAuction().name(), "RANDOM"); }

TEST(RandomAuction, FeasibilityOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto scenario = small_scenario(50, 30, 80.0);
    util::Rng rng(seed);
    const auto workers = scenario.sample_workers(rng);
    const auto tasks = scenario.sample_tasks(rng);
    const auto config = scenario.auction_config();
    RandomAuction auction(seed);
    const auto result = auction.run({workers, tasks, config});
    EXPECT_EQ(check_budget_feasibility(result, config), "") << "seed " << seed;
    EXPECT_EQ(check_frequency_feasibility(result, workers), "")
        << "seed " << seed;
    EXPECT_EQ(check_task_satisfaction(result, workers, tasks), "")
        << "seed " << seed;
  }
}

TEST(RandomAuction, IndividualRationality) {
  const auto scenario = small_scenario(60, 40, 120.0);
  util::Rng rng(77);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  RandomAuction auction(7);
  const auto result = auction.run({workers, tasks, scenario.auction_config()});
  for (const auto& a : result.assignments) {
    const auto& w = workers[static_cast<std::size_t>(a.worker)];
    // Winners have a higher quality/cost ratio than the excluded loser, so
    // the critical payment covers their cost.
    EXPECT_GE(a.payment, w.bid.cost - 1e-9);
  }
}

TEST(RandomAuction, SameSeedSameOutcome) {
  const auto scenario = small_scenario(40, 25, 60.0);
  util::Rng rng(5);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  RandomAuction a(123), b(123);
  const auto ra = a.run({workers, tasks, scenario.auction_config()});
  const auto rb = b.run({workers, tasks, scenario.auction_config()});
  EXPECT_EQ(ra.selected_tasks, rb.selected_tasks);
  EXPECT_DOUBLE_EQ(ra.total_payment(), rb.total_payment());
}

TEST(RandomAuction, TypicallyWorseThanMelody) {
  // The paper reports MELODY beating RANDOM by a large factor; at minimum
  // RANDOM must not beat MELODY on aggregate over several instances.
  double melody_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto scenario = small_scenario(100, 60, 100.0);
    util::Rng rng(seed);
    const auto workers = scenario.sample_workers(rng);
    const auto tasks = scenario.sample_tasks(rng);
    const auto config = scenario.auction_config();
    MelodyAuction melody;
    RandomAuction random(seed * 31);
    melody_total += static_cast<double>(
        melody.run({workers, tasks, config}).requester_utility());
    random_total += static_cast<double>(
        random.run({workers, tasks, config}).requester_utility());
  }
  EXPECT_GT(melody_total, random_total);
}

TEST(RandomAuction, EmptyInputs) {
  RandomAuction auction(1);
  AuctionConfig config;
  config.budget = 100.0;
  const std::vector<WorkerProfile> no_workers;
  const std::vector<Task> tasks{{0, 5.0}};
  EXPECT_TRUE(auction.run({no_workers, tasks, config}).selected_tasks.empty());
  const std::vector<WorkerProfile> workers{{0, {1.0, 2}, 3.0}};
  const std::vector<Task> no_tasks;
  EXPECT_TRUE(auction.run({workers, no_tasks, config}).selected_tasks.empty());
}

TEST(RandomAuction, SingleWorkerCannotWin) {
  // With one worker there is never an excluded loser to set the price.
  RandomAuction auction(1);
  AuctionConfig config;
  config.budget = 100.0;
  const std::vector<WorkerProfile> workers{{0, {1.0, 5}, 4.0}};
  const std::vector<Task> tasks{{0, 3.0}};
  const auto result = auction.run({workers, tasks, config});
  EXPECT_TRUE(result.selected_tasks.empty());
}

TEST(RandomAuction, CostMisreportLosesInAggregateWithFixedDraws) {
  // Appendix D claims RANDOM is truthful: a winner's payment is set by the
  // excluded lowest-ratio draw, independent of his own bid. Faithfully
  // implemented, the claim is only *statistical*: a misreport can shift
  // when the drawing loop stops (the winners-minus-loser coverage check
  // depends on the loser's identity), which perturbs the draw sequence of
  // later tasks — the same second-order channel as MELODY's portfolio
  // effect. Measured rate: ~1 profitable probe per several thousand in the
  // single-task case, a few percent multi-task. Assert the aggregate
  // claim over fixed draw sequences.
  const auto scenario = small_scenario(40, 25, 200.0);
  util::Rng rng(15);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();

  auto utility_of = [&](const AllocationResult& result, WorkerId id,
                        double true_cost) {
    return result.payment_to(id) - true_cost * result.tasks_assigned_to(id);
  };

  double total_gain = 0.0;
  int probes = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomAuction truthful_auction(seed);
    const auto truthful = truthful_auction.run({workers, tasks, config});
    for (std::size_t w = 0; w < workers.size(); w += 5) {
      const double true_cost = workers[w].bid.cost;
      const double baseline = utility_of(truthful, workers[w].id, true_cost);
      for (double factor : {0.6, 0.8, 1.1, 1.4, 1.8}) {
        auto misreported = workers;
        misreported[w].bid.cost = true_cost * factor;
        RandomAuction cheating_auction(seed);  // identical draw sequence
        const auto outcome = cheating_auction.run({misreported, tasks, config});
        total_gain +=
            utility_of(outcome, workers[w].id, true_cost) - baseline;
        ++probes;
      }
    }
  }
  ASSERT_GT(probes, 0);
  EXPECT_LE(total_gain / probes, 1e-9);
}

TEST(RandomAuction, SelectedTasksHaveSufficientQuality) {
  const auto scenario = small_scenario(80, 50, 200.0);
  util::Rng rng(9);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  RandomAuction auction(42);
  const auto result = auction.run({workers, tasks, scenario.auction_config()});
  EXPECT_EQ(check_task_satisfaction(result, workers, tasks), "");
  EXPECT_FALSE(result.selected_tasks.empty());
}

}  // namespace
}  // namespace melody::auction
