// Cluster coordinator + live shard migration (src/cluster/): routing-table
// math against plan_shards, the wire encoding round-trip, not_owner
// rejection semantics, the shard_export/shard_import envelope round-trip,
// the coordinator's control protocol over an in-process data plane, and
// the headline contract — an 8-shard deployment that live-migrates shards
// mid-stream answers every request byte-identically to one that never
// moved (under the replay volatile mask, plus the cluster-only routing
// epoch), at 1, 2 and 8 run-execution threads.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client_router.h"
#include "cluster/coordinator.h"
#include "cluster/routing.h"
#include "svc/config.h"
#include "svc/protocol.h"
#include "svc/replay.h"
#include "svc/router.h"
#include "svc/shard.h"
#include "util/thread_pool.h"

namespace melody::cluster {
namespace {

using svc::Op;
using svc::PushResult;
using svc::Request;
using svc::Response;
using svc::ServiceConfig;
using svc::ShardedService;
using svc::WireObject;
using svc::WireValue;

constexpr std::uint64_t kSeed = 2017;

ServiceConfig cluster_config(int shards, int workers = 40) {
  ServiceConfig config;
  config.scenario.num_workers = workers;
  config.scenario.num_tasks = 32;
  config.scenario.runs = 64;
  config.scenario.budget = 160.0;
  config.seed = kSeed;
  config.manual_clock = true;
  config.shards = shards;
  return config;
}

Request bid_for(int worker, std::int64_t id) {
  Request r;
  r.op = Op::kSubmitBid;
  r.id = id;
  r.worker = "w" + std::to_string(worker);
  return r;
}

std::uint64_t mask_of(std::initializer_list<int> shards) {
  std::uint64_t mask = 0;
  for (const int s : shards) mask |= (1ull << static_cast<unsigned>(s));
  return mask;
}

/// Single-threaded synchronous drive: submit one request and poll the
/// shards until the (possibly merged) response lands — the same loop
/// svc::replay_trace uses.
Response drive(ShardedService& service, const Request& request) {
  Response out;
  bool delivered = false;
  const PushResult pushed =
      service.submit(request, [&out, &delivered](const Response& response) {
        out = response;
        delivered = true;
      });
  if (pushed != PushResult::kOk) return service.rejection(pushed, request);
  while (!delivered) {
    if (!service.poll_once(std::chrono::nanoseconds{0})) break;
  }
  EXPECT_TRUE(delivered);
  return out;
}

// ------------------------------------------------------- routing table --

TEST(WorkerOffsets, MatchesPlanShardsSplit) {
  const struct {
    int workers;
    int shards;
  } cases[] = {{42, 4}, {40, 8}, {7, 3}, {5, 5}, {9, 1}};
  for (const auto& c : cases) {
    ServiceConfig config = cluster_config(c.shards, c.workers);
    config.scenario.num_tasks = std::max(c.shards, 4);
    const std::vector<svc::ShardPlan> plans = svc::plan_shards(config);
    const std::vector<int> offsets = worker_offsets_for(c.workers, c.shards);
    ASSERT_EQ(offsets.size(), static_cast<std::size_t>(c.shards) + 1);
    for (int s = 0; s < c.shards; ++s) {
      EXPECT_EQ(offsets[static_cast<std::size_t>(s)],
                plans[static_cast<std::size_t>(s)].worker_offset)
          << c.workers << " workers / " << c.shards << " shards, shard " << s;
    }
    EXPECT_EQ(offsets.back(), c.workers);
  }
}

TEST(WorkerOffsets, RejectsNonPositiveCounts) {
  EXPECT_THROW(worker_offsets_for(0, 4), std::invalid_argument);
  EXPECT_THROW(worker_offsets_for(4, 0), std::invalid_argument);
}

TEST(RoutingTable, EncodeDecodeRoundTrip) {
  RoutingTable table;
  table.epoch = 7;
  table.shards = 4;
  table.workers = 42;
  table.owner = {0, 0, 1, 0};
  table.worker_offsets = worker_offsets_for(42, 4);
  table.members.push_back(ClusterMember{"alpha", "127.0.0.1", 7301, 101});
  table.members.push_back(ClusterMember{"beta", "127.0.0.1", 7302, 102});

  const RoutingTable decoded = RoutingTable::decode(table.encode());
  EXPECT_EQ(decoded.epoch, table.epoch);
  EXPECT_EQ(decoded.shards, table.shards);
  EXPECT_EQ(decoded.workers, table.workers);
  EXPECT_EQ(decoded.owner, table.owner);
  EXPECT_EQ(decoded.worker_offsets, table.worker_offsets);
  ASSERT_EQ(decoded.members.size(), 2u);
  EXPECT_EQ(decoded.members[0].name, "alpha");
  EXPECT_EQ(decoded.members[1].port, 7302);
  EXPECT_EQ(decoded.members[1].pid, 102);
  EXPECT_TRUE(decoded.complete());

  // The wire form survives a format/parse cycle too (the control channel).
  const RoutingTable reparsed =
      RoutingTable::decode(svc::parse_wire(svc::format_wire(table.encode())));
  EXPECT_EQ(reparsed.owner, table.owner);
}

TEST(RoutingTable, DecodeRejectsInconsistentShape) {
  RoutingTable table;
  table.epoch = 1;
  table.shards = 4;
  table.workers = 8;
  table.owner = {0, 0, 0};  // three owners for four shards
  table.worker_offsets = worker_offsets_for(8, 4);
  table.members.push_back(ClusterMember{"a", "127.0.0.1", 7301, 1});
  EXPECT_THROW(RoutingTable::decode(table.encode()), std::invalid_argument);
}

TEST(RoutingTable, ShardForMatchesRouterDecision) {
  ServiceConfig config = cluster_config(4, 42);
  ShardedService service(config);
  RoutingTable table;
  table.epoch = 1;
  table.shards = 4;
  table.workers = 42;
  table.owner = {0, 0, 0, 0};
  table.worker_offsets = worker_offsets_for(42, 4);
  table.members.push_back(ClusterMember{"solo", "127.0.0.1", 7301, 1});
  for (int w = 0; w < 42; ++w) {
    const Request request = bid_for(w, w + 1);
    EXPECT_EQ(table.shard_for(request.worker),
              service.routing_decision(request))
        << "worker w" << w;
  }
  // Names outside the contiguous population still route consistently
  // (hash fallback on both sides).
  const Request newcomer = [] {
    Request r;
    r.op = Op::kSubmitBid;
    r.id = 99;
    r.worker = "cw7";
    r.cost = 1.0;
    r.frequency = 1;
    r.has_bid = true;
    return r;
  }();
  EXPECT_EQ(table.shard_for(newcomer.worker),
            service.routing_decision(newcomer));
}

// ---------------------------------------------------- not_owner + export --

TEST(ClusterMode, InactiveShardAnswersNotOwner) {
  ShardedService member(cluster_config(4, 42));
  member.configure_cluster(mask_of({0, 1}), /*epoch=*/3);
  // Worker w40 lives in shard 3 (offsets 0/11/22/32) — not owned here.
  const Response rejected = drive(member, bid_for(40, 1));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "not_owner");
  EXPECT_EQ(static_cast<int>(rejected.fields.number("shard")), 3);
  EXPECT_EQ(static_cast<std::int64_t>(rejected.fields.number("epoch")), 3);
  // An owned shard still serves.
  const Response accepted = drive(member, bid_for(0, 2));
  EXPECT_TRUE(accepted.ok);
}

TEST(ClusterMode, ExportImportRoundTripPreservesShardState) {
  const std::string dir = "cluster_export_tmp";
  std::filesystem::create_directories(dir);
  const std::string envelope = dir + "/shard1.mldymigr";

  ShardedService source(cluster_config(4, 42));
  source.configure_cluster(mask_of({0, 1, 2, 3}), 1);
  ShardedService target(cluster_config(4, 42));
  target.configure_cluster(0, 1);

  // Two full participation rounds: every shard fires two runs.
  std::int64_t id = 1;
  for (int round = 0; round < 2; ++round) {
    for (int w = 0; w < 42; ++w) drive(source, bid_for(w, id++));
  }
  Request probe;
  probe.op = Op::kQueryWorker;
  probe.id = id++;
  probe.worker = "w12";  // shard 1 (offsets 0/11/22/32)
  const Response before = drive(source, probe);
  ASSERT_TRUE(before.ok);

  Request export_req;
  export_req.op = Op::kShardExport;
  export_req.id = id++;
  export_req.shard = 1;
  export_req.path = envelope;
  export_req.detach = true;
  export_req.epoch = 2;
  const Response exported = drive(source, export_req);
  ASSERT_TRUE(exported.ok) << exported.error;
  EXPECT_TRUE(std::filesystem::exists(envelope));

  // The detach took: the source no longer owns shard 1.
  probe.id = id++;
  const Response gone = drive(source, probe);
  EXPECT_FALSE(gone.ok);
  EXPECT_EQ(gone.error, "not_owner");
  EXPECT_EQ(source.routing_epoch(), 2);

  Request import_req;
  import_req.op = Op::kShardImport;
  import_req.id = id++;
  import_req.shard = 1;
  import_req.path = envelope;
  import_req.epoch = 2;
  const Response imported = drive(target, import_req);
  ASSERT_TRUE(imported.ok) << imported.error;
  EXPECT_TRUE(target.shard_active(1));

  // The migrated shard answers exactly as the source did pre-detach.
  probe.id = before.id;
  const Response after = drive(target, probe);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(svc::format_response(after), svc::format_response(before));
}

// ------------------------------------------------------------ coordinator --

/// In-process cluster: every member is a full global-K service restricted
/// to its mask, addressed by name through the injected DataRpc.
struct InProcessCluster {
  explicit InProcessCluster(const ServiceConfig& config) : config_(config) {}

  ShardedService& add_member(const std::string& name,
                             std::initializer_list<int> shards) {
    auto service = std::make_unique<ShardedService>(config_);
    std::uint64_t mask = mask_of(shards);
    service->configure_cluster(mask, 1);
    ShardedService& ref = *service;
    members_[name] = std::move(service);
    return ref;
  }

  Coordinator::DataRpc rpc() {
    return [this](const ClusterMember& member, const Request& request,
                  Response* out) {
      const auto it = members_.find(member.name);
      if (it == members_.end()) return false;
      *out = drive(*it->second, request);
      return true;
    };
  }

  WireObject join(Coordinator& coordinator, const std::string& name,
                  std::initializer_list<int> shards, int port,
                  std::int64_t pid) {
    WireObject command;
    command.set("cmd", WireValue::of("join"));
    command.set("member", WireValue::of(name));
    command.set("host", WireValue::of("127.0.0.1"));
    command.set("port", WireValue::of(static_cast<std::int64_t>(port)));
    command.set("pid", WireValue::of(pid));
    std::vector<double> list;
    for (const int s : shards) list.push_back(s);
    command.set("shards", WireValue::of(std::move(list)));
    return coordinator.handle(command);
  }

  ServiceConfig config_;
  std::map<std::string, std::unique_ptr<ShardedService>> members_;
};

WireObject command_of(std::initializer_list<std::pair<const char*, WireValue>>
                          fields) {
  WireObject command;
  for (const auto& [key, value] : fields) command.set(key, value);
  return command;
}

TEST(Coordinator, JoinStatusMigratePublishDrain) {
  const std::string dir = "cluster_coord_tmp";
  std::filesystem::create_directories(dir);
  InProcessCluster cluster(cluster_config(4, 42));
  cluster.add_member("a", {0, 1});
  cluster.add_member("b", {2, 3});

  CoordinatorOptions options;
  options.shards = 4;
  options.workers = 42;
  options.expected_members = 2;
  options.publish_dir = dir;
  Coordinator coordinator(options, cluster.rpc());
  EXPECT_FALSE(coordinator.ready());

  EXPECT_TRUE(cluster.join(coordinator, "a", {0, 1}, 7301, 11).boolean_or("ok", false));
  EXPECT_FALSE(coordinator.ready());
  EXPECT_TRUE(cluster.join(coordinator, "b", {2, 3}, 7302, 12).boolean_or("ok", false));
  EXPECT_TRUE(coordinator.ready());

  const WireObject status = coordinator.handle(
      command_of({{"cmd", WireValue::of("status")}}));
  EXPECT_TRUE(status.boolean_or("ok", false));
  EXPECT_TRUE(status.boolean_or("ready", false));
  EXPECT_EQ(static_cast<int>(status.number("members")), 2);
  EXPECT_EQ(static_cast<std::int64_t>(status.number("epoch")), 1);

  // Feed some state so the envelopes carry real trajectories.
  std::int64_t id = 1;
  for (int w = 0; w < 42; ++w) {
    const int shard = coordinator.table().shard_for("w" + std::to_string(w));
    const int owner = coordinator.table().owner[static_cast<std::size_t>(shard)];
    Response ignored;
    ASSERT_TRUE(cluster.rpc()(coordinator.table().members[
                                  static_cast<std::size_t>(owner)],
                              bid_for(w, id++), &ignored));
  }

  // migrate: validation, then the real hop.
  EXPECT_FALSE(coordinator
                   .handle(command_of({{"cmd", WireValue::of("migrate")},
                                       {"shard", WireValue::of(std::int64_t{9})},
                                       {"to", WireValue::of("b")}}))
                   .boolean_or("ok", false));
  EXPECT_FALSE(coordinator
                   .handle(command_of({{"cmd", WireValue::of("migrate")},
                                       {"shard", WireValue::of(std::int64_t{1})},
                                       {"to", WireValue::of("nobody")}}))
                   .boolean_or("ok", false));
  EXPECT_FALSE(coordinator
                   .handle(command_of({{"cmd", WireValue::of("migrate")},
                                       {"shard", WireValue::of(std::int64_t{1})},
                                       {"to", WireValue::of("a")}}))
                   .boolean_or("ok", false))
      << "migrating a shard onto its current owner must be rejected";

  const WireObject migrated = coordinator.handle(
      command_of({{"cmd", WireValue::of("migrate")},
                  {"shard", WireValue::of(std::int64_t{1})},
                  {"to", WireValue::of("b")}}));
  ASSERT_TRUE(migrated.boolean_or("ok", false)) << migrated.text_or("error", "");
  EXPECT_EQ(static_cast<std::int64_t>(migrated.number("epoch")), 2);
  EXPECT_GE(migrated.number("pause_ms"), 0.0);
  EXPECT_EQ(coordinator.table().owner, (std::vector<int>{0, 1, 1, 1}));

  // publish: every shard snapshotted, no epoch change, no detach.
  const WireObject published = coordinator.handle(
      command_of({{"cmd", WireValue::of("publish")}}));
  ASSERT_TRUE(published.boolean_or("ok", false));
  EXPECT_EQ(static_cast<std::int64_t>(coordinator.table().epoch), 2);
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/shard" + std::to_string(s) + "_e2_publish.mldymigr"))
        << "shard " << s;
  }

  // drain: everything moves off b, back onto a.
  const WireObject drained = coordinator.handle(
      command_of({{"cmd", WireValue::of("drain")},
                  {"member", WireValue::of("b")}}));
  ASSERT_TRUE(drained.boolean_or("ok", false)) << drained.text_or("error", "");
  EXPECT_EQ(static_cast<int>(drained.number("moved")), 3);
  EXPECT_EQ(coordinator.table().owner, (std::vector<int>{0, 0, 0, 0}));
}

// --------------------------------------------- migration bit-identity --

/// Field-level equivalence under the replay volatile mask plus the
/// cluster-only routing epoch (standalone responses have no epoch to
/// compare against). Byte equality short-circuits.
void expect_equivalent(const std::string& expected, const std::string& actual,
                       std::size_t index) {
  if (expected == actual) return;
  std::vector<std::string> mask = svc::ReplayOptions::default_mask();
  mask.push_back("epoch");
  const WireObject recorded = svc::parse_wire(expected);
  const WireObject replayed = svc::parse_wire(actual);
  const auto find_field = [](const WireObject& object,
                             std::string_view key) -> const WireValue* {
    for (const auto& [k, v] : object.entries()) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  for (const auto& [key, value] : recorded.entries()) {
    if (svc::mask_matches(mask, key)) continue;
    const WireValue* other = find_field(replayed, key);
    ASSERT_TRUE(other != nullptr)
        << "request " << index << ": field " << key << " missing\n  oracle  "
        << expected << "\n  cluster " << actual;
    EXPECT_TRUE(*other == value)
        << "request " << index << ": field " << key << " diverged\n  oracle  "
        << expected << "\n  cluster " << actual;
  }
  for (const auto& [key, value] : replayed.entries()) {
    if (svc::mask_matches(mask, key)) continue;
    EXPECT_TRUE(recorded.has(key))
        << "request " << index << ": extra field " << key << "\n  oracle  "
        << expected << "\n  cluster " << actual;
  }
}

/// The deterministic request mix: R participation rounds over the global
/// population, each closed by a broadcast stats, a query_worker probe and
/// an explicit-shard query_run.
std::vector<Request> migration_mix(int workers, int shards, int rounds) {
  std::vector<Request> mix;
  std::int64_t id = 1;
  Request hello;
  hello.op = Op::kHello;
  hello.id = id++;
  hello.proto = svc::kProtoVersion;
  mix.push_back(hello);
  for (int round = 0; round < rounds; ++round) {
    for (int w = 0; w < workers; ++w) mix.push_back(bid_for(w, id++));
    Request stats;
    stats.op = Op::kStats;
    stats.id = id++;
    mix.push_back(stats);
    Request probe;
    probe.op = Op::kQueryWorker;
    probe.id = id++;
    probe.worker = "w" + std::to_string((round * 7) % workers);
    mix.push_back(probe);
    Request run;
    run.op = Op::kQueryRun;
    run.id = id++;
    run.shard = round % shards;
    run.run = 0;
    mix.push_back(run);
  }
  return mix;
}

class MigrationBitIdentity : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { util::set_shared_thread_count(GetParam()); }
  void TearDown() override { util::set_shared_thread_count(1); }
};

TEST_P(MigrationBitIdentity, EightShardsTwoLiveMigrations) {
  const int kShards = 8;
  const int kWorkers = 40;
  const std::vector<Request> mix = migration_mix(kWorkers, kShards, 6);
  const std::size_t midpoint = mix.size() / 2;

  // Oracle: the same deployment, never migrated, driven identically.
  std::vector<std::string> oracle;
  {
    ShardedService service(cluster_config(kShards, kWorkers));
    for (const Request& request : mix) {
      oracle.push_back(svc::format_response(drive(service, request)));
    }
  }

  const std::string dir = "cluster_bitident_tmp";
  std::filesystem::create_directories(dir);
  InProcessCluster cluster(cluster_config(kShards, kWorkers));
  cluster.add_member("a", {0, 1, 2, 3});
  cluster.add_member("b", {4, 5, 6, 7});
  CoordinatorOptions options;
  options.shards = kShards;
  options.workers = kWorkers;
  options.expected_members = 2;
  options.publish_dir = dir;
  Coordinator coordinator(options, cluster.rpc());
  ASSERT_TRUE(
      cluster.join(coordinator, "a", {0, 1, 2, 3}, 7301, 11).boolean_or("ok", false));
  ASSERT_TRUE(
      cluster.join(coordinator, "b", {4, 5, 6, 7}, 7302, 12).boolean_or("ok", false));
  ASSERT_TRUE(coordinator.ready());

  ClusterClient client(
      cluster.rpc(),
      [&coordinator](const WireObject& command, WireObject* reply) {
        *reply = coordinator.handle(command);
        return true;
      });
  ASSERT_TRUE(client.refresh_table()) << client.last_error();

  for (std::size_t i = 0; i < mix.size(); ++i) {
    if (i == midpoint) {
      // Two live migrations, one in each direction; the client's table is
      // now stale and must recover through not_owner retries.
      for (const auto& [shard, to] : {std::pair<int, const char*>{3, "b"},
                                      std::pair<int, const char*>{5, "a"}}) {
        const WireObject reply = coordinator.handle(
            command_of({{"cmd", WireValue::of("migrate")},
                        {"shard", WireValue::of(static_cast<std::int64_t>(
                                      shard))},
                        {"to", WireValue::of(to)}}));
        ASSERT_TRUE(reply.boolean_or("ok", false)) << reply.text_or("error", "");
      }
    }
    Response response;
    ASSERT_TRUE(client.call(mix[i], &response)) << client.last_error();
    expect_equivalent(oracle[i], svc::format_response(response), i);
  }
  EXPECT_EQ(coordinator.table().owner,
            (std::vector<int>{0, 0, 0, 1, 1, 0, 1, 1}));
  EXPECT_EQ(coordinator.table().epoch, 3);
}

INSTANTIATE_TEST_SUITE_P(Threads, MigrationBitIdentity,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace melody::cluster
