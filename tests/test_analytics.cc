// Worker-pool analytics: trajectory classification and population reports.
#include "sim/analytics.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace melody::sim {
namespace {

std::vector<double> line(double start, double slope, int n) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(start + slope * i);
  return out;
}

TEST(Classify, RisingDecliningStable) {
  EXPECT_EQ(classify_trajectory(line(3.0, 0.01, 200)), TrajectoryKind::kRising);
  EXPECT_EQ(classify_trajectory(line(8.0, -0.01, 200)),
            TrajectoryKind::kDeclining);
  EXPECT_EQ(classify_trajectory(line(5.0, 0.0, 200)), TrajectoryKind::kStable);
}

TEST(Classify, FluctuatingNeedsVarianceWithoutTrend) {
  std::vector<double> zigzag;
  for (int i = 0; i < 200; ++i) zigzag.push_back(i % 2 == 0 ? 3.0 : 8.0);
  EXPECT_EQ(classify_trajectory(zigzag), TrajectoryKind::kFluctuating);
}

TEST(Classify, ShortCurvesDefaultToStable) {
  EXPECT_EQ(classify_trajectory(line(1.0, 1.0, 5)), TrajectoryKind::kStable);
  EXPECT_EQ(classify_trajectory({}), TrajectoryKind::kStable);
}

TEST(Classify, CustomCriteria) {
  ClassificationCriteria strict;
  strict.trend_slope = 0.05;
  // Slope 0.01 is "flat" under the strict criteria; low variance -> stable.
  EXPECT_EQ(classify_trajectory(line(5.0, 0.002, 100), strict),
            TrajectoryKind::kStable);
}

TEST(Classify, AgreesWithGeneratorsOnSampledCurves) {
  util::Rng rng(3);
  int agreements = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    const auto kind = sample_kind({}, rng);
    const auto config = sample_config(kind, 1000, rng);
    const auto curve = generate_trajectory(config, 1000, rng);
    if (classify_trajectory(curve) == kind) ++agreements;
  }
  // Noise makes perfect agreement impossible; most curves must classify
  // back to the generating pattern.
  EXPECT_GT(agreements, trials * 2 / 3);
}

TEST(Report, CountsAndFractions) {
  std::vector<std::vector<double>> histories{
      line(3.0, 0.01, 200),   // rising
      line(8.0, -0.01, 200),  // declining
      line(5.0, 0.0, 200),    // stable
      line(5.0, 0.0, 200),    // stable
  };
  const PopulationReport report = analyze_population(histories);
  EXPECT_EQ(report.total, 4u);
  EXPECT_EQ(report.rising, 1u);
  EXPECT_EQ(report.declining, 1u);
  EXPECT_EQ(report.stable, 2u);
  EXPECT_DOUBLE_EQ(report.fraction(TrajectoryKind::kStable), 0.5);
  EXPECT_DOUBLE_EQ(report.fraction(TrajectoryKind::kFluctuating), 0.0);
  // mean change: (+1.99 - 1.99 + 0 + 0) / 4 = 0.
  EXPECT_NEAR(report.mean_change, 0.0, 1e-9);
  EXPECT_NEAR(report.mean_final_quality, (4.99 + 6.01 + 5.0 + 5.0) / 4.0,
              1e-9);
}

TEST(Report, EmptyPopulation) {
  const PopulationReport report = analyze_population({});
  EXPECT_EQ(report.total, 0u);
  EXPECT_EQ(report.fraction(TrajectoryKind::kRising), 0.0);
  EXPECT_EQ(report.mean_final_quality, 0.0);
}

TEST(Report, ToStringContainsAllParts) {
  std::vector<std::vector<double>> histories{line(3.0, 0.01, 200)};
  const std::string text = to_string(analyze_population(histories));
  EXPECT_NE(text.find("1 workers"), std::string::npos);
  EXPECT_NE(text.find("rising 100.0%"), std::string::npos);
  EXPECT_NE(text.find("mean final quality"), std::string::npos);
}

}  // namespace
}  // namespace melody::sim
