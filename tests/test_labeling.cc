// Majority-voting scoring substrate (footnote 5).
#include "sim/labeling.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace melody::sim {
namespace {

TEST(LabelAccuracy, CalibrationEndpoints) {
  const LabelingModel model;
  EXPECT_NEAR(label_accuracy(model, 1.0, 2), 0.5, 1e-12);   // chance
  EXPECT_NEAR(label_accuracy(model, 10.0, 2), 0.97, 1e-12); // max
  EXPECT_NEAR(label_accuracy(model, 1.0, 4), 0.25, 1e-12);
  // Midpoint is linear.
  EXPECT_NEAR(label_accuracy(model, 5.5, 2), 0.5 + 0.5 * 0.47, 1e-12);
}

TEST(LabelAccuracy, ClampsOutOfRangeQuality) {
  const LabelingModel model;
  EXPECT_NEAR(label_accuracy(model, -5.0, 2), 0.5, 1e-12);
  EXPECT_NEAR(label_accuracy(model, 99.0, 2), 0.97, 1e-12);
}

TEST(LabelAccuracy, RejectsDegenerateClasses) {
  EXPECT_THROW(label_accuracy({}, 5.0, 1), std::invalid_argument);
}

TEST(SampleLabel, HighQualityMostlyCorrect) {
  const LabelingModel model;
  const LabelingTask task{0, 4, 2};
  util::Rng rng(1);
  int correct = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sample_label(model, task, 7, 10.0, rng).value == task.truth) ++correct;
  }
  EXPECT_NEAR(correct / static_cast<double>(n), 0.97, 0.01);
}

TEST(SampleLabel, ChanceQualityUniform) {
  const LabelingModel model;
  const LabelingTask task{0, 4, 1};
  util::Rng rng(2);
  int counts[4] = {0, 0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[sample_label(model, task, 7, 1.0, rng).value];
  }
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(counts[c] / static_cast<double>(n), 0.25, 0.02);
  }
}

TEST(SampleLabel, LabelsAlwaysInClassRange) {
  const LabelingTask task{0, 3, 2};
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Label label = sample_label(LabelingModel{}, task, 1, 1.0, rng);
    EXPECT_GE(label.value, 0);
    EXPECT_LT(label.value, 3);
    EXPECT_EQ(label.worker, 1);
    EXPECT_EQ(label.task, 0);
  }
}

TEST(Aggregate, UnweightedMajority) {
  const std::vector<Label> labels{{1, 0, 2}, {2, 0, 2}, {3, 0, 1}};
  const std::vector<double> weights(3, 0.0);  // all zero -> unweighted
  EXPECT_EQ(aggregate_labels(labels, weights), 2);
}

TEST(Aggregate, WeightsOverrideHeadcount) {
  // Two low-weight votes for class 1 vs one high-weight vote for class 0.
  const std::vector<Label> labels{{1, 0, 1}, {2, 0, 1}, {3, 0, 0}};
  const std::vector<double> weights{1.0, 1.0, 5.0};
  EXPECT_EQ(aggregate_labels(labels, weights), 0);
}

TEST(Aggregate, TieBreaksTowardSmallerClass) {
  const std::vector<Label> labels{{1, 0, 1}, {2, 0, 0}};
  const std::vector<double> weights{1.0, 1.0};
  EXPECT_EQ(aggregate_labels(labels, weights), 0);
}

TEST(Aggregate, EmptyAndErrors) {
  EXPECT_EQ(aggregate_labels({}, {}), -1);
  const std::vector<Label> labels{{1, 0, 0}};
  EXPECT_THROW(aggregate_labels(labels, {}), std::invalid_argument);
  EXPECT_THROW(aggregate_labels(labels, {-1.0}), std::invalid_argument);
}

TEST(AgreementScore, MatchesScale) {
  const LabelingModel model;
  const Label agreeing{1, 0, 2};
  const Label dissenting{2, 0, 1};
  EXPECT_DOUBLE_EQ(agreement_score(model, agreeing, 2), 10.0);
  EXPECT_DOUBLE_EQ(agreement_score(model, dissenting, 2), 1.0);
}

TEST(RunLabelingTask, CrowdOfExpertsFindsTruth) {
  const LabelingModel model;
  LabelingTask task{0, 3, 1};
  util::Rng rng(5);
  const std::vector<auction::WorkerId> workers{1, 2, 3, 4, 5};
  const std::vector<double> qualities(5, 9.5);
  const std::vector<double> weights(5, 9.5);
  int correct = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const TaskOutcome outcome =
        run_labeling_task(model, task, workers, qualities, weights, rng);
    if (outcome.aggregate_correct) ++correct;
    ASSERT_EQ(outcome.labels.size(), 5u);
    ASSERT_EQ(outcome.scores.size(), 5u);
  }
  EXPECT_GT(correct, 195);
}

TEST(RunLabelingTask, WeightedCrowdBeatsUnweightedWithSpammers) {
  // Three spammers (chance) + two experts: estimate-weighted voting should
  // recover the truth more often than headcount voting.
  const LabelingModel model;
  util::Rng rng(6);
  const std::vector<auction::WorkerId> workers{1, 2, 3, 4, 5};
  const std::vector<double> qualities{1.0, 1.0, 1.0, 9.5, 9.5};
  const std::vector<double> informed{1.0, 1.0, 1.0, 9.5, 9.5};
  const std::vector<double> uniform{0.0, 0.0, 0.0, 0.0, 0.0};
  int weighted_correct = 0, unweighted_correct = 0;
  for (int trial = 0; trial < 500; ++trial) {
    LabelingTask task{0, 4, trial % 4};
    weighted_correct +=
        run_labeling_task(model, task, workers, qualities, informed, rng)
            .aggregate_correct;
    unweighted_correct +=
        run_labeling_task(model, task, workers, qualities, uniform, rng)
            .aggregate_correct;
  }
  EXPECT_GT(weighted_correct, unweighted_correct);
}

TEST(RunLabelingTask, SizeMismatchThrows) {
  const LabelingModel model;
  const LabelingTask task{0, 2, 0};
  util::Rng rng(7);
  EXPECT_THROW(run_labeling_task(model, task, {1, 2}, {5.0}, {1.0, 1.0}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace melody::sim
