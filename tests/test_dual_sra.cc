// Dual SRA (footnote 6): minimize spend for a target utility.
#include "auction/dual_sra.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "auction/melody_auction.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace melody::auction {
namespace {

AuctionConfig open_config() {
  AuctionConfig config;  // budget ignored by the dual form
  return config;
}

// Ranking queue (mu/c): w0 (4/1), w1 (3/1), w2 (4/2), w3 (2/2).
std::vector<WorkerProfile> four_workers() {
  return {{0, {1.0, 5}, 4.0},
          {1, {1.0, 5}, 3.0},
          {2, {2.0, 5}, 4.0},
          {3, {2.0, 5}, 2.0}};
}

TEST(DualSra, HandComputedMinimumBudget) {
  // Tasks Q = 6 and Q = 7: P(6) = 3.5 (w0 + w1 at ratio 0.5) and
  // P(7) = 3.5 as well; target one task -> the cheaper one only.
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}, {1, 7.0}};
  const auto result = run_dual_sra(workers, tasks, open_config(), 1);
  EXPECT_TRUE(result.target_met);
  EXPECT_EQ(result.allocation.requester_utility(), 1u);
  EXPECT_DOUBLE_EQ(result.required_budget, 3.5);
  const auto both = run_dual_sra(workers, tasks, open_config(), 2);
  EXPECT_TRUE(both.target_met);
  EXPECT_EQ(both.allocation.requester_utility(), 2u);
  EXPECT_DOUBLE_EQ(both.required_budget, 7.0);
}

TEST(DualSra, TargetZeroCommitsNothing) {
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}};
  const auto result = run_dual_sra(workers, tasks, open_config(), 0);
  EXPECT_TRUE(result.target_met);
  EXPECT_EQ(result.required_budget, 0.0);
  EXPECT_TRUE(result.allocation.assignments.empty());
}

TEST(DualSra, UnreachableTargetReported) {
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}};
  const auto result = run_dual_sra(workers, tasks, open_config(), 5);
  EXPECT_FALSE(result.target_met);
  EXPECT_EQ(result.allocation.requester_utility(), 1u);  // best effort
}

TEST(DualSra, AgreesWithPrimalAtItsOwnBudget) {
  // Running the primal auction with exactly the dual's required budget must
  // reach the same utility — the two forms are stage-2 duals of the same
  // pre-allocation.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::SraScenario scenario;
    scenario.num_workers = 80;
    scenario.num_tasks = 50;
    util::Rng rng(seed);
    const auto workers = scenario.sample_workers(rng);
    const auto tasks = scenario.sample_tasks(rng);
    auto config = scenario.auction_config();

    for (std::size_t target : {5u, 15u, 30u}) {
      const auto dual = run_dual_sra(workers, tasks, config, target);
      if (!dual.target_met) continue;
      EXPECT_EQ(dual.allocation.requester_utility(), target);
      // Tiny headroom guards against accumulation-order rounding between
      // the dual's running sum and the primal's running subtraction.
      config.budget = dual.required_budget + 1e-9;
      MelodyAuction primal;
      const auto primal_result = primal.run({workers, tasks, config});
      EXPECT_GE(primal_result.requester_utility(), target)
          << "seed " << seed << " target " << target;
    }
  }
}

TEST(DualSra, RequiredBudgetMonotoneInTarget) {
  sim::SraScenario scenario;
  scenario.num_workers = 60;
  scenario.num_tasks = 40;
  util::Rng rng(9);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  double previous = 0.0;
  for (std::size_t target = 1; target <= 20; ++target) {
    const auto result = run_dual_sra(workers, tasks, config, target);
    if (!result.target_met) break;
    EXPECT_GE(result.required_budget, previous);
    previous = result.required_budget;
  }
}

TEST(DualSra, RequiredBudgetEqualsAllocationPayment) {
  sim::SraScenario scenario;
  scenario.num_workers = 60;
  scenario.num_tasks = 40;
  util::Rng rng(10);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto result = run_dual_sra(workers, tasks, scenario.auction_config(), 10);
  EXPECT_NEAR(result.required_budget, result.allocation.total_payment(), 1e-9);
}

TEST(DualSra, FeasibilityValidatorsPass) {
  sim::SraScenario scenario;
  scenario.num_workers = 70;
  scenario.num_tasks = 30;
  util::Rng rng(11);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto result = run_dual_sra(workers, tasks, scenario.auction_config(), 12);
  EXPECT_EQ(check_frequency_feasibility(result.allocation, workers), "");
  EXPECT_EQ(check_task_satisfaction(result.allocation, workers, tasks), "");
}

TEST(DualSra, PaperRuleVariantRuns) {
  const auto workers = four_workers();
  const std::vector<Task> tasks{{0, 6.0}};
  const auto result = run_dual_sra(workers, tasks, open_config(), 1,
                                   PaymentRule::kPaperNextInQueue);
  EXPECT_TRUE(result.target_met);
  EXPECT_DOUBLE_EQ(result.required_budget, 3.5);
}

}  // namespace
}  // namespace melody::auction
