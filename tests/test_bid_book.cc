// Property tests of the persistent price-ladder bid book and the
// incremental ranking path it feeds: ladder link invariants under
// randomized churn (including on 1/2/8 concurrent threads), diff/apply
// convergence, serialization round-trips, and the bit-identity contract —
// a queue ranked from the ladder walk equals a full rebuild-and-sort,
// entry for entry, bit for bit.
#include "auction/bid_book.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "auction/greedy_core.h"
#include "auction/melody_auction.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace melody::auction {
namespace {

WorkerProfile profile(WorkerId id, double cost, int frequency,
                      double quality) {
  return {id, {cost, frequency}, quality};
}

/// The ladder contents in ladder order.
std::vector<WorkerId> ladder_ids(const BidBook& book) {
  std::vector<WorkerId> ids;
  for (BidBook::Slot s = book.head(); s != BidBook::kNone; s = book.next(s)) {
    ids.push_back(book.id_at(s));
  }
  return ids;
}

TEST(BidBook, LadderOrdersByRatioDescendingTiesById) {
  BidBook book;
  book.upsert(profile(0, 2.0, 1, 4.0));  // ratio 2
  book.upsert(profile(1, 1.0, 1, 4.0));  // ratio 4
  book.upsert(profile(2, 1.0, 1, 3.0));  // ratio 3
  book.upsert(profile(7, 1.0, 1, 4.0));  // ratio 4, tie -> after id 1
  EXPECT_EQ(book.check_links(), "");
  EXPECT_EQ(ladder_ids(book), (std::vector<WorkerId>{1, 7, 2, 0}));
  EXPECT_EQ(book.rank_of(1), 0u);
  EXPECT_EQ(book.rank_of(7), 1u);
  EXPECT_EQ(book.rank_of(0), 3u);
}

TEST(BidBook, NeighborLinksAreMutual) {
  BidBook book;
  for (int i = 0; i < 10; ++i) {
    book.upsert(profile(i, 1.0 + 0.1 * i, 1, 3.0));
  }
  EXPECT_EQ(book.prev(book.head()), BidBook::kNone);
  EXPECT_EQ(book.next(book.tail()), BidBook::kNone);
  for (BidBook::Slot s = book.head(); s != BidBook::kNone; s = book.next(s)) {
    if (book.next(s) != BidBook::kNone) {
      EXPECT_EQ(book.prev(book.next(s)), s);
    }
  }
}

TEST(BidBook, UpsertKeepsSlotStableAndRelinksOnKeyChange) {
  BidBook book;
  book.upsert(profile(0, 1.0, 1, 4.0));
  book.upsert(profile(1, 1.0, 1, 3.0));
  const BidBook::Slot slot = book.slot_of(1);
  // Key-preserving update: same ratio, new frequency.
  EXPECT_FALSE(book.upsert(profile(1, 1.0, 4, 3.0)));
  EXPECT_EQ(book.slot_of(1), slot);
  EXPECT_EQ(book.frequency_at(slot), 4);
  EXPECT_EQ(book.rank_of(1), 1u);
  // Key-changing update: worker 1 overtakes worker 0.
  EXPECT_FALSE(book.upsert(profile(1, 1.0, 4, 9.0)));
  EXPECT_EQ(book.slot_of(1), slot);
  EXPECT_EQ(book.rank_of(1), 0u);
  EXPECT_EQ(book.check_links(), "");
}

TEST(BidBook, EraseFreesSlotForReuse) {
  BidBook book;
  book.upsert(profile(0, 1.0, 1, 4.0));
  book.upsert(profile(1, 1.0, 1, 3.0));
  const BidBook::Slot freed = book.slot_of(0);
  EXPECT_TRUE(book.erase(0));
  EXPECT_FALSE(book.erase(0));
  EXPECT_FALSE(book.contains(0));
  EXPECT_EQ(book.size(), 1u);
  book.upsert(profile(5, 2.0, 1, 5.0));
  EXPECT_EQ(book.slot_of(5), freed);
  EXPECT_EQ(book.check_links(), "");
}

TEST(BidBook, UnqualifiableBidsSinkToTheTail) {
  BidBook book;
  book.upsert(profile(0, 1.0, 1, 4.0));
  book.upsert(profile(1, 0.0, 1, 4.0));   // zero cost -> -inf key
  book.upsert(profile(2, 1.0, 1, 0.0));   // zero quality -> -inf key
  EXPECT_EQ(book.check_links(), "");
  EXPECT_EQ(ladder_ids(book), (std::vector<WorkerId>{0, 1, 2}));
}

TEST(BidBook, RankOfUnknownWorkerThrows) {
  BidBook book;
  book.upsert(profile(0, 1.0, 1, 4.0));
  EXPECT_THROW(book.rank_of(99), std::out_of_range);
}

// Randomized churn against a std::map reference model: after every
// mutation the ladder's link invariants hold and its order matches the
// reference exactly.
void churn_against_reference(std::uint64_t seed, int ops) {
  util::Rng rng(seed);
  BidBook book;
  struct Key {
    double ratio;
    WorkerId id;
    bool operator<(const Key& o) const {
      if (ratio != o.ratio) return ratio > o.ratio;
      return id < o.id;
    }
  };
  std::map<Key, WorkerId> reference;
  std::map<WorkerId, Key> by_id;
  for (int k = 0; k < ops; ++k) {
    const auto id = static_cast<WorkerId>(rng.uniform_int(0, 40));
    if (rng.uniform01() < 0.7) {
      const double cost = rng.uniform(1.0, 2.0);
      const double quality = rng.uniform(2.0, 4.0);
      book.upsert(profile(id, cost, 1, quality));
      const Key key{quality / cost, id};
      if (const auto it = by_id.find(id); it != by_id.end()) {
        reference.erase(it->second);
      }
      reference[key] = id;
      by_id[id] = key;
    } else {
      const bool erased = book.erase(id);
      const auto it = by_id.find(id);
      EXPECT_EQ(erased, it != by_id.end());
      if (it != by_id.end()) {
        reference.erase(it->second);
        by_id.erase(it);
      }
    }
    ASSERT_EQ(book.check_links(), "") << "op " << k;
    ASSERT_EQ(book.size(), reference.size()) << "op " << k;
    std::vector<WorkerId> expected;
    for (const auto& [key, worker] : reference) expected.push_back(worker);
    ASSERT_EQ(ladder_ids(book), expected) << "op " << k;
  }
}

TEST(BidBookProperty, RandomChurnKeepsLinkInvariants) {
  churn_against_reference(0xB1DB001, 400);
  churn_against_reference(0xB1DB002, 400);
}

TEST(BidBookProperty, ConcurrentIndependentBooksAgree) {
  // The book is single-writer by design; the thread matrix checks that
  // independent instances churned identically on 1, 2, and 8 concurrent
  // threads all land on the same digest (no hidden global state).
  const auto digest_after_churn = [] {
    BidBook book;
    util::Rng rng(0xC0FFEE);
    for (int k = 0; k < 600; ++k) {
      const auto id = static_cast<WorkerId>(rng.uniform_int(0, 60));
      if (rng.uniform01() < 0.75) {
        book.upsert(
            profile(id, rng.uniform(1.0, 2.0), 1, rng.uniform(2.0, 4.0)));
      } else {
        book.erase(id);
      }
    }
    EXPECT_EQ(book.check_links(), "");
    return book.content_digest();
  };
  const std::uint64_t serial = digest_after_churn();
  for (const int threads : {1, 2, 8}) {
    std::vector<std::uint64_t> digests(static_cast<std::size_t>(threads));
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&digests, t, &digest_after_churn] {
        digests[static_cast<std::size_t>(t)] = digest_after_churn();
      });
    }
    for (auto& thread : pool) thread.join();
    for (const std::uint64_t digest : digests) EXPECT_EQ(digest, serial);
  }
}

TEST(BidBook, DiffApplyConvergesAndIsIdempotent) {
  util::Rng rng(0xD1FF);
  BidBook book;
  for (int i = 0; i < 30; ++i) {
    book.upsert(profile(i, rng.uniform(1.0, 2.0), 1, rng.uniform(2.0, 4.0)));
  }
  // Target: some workers changed, some vanished, some new.
  std::vector<WorkerProfile> target;
  for (int i = 10; i < 45; ++i) {
    target.push_back(
        profile(i, rng.uniform(1.0, 2.0), 2, rng.uniform(2.0, 4.0)));
  }
  std::vector<BidDelta> deltas;
  book.diff(target, deltas);
  EXPECT_FALSE(deltas.empty());
  book.apply(deltas);
  EXPECT_EQ(book.check_links(), "");
  std::vector<WorkerProfile> got = book.snapshot_by_id();
  ASSERT_EQ(got.size(), target.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, target[i].id);
    EXPECT_EQ(got[i].bid, target[i].bid);
    EXPECT_EQ(got[i].estimated_quality, target[i].estimated_quality);
  }
  // Replaying the batch must be a no-op, and a fresh diff must be empty.
  const std::uint64_t digest = book.content_digest();
  book.apply(deltas);
  EXPECT_EQ(book.content_digest(), digest);
  book.diff(target, deltas);
  EXPECT_TRUE(deltas.empty());
}

TEST(BidBook, SaveLoadRoundTripsContent) {
  util::Rng rng(0x5A7E);
  BidBook book;
  for (int i = 0; i < 50; ++i) {
    book.upsert(profile(i, rng.uniform(1.0, 2.0),
                        static_cast<int>(rng.uniform_int(1, 5)),
                        rng.uniform(2.0, 4.0)));
  }
  book.erase(7);
  book.erase(21);
  std::ostringstream out;
  book.save(out);
  BidBook restored;
  std::istringstream in(out.str());
  restored.load(in);
  EXPECT_EQ(restored.check_links(), "");
  EXPECT_EQ(restored.size(), book.size());
  EXPECT_EQ(restored.content_digest(), book.content_digest());
  EXPECT_EQ(ladder_ids(restored), ladder_ids(book));
}

TEST(BidBook, LoadRejectsMalformedBlobs) {
  BidBook book;
  book.upsert(profile(0, 1.0, 1, 4.0));
  book.upsert(profile(1, 1.5, 2, 3.0));
  std::ostringstream out;
  book.save(out);
  const std::string blob = out.str();
  {
    std::istringstream bad_magic("XXXXXXXXXXXXXXXX");
    BidBook b;
    EXPECT_THROW(b.load(bad_magic), std::runtime_error);
  }
  {
    std::istringstream truncated(blob.substr(0, blob.size() - 4));
    BidBook b;
    EXPECT_THROW(b.load(truncated), std::runtime_error);
  }
}

// --- Bit-identity of the incremental ranking path -------------------------

sim::SraScenario market(int workers) {
  sim::SraScenario scenario;
  scenario.num_workers = workers;
  scenario.num_tasks = 40;
  scenario.budget = 600.0;
  return scenario;
}

void expect_queue_bit_identity(std::span<const WorkerProfile> workers,
                               const AuctionConfig& config) {
  BidBook book;
  book.bulk_load(workers);
  const auto rebuilt = internal::build_ranking_queue(workers, config);
  const auto from_book = internal::build_ranking_queue(book, config);
  ASSERT_EQ(from_book.size(), rebuilt.size());
  EXPECT_EQ(from_book.ids, rebuilt.ids);
  EXPECT_EQ(from_book.frequency, rebuilt.frequency);
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    // Exact equality on the doubles: same operands, same divisions.
    EXPECT_EQ(from_book.quality[i], rebuilt.quality[i]) << i;
    EXPECT_EQ(from_book.density[i], rebuilt.density[i]) << i;
  }
}

TEST(IncrementalRanking, QueueFromLadderMatchesRebuildOnRandomMarkets) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    util::Rng rng(seed);
    const sim::SraScenario scenario = market(300);
    const auto workers = scenario.sample_workers(rng);
    expect_queue_bit_identity(workers, scenario.auction_config());
  }
}

TEST(IncrementalRanking, QueueMatchesRebuildOnRadixSortSizedMarket) {
  // n >= 2048 with strictly ascending ids takes greedy_core's radix rank
  // sort; the ladder walk must still match it bit for bit.
  util::Rng rng(0x4AD1);
  const sim::SraScenario scenario = market(5000);
  const auto workers = scenario.sample_workers(rng);
  ASSERT_GE(workers.size(), 2048u);
  expect_queue_bit_identity(workers, scenario.auction_config());
}

TEST(IncrementalRanking, QueueMatchesRebuildAfterChurn) {
  util::Rng rng(0xC4A2);
  const sim::SraScenario scenario = market(400);
  std::vector<WorkerProfile> workers = scenario.sample_workers(rng);
  const AuctionConfig config = scenario.auction_config();
  BidBook book;
  book.bulk_load(workers);
  for (int round = 0; round < 20; ++round) {
    // Dirty a handful of bids, mirror into the flat vector, compare.
    std::vector<BidDelta> deltas;
    for (int d = 0; d < 10; ++d) {
      const auto slot =
          static_cast<std::size_t>(rng.uniform_int(0, 399));
      WorkerProfile p = workers[slot];
      p.bid.cost = rng.uniform(1.0, 2.0);
      p.estimated_quality = rng.uniform(2.0, 4.0);
      workers[slot] = p;
      deltas.push_back({BidDelta::Kind::kUpsert, p});
    }
    book.apply(deltas);
    ASSERT_EQ(book.check_links(), "");
    const auto rebuilt = internal::build_ranking_queue(workers, config);
    const auto from_book = internal::build_ranking_queue(book, config);
    ASSERT_EQ(from_book.ids, rebuilt.ids) << "round " << round;
    ASSERT_EQ(from_book.quality, rebuilt.quality) << "round " << round;
    ASSERT_EQ(from_book.density, rebuilt.density) << "round " << round;
    ASSERT_EQ(from_book.frequency, rebuilt.frequency) << "round " << round;
  }
}

void expect_allocation_equal(const AllocationResult& a,
                             const AllocationResult& b) {
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].worker, b.assignments[i].worker);
    EXPECT_EQ(a.assignments[i].task, b.assignments[i].task);
    EXPECT_EQ(a.assignments[i].payment, b.assignments[i].payment);
  }
  EXPECT_EQ(a.selected_tasks, b.selected_tasks);
}

TEST(IncrementalRanking, FullAuctionBitIdenticalUnderBothPaymentRules) {
  for (const auto rule :
       {PaymentRule::kCriticalValue, PaymentRule::kPaperNextInQueue}) {
    util::Rng rng(0xA11C);
    const sim::SraScenario scenario = market(500);
    const auto workers = scenario.sample_workers(rng);
    const auto tasks = scenario.sample_tasks(rng);
    const AuctionConfig config = scenario.auction_config();
    BidBook book;
    book.bulk_load(workers);

    MelodyAuction mechanism(rule);
    const AllocationResult rebuilt =
        mechanism.run({workers, tasks, config});
    AuctionContext context{{}, tasks, config};
    context.book = &book;
    const AllocationResult incremental = mechanism.run(context);
    expect_allocation_equal(incremental, rebuilt);
  }
}

TEST(IncrementalRanking, ResolveWorkersAdapterMatchesBookContent) {
  util::Rng rng(0xADA7);
  const sim::SraScenario scenario = market(100);
  const auto workers = scenario.sample_workers(rng);
  BidBook book;
  book.bulk_load(workers);
  const std::vector<Task> tasks;
  const AuctionConfig config = scenario.auction_config();

  AuctionContext context{{}, tasks, config};
  context.book = &book;
  std::vector<WorkerProfile> storage;
  const std::span<const WorkerProfile> resolved =
      resolve_workers(context, storage);
  ASSERT_EQ(resolved.size(), workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    EXPECT_EQ(resolved[i].id, workers[i].id);
    EXPECT_EQ(resolved[i].bid, workers[i].bid);
    EXPECT_EQ(resolved[i].estimated_quality, workers[i].estimated_quality);
  }
  // With a worker span present, the span wins and no copy is made.
  AuctionContext both{workers, tasks, config};
  both.book = &book;
  std::vector<WorkerProfile> unused;
  EXPECT_EQ(resolve_workers(both, unused).data(), workers.data());
  EXPECT_TRUE(unused.empty());
}

TEST(Mechanism, SupportsIncrementalProbe) {
  MelodyAuction melody;
  EXPECT_TRUE(melody.supports_incremental());
}

}  // namespace
}  // namespace melody::auction
