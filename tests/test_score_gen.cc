#include "sim/score_gen.h"

#include <gtest/gtest.h>

namespace melody::sim {
namespace {

TEST(ScoreGen, ScoresWithinRange) {
  util::Rng rng(1);
  const ScoreModel model{3.0, 1.0, 10.0};
  for (int i = 0; i < 10000; ++i) {
    const double s = generate_score(model, 5.5, rng);
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 10.0);
  }
}

TEST(ScoreGen, MeanTracksLatentQualityAwayFromClamps) {
  util::Rng rng(2);
  const ScoreModel model{0.5, 1.0, 10.0};  // small noise, no clamping bias
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += generate_score(model, 6.0, rng);
  EXPECT_NEAR(sum / n, 6.0, 0.02);
}

TEST(ScoreGen, ClampingBiasesExtremes) {
  util::Rng rng(3);
  const ScoreModel model{3.0, 1.0, 10.0};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += generate_score(model, 1.0, rng);
  // Latent quality at the floor: clamping pulls the mean above it.
  EXPECT_GT(sum / n, 1.0);
}

TEST(ScoreGen, SetHasRequestedCount) {
  util::Rng rng(4);
  const ScoreModel model;
  const lds::ScoreSet set = generate_scores(model, 5.0, 7, rng);
  EXPECT_EQ(set.count, 7);
  EXPECT_GT(set.sum, 0.0);
}

TEST(ScoreGen, ZeroTasksYieldEmptySet) {
  util::Rng rng(5);
  const lds::ScoreSet set = generate_scores(ScoreModel{}, 5.0, 0, rng);
  EXPECT_TRUE(set.empty());
}

TEST(ScoreGen, SufficientStatisticsConsistent) {
  util::Rng rng(6);
  const lds::ScoreSet set = generate_scores(ScoreModel{}, 5.0, 100, rng);
  // Mean within range implies sum consistent with count.
  EXPECT_GE(set.mean(), 1.0);
  EXPECT_LE(set.mean(), 10.0);
  EXPECT_GE(set.sum_squares, set.sum * set.sum / set.count);  // Cauchy-Schwarz
}

}  // namespace
}  // namespace melody::sim
