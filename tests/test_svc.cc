// Service runtime (melody::svc): queue backpressure, batch triggers,
// session registry persistence, wire/protocol codec round-trips, and the
// headline contract — a stdin-mode service session driven by a request
// trace produces bit-identical run outcomes to the equivalent melody_sim
// batch run, including across a mid-trace checkpoint/kill/resume.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "auction/melody_auction.h"
#include "estimators/factory.h"
#include "sim/platform.h"
#include "svc/batcher.h"
#include "svc/loop.h"
#include "svc/protocol.h"
#include "svc/queue.h"
#include "svc/service.h"
#include "svc/session.h"
#include "svc/wire.h"
#include "util/rng.h"

namespace melody::svc {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- queue --

TEST(BoundedQueue, BackpressureAndDrain) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2), PushResult::kOk);
  EXPECT_EQ(queue.try_push(3), PushResult::kFull);  // full, never blocks
  EXPECT_EQ(queue.size(), 2u);

  queue.close();
  EXPECT_EQ(queue.try_push(4), PushResult::kClosed);
  // Queued items stay poppable after close (drain semantics).
  EXPECT_EQ(queue.try_pop().value(), 1);
  EXPECT_EQ(queue.pop_for(1ms).value(), 2);
  EXPECT_FALSE(queue.pop_for(1ms).has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueue, PopTimesOutOnEmpty) {
  BoundedQueue<int> queue(1);
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.pop_for(5ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - before, 4ms);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(queue.try_push(7), PushResult::kOk);
  EXPECT_EQ(queue.try_push(8), PushResult::kFull);
}

// -------------------------------------------------------------- batcher --

TEST(RunBatcher, CountTrigger) {
  RunBatcher batcher({.min_bids = 3});
  batcher.note_bid(0.0);
  batcher.note_bid(0.1);
  EXPECT_FALSE(batcher.should_fire(0.1));
  batcher.note_bid(0.2);
  EXPECT_TRUE(batcher.should_fire(0.2));
  batcher.consume(0.2);
  EXPECT_EQ(batcher.pending_bids(), 0);
  EXPECT_FALSE(batcher.should_fire(10.0));  // nothing pending
}

TEST(RunBatcher, DeadlineTrigger) {
  RunBatcher batcher({.max_delay = 5.0});
  EXPECT_LT(batcher.seconds_until_deadline(0.0), 0.0);  // nothing pending
  batcher.note_bid(1.0);
  EXPECT_FALSE(batcher.should_fire(5.9));
  EXPECT_DOUBLE_EQ(batcher.seconds_until_deadline(2.0), 4.0);
  EXPECT_TRUE(batcher.should_fire(6.0));
  // The deadline tracks the OLDEST pending bid: later bids don't extend it.
  batcher.consume(6.0);
  batcher.note_bid(10.0);
  batcher.note_bid(14.0);
  EXPECT_FALSE(batcher.should_fire(14.9));
  EXPECT_TRUE(batcher.should_fire(15.0));
}

TEST(RunBatcher, BudgetTriggerCarriesOvershoot) {
  RunBatcher batcher({.budget_target = 100.0});
  batcher.note_budget(60.0);
  EXPECT_FALSE(batcher.should_fire(0.0));
  batcher.note_budget(90.0);  // 150 accrued
  EXPECT_TRUE(batcher.should_fire(0.0));
  batcher.consume(0.0);
  // Overshoot carries: 50 remains, one more 60 re-arms the trigger.
  EXPECT_DOUBLE_EQ(batcher.accrued_budget(), 50.0);
  batcher.note_budget(60.0);
  EXPECT_TRUE(batcher.should_fire(0.0));
  batcher.consume(0.0);
  EXPECT_DOUBLE_EQ(batcher.accrued_budget(), 10.0);
  EXPECT_FALSE(batcher.should_fire(0.0));
}

TEST(RunBatcher, InactivePolicyNeverFires) {
  RunBatcher batcher({});
  batcher.note_bid(0.0);
  batcher.note_budget(1e9);
  EXPECT_FALSE(batcher.should_fire(1e9));
}

TEST(RunBatcher, PerTaskArrivalTriggerQueuesOneRunPerArrival) {
  RunBatcher batcher({.per_task_arrival = true});
  EXPECT_FALSE(batcher.should_fire(0.0));
  batcher.note_task_arrival();
  batcher.note_task_arrival();
  EXPECT_EQ(batcher.pending_arrivals(), 2);
  // Two arrivals between polls schedule two back-to-back runs.
  EXPECT_TRUE(batcher.should_fire(0.0));
  batcher.consume(0.0);
  EXPECT_EQ(batcher.pending_arrivals(), 1);
  EXPECT_TRUE(batcher.should_fire(0.0));
  batcher.consume(0.0);
  EXPECT_FALSE(batcher.should_fire(0.0));
}

TEST(RunBatcher, ArrivalsAreInertWithoutTheRollingPolicy) {
  RunBatcher batcher({.min_bids = 3});
  batcher.note_task_arrival();
  EXPECT_EQ(batcher.pending_arrivals(), 0);
  EXPECT_FALSE(batcher.should_fire(0.0));
}

TEST(RunBatcher, RestoreCarriesPendingArrivals) {
  RunBatcher a({.per_task_arrival = true});
  a.note_task_arrival();
  a.note_task_arrival();
  RunBatcher b(a.policy());
  b.restore(a.pending_bids(), a.oldest_bid_time(), a.accrued_budget(),
            a.pending_arrivals());
  EXPECT_EQ(b.pending_arrivals(), 2);
  EXPECT_TRUE(b.should_fire(0.0));
}

TEST(RunBatcher, RestoreReproducesAccumulationState) {
  RunBatcher a({.min_bids = 5, .max_delay = 3.0, .budget_target = 40.0});
  a.note_bid(1.5);
  a.note_bid(2.0);
  a.note_budget(17.0);
  RunBatcher b(a.policy());
  b.restore(a.pending_bids(), a.oldest_bid_time(), a.accrued_budget());
  for (const double t : {1.5, 4.4, 4.5, 9.0}) {
    EXPECT_EQ(a.should_fire(t), b.should_fire(t)) << "t=" << t;
    EXPECT_DOUBLE_EQ(a.seconds_until_deadline(t), b.seconds_until_deadline(t));
  }
}

// ------------------------------------------------------------- registry --

TEST(SessionRegistry, InternAssignsDenseIdsInOrder) {
  SessionRegistry registry;
  registry.bind("w0", 0);
  registry.bind("w1", 1);
  bool created = false;
  EXPECT_EQ(registry.intern("alice", &created), 2);
  EXPECT_TRUE(created);
  EXPECT_EQ(registry.intern("alice", &created), 2);
  EXPECT_FALSE(created);
  EXPECT_EQ(registry.find("w1").value(), 1);
  EXPECT_FALSE(registry.find("nobody").has_value());
  ASSERT_NE(registry.name_of(2), nullptr);
  EXPECT_EQ(*registry.name_of(2), "alice");
  EXPECT_EQ(registry.name_of(99), nullptr);
}

TEST(SessionRegistry, DuplicateBindThrows) {
  SessionRegistry registry;
  registry.bind("w0", 0);
  EXPECT_THROW(registry.bind("w0", 1), std::invalid_argument);
  EXPECT_THROW(registry.bind("other", 0), std::invalid_argument);
}

TEST(SessionRegistry, SaveLoadRoundTripPreservesOrderAndBids) {
  SessionRegistry registry;
  registry.bind("w0", 0);
  registry.intern("alice");
  registry.intern("bob");
  registry.count_bid(0);
  registry.count_bid(1);
  registry.count_bid(1);

  std::stringstream buffer;
  registry.save(buffer);
  SessionRegistry loaded;
  loaded.intern("stale");  // load must replace wholesale
  loaded.load(buffer);

  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.find("alice").value(), 1);
  EXPECT_EQ(loaded.bids_submitted(0), 1u);
  EXPECT_EQ(loaded.bids_submitted(1), 2u);
  EXPECT_EQ(loaded.bids_submitted(2), 0u);
  // Interning after load continues from the persisted dense-id frontier.
  EXPECT_EQ(loaded.intern("carol"), 3);
  EXPECT_FALSE(loaded.find("stale").has_value());
}

TEST(SessionRegistry, LoadRejectsGarbage) {
  SessionRegistry registry;
  std::istringstream garbage("definitely not a registry blob");
  EXPECT_THROW(registry.load(garbage), std::runtime_error);
}

// ---------------------------------------------------------------- codec --

std::vector<Request> every_op_request() {
  std::vector<Request> requests;
  Request r;
  r.op = Op::kHello;
  r.id = 1;
  requests.push_back(r);
  r = {};
  r.op = Op::kSubmitBid;
  r.id = 2;
  r.worker = "w17";
  requests.push_back(r);  // known worker: no bid payload
  r = {};
  r.op = Op::kSubmitBid;
  r.id = 3;
  r.worker = "alice@example";
  r.cost = 1.375;
  r.frequency = 3;
  r.has_bid = true;
  requests.push_back(r);
  r = {};
  r.op = Op::kUpdateBid;
  r.id = 13;
  r.worker = "w17";
  r.cost = 1.25;
  r.frequency = 4;
  r.has_bid = true;  // parse always marks the payload: it IS the update
  requests.push_back(r);
  r = {};
  r.op = Op::kWithdrawBid;
  r.id = 14;
  r.worker = "w17";
  requests.push_back(r);
  r = {};
  r.op = Op::kSubmitTasks;
  r.id = 4;
  r.task_count = 500;
  r.budget = 812.5;
  requests.push_back(r);
  r = {};
  r.op = Op::kPostScores;
  r.id = 5;
  r.worker = "w17";
  r.scores = {6.5, 7.125, -1.0};
  requests.push_back(r);
  r = {};
  r.op = Op::kQueryWorker;
  r.id = 6;
  r.worker = "w2";
  requests.push_back(r);
  r = {};
  r.op = Op::kQueryRun;
  r.id = 7;
  r.run = 12;
  requests.push_back(r);
  r = {};
  r.op = Op::kRunNow;
  r.id = 8;
  requests.push_back(r);
  r = {};
  r.op = Op::kTick;
  r.id = 9;
  r.seconds = 0.25;
  requests.push_back(r);
  r = {};
  r.op = Op::kStats;
  r.id = 10;
  requests.push_back(r);
  r = {};
  r.op = Op::kCheckpoint;
  r.id = 11;
  r.path = "svc.ckpt";
  requests.push_back(r);
  r = {};
  r.op = Op::kShutdown;
  r.id = 12;
  requests.push_back(r);
  return requests;
}

TEST(ProtocolCodec, RequestRoundTripsForEveryOp) {
  for (const Request& request : every_op_request()) {
    const std::string line = format_request(request);
    EXPECT_EQ(parse_request(line), request) << line;
  }
}

TEST(ProtocolCodec, ResponseRoundTrips) {
  Response ok = Response::success(41);
  ok.fields.set("run", WireValue::of(std::int64_t{7}));
  ok.fields.set("estimation_error", WireValue::of(1.8656653187601029));
  ok.fields.set("worker", WireValue::of("w3"));
  const Response ok2 = parse_response(format_response(ok));
  EXPECT_TRUE(ok2.ok);
  EXPECT_EQ(ok2.id, 41);
  EXPECT_EQ(ok2.fields.number("run"), 7.0);
  // Full double precision survives the wire (the bit-identity tests below
  // depend on comparing in-process state, but clients see exact values too).
  EXPECT_EQ(ok2.fields.number("estimation_error"), 1.8656653187601029);

  const Response overload = parse_response(
      format_response(Response::overloaded(42, 1280)));
  EXPECT_FALSE(overload.ok);
  EXPECT_EQ(overload.error, "overloaded");
  EXPECT_EQ(overload.retry_after_ms, 1280);
}

TEST(ProtocolCodec, RejectsMalformedLines) {
  EXPECT_THROW(parse_request("not json"), WireError);
  EXPECT_THROW(parse_request("{}"), WireError);  // missing op
  EXPECT_THROW(parse_request(R"({"op":"warp_core_breach","id":1})"),
               WireError);
  EXPECT_THROW(parse_request(R"({"op":"submit_bid"})"), WireError);  // worker
  EXPECT_THROW(parse_request(R"({"op":"tick","seconds":"fast"})"), WireError);
  EXPECT_THROW(parse_request(R"({"op":"hello"} trailing)"), WireError);
  // update_bid is a full replacement, so both halves of the bid are
  // mandatory (unlike submit_bid, where the payload is optional).
  EXPECT_THROW(parse_request(R"({"op":"update_bid","worker":"w1","cost":1.5})"),
               WireError);
  EXPECT_THROW(
      parse_request(R"({"op":"update_bid","worker":"w1","frequency":2})"),
      WireError);
}

TEST(ProtocolCodec, MinProtoGatesTheContinuousAuctionOps) {
  EXPECT_GE(kProtoVersion, 3);
  EXPECT_EQ(min_proto(Op::kUpdateBid), 3);
  EXPECT_EQ(min_proto(Op::kWithdrawBid), 3);
  EXPECT_EQ(min_proto(Op::kSubmitBid), 1);
  EXPECT_EQ(min_proto(Op::kHello), 1);
}

// ----------------------------------------------------- loop backpressure --

ServiceConfig tiny_config() {
  ServiceConfig config;
  config.scenario.num_workers = 8;
  config.scenario.num_tasks = 6;
  config.scenario.runs = 4;
  config.scenario.budget = 30.0;
  config.seed = 7;
  config.manual_clock = true;
  return config;
}

Request bid_for(int worker, std::int64_t id) {
  Request r;
  r.op = Op::kSubmitBid;
  r.id = id;
  r.worker = "w" + std::to_string(worker);
  return r;
}

TEST(ServiceLoop, FullQueueRejectsWithRetryAfter) {
  AuctionService service(tiny_config());
  ServiceLoop loop(service, 2);
  std::vector<Response> responses;
  const auto capture = [&responses](const Response& r) {
    responses.push_back(r);
  };

  EXPECT_EQ(loop.try_submit(bid_for(0, 1), capture), PushResult::kOk);
  EXPECT_EQ(loop.try_submit(bid_for(1, 2), capture), PushResult::kOk);
  const PushResult full = loop.try_submit(bid_for(2, 3), capture);
  EXPECT_EQ(full, PushResult::kFull);

  const Response rejection = loop.rejection(full, bid_for(2, 3));
  EXPECT_FALSE(rejection.ok);
  EXPECT_EQ(rejection.error, "overloaded");
  EXPECT_EQ(rejection.id, 3);
  EXPECT_GT(rejection.retry_after_ms, 0);

  // The two accepted envelopes drain in order; the rejected one never ran.
  EXPECT_TRUE(loop.poll_once(0ns));
  EXPECT_TRUE(loop.poll_once(0ns));
  EXPECT_FALSE(loop.poll_once(0ns));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].id, 1);
  EXPECT_EQ(responses[1].id, 2);
  EXPECT_TRUE(responses[0].ok);
  // The service saw exactly the accepted submissions.
  EXPECT_EQ(loop.service().batcher().pending_bids(), 2);
}

TEST(ServiceLoop, ClosedQueueRejectsPermanently) {
  AuctionService service(tiny_config());
  ServiceLoop loop(service, 4);
  loop.close();
  const PushResult closed = loop.try_submit(bid_for(0, 9), [](const Response&) {
    FAIL() << "callback must not run for a rejected submission";
  });
  EXPECT_EQ(closed, PushResult::kClosed);
  const Response rejection = loop.rejection(closed, bid_for(0, 9));
  EXPECT_FALSE(rejection.ok);
  EXPECT_EQ(rejection.retry_after_ms, 0);  // terminal, not retryable
}

// ------------------------------------------------------ service behavior --

TEST(AuctionService, RejectsBadConfig) {
  ServiceConfig config = tiny_config();
  config.scenario.runs = 0;
  EXPECT_THROW(AuctionService{config}, std::invalid_argument);
  config = tiny_config();
  config.estimator = "psychic";
  EXPECT_THROW(AuctionService{config}, std::invalid_argument);
  config = tiny_config();
  config.checkpoint_every = 3;  // without a checkpoint path
  EXPECT_THROW(AuctionService{config}, std::invalid_argument);
}

TEST(AuctionService, DeadlineTriggerFiresOnManualClock) {
  ServiceConfig config = tiny_config();
  config.batch.max_delay = 5.0;
  AuctionService service(config);

  Response r = service.apply(bid_for(0, 1));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.fields.number("pending_bids"), 1.0);

  Request tick;
  tick.op = Op::kTick;
  tick.seconds = 4.9;
  r = service.apply(tick);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.fields.has("runs_executed"));  // 4.9s < 5s deadline

  tick.seconds = 0.2;
  r = service.apply(tick);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.fields.number("runs_executed"), 1.0);
  EXPECT_EQ(service.records().size(), 1u);
  EXPECT_EQ(service.batcher().pending_bids(), 0);
}

TEST(AuctionService, NewcomerRegistration) {
  AuctionService service(tiny_config());
  const std::size_t base = service.platform().workers().size();

  Request unknown = bid_for(0, 1);
  unknown.worker = "alice";
  Response r = service.apply(unknown);
  EXPECT_FALSE(r.ok);  // no cost/frequency — not a valid newcomer
  unknown.cost = -1.0;
  unknown.frequency = 2;
  unknown.has_bid = true;
  EXPECT_FALSE(service.apply(unknown).ok);  // cost must be positive

  unknown.cost = 1.25;
  r = service.apply(unknown);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.fields.boolean_or("registered", false));
  EXPECT_EQ(r.fields.number("internal_id"), static_cast<double>(base));
  EXPECT_EQ(service.platform().workers().size(), base + 1);

  // Re-bidding under the same name reuses the registration.
  r = service.apply(unknown);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.fields.boolean_or("registered", false));
  EXPECT_EQ(service.registry().bids_submitted(
                static_cast<auction::WorkerId>(base)),
            2u);
}

TEST(AuctionService, UpdateBidRebidsAndCountsTowardTheBatch) {
  AuctionService service(tiny_config());
  Request update;
  update.op = Op::kUpdateBid;
  update.id = 1;
  update.worker = "w3";
  update.cost = 1.5;
  update.frequency = 2;
  update.has_bid = true;
  Response r = service.apply(update);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.fields.number("internal_id"), 3.0);
  // A re-bid participates in batching exactly like a submission.
  EXPECT_EQ(r.fields.number("pending_bids"), 1.0);
  EXPECT_EQ(service.registry().bids_submitted(3), 1u);
  EXPECT_EQ(service.batcher().pending_bids(), 1);

  // Unknown workers are never auto-registered: structured error instead.
  update.id = 2;
  update.worker = "ghost";
  r = service.apply(update);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown_worker");
  EXPECT_EQ(r.fields.text("worker"), "ghost");
  EXPECT_EQ(service.platform().workers().size(), 8u);

  // The replacement bid must be a valid bid.
  update.worker = "w3";
  update.cost = -2.0;
  EXPECT_FALSE(service.apply(update).ok);
  update.cost = 1.5;
  update.frequency = 0;
  EXPECT_FALSE(service.apply(update).ok);
}

TEST(AuctionService, WithdrawBidSitsOutUntilResubmission) {
  AuctionService service(tiny_config());
  Request withdraw;
  withdraw.op = Op::kWithdrawBid;
  withdraw.id = 1;
  withdraw.worker = "w2";
  Response r = service.apply(withdraw);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.fields.boolean_or("withdrawn", false));
  EXPECT_TRUE(service.platform().is_withdrawn(2));
  // A withdrawal is not a bid: it must not arm the batch trigger.
  EXPECT_EQ(service.batcher().pending_bids(), 0);

  withdraw.id = 2;
  withdraw.worker = "ghost";
  r = service.apply(withdraw);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown_worker");
  EXPECT_EQ(r.fields.text("worker"), "ghost");

  // A fresh submission supersedes the standing withdrawal.
  ASSERT_TRUE(service.apply(bid_for(2, 3)).ok);
  EXPECT_FALSE(service.platform().is_withdrawn(2));
}

TEST(AuctionService, RollingModeRunsOncePerTaskBatch) {
  ServiceConfig config = tiny_config();
  config.batch.per_task_arrival = true;
  AuctionService service(config);
  // Rolling mode implies the persistent bid book.
  EXPECT_TRUE(service.platform().bid_book_enabled());

  Request tasks;
  tasks.op = Op::kSubmitTasks;
  tasks.id = 1;
  tasks.task_count = 10;
  tasks.budget = 5.0;
  Response r = service.apply(tasks);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.fields.number("runs_executed"), 1.0);
  EXPECT_EQ(service.records().size(), 1u);

  // A zero-count submission accrues budget but schedules no run.
  tasks.id = 2;
  tasks.task_count = 0;
  r = service.apply(tasks);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.fields.has("runs_executed"));
  EXPECT_EQ(service.records().size(), 1u);
}

TEST(AuctionService, HelloAdvertisesProtocolAndRollingMode) {
  ServiceConfig config = tiny_config();
  config.batch.per_task_arrival = true;
  config.incremental = true;
  AuctionService service(config);
  Request hello;
  hello.op = Op::kHello;
  hello.id = 1;
  const Response r = service.apply(hello);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.fields.number("proto_version"),
            static_cast<double>(kProtoVersion));
  EXPECT_TRUE(r.fields.boolean_or("incremental", false));
  EXPECT_TRUE(r.fields.boolean_or("rolling", false));
}

TEST(AuctionService, QueryRunBoundsAndStats) {
  AuctionService service(tiny_config());
  Request query;
  query.op = Op::kQueryRun;
  query.run = 1;
  EXPECT_FALSE(service.apply(query).ok);  // nothing executed yet

  Request run_now;
  run_now.op = Op::kRunNow;
  ASSERT_TRUE(service.apply(run_now).ok);
  Response r = service.apply(query);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.fields.number("run"), 1.0);
  // No fault plan active: the fault tallies stay off the wire.
  EXPECT_FALSE(r.fields.has("no_shows"));

  Request stats;
  stats.op = Op::kStats;
  r = service.apply(stats);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.fields.number("runs_this_session"), 1.0);
  EXPECT_EQ(r.fields.number("next_run"), 2.0);
}

// ------------------------------------------- stdio e2e and bit-identity --

sim::LongTermScenario e2e_scenario() {
  sim::LongTermScenario s;
  s.num_workers = 40;
  s.num_tasks = 30;
  s.runs = 16;
  s.budget = 120.0;
  return s;
}

constexpr std::uint64_t kSeed = 2017;

/// The melody_sim batch run the service must reproduce: identical
/// construction recipe (same seed derivations through the same factories).
std::vector<sim::RunRecord> batch_records(const sim::LongTermScenario& s,
                                          const sim::FaultPlan& plan) {
  auction::MelodyAuction mechanism(auction::PaymentRule::kCriticalValue);
  auto estimator =
      estimators::make("melody", {.initial_mu = s.initial_mu,
                                  .initial_sigma = s.initial_sigma,
                                  .reestimation_period = s.reestimation_period});
  util::Rng population_rng(kSeed);
  sim::Platform platform(
      s, mechanism, *estimator,
      sim::sample_population(s.population_config(), population_rng),
      kSeed + 1);
  if (plan.active()) platform.set_fault_plan(plan);
  return platform.run_all();
}

/// One trace round: every population worker bids once. With the default
/// batch policy (min_bids = num_workers) the last bid triggers the run.
void append_round(std::ostream& trace, int workers, std::int64_t* next_id) {
  for (int w = 0; w < workers; ++w) {
    Request r = bid_for(w, (*next_id)++);
    trace << format_request(r) << "\n";
  }
}

ServiceConfig e2e_config() {
  ServiceConfig config;
  config.scenario = e2e_scenario();
  config.seed = kSeed;
  config.manual_clock = true;
  return config;
}

TEST(StdioSession, BitIdenticalToBatchRun) {
  const sim::LongTermScenario scenario = e2e_scenario();
  const std::vector<sim::RunRecord> expected =
      batch_records(scenario, sim::FaultPlan{});

  AuctionService service(e2e_config());
  ServiceLoop loop(service, 64);
  std::stringstream trace;
  std::int64_t next_id = 1;
  for (int round = 0; round < scenario.runs; ++round) {
    append_round(trace, scenario.num_workers, &next_id);
  }
  // Interleave queries mid-trace: reads must not perturb the run stream.
  Request query;
  query.op = Op::kQueryRun;
  query.id = next_id++;
  query.run = scenario.runs;
  trace << format_request(query) << "\n";

  std::ostringstream responses;
  const StdioResult result = run_stdio_session(loop, trace, responses);
  EXPECT_EQ(result.parse_errors, 0u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_FALSE(result.shutdown);

  ASSERT_EQ(service.records().size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(service.records()[k], expected[k]) << "run " << k + 1;
  }
  // The wire answer for the final run carries the exact record values.
  std::string line;
  std::istringstream lines(responses.str());
  std::string last;
  while (std::getline(lines, line)) {
    if (!line.empty()) last = line;
  }
  const Response final_run = parse_response(last);
  ASSERT_TRUE(final_run.ok) << final_run.error;
  EXPECT_EQ(final_run.fields.number("estimation_error"),
            expected.back().estimation_error);
  EXPECT_EQ(final_run.fields.number("total_payment"),
            expected.back().total_payment);
}

TEST(StdioSession, IncrementalServiceStaysBitIdenticalToBatch) {
  // --incremental keeps the price ladder across runs instead of rebuilding
  // it; the allocation (and hence every record) must not move.
  const sim::LongTermScenario scenario = e2e_scenario();
  const std::vector<sim::RunRecord> expected =
      batch_records(scenario, sim::FaultPlan{});

  ServiceConfig config = e2e_config();
  config.incremental = true;
  AuctionService service(config);
  ASSERT_TRUE(service.platform().bid_book_enabled());
  ServiceLoop loop(service, 64);
  std::stringstream trace;
  std::int64_t next_id = 1;
  for (int round = 0; round < scenario.runs; ++round) {
    append_round(trace, scenario.num_workers, &next_id);
  }
  std::ostringstream responses;
  run_stdio_session(loop, trace, responses);

  ASSERT_EQ(service.records().size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(service.records()[k], expected[k]) << "run " << k + 1;
  }
  EXPECT_EQ(service.platform().bid_book().check_links(), "");
}

TEST(StdioSession, BitIdenticalWithFaultPlanAttached) {
  sim::FaultPlan plan;
  plan.no_show_rate = 0.1;
  plan.score_drop_rate = 0.1;
  plan.score_corrupt_rate = 0.05;
  plan.churn_rate = 0.2;
  plan.churn_min_absence = 2;
  plan.churn_max_absence = 5;
  const sim::LongTermScenario scenario = e2e_scenario();
  const std::vector<sim::RunRecord> expected = batch_records(scenario, plan);

  ServiceConfig config = e2e_config();
  config.faults = plan;
  AuctionService service(config);
  ServiceLoop loop(service, 64);
  std::stringstream trace;
  std::int64_t next_id = 1;
  for (int round = 0; round < scenario.runs; ++round) {
    append_round(trace, scenario.num_workers, &next_id);
  }
  std::ostringstream responses;
  run_stdio_session(loop, trace, responses);

  ASSERT_EQ(service.records().size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(service.records()[k], expected[k]) << "run " << k + 1;
  }
}

TEST(StdioSession, CheckpointKillResumeStaysBitIdentical) {
  const sim::LongTermScenario scenario = e2e_scenario();
  const std::vector<sim::RunRecord> expected =
      batch_records(scenario, sim::FaultPlan{});
  const int interrupt_after = scenario.runs / 2;
  const std::string path =
      ::testing::TempDir() + "/melody_svc_e2e.ckpt";

  std::vector<sim::RunRecord> prefix;
  {
    AuctionService service(e2e_config());
    ServiceLoop loop(service, 64);
    std::stringstream trace;
    std::int64_t next_id = 1;
    for (int round = 0; round < interrupt_after; ++round) {
      append_round(trace, scenario.num_workers, &next_id);
    }
    Request checkpoint;
    checkpoint.op = Op::kCheckpoint;
    checkpoint.id = next_id++;
    checkpoint.path = path;
    trace << format_request(checkpoint) << "\n";
    std::ostringstream responses;
    const StdioResult result = run_stdio_session(loop, trace, responses);
    EXPECT_EQ(result.parse_errors, 0u);
    prefix = service.records();
    ASSERT_EQ(static_cast<int>(prefix.size()), interrupt_after);
  }  // the "killed" service is gone; only the checkpoint file survives

  AuctionService service(e2e_config());
  service.restore(path);
  EXPECT_EQ(service.platform().current_run(), interrupt_after + 1);
  ServiceLoop loop(service, 64);
  std::stringstream trace;
  std::int64_t next_id = 100000;
  for (int round = interrupt_after; round < scenario.runs; ++round) {
    append_round(trace, scenario.num_workers, &next_id);
  }
  // Records from before the restore are gone by design.
  Request stale;
  stale.op = Op::kQueryRun;
  stale.id = next_id++;
  stale.run = 1;
  trace << format_request(stale) << "\n";
  Request shutdown;
  shutdown.op = Op::kShutdown;
  shutdown.id = next_id++;
  trace << format_request(shutdown) << "\n";

  std::ostringstream responses;
  const StdioResult result = run_stdio_session(loop, trace, responses);
  EXPECT_TRUE(result.shutdown);

  std::vector<sim::RunRecord> all = prefix;
  all.insert(all.end(), service.records().begin(), service.records().end());
  ASSERT_EQ(all.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(all[k], expected[k]) << "run " << k + 1;
  }

  // The stale query_run answered with the predates-this-session error.
  std::vector<Response> parsed;
  std::istringstream lines(responses.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) parsed.push_back(parse_response(line));
  }
  ASSERT_GE(parsed.size(), 2u);
  const Response& stale_answer = parsed[parsed.size() - 2];
  EXPECT_FALSE(stale_answer.ok);
  EXPECT_NE(stale_answer.error.find("predates"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StdioSession, ParseErrorsAnswerWithoutKillingTheSession) {
  AuctionService service(tiny_config());
  ServiceLoop loop(service, 8);
  std::stringstream trace;
  trace << "this is not a request\n";
  trace << format_request(bid_for(0, 2)) << "\n";
  std::ostringstream responses;
  const StdioResult result = run_stdio_session(loop, trace, responses);
  EXPECT_EQ(result.parse_errors, 1u);
  EXPECT_EQ(result.requests, 1u);

  std::istringstream lines(responses.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const Response bad = parse_response(line);
  EXPECT_FALSE(bad.ok);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(parse_response(line).ok);
}

TEST(StdioSession, ExitAfterRunsRequestsShutdown) {
  ServiceConfig config = tiny_config();
  config.exit_after_runs = 1;
  AuctionService service(config);
  ServiceLoop loop(service, 64);
  std::stringstream trace;
  std::int64_t next_id = 1;
  // Two full rounds queued, but the session must stop after round one.
  append_round(trace, config.scenario.num_workers, &next_id);
  append_round(trace, config.scenario.num_workers, &next_id);
  std::ostringstream responses;
  const StdioResult result = run_stdio_session(loop, trace, responses);
  EXPECT_TRUE(result.shutdown);
  EXPECT_EQ(service.records().size(), 1u);
}

}  // namespace
}  // namespace melody::svc
