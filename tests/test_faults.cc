// Fault-injection layer: plan parsing, graceful degradation of the
// estimators under missing/corrupted observations, and the determinism
// contract (bit-identical fault decisions at any thread count).
#include "sim/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "auction/melody_auction.h"
#include "estimators/melody_estimator.h"
#include "estimators/static_estimator.h"
#include "obs/metrics.h"
#include "sim/platform.h"
#include "util/thread_pool.h"

namespace melody::sim {
namespace {

LongTermScenario small_scenario() {
  LongTermScenario s;
  s.num_workers = 40;
  s.num_tasks = 30;
  s.runs = 20;
  s.budget = 120.0;
  return s;
}

estimators::MelodyEstimatorConfig tracker_config(const LongTermScenario& s) {
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {s.initial_mu, s.initial_sigma};
  config.reestimation_period = s.reestimation_period;
  return config;
}

std::vector<RunRecord> run_with_plan(const LongTermScenario& scenario,
                                     const FaultPlan& plan,
                                     std::uint64_t seed) {
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(seed);
  Platform platform(scenario, mechanism, estimator,
                    sample_population(scenario.population_config(), rng),
                    seed + 1);
  platform.set_fault_plan(plan);
  return platform.run_all();
}

TEST(FaultPlan, DefaultIsInactive) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, ParseRoundTripsThroughDescribe) {
  const FaultPlan plan = FaultPlan::parse(
      "no-show=0.05,drop=0.1,corrupt=0.02,churn=0.1,churn-min=5,"
      "churn-max=50,salt=7");
  EXPECT_TRUE(plan.active());
  EXPECT_DOUBLE_EQ(plan.no_show_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.score_drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.score_corrupt_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.churn_rate, 0.1);
  EXPECT_EQ(plan.churn_min_absence, 5);
  EXPECT_EQ(plan.churn_max_absence, 50);
  EXPECT_EQ(plan.salt, 7u);
  EXPECT_EQ(FaultPlan::parse(plan.describe()), plan);
}

TEST(FaultPlan, ParseEmptySpecIsInactive) {
  EXPECT_FALSE(FaultPlan::parse("").active());
}

TEST(FaultPlan, ParseRejectsBadInput) {
  EXPECT_THROW(FaultPlan::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("no-show=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("no-show=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("churn=0.1,churn-min=9,churn-max=3"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("churn-min=0"), std::invalid_argument);
}

TEST(FaultPlan, SetFaultPlanValidates) {
  const auto scenario = small_scenario();
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  Platform platform(scenario, mechanism, estimator, {}, 1);
  FaultPlan bad;
  bad.no_show_rate = 2.0;
  EXPECT_THROW(platform.set_fault_plan(bad), std::invalid_argument);
  EXPECT_FALSE(platform.fault_plan().active());
}

TEST(Faults, TotalNoShowMeansNoAssignmentsAndFrozenEstimates) {
  const auto scenario = small_scenario();
  auction::MelodyAuction mechanism;
  estimators::StaticEstimator estimator(scenario.initial_mu, 50);
  util::Rng rng(3);
  const auto workers =
      sample_population(scenario.population_config(), rng);
  Platform platform(scenario, mechanism, estimator, workers, 4);
  FaultPlan plan;
  plan.no_show_rate = 1.0;
  platform.set_fault_plan(plan);

  for (const auto& record : platform.run_all()) {
    EXPECT_EQ(record.assignments, 0u);
    EXPECT_EQ(record.qualified_workers, 0u);
    EXPECT_EQ(record.no_shows + record.churned_out,
              static_cast<std::size_t>(scenario.num_workers));
  }
  // Nobody was ever scored, so every estimate is still the initial one.
  for (const auto& w : workers) {
    EXPECT_DOUBLE_EQ(estimator.estimate(w.id()), scenario.initial_mu);
  }
}

TEST(Faults, TotalDropFreezesEstimatesButAuctionStillRuns) {
  const auto scenario = small_scenario();
  auction::MelodyAuction mechanism;
  estimators::StaticEstimator estimator(scenario.initial_mu, 50);
  util::Rng rng(5);
  const auto workers =
      sample_population(scenario.population_config(), rng);
  Platform platform(scenario, mechanism, estimator, workers, 6);
  FaultPlan plan;
  plan.score_drop_rate = 1.0;
  platform.set_fault_plan(plan);

  std::size_t total_assignments = 0;
  std::size_t total_dropped = 0;
  for (const auto& record : platform.run_all()) {
    EXPECT_EQ(record.no_shows, 0u);
    EXPECT_EQ(record.scores_corrupted, 0u);
    total_assignments += record.assignments;
    total_dropped += record.scores_dropped;
  }
  EXPECT_GT(total_assignments, 0u);
  EXPECT_GT(total_dropped, 0u);
  for (const auto& w : workers) {
    EXPECT_DOUBLE_EQ(estimator.estimate(w.id()), scenario.initial_mu);
  }
}

TEST(Faults, TotalCorruptionPinsScoresToExtremes) {
  ScoreModel model{3.0, 1.0, 10.0};
  FaultPlan plan;
  plan.score_corrupt_rate = 1.0;
  util::Rng stream(util::derive_stream(17, 1, 1));
  ScoreFaultCounts counts;
  const auto scores =
      generate_faulted_scores(plan, model, 5.0, 20, stream, 17, 1, 1, counts);
  ASSERT_EQ(scores.count, 20);
  EXPECT_EQ(counts.corrupted, 20);
  EXPECT_EQ(counts.dropped, 0);
  // Every score s is an extreme, i.e. a root of (s - min)(s - max) = 0, so
  // the sufficient statistics must satisfy
  //   sum_squares - (min + max) * sum + min * max * count = 0.
  EXPECT_NEAR(scores.sum_squares -
                  (model.min_score + model.max_score) * scores.sum +
                  model.min_score * model.max_score * scores.count,
              0.0, 1e-9);
  // With 20 corrupted scores both extremes almost surely appear: the count
  // of min-pinned scores recovered from the sum is strictly interior.
  const double min_pinned = (model.max_score * scores.count - scores.sum) /
                            (model.max_score - model.min_score);
  EXPECT_GT(min_pinned, 0.5);
  EXPECT_LT(min_pinned, 19.5);
}

TEST(Faults, ZeroRatePlanMatchesCleanScores) {
  // An inactive plan routed through the faulted generator must draw the
  // exact same base scores as the clean path.
  ScoreModel model{3.0, 1.0, 10.0};
  const FaultPlan plan;
  util::Rng a(util::derive_stream(23, 4, 2));
  util::Rng b(util::derive_stream(23, 4, 2));
  ScoreFaultCounts counts;
  const auto faulted =
      generate_faulted_scores(plan, model, 6.0, 7, a, 23, 4, 2, counts);
  const auto clean = generate_scores(model, 6.0, 7, b);
  EXPECT_EQ(faulted.count, clean.count);
  EXPECT_DOUBLE_EQ(faulted.sum, clean.sum);
  EXPECT_DOUBLE_EQ(faulted.sum_squares, clean.sum_squares);
  EXPECT_EQ(counts.dropped, 0);
  EXPECT_EQ(counts.corrupted, 0);
}

TEST(Faults, ChurnWindowIsContiguousAndBounded) {
  FaultPlan plan;
  plan.churn_rate = 1.0;  // every worker departs exactly once
  plan.churn_min_absence = 3;
  plan.churn_max_absence = 8;
  const int horizon = 60;
  for (auction::WorkerId worker = 0; worker < 25; ++worker) {
    int first_absent = -1;
    int last_absent = -1;
    int absent_count = 0;
    for (int run = 1; run <= horizon; ++run) {
      if (absence_for(plan, 99, worker, run, horizon) == Absence::kChurned) {
        if (first_absent < 0) first_absent = run;
        last_absent = run;
        ++absent_count;
      }
    }
    ASSERT_GT(absent_count, 0) << "worker " << worker;
    // Contiguous: the span between first and last absence is all absent.
    EXPECT_EQ(last_absent - first_absent + 1, absent_count);
    // Window length within bounds (may be truncated by the horizon).
    EXPECT_LE(absent_count, plan.churn_max_absence);
    if (last_absent < horizon) {
      EXPECT_GE(absent_count, plan.churn_min_absence);
    }
  }
}

TEST(Faults, AbsenceIsDeterministic) {
  FaultPlan plan;
  plan.no_show_rate = 0.3;
  plan.churn_rate = 0.5;
  for (int run = 1; run <= 40; ++run) {
    for (auction::WorkerId worker = 0; worker < 10; ++worker) {
      EXPECT_EQ(absence_for(plan, 7, worker, run, 40),
                absence_for(plan, 7, worker, run, 40));
    }
  }
}

TEST(Faults, RecordsIdenticalAcrossThreadCounts) {
  const auto scenario = small_scenario();
  FaultPlan plan;
  plan.no_show_rate = 0.1;
  plan.score_drop_rate = 0.15;
  plan.score_corrupt_rate = 0.05;
  plan.churn_rate = 0.2;
  plan.churn_min_absence = 2;
  plan.churn_max_absence = 6;

  util::set_shared_thread_count(1);
  const auto serial = run_with_plan(scenario, plan, 11);
  for (const int threads : {2, 8}) {
    util::set_shared_thread_count(threads);
    const auto parallel = run_with_plan(scenario, plan, 11);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "run " << i + 1 << " at "
                                        << threads << " threads";
    }
  }
  util::set_shared_thread_count(1);
}

TEST(Faults, MelodyEstimatorSurvivesGappedHistories) {
  // No-shows and drops create participation gaps; the MELODY tracker's
  // EM re-estimation must digest them without throwing and still produce
  // finite estimates for everyone.
  auto scenario = small_scenario();
  scenario.runs = 40;  // enough runs to trigger several re-estimations
  FaultPlan plan;
  plan.no_show_rate = 0.3;
  plan.score_drop_rate = 0.2;
  plan.churn_rate = 0.3;
  plan.churn_min_absence = 5;
  plan.churn_max_absence = 15;

  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng rng(13);
  const auto workers =
      sample_population(scenario.population_config(), rng);
  Platform platform(scenario, mechanism, estimator, workers, 14);
  platform.set_fault_plan(plan);
  const auto records = platform.run_all();
  ASSERT_EQ(records.size(), 40u);
  for (const auto& w : workers) {
    const double estimate = estimator.estimate(w.id());
    EXPECT_TRUE(std::isfinite(estimate)) << "worker " << w.id();
  }
}

TEST(Faults, ObsCountersMirrorRecordTallies) {
  const auto scenario = small_scenario();
  FaultPlan plan;
  plan.no_show_rate = 0.2;
  plan.score_drop_rate = 0.1;
  plan.score_corrupt_rate = 0.1;

  obs::set_enabled(true);
  obs::registry().reset();
  const auto records = run_with_plan(scenario, plan, 21);
  RunRecord totals;
  for (const auto& r : records) {
    totals.no_shows += r.no_shows;
    totals.scores_dropped += r.scores_dropped;
    totals.scores_corrupted += r.scores_corrupted;
  }
  EXPECT_GT(totals.no_shows, 0u);
  EXPECT_EQ(obs::registry().counter("faults/no_shows").value(),
            totals.no_shows);
  EXPECT_EQ(obs::registry().counter("faults/scores_dropped").value(),
            totals.scores_dropped);
  EXPECT_EQ(obs::registry().counter("faults/scores_corrupted").value(),
            totals.scores_corrupted);
  obs::set_enabled(false);
  obs::registry().reset();
}

TEST(Faults, FaultedRunStaysWithinPlatformInvariants) {
  const auto scenario = small_scenario();
  FaultPlan plan;
  plan.no_show_rate = 0.25;
  plan.score_corrupt_rate = 0.3;
  for (const auto& record : run_with_plan(scenario, plan, 31)) {
    EXPECT_LE(record.total_payment, scenario.budget + 1e-9);
    EXPECT_LE(record.no_shows + record.churned_out,
              static_cast<std::size_t>(scenario.num_workers));
    EXPECT_LE(record.qualified_workers,
              static_cast<std::size_t>(scenario.num_workers) -
                  record.no_shows - record.churned_out);
  }
}

}  // namespace
}  // namespace melody::sim
