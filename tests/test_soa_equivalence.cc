// The bit-identity lattice locking down the SoA hot-path refactor.
//
// Two layers of evidence that the structure-of-arrays layout changed
// nothing but time:
//
//   1. Golden digests. The fig9-style long-term pipeline (reduced Table-4
//      scale) is run at 1/2/8 threads, with and without a FaultPlan, and
//      FNV-1a digests of (a) every RunRecord field, (b) the fig9 CSV rows
//      exactly as bench_fig9 formats them, (c) the estimator's text
//      snapshot, and (d) the raw MLDYCKPT checkpoint bytes taken mid-run
//      are compared against constants captured from the pre-refactor
//      scalar build. Any layout change that perturbs a single bit of
//      output — records, CSV, snapshot text, or checkpoint encoding —
//      fails here with the digest that moved.
//
//   2. Scalar reference properties. 1000 randomized markets are auctioned
//      through both the production greedy core and the frozen AoS
//      reference in perf/reference.h (same for the Kalman/EM chains over
//      randomized score streams): selection, pricing, and posterior state
//      must match exactly — not approximately.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "auction/melody_auction.h"
#include "estimators/melody_estimator.h"
#include "perf/reference.h"
#include "sim/platform.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace melody::sim {
namespace {

// ---------------------------------------------------------------------------
// FNV-1a 64 digests. Doubles are hashed by bit pattern: "identical" means
// identical IEEE-754 bits, not approximately equal.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void mix_u64(std::uint64_t& h, std::uint64_t v) { mix_bytes(h, &v, 8); }

void mix_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  mix_u64(h, bits);
}

std::uint64_t digest_string(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  mix_bytes(h, s.data(), s.size());
  return h;
}

std::uint64_t digest_records(const std::vector<RunRecord>& records) {
  std::uint64_t h = kFnvOffset;
  for (const RunRecord& r : records) {
    mix_u64(h, static_cast<std::uint64_t>(r.run));
    mix_u64(h, r.estimated_utility);
    mix_u64(h, r.true_utility);
    mix_double(h, r.estimation_error);
    mix_double(h, r.total_payment);
    mix_u64(h, r.assignments);
    mix_u64(h, r.qualified_workers);
    mix_u64(h, r.no_shows);
    mix_u64(h, r.churned_out);
    mix_u64(h, r.scores_dropped);
    mix_u64(h, r.scores_corrupted);
  }
  return h;
}

/// The per-run CSV rows exactly as bench_fig9_longterm_quality.cc emits
/// them (std::to_string formatting included): estimator label, run,
/// estimation_error, true_utility.
std::uint64_t digest_csv_rows(const std::vector<RunRecord>& records) {
  std::string rows;
  for (const RunRecord& r : records) {
    rows += "MELODY," + std::to_string(r.run) + ',' +
            std::to_string(r.estimation_error) + ',' +
            std::to_string(r.true_utility) + '\n';
  }
  return digest_string(rows);
}

// ---------------------------------------------------------------------------
// The lattice: reduced fig9 scenario x {1,2,8} threads x {faults off,on},
// with a checkpoint taken mid-run and a resume leg re-validating the tail.
// ---------------------------------------------------------------------------

LongTermScenario lattice_scenario() {
  LongTermScenario s;  // Table 4 shape, reduced scale
  s.num_workers = 80;
  s.num_tasks = 60;
  s.runs = 40;  // covers several EM re-estimation periods (T = 10)
  s.budget = 250.0;
  return s;
}

FaultPlan lattice_faults() {
  FaultPlan plan;
  plan.no_show_rate = 0.05;
  plan.score_drop_rate = 0.10;
  plan.score_corrupt_rate = 0.05;
  plan.churn_rate = 0.10;
  plan.churn_min_absence = 3;
  plan.churn_max_absence = 6;
  plan.salt = 77;
  return plan;
}

estimators::MelodyEstimatorConfig tracker_config(const LongTermScenario& s) {
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {s.initial_mu, s.initial_sigma};
  config.reestimation_period = s.reestimation_period;
  return config;
}

struct LatticeDigest {
  std::uint64_t records = 0;     // all RunRecord fields, runs 1..40
  std::uint64_t csv = 0;         // fig9-format CSV rows, runs 1..40
  std::uint64_t estimator = 0;   // MELODY_TRACKER snapshot after run 40
  std::uint64_t checkpoint = 0;  // raw MLDYCKPT bytes after run 20
  std::uint64_t tail = 0;        // records of runs 21..40 alone

  bool operator==(const LatticeDigest&) const = default;
};

constexpr int kCheckpointAfterRun = 20;

LatticeDigest run_lattice(int threads, bool with_faults) {
  util::set_shared_thread_count(threads);
  const LongTermScenario scenario = lattice_scenario();
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng population_rng(2017);
  Platform platform(scenario, mechanism, estimator,
                    sample_population(scenario.population_config(),
                                      population_rng),
                    2018);
  if (with_faults) platform.set_fault_plan(lattice_faults());

  std::vector<RunRecord> records;
  std::string checkpoint_bytes;
  while (!platform.finished()) {
    records.push_back(platform.step());
    if (records.back().run == kCheckpointAfterRun) {
      std::ostringstream bytes(std::ios::binary);
      platform.save(bytes);
      checkpoint_bytes = bytes.str();
    }
  }

  LatticeDigest digest;
  digest.records = digest_records(records);
  digest.csv = digest_csv_rows(records);
  std::ostringstream snapshot;
  estimator.save(snapshot);
  digest.estimator = digest_string(snapshot.str());
  digest.checkpoint = digest_string(checkpoint_bytes);
  digest.tail = digest_records(std::vector<RunRecord>(
      records.begin() + kCheckpointAfterRun, records.end()));

  // Resume leg: a fresh platform restored from the mid-run checkpoint must
  // reproduce the tail records exactly (at this thread count).
  estimators::MelodyEstimator resumed_estimator(tracker_config(scenario));
  auction::MelodyAuction resumed_mechanism;
  Platform resumed(scenario, resumed_mechanism, resumed_estimator, {}, 0);
  std::istringstream in(checkpoint_bytes);
  resumed.load(in);
  std::vector<RunRecord> tail;
  while (!resumed.finished()) tail.push_back(resumed.step());
  EXPECT_EQ(digest_records(tail), digest.tail)
      << "checkpoint resume diverged at " << threads << " threads";

  util::set_shared_thread_count(1);
  return digest;
}

// Golden digests captured from the pre-SoA scalar build (threads = 1, the
// serial reference path). The refactor must reproduce every one of them —
// at every thread count. If you change ANY output format or simulation
// semantics on purpose, re-capture these from a build whose equivalence to
// the previous trajectory is otherwise established, and say so in the PR.
constexpr LatticeDigest kGoldenCleanRun = {
    13627756688790278940ull,  // records
    2721147335882908296ull,   // csv
    8034518372207253827ull,   // estimator
    5763989433480082567ull,   // checkpoint
    13954106222003339031ull,  // tail
};
constexpr LatticeDigest kGoldenFaultedRun = {
    9614558965146038773ull,   // records
    6997543824992877856ull,   // csv
    5585579271030418187ull,   // estimator
    14975863693022318303ull,  // checkpoint
    2827185478779235160ull,   // tail
};

class SoaGoldenLattice : public ::testing::TestWithParam<int> {};

TEST_P(SoaGoldenLattice, CleanPipelineMatchesPreRefactorDigests) {
  const LatticeDigest digest = run_lattice(GetParam(), /*with_faults=*/false);
  EXPECT_EQ(digest.records, kGoldenCleanRun.records);
  EXPECT_EQ(digest.csv, kGoldenCleanRun.csv);
  EXPECT_EQ(digest.estimator, kGoldenCleanRun.estimator);
  EXPECT_EQ(digest.checkpoint, kGoldenCleanRun.checkpoint);
  EXPECT_EQ(digest.tail, kGoldenCleanRun.tail);
}

TEST_P(SoaGoldenLattice, FaultedPipelineMatchesPreRefactorDigests) {
  const LatticeDigest digest = run_lattice(GetParam(), /*with_faults=*/true);
  EXPECT_EQ(digest.records, kGoldenFaultedRun.records);
  EXPECT_EQ(digest.csv, kGoldenFaultedRun.csv);
  EXPECT_EQ(digest.estimator, kGoldenFaultedRun.estimator);
  EXPECT_EQ(digest.checkpoint, kGoldenFaultedRun.checkpoint);
  EXPECT_EQ(digest.tail, kGoldenFaultedRun.tail);
}

INSTANTIATE_TEST_SUITE_P(Threads, SoaGoldenLattice,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Property layer: 1000 randomized markets, production greedy vs the frozen
// scalar reference. Selection, pricing, and order must match EXACTLY.
// ---------------------------------------------------------------------------

struct Market {
  std::vector<auction::WorkerProfile> workers;
  std::vector<auction::Task> tasks;
  auction::AuctionConfig config;
};

Market sample_market(util::Rng& rng) {
  SraScenario scenario;
  scenario.num_workers = static_cast<int>(rng.uniform_int(5, 120));
  scenario.num_tasks = static_cast<int>(rng.uniform_int(1, 60));
  scenario.budget = rng.uniform(10.0, 500.0);
  scenario.threshold = {rng.uniform(4.0, 8.0), rng.uniform(8.0, 16.0)};
  Market market;
  market.workers = scenario.sample_workers(rng);
  market.tasks = scenario.sample_tasks(rng);
  market.config = scenario.auction_config();
  return market;
}

void expect_same_allocation(const auction::AllocationResult& soa,
                            const auction::AllocationResult& scalar,
                            int instance) {
  ASSERT_EQ(soa.selected_tasks, scalar.selected_tasks)
      << "market " << instance;
  ASSERT_EQ(soa.assignments.size(), scalar.assignments.size())
      << "market " << instance;
  for (std::size_t a = 0; a < scalar.assignments.size(); ++a) {
    EXPECT_EQ(soa.assignments[a].worker, scalar.assignments[a].worker)
        << "market " << instance << " assignment " << a;
    EXPECT_EQ(soa.assignments[a].task, scalar.assignments[a].task)
        << "market " << instance << " assignment " << a;
    // Bitwise payment equality — the pricing walk must be the same
    // arithmetic, not merely the same result to within epsilon.
    EXPECT_EQ(soa.assignments[a].payment, scalar.assignments[a].payment)
        << "market " << instance << " assignment " << a;
  }
}

TEST(SoaGreedyProperty, MatchesScalarReferenceOn1kMarketsCriticalValue) {
  util::Rng rng(0x50A11CE);
  auction::MelodyAuction mechanism(auction::PaymentRule::kCriticalValue);
  for (int i = 0; i < 1000; ++i) {
    const Market market = sample_market(rng);
    const auto soa =
        mechanism.run({market.workers, market.tasks, market.config});
    const auto scalar = perf::reference::run_greedy(
        market.workers, market.tasks, market.config,
        auction::PaymentRule::kCriticalValue);
    expect_same_allocation(soa, scalar, i);
  }
}

TEST(SoaGreedyProperty, MatchesScalarReferenceOn1kMarketsPaperRule) {
  util::Rng rng(0x50A11CF);
  auction::MelodyAuction mechanism(auction::PaymentRule::kPaperNextInQueue);
  for (int i = 0; i < 1000; ++i) {
    const Market market = sample_market(rng);
    const auto soa =
        mechanism.run({market.workers, market.tasks, market.config});
    const auto scalar = perf::reference::run_greedy(
        market.workers, market.tasks, market.config,
        auction::PaymentRule::kPaperNextInQueue);
    expect_same_allocation(soa, scalar, i);
  }
}

TEST(SoaGreedyProperty, ParallelPathMatchesScalarReferenceOnLargeMarket) {
  // One market big enough to cross the greedy core's parallel sort and
  // pricing thresholds, compared against the serial AoS reference at 8
  // threads.
  SraScenario scenario;
  scenario.num_workers = 6000;
  scenario.num_tasks = 120;
  scenario.budget = 3000.0;
  scenario.threshold = {80.0, 120.0};
  util::Rng rng(31);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  const auto scalar = perf::reference::run_greedy(
      workers, tasks, config, auction::PaymentRule::kCriticalValue);
  auction::MelodyAuction mechanism;
  util::set_shared_thread_count(8);
  const auto soa = mechanism.run({workers, tasks, config});
  util::set_shared_thread_count(1);
  expect_same_allocation(soa, scalar, 0);
}

// ---------------------------------------------------------------------------
// Kalman/EM chain: production estimator vs the AoS reference over
// randomized score streams, compared through full snapshot strings (17
// significant digits per field — any bit difference in any posterior,
// parameter, anchor, or counter shows up).
// ---------------------------------------------------------------------------

lds::ScoreSet random_scores(util::Rng& rng, double latent) {
  lds::ScoreSet scores;
  const int count = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < count; ++i) {
    scores.add(std::clamp(rng.normal(latent, 1.5), 1.0, 10.0));
  }
  return scores;
}

TEST(SoaKalmanProperty, ChainStateMatchesAosReferenceWithEmAndWindow) {
  estimators::MelodyEstimatorConfig config;
  config.reestimation_period = 7;
  config.max_history = 12;  // exercise the sliding-window anchor fold
  estimators::MelodyEstimator soa(config);
  perf::reference::AosKalmanChain scalar(config);

  constexpr int kWorkers = 60;
  constexpr int kRuns = 50;
  for (int w = 0; w < kWorkers; ++w) {
    soa.register_worker(w);
    scalar.register_worker(w);
  }
  for (int run = 1; run <= kRuns; ++run) {
    for (int w = 0; w < kWorkers; ++w) {
      util::Rng stream(util::derive_stream(0xE57, w, run));
      const double latent = 3.0 + (w % 7);
      const lds::ScoreSet scores = random_scores(stream, latent);
      soa.observe(w, scores);
      scalar.observe(w, scores);
    }
  }
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(soa.estimate(w), scalar.estimate(w)) << "worker " << w;
  }
  std::ostringstream soa_snapshot;
  std::ostringstream scalar_snapshot;
  soa.save(soa_snapshot);
  scalar.save(scalar_snapshot);
  EXPECT_EQ(soa_snapshot.str(), scalar_snapshot.str());
}

TEST(SoaKalmanProperty, ShardedObserveRunMatchesAosReferenceAt8Threads) {
  estimators::MelodyEstimatorConfig config;
  config.reestimation_period = 10;
  estimators::MelodyEstimator soa(config);
  perf::reference::AosKalmanChain scalar(config);

  constexpr int kWorkers = 500;
  constexpr int kRuns = 25;
  std::vector<auction::WorkerId> ids(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    ids[static_cast<std::size_t>(w)] = w;
    soa.register_worker(w);
    scalar.register_worker(w);
  }
  util::set_shared_thread_count(8);
  for (int run = 1; run <= kRuns; ++run) {
    std::vector<lds::ScoreSet> scores(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      util::Rng stream(util::derive_stream(0xE58, w, run));
      scores[static_cast<std::size_t>(w)] =
          random_scores(stream, 2.0 + (w % 9));
    }
    soa.observe_run(ids, scores);
    for (int w = 0; w < kWorkers; ++w) {
      scalar.observe(w, scores[static_cast<std::size_t>(w)]);
    }
  }
  util::set_shared_thread_count(1);
  std::ostringstream soa_snapshot;
  std::ostringstream scalar_snapshot;
  soa.save(soa_snapshot);
  scalar.save(scalar_snapshot);
  EXPECT_EQ(soa_snapshot.str(), scalar_snapshot.str());
}

}  // namespace
}  // namespace melody::sim
