// Long-horizon contract of the persistent bid book: a platform that keeps
// the price ladder across runs (incremental ranking) must reproduce the
// plain rebuild-every-run platform bit for bit over a 200-run Fig-9
// trajectory — at 1/2/8 threads, with and without an active fault plan,
// and across a mid-sequence checkpoint/kill/resume of the incremental
// platform (the book and the withdrawn set travel in the MLDYCKPT v2
// sections).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "auction/melody_auction.h"
#include "estimators/melody_estimator.h"
#include "sim/platform.h"
#include "util/thread_pool.h"

namespace melody::sim {
namespace {

LongTermScenario fig9_scenario() {
  LongTermScenario s;
  s.num_workers = 40;
  s.num_tasks = 30;
  s.runs = 200;
  s.budget = 120.0;
  return s;
}

estimators::MelodyEstimatorConfig tracker_config(const LongTermScenario& s) {
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {s.initial_mu, s.initial_sigma};
  config.reestimation_period = s.reestimation_period;
  return config;
}

FaultPlan test_plan() {
  FaultPlan plan;
  plan.no_show_rate = 0.1;
  plan.score_drop_rate = 0.1;
  plan.score_corrupt_rate = 0.05;
  plan.churn_rate = 0.2;
  plan.churn_min_absence = 2;
  plan.churn_max_absence = 5;
  return plan;
}

constexpr std::uint64_t kPopulationSeed = 3;
constexpr std::uint64_t kPlatformSeed = 44;

struct Rig {
  LongTermScenario scenario;
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator;
  Platform platform;

  Rig(const LongTermScenario& s, std::vector<SimWorker> workers)
      : scenario(s),
        estimator(tracker_config(s)),
        platform(scenario, mechanism, estimator, std::move(workers),
                 kPlatformSeed) {}
};

std::vector<SimWorker> population(const LongTermScenario& s) {
  util::Rng rng(kPopulationSeed);
  return sample_population(s.population_config(), rng);
}

void expect_records_identical(const std::vector<RunRecord>& a,
                              const std::vector<RunRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "run " << i + 1;
  }
}

std::vector<RunRecord> run_plain(const LongTermScenario& s,
                                 const FaultPlan& plan) {
  Rig rig(s, population(s));
  if (plan.active()) rig.platform.set_fault_plan(plan);
  return rig.platform.run_all();
}

/// The incremental platform with a kill/resume in the middle: step to
/// `interrupt_after`, snapshot, destroy the rig, reconstruct from an empty
/// population with the book enabled, load, and finish.
std::vector<RunRecord> run_incremental_resumed(const LongTermScenario& s,
                                               const FaultPlan& plan,
                                               int interrupt_after) {
  std::string checkpoint;
  std::vector<RunRecord> records;
  {
    Rig rig(s, population(s));
    rig.platform.enable_bid_book();
    if (plan.active()) rig.platform.set_fault_plan(plan);
    for (int r = 0; r < interrupt_after; ++r) {
      records.push_back(rig.platform.step());
    }
    EXPECT_EQ(rig.platform.bid_book().check_links(), "");
    std::ostringstream snap;
    rig.platform.save(snap);
    checkpoint = snap.str();
  }
  Rig rig(s, {});
  rig.platform.enable_bid_book();
  std::istringstream snap(checkpoint);
  rig.platform.load(snap);
  EXPECT_TRUE(rig.platform.bid_book_enabled());
  EXPECT_EQ(rig.platform.bid_book().check_links(), "");
  EXPECT_EQ(rig.platform.current_run(), interrupt_after + 1);
  auto rest = rig.platform.run_all();
  records.insert(records.end(), rest.begin(), rest.end());
  return records;
}

class IncrementalMatrix : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { util::set_shared_thread_count(GetParam()); }
  void TearDown() override { util::set_shared_thread_count(1); }
};

TEST_P(IncrementalMatrix, TrajectoryBitIdenticalWithoutFaults) {
  const auto scenario = fig9_scenario();
  const auto plain = run_plain(scenario, FaultPlan{});
  expect_records_identical(
      plain, run_incremental_resumed(scenario, FaultPlan{}, 77));
}

TEST_P(IncrementalMatrix, TrajectoryBitIdenticalWithFaults) {
  const auto scenario = fig9_scenario();
  const auto plain = run_plain(scenario, test_plan());
  expect_records_identical(
      plain, run_incremental_resumed(scenario, test_plan(), 77));
}

INSTANTIATE_TEST_SUITE_P(Threads, IncrementalMatrix,
                         ::testing::Values(1, 2, 8));

TEST(IncrementalAuction, BookSurvivesCheckpointWithDigestIntact) {
  auto scenario = fig9_scenario();
  scenario.runs = 20;
  Rig rig(scenario, population(scenario));
  rig.platform.enable_bid_book();
  for (int r = 0; r < 10; ++r) rig.platform.step();
  const std::uint64_t digest = rig.platform.bid_book().content_digest();
  ASSERT_NE(rig.platform.bid_book().size(), 0u);

  std::ostringstream snap;
  rig.platform.save(snap);
  Rig restored(scenario, {});
  restored.platform.enable_bid_book();
  std::istringstream in(snap.str());
  restored.platform.load(in);
  EXPECT_EQ(restored.platform.bid_book().content_digest(), digest);
}

TEST(IncrementalAuction, V1SnapshotLoadsIntoEnabledPlatform) {
  // A checkpoint written by a plain platform (MLDYCKPT v1, no book
  // section) must restore into a book-enabled platform and continue
  // bit-identically: the ladder starts empty and the first diff
  // repopulates it before the next auction.
  auto scenario = fig9_scenario();
  scenario.runs = 30;
  const auto straight = run_plain(scenario, FaultPlan{});

  std::string v1_checkpoint;
  std::vector<RunRecord> records;
  {
    Rig rig(scenario, population(scenario));
    for (int r = 0; r < 12; ++r) records.push_back(rig.platform.step());
    std::ostringstream snap;
    rig.platform.save(snap);
    v1_checkpoint = snap.str();
  }
  Rig rig(scenario, {});
  rig.platform.enable_bid_book();
  std::istringstream snap(v1_checkpoint);
  rig.platform.load(snap);
  EXPECT_TRUE(rig.platform.bid_book().empty());
  auto rest = rig.platform.run_all();
  records.insert(records.end(), rest.begin(), rest.end());
  expect_records_identical(straight, records);
  EXPECT_FALSE(rig.platform.bid_book().empty());
}

TEST(IncrementalAuction, PlainSnapshotBytesUnchangedByTheFeature) {
  // A platform that never enables the book writes byte-identical v1
  // snapshots — the golden-digest lattice in test_soa_equivalence depends
  // on this, and it is what keeps old tooling readable.
  auto scenario = fig9_scenario();
  scenario.runs = 10;
  Rig plain(scenario, population(scenario));
  Rig enabled(scenario, population(scenario));
  enabled.platform.enable_bid_book();
  for (int r = 0; r < 5; ++r) {
    plain.platform.step();
    enabled.platform.step();
  }
  std::ostringstream plain_snap, enabled_snap;
  plain.platform.save(plain_snap);
  enabled.platform.save(enabled_snap);
  // Same prefix stream, different container version: the enabled platform
  // writes strictly more bytes (withdrawn set + book blob), the plain one
  // stays v1.
  EXPECT_NE(plain_snap.str(), enabled_snap.str());
  EXPECT_GT(enabled_snap.str().size(), plain_snap.str().size());
}

TEST(IncrementalAuction, WithdrawnWorkersSitOutAndSurviveResume) {
  auto scenario = fig9_scenario();
  scenario.runs = 20;

  // Withdraw one worker on both of two identical platforms; outcomes must
  // agree (determinism of the withdrawn set), and a withdrawn worker's
  // flag must survive a checkpoint round trip.
  const auto run_with_withdrawal = [&](bool through_snapshot) {
    Rig rig(scenario, population(scenario));
    rig.platform.enable_bid_book();
    const auction::WorkerId victim = rig.platform.workers().front().id();
    for (int r = 0; r < 5; ++r) rig.platform.step();
    EXPECT_TRUE(rig.platform.set_withdrawn(victim, true));
    EXPECT_TRUE(rig.platform.is_withdrawn(victim));
    std::vector<RunRecord> records;
    if (through_snapshot) {
      std::ostringstream snap;
      rig.platform.save(snap);
      Rig restored(scenario, {});
      restored.platform.enable_bid_book();
      std::istringstream in(snap.str());
      restored.platform.load(in);
      EXPECT_TRUE(restored.platform.is_withdrawn(victim));
      return restored.platform.run_all();
    }
    return rig.platform.run_all();
  };
  expect_records_identical(run_with_withdrawal(false),
                           run_with_withdrawal(true));
}

TEST(IncrementalAuction, UpdateBidTakesEffectDeterministically) {
  auto scenario = fig9_scenario();
  scenario.runs = 20;
  const auto run_with_rebid = [&] {
    Rig rig(scenario, population(scenario));
    rig.platform.enable_bid_book();
    const auction::WorkerId worker = rig.platform.workers().front().id();
    std::vector<RunRecord> records;
    for (int r = 0; r < 5; ++r) records.push_back(rig.platform.step());
    EXPECT_TRUE(rig.platform.update_bid(worker, {1.05, 5}));
    EXPECT_FALSE(rig.platform.update_bid(9999, {1.0, 1}));
    auto rest = rig.platform.run_all();
    records.insert(records.end(), rest.begin(), rest.end());
    return records;
  };
  expect_records_identical(run_with_rebid(), run_with_rebid());
}

}  // namespace
}  // namespace melody::sim
