// Value-iteration tests for the Theorem-5 long-term utility recursion.
#include "core/bellman.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace melody::core {
namespace {

TEST(QualityGridTest, ValuesAndStep) {
  QualityGrid grid;
  grid.quality_min = 0.0;
  grid.quality_max = 10.0;
  grid.points = 11;
  EXPECT_DOUBLE_EQ(grid.value(0), 0.0);
  EXPECT_DOUBLE_EQ(grid.value(10), 10.0);
  EXPECT_DOUBLE_EQ(grid.value(5), 5.0);
  EXPECT_DOUBLE_EQ(grid.step(), 1.0);
}

TEST(QualityGridTest, DegenerateSinglePoint) {
  QualityGrid grid;
  grid.points = 1;
  EXPECT_DOUBLE_EQ(grid.value(0), grid.quality_min);
  EXPECT_DOUBLE_EQ(grid.step(), 0.0);
}

TEST(ValueIteration, MissingCallbacksThrow) {
  BellmanConfig config;
  EXPECT_THROW(value_iteration(config, {}), std::invalid_argument);
}

TEST(ValueIteration, ZeroUtilityGivesZeroValue) {
  BellmanConfig config;
  config.iterations = 20;
  StageModel model;
  model.assignment_probability = [](double) { return 0.5; };
  model.utility_when_assigned = [](double) { return 0.0; };
  for (double v : value_iteration(config, model)) EXPECT_EQ(v, 0.0);
}

TEST(ValueIteration, ValueGrowsWithIterations) {
  BellmanConfig config;
  StageModel model;
  model.assignment_probability = [](double) { return 1.0; };
  model.utility_when_assigned = [](double) { return 1.0; };
  config.iterations = 10;
  const auto v10 = value_iteration(config, model);
  config.iterations = 20;
  const auto v20 = value_iteration(config, model);
  for (std::size_t s = 0; s < v10.size(); ++s) EXPECT_GT(v20[s], v10[s]);
}

TEST(ValueIteration, ConstantModelAccumulatesExactly) {
  // p = 1, u = 1, any transition: V after k iterations is exactly k.
  BellmanConfig config;
  config.iterations = 15;
  StageModel model;
  model.assignment_probability = [](double) { return 1.0; };
  model.utility_when_assigned = [](double) { return 1.0; };
  for (double v : value_iteration(config, model)) EXPECT_NEAR(v, 15.0, 1e-9);
}

TEST(ValueIteration, DominanceHigherPerRunUtility) {
  // The induction step of Theorem 5: pointwise-higher per-run utility
  // (truthful, by Theorem 4) implies pointwise-higher long-term value.
  BellmanConfig config;
  config.iterations = 60;
  StageModel truthful;
  truthful.assignment_probability = [](double mu) {
    return std::min(1.0, mu / 10.0);
  };
  truthful.utility_when_assigned = [](double mu) { return 0.1 + 0.02 * mu; };
  StageModel untruthful = truthful;
  untruthful.utility_when_assigned = [](double mu) {
    return 0.08 + 0.02 * mu;  // strictly dominated per-run utility
  };
  const auto v_truthful = value_iteration(config, truthful);
  const auto v_untruthful = value_iteration(config, untruthful);
  for (std::size_t s = 0; s < v_truthful.size(); ++s) {
    EXPECT_GE(v_truthful[s], v_untruthful[s] - 1e-12);
  }
}

TEST(ValueIteration, DominanceWithDifferentAssignmentProbability) {
  // Untruthful bidding may change the assignment probability too; the
  // value under dominated per-run utility still cannot win when utilities
  // are non-negative and truthful utility is pointwise maximal.
  BellmanConfig config;
  config.iterations = 60;
  StageModel truthful;
  truthful.assignment_probability = [](double mu) {
    return std::min(1.0, 0.2 + mu / 15.0);
  };
  truthful.utility_when_assigned = [](double mu) { return 0.05 * mu; };
  StageModel cheat = truthful;
  cheat.assignment_probability = [](double mu) {
    return std::min(1.0, 0.1 + mu / 20.0);  // loses rank by overbidding
  };
  cheat.utility_when_assigned = [](double mu) { return 0.04 * mu; };
  const auto v_truthful = value_iteration(config, truthful);
  const auto v_cheat = value_iteration(config, cheat);
  for (std::size_t s = 0; s < v_truthful.size(); ++s) {
    EXPECT_GE(v_truthful[s], v_cheat[s] - 1e-12);
  }
}

TEST(ValueIteration, HigherQualityStatesEarnMore) {
  BellmanConfig config;
  config.iterations = 80;
  config.transition_stddev = 0.3;
  StageModel model;
  model.assignment_probability = [](double mu) {
    return std::min(1.0, mu / 10.0);
  };
  model.utility_when_assigned = [](double) { return 0.5; };
  const auto v = value_iteration(config, model);
  // Compare the bottom and top of the grid.
  EXPECT_GT(v.back(), v.front());
}

TEST(ValueIteration, TransitionPullsValueAcrossStates) {
  // With a = 1 and large stddev, even zero-probability states inherit
  // value through neighbours; with tiny stddev they stay near zero.
  BellmanConfig wide;
  wide.iterations = 40;
  wide.transition_stddev = 3.0;
  BellmanConfig narrow = wide;
  narrow.transition_stddev = 0.05;
  StageModel model;
  // Only high-quality states are ever assigned.
  model.assignment_probability = [](double mu) { return mu > 8.0 ? 1.0 : 0.5; };
  model.utility_when_assigned = [](double mu) { return mu > 8.0 ? 1.0 : 0.0; };
  const auto v_wide = value_iteration(wide, model);
  const auto v_narrow = value_iteration(narrow, model);
  // At the low end of the grid, wide diffusion carries more value down.
  EXPECT_GT(v_wide.front(), v_narrow.front());
}

}  // namespace
}  // namespace melody::core
