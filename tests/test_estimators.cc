// Unit tests for the four quality estimators, including the MELODY
// tracker's newcomer handling and periodic EM re-estimation (Algorithm 3).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "estimators/grid_estimator.h"
#include "estimators/melody_estimator.h"
#include "estimators/ml_ar_estimator.h"
#include "estimators/ml_cr_estimator.h"
#include "estimators/static_estimator.h"
#include "util/rng.h"

namespace melody::estimators {
namespace {

lds::ScoreSet scores_of(std::initializer_list<double> values) {
  return lds::ScoreSet::from(std::vector<double>(values));
}

TEST(StaticEstimatorTest, InitialEstimateBeforeScores) {
  StaticEstimator e(5.5, 3);
  e.register_worker(1);
  EXPECT_DOUBLE_EQ(e.estimate(1), 5.5);
}

TEST(StaticEstimatorTest, AveragesWarmupThenFreezes) {
  StaticEstimator e(5.5, 2);
  e.register_worker(1);
  e.observe(1, scores_of({4.0}));
  EXPECT_DOUBLE_EQ(e.estimate(1), 4.0);
  e.observe(1, scores_of({8.0}));
  EXPECT_DOUBLE_EQ(e.estimate(1), 6.0);
  // Warm-up over: further scores are ignored.
  e.observe(1, scores_of({100.0}));
  EXPECT_DOUBLE_EQ(e.estimate(1), 6.0);
}

TEST(StaticEstimatorTest, EmptyRunsCountTowardWarmup) {
  StaticEstimator e(5.5, 2);
  e.register_worker(1);
  e.observe(1, {});
  e.observe(1, {});
  e.observe(1, scores_of({9.0}));  // arrives after warm-up: ignored
  EXPECT_DOUBLE_EQ(e.estimate(1), 5.5);
}

TEST(StaticEstimatorTest, UnknownWorkerThrows) {
  StaticEstimator e(5.5);
  EXPECT_THROW(e.estimate(99), std::out_of_range);
  EXPECT_THROW(e.observe(99, {}), std::out_of_range);
}

TEST(MlCrTest, TracksCurrentRunOnly) {
  MlCurrentRunEstimator e(5.5);
  e.register_worker(1);
  EXPECT_DOUBLE_EQ(e.estimate(1), 5.5);
  e.observe(1, scores_of({2.0, 4.0}));
  EXPECT_DOUBLE_EQ(e.estimate(1), 3.0);
  e.observe(1, scores_of({9.0}));
  EXPECT_DOUBLE_EQ(e.estimate(1), 9.0);  // history forgotten
}

TEST(MlCrTest, EmptyRunKeepsPreviousEstimate) {
  MlCurrentRunEstimator e(5.5);
  e.register_worker(1);
  e.observe(1, scores_of({7.0}));
  e.observe(1, {});
  EXPECT_DOUBLE_EQ(e.estimate(1), 7.0);
}

TEST(MlArTest, AveragesAllHistoryEqually) {
  MlAllRunsEstimator e(5.5);
  e.register_worker(1);
  EXPECT_DOUBLE_EQ(e.estimate(1), 5.5);
  e.observe(1, scores_of({2.0, 4.0}));
  EXPECT_DOUBLE_EQ(e.estimate(1), 3.0);
  e.observe(1, scores_of({9.0}));
  EXPECT_DOUBLE_EQ(e.estimate(1), 5.0);  // (2+4+9)/3
  e.observe(1, {});
  EXPECT_DOUBLE_EQ(e.estimate(1), 5.0);
}

TEST(MlArTest, SlowToAdaptByConstruction) {
  // After a long flat history, one run at a new level barely moves ML-AR
  // but fully moves ML-CR — the paper's under- vs over-fitting contrast.
  MlAllRunsEstimator ar(5.5);
  MlCurrentRunEstimator cr(5.5);
  ar.register_worker(1);
  cr.register_worker(1);
  for (int r = 0; r < 50; ++r) {
    ar.observe(1, scores_of({4.0}));
    cr.observe(1, scores_of({4.0}));
  }
  ar.observe(1, scores_of({9.0}));
  cr.observe(1, scores_of({9.0}));
  EXPECT_LT(ar.estimate(1), 4.5);
  EXPECT_DOUBLE_EQ(cr.estimate(1), 9.0);
}

TEST(MelodyEstimatorTest, NewcomerUsesInitialPosterior) {
  MelodyEstimatorConfig config;
  config.initial_posterior = {5.5, 2.25};
  config.initial_params = {0.9, 1.0, 9.0};
  MelodyEstimator e(config);
  e.register_worker(1);
  // Eq. (19): estimate is a * mu-hat^0.
  EXPECT_DOUBLE_EQ(e.estimate(1), 0.9 * 5.5);
  EXPECT_EQ(e.posterior(1).mean, 5.5);
}

TEST(MelodyEstimatorTest, ObserveAppliesTheorem3) {
  MelodyEstimatorConfig config;
  config.initial_posterior = {5.5, 2.25};
  config.initial_params = {1.0, 0.5, 2.0};
  config.reestimation_period = 0;  // isolate the Kalman path
  MelodyEstimator e(config);
  e.register_worker(1);
  const lds::ScoreSet set = scores_of({6.0, 7.0});
  e.observe(1, set);
  const lds::Gaussian expected =
      lds::filter_step({5.5, 2.25}, set, {1.0, 0.5, 2.0});
  EXPECT_NEAR(e.posterior(1).mean, expected.mean, 1e-12);
  EXPECT_NEAR(e.posterior(1).var, expected.var, 1e-12);
  EXPECT_NEAR(e.estimate(1), expected.mean, 1e-12);  // a = 1
}

TEST(MelodyEstimatorTest, EmptyObservationFreezesChainByDefault) {
  MelodyEstimatorConfig config;
  config.initial_posterior = {5.0, 1.0};
  config.initial_params = {1.0, 0.5, 2.0};
  config.reestimation_period = 0;
  MelodyEstimator e(config);
  e.register_worker(1);
  e.observe(1, {});
  // Participation-indexed chain: an idle run changes nothing.
  EXPECT_DOUBLE_EQ(e.posterior(1).mean, 5.0);
  EXPECT_DOUBLE_EQ(e.posterior(1).var, 1.0);
}

TEST(MelodyEstimatorTest, EmptyObservationPropagatesPriorWhenConfigured) {
  MelodyEstimatorConfig config;
  config.initial_posterior = {5.0, 1.0};
  config.initial_params = {1.0, 0.5, 2.0};
  config.reestimation_period = 0;
  config.advance_on_empty_runs = true;
  MelodyEstimator e(config);
  e.register_worker(1);
  e.observe(1, {});
  EXPECT_DOUBLE_EQ(e.posterior(1).mean, 5.0);
  EXPECT_DOUBLE_EQ(e.posterior(1).var, 1.5);  // variance grows by gamma
}

TEST(MelodyEstimatorTest, IdleDecayArtifactOnlyInPerRunMode) {
  // With a < 1 and a long idle stretch, per-run propagation decays the
  // estimate toward the clamp floor; the participation-indexed default
  // keeps the last posterior.
  for (bool advance : {false, true}) {
    MelodyEstimatorConfig config;
    config.initial_posterior = {6.0, 1.0};
    config.initial_params = {0.9, 0.2, 2.0};
    config.reestimation_period = 0;
    config.advance_on_empty_runs = advance;
    MelodyEstimator e(config);
    e.register_worker(1);
    for (int r = 0; r < 50; ++r) e.observe(1, {});
    if (advance) {
      EXPECT_NEAR(e.estimate(1), config.estimate_min, 1e-6);
    } else {
      EXPECT_NEAR(e.estimate(1), 0.9 * 6.0, 1e-12);
    }
  }
}

TEST(MelodyEstimatorTest, ConvergesToConstantSignal) {
  MelodyEstimatorConfig config;
  config.initial_posterior = {5.5, 2.25};
  config.initial_params = {1.0, 0.1, 4.0};
  config.reestimation_period = 0;
  MelodyEstimator e(config);
  e.register_worker(1);
  for (int r = 0; r < 100; ++r) e.observe(1, scores_of({8.0, 8.0, 8.0}));
  EXPECT_NEAR(e.estimate(1), 8.0, 0.1);
}

TEST(MelodyEstimatorTest, EmTriggersEveryTRuns) {
  MelodyEstimatorConfig config;
  config.reestimation_period = 5;
  config.min_history_for_em = 5;
  MelodyEstimator e(config);
  e.register_worker(1);
  util::Rng rng(3);
  for (int r = 1; r <= 20; ++r) {
    lds::ScoreSet set;
    for (int i = 0; i < 3; ++i) set.add(rng.uniform(4.0, 7.0));
    e.observe(1, set);
    EXPECT_EQ(e.reestimation_count(1), r / 5) << "run " << r;
  }
}

TEST(MelodyEstimatorTest, EmDisabledWhenPeriodZero) {
  MelodyEstimatorConfig config;
  config.reestimation_period = 0;
  MelodyEstimator e(config);
  e.register_worker(1);
  for (int r = 0; r < 30; ++r) e.observe(1, scores_of({5.0}));
  EXPECT_EQ(e.reestimation_count(1), 0);
}

TEST(MelodyEstimatorTest, EmRespectsMinimumHistory) {
  MelodyEstimatorConfig config;
  config.reestimation_period = 2;
  config.min_history_for_em = 10;
  MelodyEstimator e(config);
  e.register_worker(1);
  for (int r = 0; r < 9; ++r) e.observe(1, scores_of({5.0}));
  EXPECT_EQ(e.reestimation_count(1), 0);
  e.observe(1, scores_of({5.0}));
  EXPECT_EQ(e.reestimation_count(1), 1);
}

TEST(MelodyEstimatorTest, EmAdaptsParamsTowardData) {
  // Feed noisy scores with high emission variance; EM should raise eta
  // from a too-confident initial value.
  MelodyEstimatorConfig config;
  config.initial_params = {1.0, 0.5, 0.5};
  config.reestimation_period = 10;
  MelodyEstimator e(config);
  e.register_worker(1);
  util::Rng rng(7);
  for (int r = 0; r < 60; ++r) {
    lds::ScoreSet set;
    for (int i = 0; i < 5; ++i) set.add(rng.normal(5.5, 3.0));
    e.observe(1, set);
  }
  EXPECT_GT(e.params(1).eta, 2.0);
}

TEST(MelodyEstimatorTest, TracksDriftFasterThanMlAr) {
  // A rising worker: MELODY's dynamic model must lag less than ML-AR.
  MelodyEstimatorConfig config;
  config.initial_posterior = {3.0, 2.25};
  MelodyEstimator melody(config);
  MlAllRunsEstimator ar(3.0);
  melody.register_worker(1);
  ar.register_worker(1);
  util::Rng rng(11);
  double q = 3.0;
  for (int r = 0; r < 200; ++r) {
    q += 0.025;  // rises from 3 to 8
    lds::ScoreSet set;
    for (int i = 0; i < 3; ++i) set.add(rng.normal(q, 1.0));
    melody.observe(1, set);
    ar.observe(1, set);
  }
  EXPECT_LT(std::abs(melody.estimate(1) - q), std::abs(ar.estimate(1) - q));
}

TEST(MelodyEstimatorTest, RegisterIsIdempotentViaTryEmplace) {
  MelodyEstimator e;
  e.register_worker(1);
  e.observe(1, scores_of({9.0}));
  const double after = e.estimate(1);
  e.register_worker(1);  // must not reset state
  EXPECT_DOUBLE_EQ(e.estimate(1), after);
}

TEST(MelodyEstimatorTest, ExplorationBonusGrowsWhileStarved) {
  MelodyEstimatorConfig config;
  config.initial_posterior = {2.0, 1.0};
  config.reestimation_period = 0;
  config.exploration_beta = 1.0;
  MelodyEstimator explorer(config);
  config.exploration_beta = 0.0;
  MelodyEstimator plain(config);
  explorer.register_worker(1);
  plain.register_worker(1);
  double previous = explorer.estimate(1);
  for (int r = 0; r < 50; ++r) {
    explorer.observe(1, {});
    plain.observe(1, {});
    EXPECT_GE(explorer.estimate(1), previous);  // bonus only grows while idle
    previous = explorer.estimate(1);
  }
  EXPECT_GT(explorer.estimate(1), plain.estimate(1));
  EXPECT_LE(explorer.estimate(1), config.estimate_max);
}

TEST(MelodyEstimatorTest, ExplorationBonusShrinksWithObservations) {
  MelodyEstimatorConfig config;
  config.initial_posterior = {5.0, 1.0};
  config.reestimation_period = 0;
  config.exploration_beta = 1.0;
  MelodyEstimator e(config);
  e.register_worker(1);
  for (int r = 0; r < 100; ++r) e.observe(1, scores_of({5.0, 5.0, 5.0}));
  // Constantly observed: the bonus ~ sqrt(log(n)/n) -> small.
  EXPECT_NEAR(e.estimate(1), 5.0, 0.4);
}

TEST(MelodyEstimatorTest, WindowedHistoryMatchesUnboundedPosterior) {
  // Without EM, the filter is exactly sequential, so the window bound must
  // not change the posterior at all.
  MelodyEstimatorConfig unbounded;
  unbounded.reestimation_period = 0;
  MelodyEstimatorConfig windowed = unbounded;
  windowed.max_history = 5;
  MelodyEstimator a(unbounded), b(windowed);
  a.register_worker(1);
  b.register_worker(1);
  util::Rng rng(19);
  for (int r = 0; r < 40; ++r) {
    lds::ScoreSet set;
    set.add(rng.uniform(2.0, 9.0));
    a.observe(1, set);
    b.observe(1, set);
  }
  EXPECT_NEAR(a.posterior(1).mean, b.posterior(1).mean, 1e-12);
  EXPECT_NEAR(a.posterior(1).var, b.posterior(1).var, 1e-12);
}

TEST(MelodyEstimatorTest, WindowedHistoryStillRunsEm) {
  MelodyEstimatorConfig config;
  config.reestimation_period = 10;
  config.max_history = 12;
  MelodyEstimator e(config);
  e.register_worker(1);
  util::Rng rng(23);
  for (int r = 0; r < 50; ++r) {
    lds::ScoreSet set;
    for (int s = 0; s < 3; ++s) set.add(rng.normal(6.0, 2.0));
    e.observe(1, set);
  }
  EXPECT_GE(e.reestimation_count(1), 4);
  // The windowed fit still converges near the data.
  EXPECT_NEAR(e.estimate(1), 6.0, 1.0);
}

TEST(MelodyEstimatorTest, InvalidInitialParamsThrow) {
  MelodyEstimatorConfig config;
  config.initial_params = {1.0, -1.0, 1.0};
  EXPECT_THROW(MelodyEstimator{config}, std::domain_error);
}

TEST(QualityEstimatorTest, PolymorphicSaveLoadRoundTripsAllEstimators) {
  // Persistence lives on the base interface: feed each implementation the
  // same history through a base pointer, snapshot it, restore into a
  // fresh same-config instance, and compare estimates — no downcasting.
  const auto make_all = [] {
    std::vector<std::unique_ptr<QualityEstimator>> all;
    all.push_back(std::make_unique<StaticEstimator>(5.5, 10));
    all.push_back(std::make_unique<MlCurrentRunEstimator>(5.5));
    all.push_back(std::make_unique<MlAllRunsEstimator>(5.5));
    all.push_back(std::make_unique<MelodyEstimator>());
    all.push_back(std::make_unique<GridEstimator>());
    return all;
  };

  auto originals = make_all();
  util::Rng rng(29);
  std::vector<std::pair<auction::WorkerId, lds::ScoreSet>> history;
  for (int run = 0; run < 15; ++run) {
    for (auction::WorkerId id = 0; id < 6; ++id) {
      lds::ScoreSet set;
      if (rng.bernoulli(0.8)) {
        const int n = static_cast<int>(rng.uniform_int(1, 4));
        for (int s = 0; s < n; ++s) set.add(rng.uniform(1.0, 10.0));
      }
      history.emplace_back(id, set);
    }
  }
  for (auto& estimator : originals) {
    for (auction::WorkerId id = 0; id < 6; ++id) {
      estimator->register_worker(id);
    }
    for (const auto& [id, set] : history) estimator->observe(id, set);
  }

  auto restored_set = make_all();
  for (std::size_t e = 0; e < originals.size(); ++e) {
    QualityEstimator& original = *originals[e];
    QualityEstimator& restored = *restored_set[e];
    std::stringstream snapshot;
    original.save(snapshot);
    restored.load(snapshot);
    for (auction::WorkerId id = 0; id < 6; ++id) {
      EXPECT_DOUBLE_EQ(restored.estimate(id), original.estimate(id))
          << original.name() << " worker " << id;
    }
    // Snapshots are deterministic: re-saving the restored instance must
    // reproduce the original bytes.
    std::stringstream again;
    restored.save(again);
    EXPECT_EQ(again.str(), snapshot.str()) << original.name();
  }
}

TEST(QualityEstimatorTest, SaveLoadRejectsForeignHeader) {
  // Each estimator's loader must refuse another estimator's snapshot
  // instead of silently misreading it.
  StaticEstimator source(5.5, 10);
  source.register_worker(1);
  std::stringstream snapshot;
  source.save(snapshot);
  MlAllRunsEstimator wrong(5.5);
  EXPECT_THROW(wrong.load(snapshot), std::runtime_error);
}

}  // namespace
}  // namespace melody::estimators
