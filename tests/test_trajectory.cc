// Trajectory generators and the Fig. 1 stability classifier.
#include "sim/trajectory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/stats.h"

namespace melody::sim {
namespace {

TrajectoryConfig base_config(TrajectoryKind kind) {
  TrajectoryConfig c;
  c.kind = kind;
  c.start_level = 3.0;
  c.swing = 4.0;
  c.period = 100.0;
  c.noise_stddev = 0.1;
  c.horizon = 500;
  return c;
}

TEST(Trajectory, LengthAndClamping) {
  util::Rng rng(1);
  auto config = base_config(TrajectoryKind::kRising);
  config.start_level = 9.0;  // 9 + 4 would exceed the max of 10
  const auto q = generate_trajectory(config, 500, rng);
  ASSERT_EQ(q.size(), 500u);
  for (double v : q) {
    EXPECT_GE(v, config.min_quality);
    EXPECT_LE(v, config.max_quality);
  }
}

TEST(Trajectory, ZeroRunsIsEmpty) {
  util::Rng rng(2);
  EXPECT_TRUE(generate_trajectory(base_config(TrajectoryKind::kStable), 0, rng)
                  .empty());
}

TEST(Trajectory, RisingHasPositiveTrend) {
  util::Rng rng(3);
  const auto q = generate_trajectory(base_config(TrajectoryKind::kRising), 500,
                                     rng);
  const auto fit = util::linear_trend(q);
  EXPECT_GT(fit.slope, 0.004);  // ~4/500 per run expected
}

TEST(Trajectory, DecliningHasNegativeTrend) {
  util::Rng rng(4);
  auto config = base_config(TrajectoryKind::kDeclining);
  config.start_level = 8.0;
  const auto q = generate_trajectory(config, 500, rng);
  EXPECT_LT(util::linear_trend(q).slope, -0.004);
}

TEST(Trajectory, FluctuatingCrossesItsMeanRepeatedly) {
  util::Rng rng(5);
  auto config = base_config(TrajectoryKind::kFluctuating);
  config.start_level = 5.5;
  config.swing = 2.0;
  const auto q = generate_trajectory(config, 500, rng);
  const double m = util::mean(q);
  int crossings = 0;
  for (std::size_t i = 1; i < q.size(); ++i) {
    if ((q[i - 1] - m) * (q[i] - m) < 0.0) ++crossings;
  }
  // Five periods in 500 runs -> around 10 crossings; noise adds more.
  EXPECT_GE(crossings, 6);
}

TEST(Trajectory, StableStaysNearStartLevel) {
  util::Rng rng(6);
  auto config = base_config(TrajectoryKind::kStable);
  config.start_level = 6.0;
  config.noise_stddev = 0.05;
  const auto q = generate_trajectory(config, 500, rng);
  EXPECT_NEAR(util::mean(q), 6.0, 0.5);
  EXPECT_LT(util::variance(q), 1.0);
}

TEST(Stability, ClassifierOnSyntheticCurves) {
  util::Rng rng(7);
  auto stable_config = base_config(TrajectoryKind::kStable);
  stable_config.noise_stddev = 0.05;
  EXPECT_TRUE(is_stable(generate_trajectory(stable_config, 500, rng)));

  auto rising_config = base_config(TrajectoryKind::kRising);
  EXPECT_FALSE(is_stable(generate_trajectory(rising_config, 500, rng)));
}

TEST(Stability, ShortCurvesAreStable) {
  EXPECT_TRUE(is_stable(std::vector<double>{}));
  EXPECT_TRUE(is_stable(std::vector<double>{5.0}));
}

TEST(Stability, HighVarianceIsUnstableEvenWithoutTrend) {
  // Symmetric zig-zag: zero slope but large variance.
  std::vector<double> q;
  for (int i = 0; i < 100; ++i) q.push_back(i % 2 == 0 ? 2.0 : 9.0);
  EXPECT_FALSE(is_stable(q));
}

TEST(Stability, CustomCriteria) {
  std::vector<double> q;
  for (int i = 0; i < 100; ++i) q.push_back(5.0 + 0.01 * i);
  StabilityCriteria lax;
  lax.max_abs_slope = 0.1;
  EXPECT_TRUE(is_stable(q, lax));
  StabilityCriteria strict;
  strict.max_abs_slope = 0.001;
  EXPECT_FALSE(is_stable(q, strict));
}

TEST(PopulationMixTest, SampleKindRespectsProportions) {
  util::Rng rng(8);
  PopulationMix mix;  // defaults: 8.5% stable
  int counts[4] = {0, 0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<int>(sample_kind(mix, rng))];
  }
  EXPECT_NEAR(counts[static_cast<int>(TrajectoryKind::kStable)] /
                  static_cast<double>(n),
              0.085, 0.01);
  EXPECT_NEAR(counts[static_cast<int>(TrajectoryKind::kRising)] /
                  static_cast<double>(n),
              0.305, 0.02);
}

TEST(PopulationMixTest, DegenerateMix) {
  util::Rng rng(9);
  PopulationMix only_stable{0.0, 0.0, 0.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_kind(only_stable, rng), TrajectoryKind::kStable);
  }
}

TEST(SampleConfig, KindSpecificShapes) {
  util::Rng rng(10);
  const auto rising = sample_config(TrajectoryKind::kRising, 1000, rng);
  EXPECT_EQ(rising.kind, TrajectoryKind::kRising);
  EXPECT_GT(rising.swing, 0.0);
  EXPECT_LE(rising.start_level + rising.swing, 10.0);

  const auto stable = sample_config(TrajectoryKind::kStable, 1000, rng);
  EXPECT_EQ(stable.swing, 0.0);
  EXPECT_LE(stable.noise_stddev, 0.1);

  const auto fluct = sample_config(TrajectoryKind::kFluctuating, 1000, rng);
  EXPECT_GT(fluct.period, 0.0);
}

TEST(ToString, AllKinds) {
  EXPECT_EQ(to_string(TrajectoryKind::kRising), "rising");
  EXPECT_EQ(to_string(TrajectoryKind::kDeclining), "declining");
  EXPECT_EQ(to_string(TrajectoryKind::kFluctuating), "fluctuating");
  EXPECT_EQ(to_string(TrajectoryKind::kStable), "stable");
}

}  // namespace
}  // namespace melody::sim
