// Edge cases of the little-endian checkpoint primitives: zero-length
// payloads, the max_size guard on length-prefixed reads, truncation error
// paths for every reader, and exact round-trips of extreme values (the
// checkpoint formats depend on every one of these behaviors).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/binio.h"

namespace melody::util::binio {
namespace {

TEST(BinIo, ScalarRoundTripsAtExtremes) {
  std::stringstream buffer;
  write_u8(buffer, 0);
  write_u8(buffer, 0xff);
  write_u32(buffer, 0);
  write_u32(buffer, std::numeric_limits<std::uint32_t>::max());
  write_u64(buffer, 0);
  write_u64(buffer, std::numeric_limits<std::uint64_t>::max());
  write_i32(buffer, std::numeric_limits<std::int32_t>::min());
  write_i32(buffer, -1);

  EXPECT_EQ(read_u8(buffer, "a"), 0);
  EXPECT_EQ(read_u8(buffer, "b"), 0xff);
  EXPECT_EQ(read_u32(buffer, "c"), 0u);
  EXPECT_EQ(read_u32(buffer, "d"), std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(read_u64(buffer, "e"), 0u);
  EXPECT_EQ(read_u64(buffer, "f"), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(read_i32(buffer, "g"), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(read_i32(buffer, "h"), -1);
}

TEST(BinIo, LittleEndianLayoutIsFixed) {
  std::ostringstream buffer;
  write_u32(buffer, 0x0a0b0c0d);
  const std::string bytes = buffer.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x0d);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x0c);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x0b);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x0a);
}

TEST(BinIo, DoubleSpecialsRoundTripBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -std::numeric_limits<double>::min(),
                           1.8656653187601029};
  for (const double value : values) {
    std::stringstream buffer;
    write_f64(buffer, value);
    const double back = read_f64(buffer, "f64");
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(value))
        << value;
  }
  // -0.0 keeps its sign (bit equality above already implies it, but the
  // signbit is what checkpoint consumers would actually observe).
  std::stringstream buffer;
  write_f64(buffer, -0.0);
  EXPECT_TRUE(std::signbit(read_f64(buffer, "f64")));
}

TEST(BinIo, ZeroLengthBytesRoundTrip) {
  std::stringstream buffer;
  write_bytes(buffer, "");
  write_u8(buffer, 0x5a);  // sentinel right behind the empty payload
  EXPECT_EQ(buffer.str().size(), 9u);  // u64 length prefix + 1 sentinel
  EXPECT_EQ(read_bytes(buffer, "empty"), "");
  EXPECT_EQ(read_u8(buffer, "sentinel"), 0x5a);
}

TEST(BinIo, BytesWithEmbeddedNulsRoundTrip) {
  const std::string payload("a\0b\0\0c", 6);
  std::stringstream buffer;
  write_bytes(buffer, payload);
  EXPECT_EQ(read_bytes(buffer, "nuls"), payload);
}

TEST(BinIo, MaxSizeGuardRejectsImplausibleLengths) {
  std::stringstream at_limit;
  write_bytes(at_limit, "12345");
  EXPECT_EQ(read_bytes(at_limit, "limit", 5), "12345");  // boundary passes

  std::stringstream over_limit;
  write_bytes(over_limit, "12345");
  try {
    read_bytes(over_limit, "blob", 4);
    FAIL() << "length above max_size must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("blob"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos);
  }

  // A corrupt length field must be rejected BEFORE any allocation happens.
  std::stringstream corrupt;
  write_u64(corrupt, std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW(read_bytes(corrupt, "corrupt"), std::runtime_error);
}

TEST(BinIo, TruncatedInputThrowsWithContextForEveryReader) {
  {
    std::istringstream empty;
    try {
      read_u8(empty, "platform header");
      FAIL() << "read_u8 of empty stream must throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("platform header"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    }
  }
  {
    std::istringstream three_bytes("abc");
    EXPECT_THROW(read_u32(three_bytes, "u32"), std::runtime_error);
  }
  {
    std::istringstream seven_bytes("abcdefg");
    EXPECT_THROW(read_u64(seven_bytes, "u64"), std::runtime_error);
    std::istringstream again("abcdefg");
    EXPECT_THROW(read_f64(again, "f64"), std::runtime_error);
  }
  {
    std::istringstream empty;
    EXPECT_THROW(read_i32(empty, "i32"), std::runtime_error);
  }
  {
    // Length prefix promises 8 bytes, stream carries 3.
    std::stringstream short_payload;
    write_u64(short_payload, 8);
    short_payload << "abc";
    EXPECT_THROW(read_bytes(short_payload, "payload"), std::runtime_error);
  }
  {
    // Truncation inside the length prefix itself.
    std::istringstream half_prefix("abcd");
    EXPECT_THROW(read_bytes(half_prefix, "prefix"), std::runtime_error);
  }
}

TEST(BinIo, ReadersConsumeExactlyTheirWidth) {
  std::stringstream buffer;
  write_u32(buffer, 7);
  write_u64(buffer, 9);
  write_f64(buffer, 2.5);
  write_bytes(buffer, "xy");
  EXPECT_EQ(read_u32(buffer, "a"), 7u);
  EXPECT_EQ(read_u64(buffer, "b"), 9u);
  EXPECT_EQ(read_f64(buffer, "c"), 2.5);
  EXPECT_EQ(read_bytes(buffer, "d"), "xy");
  // Nothing left over: the next read hits clean EOF, not stale bytes.
  EXPECT_THROW(read_u8(buffer, "eof"), std::runtime_error);
}

}  // namespace
}  // namespace melody::util::binio
