// Tracker snapshot round-trips: a restarted platform must continue exactly
// where the old one stopped.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "estimators/melody_estimator.h"
#include "util/rng.h"

namespace melody::estimators {
namespace {

MelodyEstimatorConfig test_config() {
  MelodyEstimatorConfig config;
  config.reestimation_period = 7;
  return config;
}

MelodyEstimator populated_estimator(std::uint64_t seed) {
  MelodyEstimator e(test_config());
  util::Rng rng(seed);
  for (auction::WorkerId id = 0; id < 12; ++id) e.register_worker(id);
  for (int run = 0; run < 30; ++run) {
    for (auction::WorkerId id = 0; id < 12; ++id) {
      lds::ScoreSet set;
      if (rng.bernoulli(0.7)) {
        const int n = static_cast<int>(rng.uniform_int(1, 4));
        for (int s = 0; s < n; ++s) set.add(rng.uniform(1.0, 10.0));
      }
      e.observe(id, set);
    }
  }
  return e;
}

TEST(Serialization, RoundTripPreservesState) {
  MelodyEstimator original = populated_estimator(3);
  std::stringstream snapshot;
  original.save(snapshot);

  MelodyEstimator restored(test_config());  // same config as the original
  restored.load(snapshot);
  ASSERT_EQ(restored.worker_count(), original.worker_count());
  for (auction::WorkerId id = 0; id < 12; ++id) {
    EXPECT_DOUBLE_EQ(restored.estimate(id), original.estimate(id));
    EXPECT_DOUBLE_EQ(restored.posterior(id).mean, original.posterior(id).mean);
    EXPECT_DOUBLE_EQ(restored.posterior(id).var, original.posterior(id).var);
    EXPECT_EQ(restored.params(id), original.params(id));
    EXPECT_EQ(restored.reestimation_count(id), original.reestimation_count(id));
  }
}

TEST(Serialization, RestoredTrackerEvolvesIdentically) {
  MelodyEstimator original = populated_estimator(5);
  std::stringstream snapshot;
  original.save(snapshot);
  MelodyEstimator restored(test_config());
  restored.load(snapshot);

  // Feed both the same future and compare.
  util::Rng rng(99);
  for (int run = 0; run < 20; ++run) {
    for (auction::WorkerId id = 0; id < 12; ++id) {
      lds::ScoreSet set;
      const int n = static_cast<int>(rng.uniform_int(0, 3));
      for (int s = 0; s < n; ++s) set.add(rng.uniform(1.0, 10.0));
      original.observe(id, set);
      restored.observe(id, set);
    }
  }
  for (auction::WorkerId id = 0; id < 12; ++id) {
    EXPECT_DOUBLE_EQ(restored.estimate(id), original.estimate(id));
    EXPECT_EQ(restored.reestimation_count(id), original.reestimation_count(id));
  }
}

TEST(Serialization, SnapshotIsDeterministic) {
  MelodyEstimator a = populated_estimator(7);
  MelodyEstimator b = populated_estimator(7);
  std::stringstream sa, sb;
  a.save(sa);
  b.save(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Serialization, BadHeaderRejected) {
  std::stringstream bad("NOT_A_SNAPSHOT\n0\n");
  MelodyEstimator e;
  EXPECT_THROW(e.load(bad), std::runtime_error);
}

TEST(Serialization, TruncatedInputRejected) {
  MelodyEstimator original = populated_estimator(9);
  std::stringstream snapshot;
  original.save(snapshot);
  const std::string text = snapshot.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  MelodyEstimator e;
  EXPECT_THROW(e.load(truncated), std::runtime_error);
}

TEST(Serialization, CorruptParamsRejected) {
  std::stringstream bad(
      "MELODY_TRACKER v2\n1\n0 5.5 2.25 5.5 2.25 1.0 -1.0 9.0 0 0 0 0 0\n");
  MelodyEstimator e;
  // Invalid hyper-parameters surface as the validator's domain_error.
  EXPECT_THROW(e.load(bad), std::domain_error);
}

TEST(Serialization, OldFormatVersionRejected) {
  std::stringstream old_version("MELODY_TRACKER v1\n0\n");
  MelodyEstimator e;
  EXPECT_THROW(e.load(old_version), std::runtime_error);
}

TEST(Serialization, WindowedTrackerRoundTrips) {
  MelodyEstimatorConfig config;
  config.reestimation_period = 5;
  config.max_history = 8;  // force the window to slide
  MelodyEstimator original(config);
  original.register_worker(1);
  util::Rng rng(13);
  for (int run = 0; run < 40; ++run) {
    lds::ScoreSet set;
    set.add(rng.uniform(3.0, 8.0));
    original.observe(1, set);
  }
  std::stringstream snapshot;
  original.save(snapshot);
  MelodyEstimator restored(config);
  restored.load(snapshot);
  // Continue both and compare: the window anchor must round-trip too.
  for (int run = 0; run < 10; ++run) {
    lds::ScoreSet set;
    set.add(rng.uniform(3.0, 8.0));
    original.observe(1, set);
    lds::ScoreSet same = set;
    restored.observe(1, same);
  }
  EXPECT_DOUBLE_EQ(restored.estimate(1), original.estimate(1));
}

TEST(Serialization, EmptyTrackerRoundTrips) {
  MelodyEstimator e;
  std::stringstream snapshot;
  e.save(snapshot);
  MelodyEstimator restored;
  restored.load(snapshot);
  EXPECT_EQ(restored.worker_count(), 0u);
}

TEST(Serialization, LoadReplacesExistingState) {
  MelodyEstimator source = populated_estimator(11);
  std::stringstream snapshot;
  source.save(snapshot);

  MelodyEstimator target;
  target.register_worker(500);
  target.load(snapshot);
  EXPECT_EQ(target.worker_count(), 12u);
  EXPECT_THROW(target.estimate(500), std::out_of_range);
}

}  // namespace
}  // namespace melody::estimators
