// Grid-based general-form filter (Theorem 2): agreement with the
// closed-form Gaussian filter (Theorem 3), plus the non-Gaussian emission
// families Section 5 mentions.
#include "lds/grid_filter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace melody::lds {
namespace {

GridDensity wide_grid() { return GridDensity(-20.0, 30.0, 2000); }

TEST(GridDensityTest, ConstructionValidation) {
  EXPECT_THROW(GridDensity(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(GridDensity(0.0, 1.0, 1), std::invalid_argument);
}

TEST(GridDensityTest, UniformHasMidpointMean) {
  GridDensity g(0.0, 10.0, 100);
  EXPECT_NEAR(g.mean(), 5.0, 1e-9);
  // Uniform on [0, 10]: variance 100/12.
  EXPECT_NEAR(g.variance(), 100.0 / 12.0, 0.01);
}

TEST(GridDensityTest, AssignGaussianMoments) {
  GridDensity g(-10.0, 20.0, 3000);
  const Gaussian target{5.5, 2.25};
  g.assign([&](double q) { return target.pdf(q); });
  EXPECT_NEAR(g.mean(), 5.5, 1e-6);
  EXPECT_NEAR(g.variance(), 2.25, 1e-4);
}

TEST(GridDensityTest, VanishingDensityThrows) {
  GridDensity g(0.0, 1.0, 10);
  EXPECT_THROW(g.assign([](double) { return 0.0; }), std::domain_error);
}

TEST(GridDensityTest, WeightsIntegrateToOne) {
  GridDensity g(-5.0, 5.0, 500);
  g.assign([](double q) { return std::exp(-q * q); });
  double total = 0.0;
  for (double w : g.weights()) total += w;
  EXPECT_NEAR(total * g.cell_width(), 1.0, 1e-9);
}

TEST(GridFilterTest, MatchesClosedFormGaussianFilter) {
  const LdsParams params{0.97, 0.4, 2.0};
  const Gaussian init{5.5, 2.25};
  GridFilter grid(wide_grid(), init, params, gaussian_emission(params.eta));

  Gaussian closed_form = init;
  util::Rng rng(3);
  for (int r = 0; r < 15; ++r) {
    std::vector<double> scores;
    const int n = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < n; ++i) scores.push_back(rng.uniform(1.0, 10.0));
    grid.step(scores);
    closed_form = filter_step(closed_form, ScoreSet::from(scores), params);
    EXPECT_NEAR(grid.mean(), closed_form.mean, 1e-3) << "run " << r;
    EXPECT_NEAR(grid.variance(), closed_form.var, 1e-2) << "run " << r;
  }
}

TEST(GridFilterTest, LogMarginalMatchesClosedForm) {
  const LdsParams params{1.0, 0.5, 3.0};
  const Gaussian init{5.0, 2.0};
  GridFilter grid(wide_grid(), init, params, gaussian_emission(params.eta));
  const std::vector<double> scores{4.0, 6.5, 5.2};

  const double grid_logml = grid.step(scores);
  const Gaussian prior = predict(init, params);
  const double closed_logml =
      log_marginal(prior, ScoreSet::from(scores), params);
  EXPECT_NEAR(grid_logml, closed_logml, 1e-3);
}

TEST(GridFilterTest, EmptyStepOnlyPredicts) {
  const LdsParams params{1.0, 0.5, 1.0};
  const Gaussian init{5.0, 1.0};
  GridFilter grid(wide_grid(), init, params, gaussian_emission(params.eta));
  const double logml = grid.step({});
  EXPECT_NEAR(logml, 0.0, 1e-6);  // no evidence consumed
  EXPECT_NEAR(grid.mean(), 5.0, 1e-3);
  EXPECT_NEAR(grid.variance(), 1.5, 1e-2);
}

TEST(GridFilterTest, PoissonEmissionTracksCountMean) {
  // Scores are counts with mean q: feeding counts around 6 must pull the
  // posterior toward 6.
  const LdsParams params{1.0, 0.05, 1.0};  // eta unused by Poisson
  const Gaussian init{3.0, 2.0};
  GridFilter grid(GridDensity(0.1, 20.0, 1500), init, params,
                  poisson_emission());
  util::Rng rng(7);
  for (int r = 0; r < 40; ++r) {
    std::vector<double> counts;
    for (int i = 0; i < 3; ++i) {
      // Crude Poisson(6) sampler via inversion on small support.
      double u = rng.uniform01();
      int k = 0;
      double p = std::exp(-6.0);
      double cdf = p;
      while (u > cdf && k < 40) {
        ++k;
        p *= 6.0 / k;
        cdf += p;
      }
      counts.push_back(k);
    }
    grid.step(counts);
  }
  EXPECT_NEAR(grid.mean(), 6.0, 0.5);
}

TEST(GridFilterTest, GammaEmissionTracksPositiveMean) {
  const LdsParams params{1.0, 0.02, 1.0};
  const Gaussian init{2.0, 1.0};
  GridFilter grid(GridDensity(0.1, 15.0, 1500), init, params,
                  gamma_emission(/*shape=*/4.0));
  util::Rng rng(11);
  for (int r = 0; r < 60; ++r) {
    // Gamma(shape=4, mean=5) samples via sum of 4 exponentials of mean 1.25.
    std::vector<double> scores;
    for (int i = 0; i < 2; ++i) {
      double s = 0.0;
      for (int e = 0; e < 4; ++e) s += -1.25 * std::log(1.0 - rng.uniform01());
      scores.push_back(s);
    }
    grid.step(scores);
  }
  EXPECT_NEAR(grid.mean(), 5.0, 0.6);
}

TEST(GridFilterTest, BetaEmissionStaysInUnitInterval) {
  const LdsParams params{1.0, 0.001, 1.0};
  const Gaussian init{0.5, 0.05};
  GridFilter grid(GridDensity(0.01, 0.99, 800), init, params,
                  beta_emission(/*concentration=*/10.0));
  util::Rng rng(13);
  for (int r = 0; r < 50; ++r) {
    // Accuracy observations clustered around 0.8.
    std::vector<double> scores{std::clamp(rng.normal(0.8, 0.1), 0.02, 0.98)};
    grid.step(scores);
  }
  EXPECT_NEAR(grid.mean(), 0.8, 0.08);
  EXPECT_GT(grid.mean(), 0.0);
  EXPECT_LT(grid.mean(), 1.0);
}

TEST(GridFilterTest, EmissionValidation) {
  EXPECT_THROW(gaussian_emission(0.0), std::invalid_argument);
  EXPECT_THROW(gamma_emission(-1.0), std::invalid_argument);
  EXPECT_THROW(beta_emission(0.0), std::invalid_argument);
  const LdsParams params{1.0, 0.5, 1.0};
  EXPECT_THROW(GridFilter(wide_grid(), {5.0, 1.0}, params, nullptr),
               std::invalid_argument);
}

TEST(GridFilterTest, ZeroLikelihoodEverywhereThrows) {
  const LdsParams params{1.0, 0.5, 1.0};
  GridFilter grid(GridDensity(0.1, 0.9, 100), {0.5, 0.05}, params,
                  poisson_emission());
  // A negative count has zero probability under any Poisson mean.
  const std::vector<double> impossible{-3.0};
  EXPECT_THROW(grid.step(impossible), std::domain_error);
}

}  // namespace
}  // namespace melody::lds
