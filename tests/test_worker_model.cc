#include "sim/worker_model.h"

#include <gtest/gtest.h>

#include <vector>

namespace melody::sim {
namespace {

SimWorker make_worker() {
  return SimWorker(7, {1.5, 3}, {4.0, 5.0, 6.0});
}

TEST(SimWorkerTest, LatentQualityIndexingAndClamping) {
  const SimWorker w = make_worker();
  EXPECT_DOUBLE_EQ(w.latent_quality(1), 4.0);
  EXPECT_DOUBLE_EQ(w.latent_quality(3), 6.0);
  // Out-of-range runs clamp to the ends.
  EXPECT_DOUBLE_EQ(w.latent_quality(0), 4.0);
  EXPECT_DOUBLE_EQ(w.latent_quality(99), 6.0);
  EXPECT_EQ(w.horizon(), 3);
}

TEST(SimWorkerTest, EmptyTrajectory) {
  const SimWorker w(1, {1.0, 1}, {});
  EXPECT_EQ(w.latent_quality(1), 0.0);
  EXPECT_EQ(w.horizon(), 0);
}

TEST(SimWorkerTest, TruthfulPolicyReturnsTrueBid) {
  util::Rng rng(1);
  const SimWorker w = make_worker();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(w.submitted_bid(BidPolicy::truthful(), rng), w.true_bid());
  }
}

TEST(SimWorkerTest, AlwaysHigherCostPolicy) {
  util::Rng rng(2);
  const SimWorker w = make_worker();
  BidPolicy policy;
  policy.cheat_probability = 1.0;
  policy.direction = MisreportDirection::kHigher;
  policy.cheat_cost = true;
  for (int i = 0; i < 100; ++i) {
    const auto bid = w.submitted_bid(policy, rng);
    EXPECT_GE(bid.cost, w.true_bid().cost);
    EXPECT_LE(bid.cost, w.true_bid().cost * 1.5 + 1e-12);
    EXPECT_EQ(bid.frequency, w.true_bid().frequency);
  }
}

TEST(SimWorkerTest, AlwaysLowerCostPolicyStaysPositive) {
  util::Rng rng(3);
  const SimWorker w(1, {0.02, 1}, {5.0});
  BidPolicy policy;
  policy.cheat_probability = 1.0;
  policy.direction = MisreportDirection::kLower;
  policy.cost_magnitude = 1.0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(w.submitted_bid(policy, rng).cost, 0.01);
  }
}

TEST(SimWorkerTest, FrequencyCheatingBounds) {
  util::Rng rng(4);
  const SimWorker w = make_worker();
  BidPolicy policy;
  policy.cheat_probability = 1.0;
  policy.cheat_cost = false;
  policy.cheat_frequency = true;
  policy.direction = MisreportDirection::kRandom;
  policy.frequency_magnitude = 2;
  bool saw_change = false;
  for (int i = 0; i < 200; ++i) {
    const auto bid = w.submitted_bid(policy, rng);
    EXPECT_GE(bid.frequency, 1);
    EXPECT_LE(bid.frequency, 5);
    EXPECT_EQ(bid.cost, w.true_bid().cost);
    if (bid.frequency != w.true_bid().frequency) saw_change = true;
  }
  EXPECT_TRUE(saw_change);
}

TEST(SimWorkerTest, CheatProbabilityRespected) {
  util::Rng rng(5);
  const SimWorker w = make_worker();
  BidPolicy policy;
  policy.cheat_probability = 0.25;
  policy.direction = MisreportDirection::kHigher;
  int cheated = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (w.submitted_bid(policy, rng).cost != w.true_bid().cost) ++cheated;
  }
  EXPECT_NEAR(cheated / static_cast<double>(n), 0.25, 0.02);
}

TEST(SimWorkerTest, UtilityFromAllocation) {
  const SimWorker w = make_worker();  // true cost 1.5
  auction::AllocationResult result;
  result.assignments = {{7, 0, 2.0}, {7, 1, 1.8}, {9, 0, 3.0}};
  // Two tasks at payment 3.8 total, cost 2 * 1.5 = 3.
  EXPECT_NEAR(w.utility(result), 0.8, 1e-12);
}

TEST(SimWorkerTest, UtilityCapsAtTrueFrequency) {
  // True frequency 3: a fourth assignment earns nothing (the worker cannot
  // complete it), matching the paper's Fig. 7b semantics.
  const SimWorker w = make_worker();  // true cost 1.5, frequency 3
  auction::AllocationResult result;
  result.assignments = {{7, 0, 2.0}, {7, 1, 2.0}, {7, 2, 2.0}, {7, 3, 9.0}};
  EXPECT_NEAR(w.utility(result), 3 * (2.0 - 1.5), 1e-12);
}

TEST(SimWorkerTest, UtilityZeroWhenUnassigned) {
  const SimWorker w = make_worker();
  auction::AllocationResult result;
  result.assignments = {{9, 0, 3.0}};
  EXPECT_EQ(w.utility(result), 0.0);
}

TEST(Population, SampleRespectsRangesAndCount) {
  util::Rng rng(6);
  WorkerPopulationConfig config;
  config.count = 200;
  config.cost_min = 1.0;
  config.cost_max = 2.0;
  config.frequency_min = 1;
  config.frequency_max = 5;
  config.horizon = 50;
  const auto workers = sample_population(config, rng);
  ASSERT_EQ(workers.size(), 200u);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    EXPECT_EQ(workers[i].id(), static_cast<auction::WorkerId>(i));
    EXPECT_GE(workers[i].true_bid().cost, 1.0);
    EXPECT_LE(workers[i].true_bid().cost, 2.0);
    EXPECT_GE(workers[i].true_bid().frequency, 1);
    EXPECT_LE(workers[i].true_bid().frequency, 5);
    EXPECT_EQ(workers[i].horizon(), 50);
    for (int r = 1; r <= 50; ++r) {
      EXPECT_GE(workers[i].latent_quality(r), 1.0);
      EXPECT_LE(workers[i].latent_quality(r), 10.0);
    }
  }
}

TEST(Population, DeterministicForSeed) {
  WorkerPopulationConfig config;
  config.count = 20;
  config.horizon = 10;
  util::Rng a(42), b(42);
  const auto pa = sample_population(config, a);
  const auto pb = sample_population(config, b);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].true_bid(), pb[i].true_bid());
    EXPECT_EQ(pa[i].latent_quality(5), pb[i].latent_quality(5));
  }
}

}  // namespace
}  // namespace melody::sim
