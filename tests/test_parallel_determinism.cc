// The load-bearing property of the parallel execution layer: running the
// long-term scenario (the Fig. 9 pipeline at reduced scale) with 1, 2, and
// 8 threads produces bit-identical RunRecord sequences and bit-identical
// estimator state versus the serial path. Per-(worker, run) RNG streams
// plus index-addressed writes are what make this hold; see DESIGN.md,
// "Parallel execution model".
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "auction/melody_auction.h"
#include "estimators/melody_estimator.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/parallel_sweep.h"
#include "sim/platform.h"
#include "util/thread_pool.h"

namespace melody::sim {
namespace {

LongTermScenario fig9_scenario() {
  LongTermScenario s;  // Table 4 shape, reduced scale
  s.num_workers = 80;
  s.num_tasks = 60;
  s.runs = 40;  // covers several EM re-estimation periods (T = 10)
  s.budget = 250.0;
  return s;
}

estimators::MelodyEstimatorConfig tracker_config(const LongTermScenario& s) {
  estimators::MelodyEstimatorConfig config;
  config.initial_posterior = {s.initial_mu, s.initial_sigma};
  config.reestimation_period = s.reestimation_period;
  return config;
}

struct PipelineOutput {
  std::vector<RunRecord> records;
  std::string estimator_snapshot;  // full per-worker posteriors and params
};

PipelineOutput run_pipeline(int threads, std::uint64_t seed) {
  util::set_shared_thread_count(threads);
  const auto scenario = fig9_scenario();
  auction::MelodyAuction mechanism;
  estimators::MelodyEstimator estimator(tracker_config(scenario));
  util::Rng population_rng(seed);
  Platform platform(scenario, mechanism, estimator,
                    sample_population(scenario.population_config(),
                                      population_rng),
                    seed + 1);
  PipelineOutput out;
  out.records = platform.run_all();
  std::ostringstream snapshot;
  estimator.save(snapshot);  // 17-digit text: any bit difference shows up
  out.estimator_snapshot = snapshot.str();
  util::set_shared_thread_count(1);
  return out;
}

void expect_identical(const RunRecord& a, const RunRecord& b, int run) {
  EXPECT_EQ(a.run, b.run) << "run " << run;
  EXPECT_EQ(a.estimated_utility, b.estimated_utility) << "run " << run;
  EXPECT_EQ(a.true_utility, b.true_utility) << "run " << run;
  // Exact equality on doubles is the point: not "close", identical.
  EXPECT_EQ(a.estimation_error, b.estimation_error) << "run " << run;
  EXPECT_EQ(a.total_payment, b.total_payment) << "run " << run;
  EXPECT_EQ(a.assignments, b.assignments) << "run " << run;
  EXPECT_EQ(a.qualified_workers, b.qualified_workers) << "run " << run;
}

TEST(ParallelDeterminism, PlatformBitIdenticalAcross1And2And8Threads) {
  const auto serial = run_pipeline(1, 2017);
  for (int threads : {2, 8}) {
    const auto parallel = run_pipeline(threads, 2017);
    ASSERT_EQ(parallel.records.size(), serial.records.size());
    for (std::size_t r = 0; r < serial.records.size(); ++r) {
      expect_identical(serial.records[r], parallel.records[r],
                       static_cast<int>(r + 1));
    }
    EXPECT_EQ(parallel.estimator_snapshot, serial.estimator_snapshot)
        << "estimator posteriors diverged at " << threads << " threads";
  }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAgreeWithThemselves) {
  const auto first = run_pipeline(8, 99);
  const auto second = run_pipeline(8, 99);
  ASSERT_EQ(first.records.size(), second.records.size());
  for (std::size_t r = 0; r < first.records.size(); ++r) {
    expect_identical(first.records[r], second.records[r],
                     static_cast<int>(r + 1));
  }
  EXPECT_EQ(first.estimator_snapshot, second.estimator_snapshot);
}

SweepResult run_sweep(int threads) {
  util::set_shared_thread_count(threads);
  auto scenario = fig9_scenario();
  scenario.runs = 15;
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6};
  ParallelSweep sweep;
  sweep.add_seed_grid(
      "det", scenario, seeds,
      [] { return std::make_unique<auction::MelodyAuction>(); },
      [scenario] {
        return std::make_unique<estimators::MelodyEstimator>(
            tracker_config(scenario));
      });
  auto result = sweep.run();
  util::set_shared_thread_count(1);
  return result;
}

TEST(ParallelDeterminism, SweepReplicasAndMergedStatsBitIdentical) {
  const auto serial = run_sweep(1);
  ASSERT_EQ(serial.replicas.size(), 6u);
  for (int threads : {2, 8}) {
    const auto parallel = run_sweep(threads);
    ASSERT_EQ(parallel.replicas.size(), serial.replicas.size());
    for (std::size_t j = 0; j < serial.replicas.size(); ++j) {
      EXPECT_EQ(parallel.replicas[j].label, serial.replicas[j].label);
      ASSERT_EQ(parallel.replicas[j].records.size(),
                serial.replicas[j].records.size());
      for (std::size_t r = 0; r < serial.replicas[j].records.size(); ++r) {
        expect_identical(serial.replicas[j].records[r],
                         parallel.replicas[j].records[r],
                         static_cast<int>(r + 1));
      }
    }
    // The merged reduction is performed in job order after the barrier, so
    // even the floating-point accumulators must match exactly.
    EXPECT_EQ(parallel.merged.true_utility.mean(),
              serial.merged.true_utility.mean());
    EXPECT_EQ(parallel.merged.estimation_error.mean(),
              serial.merged.estimation_error.mean());
    EXPECT_EQ(parallel.merged.total_payment.sum(),
              serial.merged.total_payment.sum());
    EXPECT_EQ(parallel.merged.assignments.count(),
              serial.merged.assignments.count());
  }
}

// The obs cost contract's determinism half: metrics and events are
// write-only side channels, so a fully instrumented run (collection enabled
// AND a live JSON-lines sink) produces bit-identical records and estimator
// state versus the uninstrumented run, at every thread count.
TEST(ParallelDeterminism, MetricsSinkOnVersusOffBitIdentical) {
  const auto plain = run_pipeline(1, 2017);
  for (int threads : {1, 2, 8}) {
    std::ostringstream lines;
    obs::JsonLinesSink sink(lines);
    obs::ScopedSink scoped_sink(&sink);
    obs::ScopedEnable scoped_enable(true);
    const auto instrumented = run_pipeline(threads, 2017);
    ASSERT_EQ(instrumented.records.size(), plain.records.size());
    for (std::size_t r = 0; r < plain.records.size(); ++r) {
      expect_identical(plain.records[r], instrumented.records[r],
                       static_cast<int>(r + 1));
    }
    EXPECT_EQ(instrumented.estimator_snapshot, plain.estimator_snapshot)
        << "metrics collection perturbed the estimator at " << threads
        << " threads";
    // The sink actually saw the run (one platform/run event per run).
    EXPECT_GE(sink.lines_written(), plain.records.size());
  }
}

TEST(ParallelDeterminism, LargeAuctionRankingAndPricingMatchSerial) {
  // Drives the greedy core over its parallel-sort and parallel-pricing
  // thresholds (N >= 4096) and compares every assignment and payment.
  SraScenario scenario;
  scenario.num_workers = 6000;
  scenario.num_tasks = 120;
  scenario.budget = 3000.0;
  // High thresholds -> ~30 winners per task, pushing winners x queue over
  // the parallel-pricing threshold as well.
  scenario.threshold = {80.0, 120.0};
  util::Rng rng(31);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  auction::MelodyAuction mechanism;

  util::set_shared_thread_count(1);
  const auto serial = mechanism.run({workers, tasks, config});
  for (int threads : {2, 8}) {
    util::set_shared_thread_count(threads);
    const auto parallel = mechanism.run({workers, tasks, config});
    util::set_shared_thread_count(1);
    ASSERT_EQ(parallel.assignments.size(), serial.assignments.size());
    for (std::size_t a = 0; a < serial.assignments.size(); ++a) {
      EXPECT_EQ(parallel.assignments[a].worker, serial.assignments[a].worker);
      EXPECT_EQ(parallel.assignments[a].task, serial.assignments[a].task);
      EXPECT_EQ(parallel.assignments[a].payment,
                serial.assignments[a].payment);
    }
    EXPECT_EQ(parallel.selected_tasks, serial.selected_tasks);
  }
}

}  // namespace
}  // namespace melody::sim
