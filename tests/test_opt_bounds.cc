// Ordering properties of the three solution levels on random and
// hand-crafted instances: MELODY <= exact OPT <= OPT-UB.
#include <gtest/gtest.h>

#include <vector>

#include "auction/exact_sra.h"
#include "auction/melody_auction.h"
#include "auction/opt_ub.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace melody::auction {
namespace {

TEST(OptUb, HandInstanceExactValue) {
  // Two workers of quality 3 at cost 1, frequency 1 each -> pooled supply
  // of 6 quality units at density 1/3. One task of threshold 6 costs 2.
  const std::vector<WorkerProfile> workers{{0, {1.0, 1}, 3.0},
                                           {1, {1.0, 1}, 3.0}};
  const std::vector<Task> tasks{{0, 6.0}};
  AuctionConfig config;
  config.budget = 2.0;
  EXPECT_EQ(opt_upper_bound(workers, tasks, config), 1u);
  config.budget = 1.9;
  EXPECT_EQ(opt_upper_bound(workers, tasks, config), 0u);
}

TEST(OptUb, SupplyLimitsTasks) {
  const std::vector<WorkerProfile> workers{{0, {1.0, 2}, 3.0}};
  const std::vector<Task> tasks{{0, 3.0}, {1, 3.0}, {2, 3.0}};
  AuctionConfig config;
  config.budget = 100.0;
  // Pooled supply 6 covers exactly two tasks of threshold 3.
  EXPECT_EQ(opt_upper_bound(workers, tasks, config), 2u);
}

TEST(OptUb, CheapestTasksFirst) {
  const std::vector<WorkerProfile> workers{{0, {1.0, 1}, 4.0}};
  const std::vector<Task> tasks{{0, 8.0}, {1, 2.0}};
  AuctionConfig config;
  config.budget = 100.0;
  // Supply 4: only the threshold-2 task fits.
  EXPECT_EQ(opt_upper_bound(workers, tasks, config), 1u);
}

TEST(OptUb, EmptyInputs) {
  AuctionConfig config;
  config.budget = 10.0;
  EXPECT_EQ(opt_upper_bound({}, std::vector<Task>{{0, 1.0}}, config), 0u);
  EXPECT_EQ(opt_upper_bound(std::vector<WorkerProfile>{{0, {1.0, 1}, 2.0}},
                            {}, config),
            0u);
}

TEST(ExactSra, HandInstance) {
  // Workers: (mu, c): (3,1), (3,1), (2,1); tasks: Q = 3, 5; budget 3.
  // Optimum: task0 <- w0 (cost 1), task1 <- w1 + w2 (cost 2) = 2 tasks.
  const std::vector<WorkerProfile> workers{
      {0, {1.0, 1}, 3.0}, {1, {1.0, 1}, 3.0}, {2, {1.0, 1}, 2.0}};
  const std::vector<Task> tasks{{0, 3.0}, {1, 5.0}};
  AuctionConfig config;
  config.budget = 3.0;
  EXPECT_EQ(exact_sra_optimum(workers, tasks, config), 2u);
  config.budget = 1.0;
  EXPECT_EQ(exact_sra_optimum(workers, tasks, config), 1u);
  config.budget = 0.5;
  EXPECT_EQ(exact_sra_optimum(workers, tasks, config), 0u);
}

TEST(ExactSra, FrequencyConstraintBinds) {
  const std::vector<WorkerProfile> workers{{0, {1.0, 1}, 5.0}};
  const std::vector<Task> tasks{{0, 5.0}, {1, 5.0}};
  AuctionConfig config;
  config.budget = 10.0;
  EXPECT_EQ(exact_sra_optimum(workers, tasks, config), 1u);
}

TEST(ExactSra, RejectsOversizedInstances) {
  std::vector<WorkerProfile> workers;
  for (int i = 0; i < 20; ++i) workers.push_back({i, {1.0, 1}, 2.0});
  const std::vector<Task> tasks{{0, 2.0}};
  AuctionConfig config;
  config.budget = 10.0;
  EXPECT_THROW(exact_sra_optimum(workers, tasks, config),
               std::invalid_argument);
}

struct BoundCase {
  std::uint64_t seed;
  int workers;
  int tasks;
  double budget;
};

class BoundOrdering : public ::testing::TestWithParam<BoundCase> {};

TEST_P(BoundOrdering, MelodyLeqExactLeqUpperBound) {
  const auto& c = GetParam();
  sim::SraScenario scenario;
  scenario.num_workers = c.workers;
  scenario.num_tasks = c.tasks;
  scenario.budget = c.budget;
  util::Rng rng(c.seed);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();

  MelodyAuction melody;
  const std::size_t mel = melody.run({workers, tasks, config}).requester_utility();
  const std::size_t opt = exact_sra_optimum(workers, tasks, config);
  const std::size_t ub = opt_upper_bound(workers, tasks, config);

  EXPECT_LE(mel, opt) << "greedy beat the exact optimum";
  EXPECT_LE(opt, ub) << "exact optimum beat its upper bound";
}

INSTANTIATE_TEST_SUITE_P(
    SmallRandomInstances, BoundOrdering,
    ::testing::Values(BoundCase{11, 8, 4, 10.0}, BoundCase{12, 10, 5, 8.0},
                      BoundCase{13, 6, 6, 12.0}, BoundCase{14, 12, 3, 6.0},
                      BoundCase{15, 9, 4, 20.0}, BoundCase{16, 7, 5, 5.0},
                      BoundCase{17, 10, 6, 15.0}, BoundCase{18, 8, 8, 9.0}));

}  // namespace
}  // namespace melody::auction
