#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace melody::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  const auto first = rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.0, 4.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 4.0);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, -1);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(29);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.5, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.5, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BoundedWithinBound) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedOneIsZero) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedUniformity) {
  Rng rng(47);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng rng(59);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(61);
  (void)parent_copy();  // consume the value used for forking
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == parent_copy()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 reference implementation with
  // seed 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

}  // namespace
}  // namespace melody::util
