// Dual bin packing (bin covering) substrate tests: greedy vs exact vs the
// trivial upper bound, on hand instances and random sweeps.
#include "auction/dbp.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace melody::auction {
namespace {

TEST(DbpGreedy, HandInstances) {
  // Items that pair up exactly: 6 items of size 0.5, capacity 1 -> 3 bins.
  const std::vector<double> halves(6, 0.5);
  EXPECT_EQ(dbp_greedy(halves, 1.0), 3u);

  // Greedy next-fit-decreasing on {0.6, 0.6, 0.4, 0.4}: sorted descending,
  // bin1 = {0.6, 0.6} covers; bin2 = {0.4, 0.4} does not -> 1 bin.
  const std::vector<double> mixed{0.6, 0.6, 0.4, 0.4};
  EXPECT_EQ(dbp_greedy(mixed, 1.0), 1u);
  // Exact pairs them better: {0.6, 0.4} x 2 -> 2 bins.
  EXPECT_EQ(dbp_exact(mixed, 1.0), 2u);
}

TEST(DbpGreedy, NoItemsNoBins) {
  EXPECT_EQ(dbp_greedy({}, 1.0), 0u);
  EXPECT_EQ(dbp_exact({}, 1.0), 0u);
  EXPECT_EQ(dbp_upper_bound({}, 1.0), 0u);
}

TEST(DbpGreedy, SingleLargeItem) {
  const std::vector<double> items{5.0};
  EXPECT_EQ(dbp_greedy(items, 1.0), 1u);
  EXPECT_EQ(dbp_exact(items, 1.0), 1u);
  // The trivial bound over-counts: 5 bins.
  EXPECT_EQ(dbp_upper_bound(items, 1.0), 5u);
}

TEST(DbpGreedy, InsufficientMass) {
  const std::vector<double> items{0.3, 0.3};
  EXPECT_EQ(dbp_greedy(items, 1.0), 0u);
  EXPECT_EQ(dbp_exact(items, 1.0), 0u);
}

TEST(Dbp, InvalidCapacityThrows) {
  const std::vector<double> items{1.0};
  EXPECT_THROW(dbp_greedy(items, 0.0), std::invalid_argument);
  EXPECT_THROW(dbp_exact(items, -1.0), std::invalid_argument);
  EXPECT_THROW(dbp_upper_bound(items, 0.0), std::invalid_argument);
}

TEST(DbpExact, RejectsOversizedInstances) {
  const std::vector<double> items(kDbpExactMaxItems + 1, 1.0);
  EXPECT_THROW(dbp_exact(items, 1.0), std::invalid_argument);
}

TEST(DbpExact, KnownOptimal) {
  // {0.9, 0.9, 0.1, 0.1, 0.5, 0.5}: optimal pairs (0.9, 0.1) x 2 + (0.5,
  // 0.5) = 3 bins.
  const std::vector<double> items{0.9, 0.9, 0.1, 0.1, 0.5, 0.5};
  EXPECT_EQ(dbp_exact(items, 1.0), 3u);
}

class DbpRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbpRandomSweep, GreedyLeqExactLeqUpperBound) {
  util::Rng rng(GetParam());
  std::vector<double> items(static_cast<std::size_t>(rng.uniform_int(3, 12)));
  for (double& item : items) item = rng.uniform(0.1, 1.2);
  const double capacity = rng.uniform(0.8, 2.0);

  const std::size_t greedy = dbp_greedy(items, capacity);
  const std::size_t exact = dbp_exact(items, capacity);
  const std::size_t bound = dbp_upper_bound(items, capacity);
  EXPECT_LE(greedy, exact);
  EXPECT_LE(exact, bound);
  // Csirik et al.: simple greedy covers at least half as many bins as the
  // mass bound allows minus one; in particular exact <= 2*greedy + 1.
  EXPECT_LE(exact, 2 * greedy + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbpRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace melody::auction
