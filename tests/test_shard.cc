// Sharded platform (svc/shard.h + svc/router.h): plan splitting and seed
// salting, affinity routing, broadcast merge semantics, and the headline
// contracts — a K=1 sharded deployment is byte-identical to the plain
// single-platform service, every K>1 shard is bit-identical to the
// standalone service built from its plan, and composed MLDYSVCK v2
// checkpoints kill/resume mid-trace without perturbing a single record.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "estimators/factory.h"
#include "svc/config.h"
#include "svc/loop.h"
#include "svc/protocol.h"
#include "svc/router.h"
#include "svc/service.h"
#include "svc/shard.h"
#include "util/flags.h"
#include "util/rng.h"

namespace melody::svc {
namespace {

constexpr std::uint64_t kSeed = 2017;

/// 42 workers / 30 tasks: neither divides by 4, so every split exercises
/// the remainder distribution.
sim::LongTermScenario shard_scenario() {
  sim::LongTermScenario s;
  s.num_workers = 42;
  s.num_tasks = 30;
  s.runs = 16;
  s.budget = 120.0;
  return s;
}

ServiceConfig shard_config(int shards) {
  ServiceConfig config;
  config.scenario = shard_scenario();
  config.seed = kSeed;
  config.manual_clock = true;
  config.shards = shards;
  return config;
}

Request bid_for(int worker, std::int64_t id) {
  Request r;
  r.op = Op::kSubmitBid;
  r.id = id;
  r.worker = "w" + std::to_string(worker);
  return r;
}

/// One full participation round over the GLOBAL name space: with inactive
/// batch policies every shard fires exactly one run per round (each shard's
/// min_bids defaults to its own worker count).
void append_round(std::ostream& trace, int workers, std::int64_t* next_id) {
  for (int w = 0; w < workers; ++w) {
    trace << format_request(bid_for(w, (*next_id)++)) << "\n";
  }
}

std::vector<Response> parse_lines(const std::string& text) {
  std::vector<Response> parsed;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) parsed.push_back(parse_response(line));
  }
  return parsed;
}

// ----------------------------------------------------------- plan_shards --

TEST(PlanShards, SingleShardPassesConfigThroughWithCheckpointLifted) {
  ServiceConfig config = shard_config(1);
  config.checkpoint_path = "svc.ckpt";
  config.checkpoint_every = 3;
  const std::vector<ShardPlan> plans = plan_shards(config);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].index, 0);
  EXPECT_EQ(plans[0].worker_offset, 0);
  // The sub-market IS the market: scenario and seed untouched.
  EXPECT_EQ(plans[0].config.scenario.num_workers, 42);
  EXPECT_EQ(plans[0].config.scenario.num_tasks, 30);
  EXPECT_EQ(plans[0].config.scenario.budget, 120.0);
  EXPECT_EQ(plans[0].config.seed, kSeed);
  EXPECT_EQ(plans[0].config.worker_name_offset, 0);
  // The router owns the checkpoint file; the shard must not race it.
  EXPECT_TRUE(plans[0].config.checkpoint_path.empty());
  EXPECT_EQ(plans[0].config.checkpoint_every, 0);
}

TEST(PlanShards, SplitTelescopesAndSaltsSeeds) {
  ServiceConfig config = shard_config(4);
  config.batch.min_bids = 6;
  config.batch.budget_target = 80.0;
  const std::vector<ShardPlan> plans = plan_shards(config);
  ASSERT_EQ(plans.size(), 4u);

  // 42 = 11 + 11 + 10 + 10 (first N%K shards take the extra worker).
  const int expected_workers[] = {11, 11, 10, 10};
  const int expected_offsets[] = {0, 11, 22, 32};
  const int expected_tasks[] = {8, 8, 7, 7};
  const int expected_min_bids[] = {2, 2, 1, 1};
  double budget_sum = 0.0;
  double target_sum = 0.0;
  for (int s = 0; s < 4; ++s) {
    const ShardPlan& plan = plans[static_cast<std::size_t>(s)];
    EXPECT_EQ(plan.index, s);
    EXPECT_EQ(plan.worker_offset, expected_offsets[s]);
    EXPECT_EQ(plan.config.scenario.num_workers, expected_workers[s]);
    EXPECT_EQ(plan.config.scenario.num_tasks, expected_tasks[s]);
    EXPECT_EQ(plan.config.batch.min_bids, expected_min_bids[s]);
    EXPECT_EQ(plan.config.worker_name_offset, expected_offsets[s]);
    EXPECT_EQ(plan.config.shards, 1);
    EXPECT_EQ(plan.config.seed,
              util::derive_stream(kSeed, kShardSeedSalt,
                                  static_cast<std::uint64_t>(s)));
    EXPECT_NE(plan.config.seed, kSeed);
    budget_sum += plan.config.scenario.budget;
    target_sum += plan.config.batch.budget_target;
  }
  EXPECT_DOUBLE_EQ(budget_sum, 120.0);
  EXPECT_DOUBLE_EQ(target_sum, 80.0);
  // Distinct shards, distinct streams.
  EXPECT_NE(plans[0].config.seed, plans[1].config.seed);
}

TEST(PlanShards, RejectsShardCountsTheMarketCannotCarry) {
  ServiceConfig config = shard_config(5);
  config.scenario.num_workers = 4;  // 5 shards, 4 workers: empty sub-market
  EXPECT_THROW(plan_shards(config), std::invalid_argument);
  config = shard_config(4);
  config.scenario.num_tasks = 3;  // 4 shards, 3 tasks
  EXPECT_THROW(plan_shards(config), std::invalid_argument);
  config = shard_config(0);
  EXPECT_THROW(plan_shards(config), std::invalid_argument);
}

// --------------------------------------------------------------- routing --

TEST(ShardRouting, ScenarioNamesMapToRangeOwnersForeignNamesHashStably) {
  ShardedService service(shard_config(4));
  // Contiguous ranges: [0,11) [11,22) [22,32) [32,42).
  EXPECT_EQ(service.route("w0"), 0);
  EXPECT_EQ(service.route("w10"), 0);
  EXPECT_EQ(service.route("w11"), 1);
  EXPECT_EQ(service.route("w21"), 1);
  EXPECT_EQ(service.route("w22"), 2);
  EXPECT_EQ(service.route("w32"), 3);
  EXPECT_EQ(service.route("w41"), 3);
  // Outside the initial population (newcomers, foreign names): hash
  // affinity — any shard, but always the same one for the same name.
  for (const std::string name : {"w42", "w1000000", "alice", "lg3_17", "w"}) {
    const int owner = service.route(name);
    EXPECT_GE(owner, 0) << name;
    EXPECT_LT(owner, 4) << name;
    EXPECT_EQ(service.route(name), owner) << name;
  }
}

TEST(ShardRouting, QueryRunAddressesShardsExplicitly) {
  ShardedService service(shard_config(4));
  // One full round submitted directly (the stdio driver's EOF path would
  // close the queues): one run fires on every shard.
  int delivered_bids = 0;
  for (int w = 0; w < 42; ++w) {
    ASSERT_EQ(service.submit(bid_for(w, w + 1),
                             [&](const Response&) { ++delivered_bids; }),
              PushResult::kOk);
    while (service.poll_once(std::chrono::nanoseconds{0})) {
    }
  }
  ASSERT_EQ(delivered_bids, 42);

  Request query;
  query.op = Op::kQueryRun;
  query.id = 900;
  query.run = 1;
  query.shard = 2;
  Response answer;
  bool delivered = false;
  ASSERT_EQ(service.submit(query,
                           [&](const Response& r) {
                             answer = r;
                             delivered = true;
                           }),
            PushResult::kOk);
  while (!delivered) service.poll_once(std::chrono::nanoseconds{0});
  ASSERT_TRUE(answer.ok) << answer.error;
  EXPECT_EQ(answer.fields.number("run"), 1.0);

  // Out of range: answered inline, no shard touched.
  query.shard = 7;
  delivered = false;
  ASSERT_EQ(service.submit(query,
                           [&](const Response& r) {
                             answer = r;
                             delivered = true;
                           }),
            PushResult::kOk);
  ASSERT_TRUE(delivered);
  EXPECT_FALSE(answer.ok);
  EXPECT_NE(answer.error.find("shard"), std::string::npos);
}

// ---------------------------------------------- K=1 bit-identity contract --

TEST(ShardedStdio, SingleShardByteIdenticalToPlainServiceLoop) {
  std::stringstream trace;
  std::int64_t next_id = 1;
  Request hello;
  hello.op = Op::kHello;
  hello.id = next_id++;
  trace << format_request(hello) << "\n";
  for (int round = 0; round < 6; ++round) append_round(trace, 42, &next_id);
  Request stats;
  stats.op = Op::kStats;
  stats.id = next_id++;
  trace << format_request(stats) << "\n";
  const std::string input = trace.str();

  std::ostringstream plain_out;
  {
    AuctionService service(shard_config(1));
    ServiceLoop loop(service, 64);
    std::istringstream in(input);
    run_stdio_session(loop, in, plain_out);
  }
  std::ostringstream sharded_out;
  ShardedService service(shard_config(1));
  {
    std::istringstream in(input);
    run_stdio_session(service, in, sharded_out);
  }
  // Byte identity, not just record identity: every response line — hello
  // (shards advertised in the same position), bids, merged stats — matches
  // the unsharded service exactly.
  EXPECT_EQ(sharded_out.str(), plain_out.str());
  EXPECT_EQ(service.shard(0).service().records().size(), 6u);
}

// ------------------------------------- K>1 per-shard standalone identity --

TEST(ShardedStdio, FourShardTrajectoriesMatchStandalonePlans) {
  const ServiceConfig config = shard_config(4);
  ShardedService service(config);
  std::stringstream trace;
  std::int64_t next_id = 1;
  for (int round = 0; round < 16; ++round) append_round(trace, 42, &next_id);
  std::ostringstream out;
  const StdioResult result = run_stdio_session(service, trace, out);
  EXPECT_EQ(result.parse_errors, 0u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(service.total_runs(), 64u);  // 16 rounds x 4 shards

  // Every shard reproduces the standalone single-platform service built
  // from the same plan, bid for bid, record for record.
  const std::vector<ShardPlan> plans = plan_shards(config);
  std::vector<std::vector<sim::RunRecord>> per_shard;
  for (int s = 0; s < 4; ++s) {
    const ShardPlan& plan = plans[static_cast<std::size_t>(s)];
    AuctionService standalone(plan.config);
    ServiceLoop loop(standalone, 64);
    std::stringstream shard_trace;
    std::int64_t id = 1;
    for (int round = 0; round < 16; ++round) {
      for (int w = 0; w < plan.config.scenario.num_workers; ++w) {
        shard_trace << format_request(bid_for(plan.worker_offset + w, id++))
                    << "\n";
      }
    }
    std::ostringstream shard_out;
    run_stdio_session(loop, shard_trace, shard_out);
    const auto& expected = standalone.records();
    const auto& actual = service.shard(s).service().records();
    ASSERT_EQ(actual.size(), expected.size()) << "shard " << s;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(actual[k], expected[k]) << "shard " << s << " run " << k + 1;
    }
    per_shard.push_back(expected);
  }

  // Cross-shard aggregation is merge_run_records over exactly those
  // per-shard trajectories.
  const std::vector<sim::RunRecord> aggregated = service.aggregated_records();
  const std::vector<sim::RunRecord> expected_merge =
      sim::merge_run_records(per_shard);
  ASSERT_EQ(aggregated.size(), expected_merge.size());
  ASSERT_EQ(aggregated.size(), 16u);
  for (std::size_t k = 0; k < aggregated.size(); ++k) {
    EXPECT_EQ(aggregated[k], expected_merge[k]) << "merged run " << k + 1;
  }
}

// ------------------------------------------------ composed checkpointing --

TEST(ShardedCheckpoint, ComposedKillResumeMidTraceStaysBitIdentical) {
  const ServiceConfig config = shard_config(4);
  const int interrupt_after = 8;
  const std::string path = ::testing::TempDir() + "/melody_shard_v2.ckpt";

  // Uninterrupted reference.
  std::vector<std::vector<sim::RunRecord>> expected;
  {
    ShardedService reference(config);
    std::stringstream trace;
    std::int64_t next_id = 1;
    for (int round = 0; round < 16; ++round) append_round(trace, 42, &next_id);
    std::ostringstream out;
    run_stdio_session(reference, trace, out);
    for (int s = 0; s < 4; ++s) {
      expected.push_back(reference.shard(s).service().records());
    }
  }

  std::vector<std::vector<sim::RunRecord>> prefix;
  {
    ShardedService service(config);
    std::stringstream trace;
    std::int64_t next_id = 1;
    for (int round = 0; round < interrupt_after; ++round) {
      append_round(trace, 42, &next_id);
    }
    Request checkpoint;
    checkpoint.op = Op::kCheckpoint;
    checkpoint.id = next_id++;
    checkpoint.path = path;
    trace << format_request(checkpoint) << "\n";
    std::ostringstream out;
    run_stdio_session(service, trace, out);
    const std::vector<Response> responses = parse_lines(out.str());
    ASSERT_FALSE(responses.empty());
    const Response& answer = responses.back();
    ASSERT_TRUE(answer.ok) << answer.error;
    EXPECT_EQ(answer.fields.text_or("path", ""), path);
    EXPECT_EQ(answer.fields.number("run"),
              static_cast<double>(interrupt_after));
    EXPECT_EQ(answer.fields.number("shards"), 4.0);
    for (int s = 0; s < 4; ++s) {
      prefix.push_back(service.shard(s).service().records());
      ASSERT_EQ(static_cast<int>(prefix.back().size()), interrupt_after);
    }
  }  // the "killed" deployment is gone; only the v2 file survives

  ShardedService service(config);
  service.restore(path);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(service.shard(s).service().platform().current_run(),
              interrupt_after + 1)
        << "shard " << s;
  }
  std::stringstream trace;
  std::int64_t next_id = 100000;
  for (int round = interrupt_after; round < 16; ++round) {
    append_round(trace, 42, &next_id);
  }
  std::ostringstream out;
  run_stdio_session(service, trace, out);

  for (int s = 0; s < 4; ++s) {
    std::vector<sim::RunRecord> all = prefix[static_cast<std::size_t>(s)];
    const auto& tail = service.shard(s).service().records();
    all.insert(all.end(), tail.begin(), tail.end());
    ASSERT_EQ(all.size(), expected[static_cast<std::size_t>(s)].size());
    for (std::size_t k = 0; k < all.size(); ++k) {
      EXPECT_EQ(all[k], expected[static_cast<std::size_t>(s)][k])
          << "shard " << s << " run " << k + 1;
    }
  }
  std::remove(path.c_str());
}

TEST(ShardedCheckpoint, PlainV1FileRestoresIntoSingleShardOnly) {
  const ServiceConfig config = shard_config(1);
  const std::string path = ::testing::TempDir() + "/melody_shard_v1.ckpt";

  // The unsharded service writes a v1 snapshot mid-trace.
  std::vector<sim::RunRecord> prefix;
  std::vector<sim::RunRecord> expected;
  {
    AuctionService reference(config);
    ServiceLoop loop(reference, 64);
    std::stringstream trace;
    std::int64_t next_id = 1;
    for (int round = 0; round < 16; ++round) append_round(trace, 42, &next_id);
    std::ostringstream out;
    run_stdio_session(loop, trace, out);
    expected = reference.records();
  }
  {
    AuctionService service(config);
    ServiceLoop loop(service, 64);
    std::stringstream trace;
    std::int64_t next_id = 1;
    for (int round = 0; round < 8; ++round) append_round(trace, 42, &next_id);
    Request checkpoint;
    checkpoint.op = Op::kCheckpoint;
    checkpoint.id = next_id++;
    checkpoint.path = path;
    trace << format_request(checkpoint) << "\n";
    std::ostringstream out;
    run_stdio_session(loop, trace, out);
    prefix = service.records();
  }

  // A 4-shard deployment cannot adopt one platform's snapshot.
  {
    ShardedService wrong(shard_config(4));
    EXPECT_THROW(wrong.restore(path), std::runtime_error);
  }

  // The K=1 sharded deployment continues it bit-identically.
  ShardedService service(config);
  service.restore(path);
  std::stringstream trace;
  std::int64_t next_id = 100000;
  for (int round = 8; round < 16; ++round) append_round(trace, 42, &next_id);
  std::ostringstream out;
  run_stdio_session(service, trace, out);
  std::vector<sim::RunRecord> all = prefix;
  const auto& tail = service.shard(0).service().records();
  all.insert(all.end(), tail.begin(), tail.end());
  ASSERT_EQ(all.size(), expected.size());
  for (std::size_t k = 0; k < all.size(); ++k) {
    EXPECT_EQ(all[k], expected[k]) << "run " << k + 1;
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- broadcast merge --

TEST(ShardedBroadcast, HelloNegotiatesAndStatsSumAcrossShards) {
  ShardedService service(shard_config(4));
  std::stringstream trace;
  std::int64_t next_id = 1;
  Request hello;
  hello.op = Op::kHello;
  hello.id = next_id++;
  hello.proto = 1;
  trace << format_request(hello) << "\n";
  for (int round = 0; round < 3; ++round) append_round(trace, 42, &next_id);
  Request tasks;
  tasks.op = Op::kSubmitTasks;
  tasks.id = next_id++;
  tasks.task_count = 101;
  tasks.budget = 60.0;
  trace << format_request(tasks) << "\n";
  Request stats;
  stats.op = Op::kStats;
  stats.id = next_id++;
  trace << format_request(stats) << "\n";
  std::ostringstream out;
  run_stdio_session(service, trace, out);
  const std::vector<Response> responses = parse_lines(out.str());
  ASSERT_GE(responses.size(), 2u);

  const Response& hello_reply = responses.front();
  ASSERT_TRUE(hello_reply.ok) << hello_reply.error;
  EXPECT_EQ(hello_reply.fields.number("proto_version"),
            static_cast<double>(kProtoVersion));
  EXPECT_EQ(hello_reply.fields.number("shards"), 4.0);
  EXPECT_EQ(hello_reply.fields.number("workers"), 42.0);  // summed

  const Response& stats_reply = responses.back();
  ASSERT_TRUE(stats_reply.ok) << stats_reply.error;
  EXPECT_EQ(stats_reply.fields.number("workers"), 42.0);
  EXPECT_EQ(stats_reply.fields.number("runs_this_session"), 12.0);  // 3 x 4
  EXPECT_EQ(stats_reply.fields.number("runs_total"), 12.0);
  EXPECT_EQ(stats_reply.fields.number("next_run"), 4.0);  // max, not sum
  EXPECT_FALSE(stats_reply.fields.boolean_or("finished", true));
  // The split submit_tasks budget telescopes back to the global amount.
  const Response& tasks_reply = responses[responses.size() - 2];
  ASSERT_TRUE(tasks_reply.ok) << tasks_reply.error;
  EXPECT_NEAR(tasks_reply.fields.number("accrued_budget"), 60.0, 1e-9);
}

TEST(ShardedBroadcast, AdmissionIsAllOrNothing) {
  ServiceConfig config = shard_config(2);
  config.queue_capacity = 1;
  ShardedService service(config);

  // Fill shard 0's queue (route("w0") == 0) without polling.
  bool bid_done = false;
  ASSERT_EQ(service.submit(bid_for(0, 1),
                           [&](const Response&) { bid_done = true; }),
            PushResult::kOk);
  Request stats;
  stats.op = Op::kStats;
  stats.id = 2;
  bool stats_done = false;
  // One shard full: the broadcast lands on NO shard (no torn fan-out).
  EXPECT_EQ(service.submit(stats,
                           [&](const Response&) { stats_done = true; }),
            PushResult::kFull);
  EXPECT_FALSE(stats_done);
  while (service.poll_once(std::chrono::nanoseconds{0})) {
  }
  EXPECT_TRUE(bid_done);
  // With the queues drained the same broadcast is admitted everywhere.
  EXPECT_EQ(service.submit(stats,
                           [&](const Response&) { stats_done = true; }),
            PushResult::kOk);
  while (!stats_done) service.poll_once(std::chrono::nanoseconds{0});
  EXPECT_TRUE(stats_done);
}

TEST(ShardedStdio, UnsupportedOpAnswersStructurallyAndKeepsTheSession) {
  ShardedService service(shard_config(4));
  std::stringstream trace;
  trace << R"({"op":"frobnicate","id":5})" << "\n";
  Request stats;
  stats.op = Op::kStats;
  stats.id = 6;
  trace << format_request(stats) << "\n";
  std::ostringstream out;
  const StdioResult result = run_stdio_session(service, trace, out);
  EXPECT_EQ(result.parse_errors, 1u);
  EXPECT_EQ(result.requests, 1u);
  const std::vector<Response> responses = parse_lines(out.str());
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].error, "unsupported_op");
  EXPECT_EQ(responses[0].id, 5);
  EXPECT_EQ(responses[0].fields.text_or("op", ""), "frobnicate");
  EXPECT_EQ(responses[0].fields.number("proto_version"),
            static_cast<double>(kProtoVersion));
  EXPECT_TRUE(responses[1].ok) << responses[1].error;  // session survived
}

// -------------------------------------------- config + estimator factory --

TEST(ServiceConfigFlags, ParsesTheSharedFlagSet) {
  const char* argv[] = {"melody_serve",    "--workers",        "50",
                        "--tasks",         "40",               "--shards",
                        "4",               "--queue-capacity", "9",
                        "--estimator",     "static",           "--seed",
                        "77",              "--batch-min-bids", "12",
                        "--manual-clock"};
  const util::Flags flags(static_cast<int>(std::size(argv)), argv);
  const ServiceConfig config = ServiceConfig::from_flags(flags);
  EXPECT_EQ(config.scenario.num_workers, 50);
  EXPECT_EQ(config.scenario.num_tasks, 40);
  EXPECT_EQ(config.shards, 4);
  EXPECT_EQ(config.queue_capacity, 9);
  EXPECT_EQ(config.estimator, "static");
  EXPECT_EQ(config.seed, 77u);
  EXPECT_TRUE(config.manual_clock);
  EXPECT_EQ(config.batch.min_bids, 12);
  EXPECT_NO_THROW(config.validate());
}

TEST(ServiceConfigFlags, ValidateRejectsUnusableShardCounts) {
  ServiceConfig config = shard_config(4);
  config.scenario.num_workers = 3;  // fewer workers than shards
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = shard_config(1);
  config.estimator = "nonsense";
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(EstimatorFactory, KnownKindsConstructUnknownIsNull) {
  for (const std::string kind : {"melody", "static", "ml-cr", "ml-ar",
                                 "MELODY", "STATIC", "ML-CR", "ML-AR"}) {
    EXPECT_NE(estimators::make(kind, {}), nullptr) << kind;
  }
  EXPECT_EQ(estimators::make("nonsense", {}), nullptr);
  EXPECT_NE(estimators::known_kinds().find("melody"), std::string::npos);
}

}  // namespace
}  // namespace melody::svc
