// Request tracing + wire-trace record/replay (obs/trace.h, svc/trace_log.h,
// svc/replay.h): span identity and nesting through the thread-local context
// slot, the tracing-off cost gate (no events, no context writes), the
// MLDYTRC recorder round-trip and atomic tmp+rename publish, the stdio
// record -> replay zero-diff contract, field-level divergence reporting
// with frame index + field path, the volatile-field mask, and the per-shard
// stats/trace_status namespacing (K=1 byte-identity preserved, K>1 gains
// "shard<k>/..." views plus merged totals).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "svc/config.h"
#include "svc/protocol.h"
#include "svc/replay.h"
#include "svc/router.h"
#include "svc/trace_log.h"

namespace melody::svc {
namespace {

// ------------------------------------------------------------ test rig ----

/// In-memory event capture: names plus typed fields, copied out of the
/// emit() call (Field values are views that die with the call).
class CaptureSink final : public obs::Sink {
 public:
  struct Event {
    std::string name;
    std::map<std::string, std::int64_t> ints;
    std::map<std::string, double> doubles;
    std::map<std::string, std::string> strings;
  };

  void event(std::string_view name,
             std::span<const obs::Field> fields) override {
    Event e;
    e.name = std::string(name);
    for (const obs::Field& f : fields) {
      switch (f.kind) {
        case obs::Field::Kind::kInt:
          e.ints[std::string(f.key)] = f.integer;
          break;
        case obs::Field::Kind::kDouble:
          e.doubles[std::string(f.key)] = f.num;
          break;
        case obs::Field::Kind::kString:
          e.strings[std::string(f.key)] = std::string(f.text);
          break;
      }
    }
    events.push_back(std::move(e));
  }

  std::vector<Event> events;
};

ServiceConfig trace_config(int shards) {
  ServiceConfig config;
  config.scenario.num_workers = 42;
  config.scenario.num_tasks = 30;
  config.scenario.runs = 16;
  config.scenario.budget = 120.0;
  config.seed = 2017;
  config.manual_clock = true;
  config.shards = shards;
  return config;
}

Request bid_for(int worker, std::int64_t id) {
  Request r;
  r.op = Op::kSubmitBid;
  r.id = id;
  r.worker = "w" + std::to_string(worker);
  return r;
}

/// hello + `rounds` full participation rounds (one run per shard per round
/// with default batch triggers) + a trailing introspection op.
std::string session_stream(int rounds, Op tail_op) {
  std::ostringstream stream;
  std::int64_t next_id = 1;
  Request hello;
  hello.op = Op::kHello;
  hello.id = next_id++;
  stream << format_request(hello) << "\n";
  for (int round = 0; round < rounds; ++round) {
    for (int w = 0; w < 42; ++w) {
      stream << format_request(bid_for(w, next_id++)) << "\n";
    }
  }
  Request tail;
  tail.op = tail_op;
  tail.id = next_id++;
  stream << format_request(tail) << "\n";
  return stream.str();
}

/// Record one stdio session of `input` against a fresh K-shard service.
TraceFile record_session(const std::string& input, int shards) {
  std::ostringstream trace_bytes;
  {
    ShardedService service(trace_config(shards));
    TraceRecorder recorder(trace_bytes);
    std::istringstream in(input);
    std::ostringstream out;
    run_stdio_session(service, in, out, &recorder);
    recorder.finish();
  }
  std::istringstream reread(trace_bytes.str());
  return parse_trace(reread);
}

Response stdio_response_for(const std::string& input, int shards, Op op) {
  ShardedService service(trace_config(shards));
  std::istringstream in(input);
  std::ostringstream out;
  run_stdio_session(service, in, out);
  std::istringstream lines(out.str());
  std::string line;
  Response match;
  bool found = false;
  while (std::getline(lines, line)) {
    const Response response = parse_response(line);
    // The tail introspection op carries the highest id in the stream.
    if (!found || response.id > match.id) match = response;
    found = true;
  }
  EXPECT_TRUE(found);
  (void)op;
  return match;
}

// ----------------------------------------------------------- trace ids ----

TEST(TraceIds, MintIsDeterministicDecodableAndNeverZero) {
  EXPECT_EQ(obs::mint_trace_id(0, 0), 1u);
  EXPECT_EQ(obs::mint_trace_id(1, 0), (1ull << 24) + 1u);
  EXPECT_EQ(obs::mint_trace_id(3, 7), (3ull << 24) + 8u);
  // Same frame -> same id (two recordings of one session agree).
  EXPECT_EQ(obs::mint_trace_id(5, 9), obs::mint_trace_id(5, 9));
  // Distinct frames -> distinct ids within a session's plausible range.
  EXPECT_NE(obs::mint_trace_id(1, 2), obs::mint_trace_id(2, 1));
}

TEST(TraceIds, SpanIdsAreUniqueAndMonotone) {
  const std::uint64_t a = obs::next_span_id();
  const std::uint64_t b = obs::next_span_id();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
}

// ----------------------------------------------------- context + spans ----

TEST(TraceContext, ScopedInstallRestoresPreviousContext) {
  ASSERT_FALSE(obs::current_trace().active());
  obs::TraceContext root;
  root.trace_id = obs::mint_trace_id(9, 0);
  root.span_id = obs::next_span_id();
  {
    obs::ScopedTraceContext install(root);
    EXPECT_EQ(obs::current_trace().trace_id, root.trace_id);
    EXPECT_EQ(obs::current_trace().span_id, root.span_id);
    {
      obs::TraceContext child = root;
      child.parent_span_id = root.span_id;
      child.span_id = obs::next_span_id();
      obs::ScopedTraceContext nested(child);
      EXPECT_EQ(obs::current_trace().span_id, child.span_id);
    }
    EXPECT_EQ(obs::current_trace().span_id, root.span_id);
  }
  EXPECT_FALSE(obs::current_trace().active());
}

TEST(TraceContext, InactiveContextInstallIsANoOp) {
  obs::ScopedTraceContext install(obs::TraceContext{});
  EXPECT_FALSE(obs::current_trace().active());
}

TEST(ScopedSpan, EmitsOneEventWithIdsTimingAndAnnotations) {
  obs::ScopedEnable enable(true);
  CaptureSink capture;
  obs::ScopedSink scoped(&capture);

  obs::TraceContext root;
  root.trace_id = obs::mint_trace_id(2, 5);
  root.span_id = obs::next_span_id();
  std::uint64_t span_id = 0;
  {
    obs::ScopedSpan span("test/phase", root);
    ASSERT_TRUE(span.active());
    span_id = span.context().span_id;
    EXPECT_EQ(span.context().trace_id, root.trace_id);
    EXPECT_EQ(span.context().parent_span_id, root.span_id);
    span.annotate("run", std::int64_t{17});
    span.annotate("budget", 120.5);
    span.annotate("op", std::string_view("submit_bid"));
  }
  ASSERT_EQ(capture.events.size(), 1u);
  const CaptureSink::Event& event = capture.events.front();
  EXPECT_EQ(event.name, "test/phase");
  EXPECT_EQ(event.ints.at("trace"),
            static_cast<std::int64_t>(root.trace_id));
  EXPECT_EQ(event.ints.at("span"), static_cast<std::int64_t>(span_id));
  EXPECT_EQ(event.ints.at("parent"),
            static_cast<std::int64_t>(root.span_id));
  EXPECT_GE(event.doubles.count("us"), 1u);  // monotonic delta; value is env
  EXPECT_EQ(event.ints.at("run"), 17);
  EXPECT_DOUBLE_EQ(event.doubles.at("budget"), 120.5);
  EXPECT_EQ(event.strings.at("op"), "submit_bid");
}

TEST(ScopedSpan, NestsAutomaticallyThroughTheThreadLocalSlot) {
  obs::ScopedEnable enable(true);
  CaptureSink capture;
  obs::ScopedSink scoped(&capture);

  obs::TraceContext root;
  root.trace_id = obs::mint_trace_id(4, 0);
  root.span_id = obs::next_span_id();
  obs::ScopedTraceContext install(root);
  std::uint64_t outer_id = 0;
  {
    obs::ScopedSpan outer("test/outer");
    outer_id = outer.context().span_id;
    obs::ScopedSpan inner("test/inner");  // no explicit parent
    EXPECT_EQ(inner.context().trace_id, root.trace_id);
    EXPECT_EQ(inner.context().parent_span_id, outer_id);
  }
  ASSERT_EQ(capture.events.size(), 2u);  // inner closes first
  EXPECT_EQ(capture.events[0].name, "test/inner");
  EXPECT_EQ(capture.events[0].ints.at("parent"),
            static_cast<std::int64_t>(outer_id));
  EXPECT_EQ(capture.events[1].name, "test/outer");
  EXPECT_EQ(capture.events[1].ints.at("parent"),
            static_cast<std::int64_t>(root.span_id));
}

TEST(ScopedSpan, InertWhenTracingIsDisabled) {
  obs::ScopedEnable enable(false);
  CaptureSink capture;
  obs::ScopedSink scoped(&capture);
  obs::TraceContext root;
  root.trace_id = obs::mint_trace_id(1, 1);
  root.span_id = obs::next_span_id();
  const std::uint64_t emitted_before = obs::spans_emitted();
  {
    obs::ScopedSpan span("test/dark", root);
    EXPECT_FALSE(span.active());
    span.annotate("run", 3);  // dropped, not recorded
  }
  EXPECT_TRUE(capture.events.empty());
  EXPECT_EQ(obs::spans_emitted(), emitted_before);
}

TEST(ScopedSpan, InertUnderAnInactiveParent) {
  obs::ScopedEnable enable(true);
  CaptureSink capture;
  obs::ScopedSink scoped(&capture);
  {
    obs::ScopedSpan span("test/orphan");  // thread has no active context
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(capture.events.empty());
}

// ------------------------------------------------------------- recorder --

TEST(TraceRecorder, RoundTripsHeaderAndFramesThroughTheWireCodec) {
  std::ostringstream bytes;
  TraceRecorder recorder(bytes);
  ServiceConfig config = trace_config(2);
  config.faults = sim::FaultPlan::parse("no-show=0.05,drop=0.1");
  recorder.begin_session(config);
  recorder.record_in(1, 0, R"({"op":"hello","id":1})", kShardBroadcast, 17,
                     kProtoVersion);
  recorder.record_out(1, 0, R"({"ok":true,"id":1})");
  recorder.record_in(1, 1, "not json at all", kShardNone, 0);
  EXPECT_EQ(recorder.frames(), 3u);
  recorder.finish();

  std::istringstream reread(bytes.str());
  const TraceFile trace = parse_trace(reread);
  EXPECT_EQ(trace.version(), 1);
  EXPECT_EQ(trace.shards(), 2);
  EXPECT_EQ(trace.header.text("magic"), "MLDYTRC");
  EXPECT_EQ(trace.header.number("proto"), static_cast<double>(kProtoVersion));
  EXPECT_EQ(trace.header.number("workers"), 42.0);
  EXPECT_TRUE(trace.header.boolean_or("manual_clock", false));
  EXPECT_EQ(sim::FaultPlan::parse(trace.header.text("faults")),
            config.faults);

  ASSERT_EQ(trace.frames.size(), 3u);
  EXPECT_EQ(trace.frames[0].dir, TraceFrame::Dir::kIn);
  EXPECT_EQ(trace.frames[0].conn, 1u);
  EXPECT_EQ(trace.frames[0].seq, 0u);
  EXPECT_EQ(trace.frames[0].shard, kShardBroadcast);
  EXPECT_EQ(trace.frames[0].span, 17u);
  EXPECT_EQ(trace.frames[0].proto, kProtoVersion);
  EXPECT_EQ(trace.frames[0].line, R"({"op":"hello","id":1})");
  EXPECT_EQ(trace.frames[1].dir, TraceFrame::Dir::kOut);
  EXPECT_EQ(trace.frames[1].line, R"({"ok":true,"id":1})");
  // Raw bytes survive even when the frame itself is not valid JSON.
  EXPECT_EQ(trace.frames[2].line, "not json at all");
  EXPECT_EQ(trace.frames[2].shard, kShardNone);
}

TEST(TraceRecorder, PublishesAtomicallyViaTmpAndRename) {
  const std::string path =
      testing::TempDir() + "trace_recorder_atomic.trc";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  std::remove(tmp.c_str());
  {
    TraceRecorder recorder(path);
    recorder.begin_session(trace_config(1));
    recorder.record_in(1, 0, R"({"op":"hello","id":1})", kShardBroadcast, 0);
    // Mid-session: only the temporary exists — a crash here never leaves a
    // half-trace behind the real name.
    EXPECT_FALSE(std::ifstream(path).good());
    EXPECT_TRUE(std::ifstream(tmp).good());
    recorder.finish();
    EXPECT_TRUE(std::ifstream(path).good());
    EXPECT_FALSE(std::ifstream(tmp).good());
    recorder.finish();  // idempotent
  }
  const TraceFile trace = read_trace(path);
  EXPECT_EQ(trace.frames.size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceRecorder, ParseRejectsMissingOrWrongHeader) {
  std::istringstream no_header(
      R"({"dir":"in","conn":1,"seq":0,"frame":"x"})" "\n");
  EXPECT_THROW(parse_trace(no_header), std::runtime_error);
  std::istringstream wrong_magic(
      R"({"magic":"NOTATRACE","version":1})" "\n");
  EXPECT_THROW(parse_trace(wrong_magic), std::runtime_error);
  std::istringstream future_version(
      R"({"magic":"MLDYTRC","version":99})" "\n");
  EXPECT_THROW(parse_trace(future_version), std::runtime_error);
}

// --------------------------------------------------------------- replay --

TEST(Replay, StdioSessionReplaysWithZeroDiffs) {
  const std::string input = session_stream(4, Op::kStats);
  const TraceFile trace = record_session(input, 2);
  ASSERT_GT(trace.frames.size(), 0u);

  ShardedService service(config_from_trace(trace));
  const ReplayResult result = replay_trace(trace, service);
  for (const FrameDiff& diff : result.diffs) {
    ADD_FAILURE() << format_diff(diff);
  }
  EXPECT_TRUE(result.clean());
  // hello + 4 * 42 bids + stats, every one compared byte for byte.
  EXPECT_EQ(result.applied, 170u);
  EXPECT_EQ(result.compared, 170u);
  EXPECT_EQ(result.unmatched_out, 0u);
}

TEST(Replay, ConfigFromTraceReconstructsTheDeployment) {
  const TraceFile trace = record_session(session_stream(1, Op::kStats), 4);
  const ServiceConfig config = config_from_trace(trace);
  EXPECT_EQ(config.shards, 4);
  EXPECT_EQ(config.scenario.num_workers, 42);
  EXPECT_EQ(config.scenario.num_tasks, 30);
  EXPECT_EQ(config.scenario.runs, 16);
  EXPECT_EQ(config.scenario.budget, 120.0);
  EXPECT_EQ(config.seed, 2017u);
  EXPECT_TRUE(config.manual_clock);
}

TEST(Replay, TamperedResponseReportsFrameIndexAndFieldPath) {
  const std::string input = session_stream(1, Op::kStats);
  TraceFile trace = record_session(input, 2);

  // Corrupt the first recorded bid acknowledgement: "pending_bids":1 is the
  // first bid's deterministic reply on its shard.
  std::size_t tampered_index = trace.frames.size();
  std::uint64_t tampered_seq = 0;
  for (std::size_t i = 0; i < trace.frames.size(); ++i) {
    TraceFrame& frame = trace.frames[i];
    if (frame.dir != TraceFrame::Dir::kOut) continue;
    const std::size_t at = frame.line.find("\"pending_bids\":1");
    if (at == std::string::npos) continue;
    frame.line.replace(at, std::string("\"pending_bids\":1").size(),
                       "\"pending_bids\":941");
    tampered_index = i;
    tampered_seq = frame.seq;
    break;
  }
  ASSERT_LT(tampered_index, trace.frames.size());
  // Diffs anchor on the request frame (the in-frame the replay re-drove),
  // which shares the tampered response's (conn, seq).
  std::size_t request_index = trace.frames.size();
  for (std::size_t i = 0; i < trace.frames.size(); ++i) {
    const TraceFrame& frame = trace.frames[i];
    if (frame.dir == TraceFrame::Dir::kIn && frame.conn == 1 &&
        frame.seq == tampered_seq) {
      request_index = i;
      break;
    }
  }
  ASSERT_LT(request_index, trace.frames.size());

  ShardedService service(config_from_trace(trace));
  const ReplayResult result = replay_trace(trace, service);
  ASSERT_FALSE(result.clean());
  const FrameDiff& diff = result.diffs.front();
  EXPECT_EQ(diff.frame_index, request_index);
  EXPECT_EQ(diff.seq, tampered_seq);
  EXPECT_EQ(diff.field, "pending_bids");
  EXPECT_EQ(diff.recorded, "941");
  EXPECT_EQ(diff.replayed, "1");
  const std::string report = format_diff(diff);
  EXPECT_NE(report.find("pending_bids"), std::string::npos);
  EXPECT_NE(report.find("941"), std::string::npos);
}

TEST(Replay, MaxDiffsCapsTheReport) {
  const std::string input = session_stream(1, Op::kStats);
  TraceFile trace = record_session(input, 1);
  // Corrupt every bid acknowledgement.
  for (TraceFrame& frame : trace.frames) {
    if (frame.dir != TraceFrame::Dir::kOut) continue;
    const std::size_t at = frame.line.find("\"pending_bids\":");
    if (at == std::string::npos) continue;
    frame.line.insert(at + std::string("\"pending_bids\":").size(), "9");
  }
  ShardedService service(config_from_trace(trace));
  ReplayOptions options;
  options.max_diffs = 3;
  const ReplayResult result = replay_trace(trace, service, options);
  EXPECT_EQ(result.diffs.size(), 3u);
}

TEST(Replay, MaskMatchesExactPrefixAndSuffixPatterns) {
  const std::vector<std::string> mask = {"retry_after_ms", "loop_*", "*_ms"};
  EXPECT_TRUE(mask_matches(mask, "retry_after_ms"));
  EXPECT_TRUE(mask_matches(mask, "loop_requests"));
  EXPECT_TRUE(mask_matches(mask, "request_time_p99_ms"));
  EXPECT_FALSE(mask_matches(mask, "pending_bids"));
  EXPECT_FALSE(mask_matches(mask, "loops"));      // "loop_*" needs the '_'
  EXPECT_FALSE(mask_matches(mask, "ms_grid"));    // suffix, not substring
}

TEST(Replay, DefaultMaskCoversTheEnvironmentFacts) {
  const std::vector<std::string> mask = ReplayOptions::default_mask();
  // Backpressure hints, queue gauges, event-loop tallies, tracing counters
  // and latency percentiles are facts about the recording environment.
  for (const char* key :
       {"retry_after_ms", "queue_depth", "shard0/queue_depth",
        "overload_rejects", "loop_requests", "connections", "tracing",
        "shard0/tracing", "spans", "shard3/spans", "request_time_p99_ms",
        "request_time_count"}) {
    EXPECT_TRUE(mask_matches(mask, key)) << key;
  }
  // The trajectory facts a replay must reproduce are NOT masked.
  for (const char* key :
       {"pending_bids", "runs_total", "internal_id", "run", "finished"}) {
    EXPECT_FALSE(mask_matches(mask, key)) << key;
  }
}

// ----------------------------------------- per-shard stats namespacing ---

TEST(ShardNamespacing, SingleShardStatsStayByteIdenticalToUnsharded) {
  const Response stats =
      stdio_response_for(session_stream(2, Op::kStats), 1, Op::kStats);
  ASSERT_TRUE(stats.ok) << stats.error;
  for (const auto& [key, value] : stats.fields.entries()) {
    EXPECT_EQ(std::string_view(key).substr(0, 5) == "shard", false)
        << "K=1 stats must not grow shard namespaces: " << key;
  }
  EXPECT_EQ(stats.fields.number("runs_this_session"), 2.0);
}

TEST(ShardNamespacing, MultiShardStatsExposePerShardViewsAndSummedTotals) {
  const Response stats =
      stdio_response_for(session_stream(2, Op::kStats), 2, Op::kStats);
  ASSERT_TRUE(stats.ok) << stats.error;
  ASSERT_TRUE(stats.fields.has("shard0/requests"));
  ASSERT_TRUE(stats.fields.has("shard1/requests"));
  EXPECT_EQ(stats.fields.number("requests"),
            stats.fields.number("shard0/requests") +
                stats.fields.number("shard1/requests"));
  EXPECT_EQ(stats.fields.number("runs_this_session"),
            stats.fields.number("shard0/runs_this_session") +
                stats.fields.number("shard1/runs_this_session"));
  // Both shards ran both rounds of their sub-market.
  EXPECT_EQ(stats.fields.number("runs_this_session"), 4.0);
}

TEST(ShardNamespacing, TraceStatusMergesCountsAndDropsUnmergeablePercentiles) {
  const Response status = stdio_response_for(
      session_stream(1, Op::kTraceStatus), 2, Op::kTraceStatus);
  ASSERT_TRUE(status.ok) << status.error;
  // Per-shard views carry everything, percentiles included.
  ASSERT_TRUE(status.fields.has("shard0/request_time_p99_ms"));
  ASSERT_TRUE(status.fields.has("shard1/requests"));
  // The top level sums sample counts but cannot merge percentile values.
  EXPECT_TRUE(status.fields.has("request_time_count"));
  EXPECT_FALSE(status.fields.has("request_time_p99_ms"));
  EXPECT_EQ(status.fields.number("requests"),
            status.fields.number("shard0/requests") +
                status.fields.number("shard1/requests"));
  EXPECT_TRUE(status.fields.has("tracing"));
  EXPECT_TRUE(status.fields.has("spans"));
}

TEST(ShardNamespacing, SingleShardTraceStatusKeepsPercentilesAtTopLevel) {
  const Response status = stdio_response_for(
      session_stream(1, Op::kTraceStatus), 1, Op::kTraceStatus);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_TRUE(status.fields.has("request_time_p50_ms"));
  EXPECT_TRUE(status.fields.has("run_time_p99_ms"));
  EXPECT_TRUE(status.fields.has("requests"));
}

// ---------------------------------------------------- traced recording ---

TEST(TracedRecording, EnabledTracingMintsDeterministicRootSpansPerFrame) {
  obs::ScopedEnable enable(true);
  const std::string input = session_stream(1, Op::kStats);
  const TraceFile trace = record_session(input, 2);
  std::uint64_t seq = 0;
  for (const TraceFrame& frame : trace.frames) {
    if (frame.dir != TraceFrame::Dir::kIn) continue;
    EXPECT_GT(frame.span, 0u) << "frame seq " << frame.seq;
    EXPECT_EQ(frame.seq, seq++);
  }
  // Replays of a traced recording are still clean: span/trace fields live
  // in the trace metadata, never in the response bytes.
  ShardedService service(config_from_trace(trace));
  obs::ScopedEnable replay_dark(false);
  const ReplayResult result = replay_trace(trace, service);
  for (const FrameDiff& diff : result.diffs) {
    ADD_FAILURE() << format_diff(diff);
  }
  EXPECT_TRUE(result.clean());
}

TEST(TracedRecording, DisabledTracingRecordsZeroSpanIds) {
  obs::ScopedEnable enable(false);
  const TraceFile trace = record_session(session_stream(1, Op::kStats), 1);
  for (const TraceFrame& frame : trace.frames) {
    EXPECT_EQ(frame.span, 0u);
  }
}

}  // namespace
}  // namespace melody::svc
