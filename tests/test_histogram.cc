#include "util/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace melody::util {
namespace {

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_THROW(h.bin_lo(5), std::out_of_range);
  EXPECT_THROW(h.bin_hi(5), std::out_of_range);
}

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  h.add(1.0);  // exactly at hi clamps into the last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  double total = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.fraction(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, FractionOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtOne) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {1.0, 3.0, 5.0, 7.0, 9.0, 9.5}) h.add(x);
  const auto cdf = h.cdf();
  ASSERT_EQ(cdf.size(), 5u);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(Histogram, CdfOfEmptyIsZeros) {
  Histogram h(0.0, 1.0, 3);
  for (double v : h.cdf()) EXPECT_EQ(v, 0.0);
}

TEST(Histogram, RenderContainsCountsAndBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string rendered = h.render(10);
  EXPECT_NE(rendered.find('#'), std::string::npos);
  EXPECT_NE(rendered.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace melody::util
