// Public-facade tests: the full per-run workflow through melody::core::Melody.
#include "core/melody.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

namespace melody::core {
namespace {

MelodyOptions open_options() {
  MelodyOptions options;
  options.theta_min = 0.1;
  options.theta_max = 100.0;
  options.cost_min = 0.01;
  options.cost_max = 100.0;
  options.tracker.initial_posterior = {5.5, 2.25};
  return options;
}

TEST(MelodyFacade, RegisterIsIdempotent) {
  Melody platform(open_options());
  platform.register_worker(1);
  platform.register_worker(1);
  EXPECT_TRUE(platform.is_registered(1));
  EXPECT_FALSE(platform.is_registered(2));
}

TEST(MelodyFacade, NewcomerEstimateFromInitialPosterior) {
  Melody platform(open_options());
  platform.register_worker(1);
  EXPECT_DOUBLE_EQ(platform.estimated_quality(1), 5.5);  // a = 1 default
}

TEST(MelodyFacade, AuctionRegistersUnknownBidders) {
  Melody platform(open_options());
  const std::vector<BidSubmission> bids{{1, {1.0, 2}}, {2, {1.2, 3}}};
  const std::vector<auction::Task> tasks{{0, 8.0}};
  platform.run_auction(bids, tasks, 50.0);
  EXPECT_TRUE(platform.is_registered(1));
  EXPECT_TRUE(platform.is_registered(2));
}

TEST(MelodyFacade, FullRunWorkflow) {
  Melody platform(open_options());
  const std::vector<BidSubmission> bids{
      {1, {1.0, 3}}, {2, {1.2, 3}}, {3, {1.5, 3}}};
  const std::vector<auction::Task> tasks{{0, 9.0}, {1, 10.0}};
  const auto result = platform.run_auction(bids, tasks, 100.0);
  // All estimates are 5.5; task 0 needs two workers; worker 3 is critical.
  EXPECT_FALSE(result.selected_tasks.empty());

  // Requester scores the completed work; the platform digests it.
  for (const auto& a : result.assignments) {
    lds::ScoreSet set;
    set.add(7.0);
    platform.submit_scores(a.worker, set);
  }
  EXPECT_EQ(platform.end_run(), 1);
  EXPECT_EQ(platform.completed_runs(), 1);

  // Workers who scored 7 move up from 5.5; idle workers drift with the
  // transition only (mean unchanged for a = 1).
  for (const auto& a : result.assignments) {
    EXPECT_GT(platform.estimated_quality(a.worker), 5.5);
  }
}

TEST(MelodyFacade, SubmitScoresAccumulatesWithinRun) {
  Melody platform(open_options());
  platform.register_worker(1);
  lds::ScoreSet first;
  first.add(6.0);
  lds::ScoreSet second;
  second.add(8.0);
  platform.submit_scores(1, first);
  platform.submit_scores(1, second);
  platform.end_run();
  // Equivalent to one run with scores {6, 8}.
  const auto expected = lds::filter_step(
      {5.5, 2.25}, lds::ScoreSet::from(std::vector<double>{6.0, 8.0}),
      platform.tracker().params(1));
  EXPECT_NEAR(platform.tracker().posterior(1).mean, expected.mean, 1e-12);
}

TEST(MelodyFacade, SubmitScoresForUnknownWorkerThrows) {
  Melody platform(open_options());
  lds::ScoreSet set;
  set.add(5.0);
  EXPECT_THROW(platform.submit_scores(42, set), std::invalid_argument);
}

TEST(MelodyFacade, EndRunKeepsIdleWorkersFrozen) {
  Melody platform(open_options());
  platform.register_worker(1);
  platform.register_worker(2);
  const double var_before = platform.tracker().posterior(1).var;
  platform.end_run();
  // Idle workers keep their posterior (participation-indexed chain).
  EXPECT_DOUBLE_EQ(platform.tracker().posterior(1).var, var_before);
  EXPECT_DOUBLE_EQ(platform.tracker().posterior(2).var, var_before);
  EXPECT_EQ(platform.completed_runs(), 1);
}

TEST(MelodyFacade, MultipleRunsTrackImprovingWorker) {
  Melody platform(open_options());
  platform.register_worker(1);
  double level = 4.0;
  for (int r = 0; r < 50; ++r) {
    level += 0.05;
    lds::ScoreSet set;
    set.add(level);
    set.add(level);
    platform.submit_scores(1, set);
    platform.end_run();
  }
  EXPECT_NEAR(platform.estimated_quality(1), level, 1.0);
  EXPECT_EQ(platform.completed_runs(), 50);
}

TEST(MelodyFacade, SnapshotRoundTripResumesPlatform) {
  Melody original(open_options());
  const std::vector<BidSubmission> bids{{1, {1.0, 3}}, {2, {1.2, 3}},
                                        {3, {1.5, 3}}};
  const std::vector<auction::Task> tasks{{0, 9.0}};
  for (int run = 0; run < 12; ++run) {
    const auto result = original.run_auction(bids, tasks, 100.0);
    for (const auto& a : result.assignments) {
      lds::ScoreSet set;
      set.add(6.0 + 0.1 * run);
      original.submit_scores(a.worker, set);
    }
    original.end_run();
  }
  std::stringstream snapshot;
  original.save(snapshot);

  Melody restored(open_options());
  restored.load(snapshot);
  EXPECT_EQ(restored.completed_runs(), original.completed_runs());
  for (auction::WorkerId id : {1, 2, 3}) {
    ASSERT_TRUE(restored.is_registered(id));
    EXPECT_DOUBLE_EQ(restored.estimated_quality(id),
                     original.estimated_quality(id));
  }
  // Both platforms evolve identically from here.
  const auto ra = original.run_auction(bids, tasks, 100.0);
  const auto rb = restored.run_auction(bids, tasks, 100.0);
  EXPECT_EQ(ra.selected_tasks, rb.selected_tasks);
  EXPECT_DOUBLE_EQ(ra.total_payment(), rb.total_payment());
}

TEST(MelodyFacade, SaveRejectsOpenRun) {
  Melody platform(open_options());
  platform.register_worker(1);
  lds::ScoreSet set;
  set.add(5.0);
  platform.submit_scores(1, set);
  std::stringstream snapshot;
  EXPECT_THROW(platform.save(snapshot), std::runtime_error);
  platform.end_run();
  EXPECT_NO_THROW(platform.save(snapshot));
}

TEST(MelodyFacade, LoadRejectsBadHeader) {
  Melody platform(open_options());
  std::stringstream bad("WRONG\n0 0\n\n");
  EXPECT_THROW(platform.load(bad), std::runtime_error);
}

TEST(MelodyFacade, QualificationIntervalsApplied) {
  MelodyOptions options = open_options();
  options.theta_min = 6.0;  // initial estimate 5.5 is unqualified
  Melody platform(options);
  const std::vector<BidSubmission> bids{{1, {1.0, 3}}, {2, {1.0, 3}}};
  const std::vector<auction::Task> tasks{{0, 5.0}};
  const auto result = platform.run_auction(bids, tasks, 100.0);
  EXPECT_TRUE(result.selected_tasks.empty());
}

}  // namespace
}  // namespace melody::core
