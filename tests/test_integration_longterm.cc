// End-to-end long-term experiment at reduced scale (a miniature of
// Section 7.7): MELODY's LDS tracker must beat the STATIC and ML-AR
// baselines on estimation error over a drifting population.
#include <gtest/gtest.h>

#include <memory>

#include "auction/melody_auction.h"
#include "estimators/melody_estimator.h"
#include "estimators/ml_ar_estimator.h"
#include "estimators/ml_cr_estimator.h"
#include "estimators/static_estimator.h"
#include "sim/metrics.h"
#include "sim/platform.h"

namespace melody::sim {
namespace {

LongTermScenario mini_scenario() {
  LongTermScenario s;
  s.num_workers = 60;
  s.num_tasks = 50;
  s.runs = 200;
  // Generous budget keeps the market supply-saturated — every worker is
  // assigned (and hence observed) every run, as in the paper's Table 4
  // regime where task demand far exceeds worker capacity. Under scarcity
  // an un-reobserved worker's estimate goes stale for *any* estimator.
  s.budget = 500.0;
  // Emphasize drifting workers so the long-term distinction shows quickly.
  s.mix = {0.45, 0.45, 0.0, 0.1};
  return s;
}

MetricSummary run_with(estimators::QualityEstimator& estimator,
                       const LongTermScenario& scenario, std::uint64_t seed) {
  auction::MelodyAuction mechanism;
  util::Rng rng(seed);  // identical population across estimators
  auto workers = sample_population(scenario.population_config(), rng);
  Platform platform(scenario, mechanism, estimator, std::move(workers), seed);
  const auto records = platform.run_all();
  return summarize_after(records, records.size() / 4);  // drop warm-up
}

struct LongTermFixture : public ::testing::Test {
  LongTermScenario scenario = mini_scenario();
  std::uint64_t seed = 2024;

  estimators::MelodyEstimatorConfig tracker_config() const {
    estimators::MelodyEstimatorConfig config;
    config.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
    config.reestimation_period = scenario.reestimation_period;
    return config;
  }
};

TEST_F(LongTermFixture, MelodyBeatsStaticOnEstimationError) {
  estimators::MelodyEstimator melody(tracker_config());
  estimators::StaticEstimator baseline(scenario.initial_mu, 50);
  const auto melody_summary = run_with(melody, scenario, seed);
  const auto static_summary = run_with(baseline, scenario, seed);
  EXPECT_LT(melody_summary.mean_estimation_error,
            static_summary.mean_estimation_error);
}

TEST_F(LongTermFixture, MelodyBeatsMlArOnEstimationError) {
  estimators::MelodyEstimator melody(tracker_config());
  estimators::MlAllRunsEstimator baseline(scenario.initial_mu);
  const auto melody_summary = run_with(melody, scenario, seed);
  const auto ar_summary = run_with(baseline, scenario, seed);
  EXPECT_LT(melody_summary.mean_estimation_error,
            ar_summary.mean_estimation_error);
}

TEST_F(LongTermFixture, MelodyBeatsMlCrOnEstimationError) {
  estimators::MelodyEstimator melody(tracker_config());
  estimators::MlCurrentRunEstimator baseline(scenario.initial_mu);
  const auto melody_summary = run_with(melody, scenario, seed);
  const auto cr_summary = run_with(baseline, scenario, seed);
  EXPECT_LT(melody_summary.mean_estimation_error,
            cr_summary.mean_estimation_error);
}

TEST_F(LongTermFixture, MelodyTrueUtilityAtLeastMatchesStatic) {
  estimators::MelodyEstimator melody(tracker_config());
  estimators::StaticEstimator baseline(scenario.initial_mu, 50);
  const auto melody_summary = run_with(melody, scenario, seed);
  const auto static_summary = run_with(baseline, scenario, seed);
  // Allow a small slack: utility is noisier than estimation error at this
  // miniature scale. The full-scale comparison is the Fig. 9 bench.
  EXPECT_GE(melody_summary.mean_true_utility,
            static_summary.mean_true_utility * 0.95);
}

TEST_F(LongTermFixture, BudgetNeverExceededAcrossWholeHorizon) {
  estimators::MelodyEstimator melody(tracker_config());
  auction::MelodyAuction mechanism;
  util::Rng rng(seed);
  Platform platform(scenario, mechanism, melody,
                    sample_population(scenario.population_config(), rng), seed);
  for (const auto& record : platform.run_all()) {
    EXPECT_LE(record.total_payment, scenario.budget + 1e-9);
  }
}

TEST_F(LongTermFixture, EstimatedUtilityCorrelatesWithTrueUtility) {
  estimators::MelodyEstimator melody(tracker_config());
  auction::MelodyAuction mechanism;
  util::Rng rng(seed);
  Platform platform(scenario, mechanism, melody,
                    sample_population(scenario.population_config(), rng), seed);
  const auto records = platform.run_all();
  double over = 0;
  for (const auto& r : records) {
    if (r.true_utility > 0) {
      over += static_cast<double>(r.estimated_utility) /
              static_cast<double>(r.true_utility);
    }
  }
  // On average the estimated utility should be within 3x of the truth.
  const double ratio = over / static_cast<double>(records.size());
  EXPECT_GT(ratio, 1.0 / 3.0);
  EXPECT_LT(ratio, 3.0);
}

}  // namespace
}  // namespace melody::sim
