#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace melody::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownSeries) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_NEAR(left.min(), all.min(), 0.0);
  EXPECT_NEAR(left.max(), all.max(), 0.0);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(LinearFitTest, PerfectLine) {
  const std::vector<double> xs{0, 1, 2, 3, 4};
  const std::vector<double> ys{1, 3, 5, 7, 9};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, FlatLine) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{5, 5, 5, 5};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_EQ(fit.r_squared, 0.0);  // zero y-variance convention
}

TEST(LinearFitTest, MismatchedLengthsThrow) {
  const std::vector<double> xs{0, 1};
  const std::vector<double> ys{1};
  EXPECT_THROW(linear_fit(xs, ys), std::invalid_argument);
}

TEST(LinearFitTest, DegenerateInputs) {
  EXPECT_EQ(linear_fit({}, {}).slope, 0.0);
  const std::vector<double> one{3.0};
  EXPECT_EQ(linear_fit(one, one).slope, 0.0);
  // Constant x has undefined slope; convention is a flat fit.
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_EQ(linear_fit(xs, ys).slope, 0.0);
}

TEST(LinearFitTest, TrendUsesIndices) {
  const std::vector<double> ys{1, 3, 5, 7};
  const LinearFit fit = linear_trend(ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(Quantiles, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Quantiles, Extremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantiles, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(Quantiles, EmptyIsZero) { EXPECT_EQ(median({}), 0.0); }

TEST(SeriesMetrics, MeanVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
}

TEST(SeriesMetrics, MaeRmse) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 1.0);
  EXPECT_DOUBLE_EQ(rmse(a, b), std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, a), 0.0);
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(SeriesMetrics, MaeMismatchedThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(mean_absolute_error(a, b), std::invalid_argument);
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
  EXPECT_THROW(pearson(a, b), std::invalid_argument);
}

TEST(SeriesMetrics, PearsonPerfectAndAnti) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(a, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, down), -1.0, 1e-12);
}

TEST(SeriesMetrics, PearsonConstantSeriesIsZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> c{5.0, 5.0, 5.0};
  EXPECT_EQ(pearson(a, c), 0.0);
}

}  // namespace
}  // namespace melody::util
