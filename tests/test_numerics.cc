// Numerical robustness of the LDS core under extreme but plausible inputs:
// very large score sets, near-degenerate variances, long chains, and large
// quality magnitudes. The platform must never emit NaNs or blow up.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "lds/em.h"
#include "lds/kalman.h"
#include "lds/smoother.h"
#include "util/rng.h"

namespace melody::lds {
namespace {

bool finite(const Gaussian& g) {
  return std::isfinite(g.mean) && std::isfinite(g.var) && g.var > 0.0;
}

TEST(Numerics, HugeScoreSetConvergesToSampleMean) {
  // One million scores in a single run: the posterior collapses onto the
  // sample mean with variance ~ eta / N.
  const LdsParams params{1.0, 0.5, 4.0};
  ScoreSet set;
  set.count = 1'000'000;
  set.sum = 7.25 * 1'000'000;
  set.sum_squares = (4.0 + 7.25 * 7.25) * 1'000'000;
  const Gaussian posterior = filter_step({5.5, 2.25}, set, params);
  ASSERT_TRUE(finite(posterior));
  EXPECT_NEAR(posterior.mean, 7.25, 1e-4);
  EXPECT_LT(posterior.var, 1e-4);
}

TEST(Numerics, TinyVariancesStayPositive) {
  const LdsParams params{1.0, 1e-9, 1e-9};
  Gaussian posterior{5.0, 1e-9};
  ScoreSet set;
  set.add(5.0);
  for (int r = 0; r < 1000; ++r) {
    posterior = filter_step(posterior, set, params);
    ASSERT_TRUE(finite(posterior)) << "run " << r;
  }
}

TEST(Numerics, HugeVariancesStayFinite) {
  const LdsParams params{1.0, 1e12, 1e12};
  Gaussian posterior{5.0, 1e12};
  ScoreSet set;
  set.add(5.0);
  for (int r = 0; r < 100; ++r) {
    posterior = filter_step(posterior, set, params);
    ASSERT_TRUE(finite(posterior));
  }
}

TEST(Numerics, VeryLongFilterChainIsStable) {
  const LdsParams params{0.999, 0.1, 3.0};
  util::Rng rng(1);
  Gaussian posterior{5.5, 2.25};
  for (int r = 0; r < 100'000; ++r) {
    ScoreSet set;
    if (r % 3 != 0) set.add(rng.uniform(1.0, 10.0));
    posterior = filter_step(posterior, set, params);
  }
  ASSERT_TRUE(finite(posterior));
  // Steady-state variance is bounded by the one-step-observed fixed point.
  EXPECT_LT(posterior.var, 5.0);
  EXPECT_GT(posterior.mean, 0.0);
  EXPECT_LT(posterior.mean, 11.0);
}

TEST(Numerics, LogMarginalExtremeOutlier) {
  // A score 1000 sigma away: log-likelihood is hugely negative but finite.
  const LdsParams params{1.0, 0.5, 1.0};
  ScoreSet set;
  set.add(1000.0);
  const double logml = log_marginal({5.0, 1.0}, set, params);
  EXPECT_TRUE(std::isfinite(logml));
  EXPECT_LT(logml, -1000.0);
}

TEST(Numerics, SmootherOnLongSparseHistory) {
  const LdsParams params{0.995, 0.2, 2.0};
  util::Rng rng(2);
  ScoreHistory history;
  for (int r = 0; r < 5000; ++r) {
    ScoreSet set;
    if (rng.bernoulli(0.2)) set.add(rng.uniform(1.0, 10.0));
    history.push_back(set);
  }
  const SmootherResult result = smooth({5.5, 2.25}, history, params);
  for (std::size_t t = 0; t <= history.size(); t += 500) {
    ASSERT_TRUE(finite(result.smoothed[t])) << "t=" << t;
  }
}

TEST(Numerics, EmOnLongHistoryStaysFinite) {
  util::Rng rng(3);
  const LdsParams truth{0.999, 0.05, 4.0};
  ScoreHistory history;
  double q = 5.5;
  for (int r = 0; r < 3000; ++r) {
    q = truth.a * q + rng.normal(0.0, std::sqrt(truth.gamma));
    ScoreSet set;
    for (int s = 0; s < 2; ++s) {
      set.add(q + rng.normal(0.0, std::sqrt(truth.eta)));
    }
    history.push_back(set);
  }
  EmOptions options;
  options.max_iterations = 10;
  const EmResult result =
      fit_lds({5.5, 2.25}, history, LdsParams{1.0, 1.0, 1.0}, options);
  EXPECT_TRUE(std::isfinite(result.params.a));
  EXPECT_TRUE(std::isfinite(result.params.gamma));
  EXPECT_TRUE(std::isfinite(result.params.eta));
  EXPECT_TRUE(std::isfinite(result.log_likelihood_trace.back()));
}

TEST(Numerics, NegativeQualityScaleWorksThroughout) {
  // Nothing in the LDS math assumes positive quality: a chain centered at
  // -50 must filter and smooth identically (shift invariance).
  const LdsParams params{1.0, 0.5, 2.0};
  ScoreSet at_positive, at_negative;
  at_positive.add(6.0);
  at_positive.add(7.0);
  at_negative.add(6.0 - 56.0);
  at_negative.add(7.0 - 56.0);
  const Gaussian pos = filter_step({5.0, 2.0}, at_positive, params);
  const Gaussian neg = filter_step({5.0 - 56.0, 2.0}, at_negative, params);
  EXPECT_NEAR(pos.mean - 56.0, neg.mean, 1e-9);
  EXPECT_NEAR(pos.var, neg.var, 1e-12);
}

TEST(Numerics, TransitionCoefficientZero) {
  // a = 0: the prior forgets everything; posterior driven by scores alone.
  const LdsParams params{0.0, 1.0, 1.0};
  ScoreSet set;
  set.add(8.0);
  const Gaussian posterior = filter_step({3.0, 0.5}, set, params);
  ASSERT_TRUE(finite(posterior));
  // Prior is N(0, 1); posterior mean between 0 and 8.
  EXPECT_GT(posterior.mean, 0.0);
  EXPECT_LT(posterior.mean, 8.0);
}

TEST(Numerics, NegativeTransitionCoefficient) {
  const LdsParams params{-0.9, 0.5, 1.0};
  const Gaussian prior = predict({4.0, 1.0}, params);
  EXPECT_DOUBLE_EQ(prior.mean, -3.6);
  EXPECT_DOUBLE_EQ(prior.var, 0.81 + 0.5);
}

}  // namespace
}  // namespace melody::lds
