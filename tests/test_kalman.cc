// Numerical verification of the Theorem-3 update equations against
// brute-force Bayesian integration, plus filter behaviour tests.
#include "lds/kalman.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace melody::lds {
namespace {

/// Brute-force posterior over q given prior N(m, K) and i.i.d. scores with
/// emission variance eta, by numeric integration on a fine grid.
Gaussian brute_force_posterior(const Gaussian& prior,
                               const std::vector<double>& scores, double eta) {
  const double lo = prior.mean - 30.0;
  const double hi = prior.mean + 30.0;
  const int steps = 200000;
  const double dx = (hi - lo) / steps;
  double z = 0.0, m1 = 0.0, m2 = 0.0;
  const Gaussian emission_template{0.0, eta};
  for (int i = 0; i < steps; ++i) {
    const double q = lo + (i + 0.5) * dx;
    double logw = prior.log_pdf(q);
    for (double s : scores) logw += Gaussian{q, eta}.log_pdf(s);
    const double w = std::exp(logw);
    z += w;
    m1 += w * q;
    m2 += w * q * q;
  }
  (void)emission_template;
  const double mean = m1 / z;
  return {mean, m2 / z - mean * mean};
}

TEST(Predict, MatchesTransitionMoments) {
  const LdsParams params{0.9, 0.5, 1.0};
  const Gaussian posterior{4.0, 2.0};
  const Gaussian prior = predict(posterior, params);
  EXPECT_DOUBLE_EQ(prior.mean, 0.9 * 4.0);
  EXPECT_DOUBLE_EQ(prior.var, 0.81 * 2.0 + 0.5);
}

TEST(Predict, IdentityTransitionAddsOnlyNoise) {
  const LdsParams params{1.0, 0.3, 1.0};
  const Gaussian posterior{5.5, 2.25};
  const Gaussian prior = predict(posterior, params);
  EXPECT_DOUBLE_EQ(prior.mean, 5.5);
  EXPECT_DOUBLE_EQ(prior.var, 2.55);
}

TEST(Correct, EmptyScoresReturnPrior) {
  const LdsParams params{1.0, 0.3, 1.0};
  const Gaussian prior{5.0, 2.0};
  const Gaussian posterior = correct(prior, ScoreSet{}, params);
  EXPECT_EQ(posterior, prior);
}

TEST(Correct, Theorem3ClosedForm) {
  // Direct check of Eqs. (17)-(18): with K = a^2 sigma + gamma,
  // mu-hat = (a eta mu + K S) / (N K + eta), sigma-hat = K eta / (N K + eta).
  const LdsParams params{0.95, 0.4, 2.0};
  const Gaussian previous{6.0, 1.5};
  ScoreSet scores;
  scores.add(5.0);
  scores.add(7.0);
  scores.add(6.5);
  const Gaussian posterior = filter_step(previous, scores, params);
  const double k = 0.95 * 0.95 * 1.5 + 0.4;
  const double n = 3.0, s = 18.5;
  EXPECT_NEAR(posterior.mean,
              (params.a * params.eta * previous.mean + k * s) /
                  (n * k + params.eta),
              1e-12);
  EXPECT_NEAR(posterior.var, k * params.eta / (n * k + params.eta), 1e-12);
}

TEST(Correct, MatchesBruteForceIntegrationSingleScore) {
  const LdsParams params{1.0, 1.0, 2.0};
  const Gaussian prior{5.0, 1.5};
  ScoreSet set;
  set.add(7.0);
  const Gaussian posterior = correct(prior, set, params);
  const Gaussian brute = brute_force_posterior(prior, {7.0}, params.eta);
  EXPECT_NEAR(posterior.mean, brute.mean, 1e-4);
  EXPECT_NEAR(posterior.var, brute.var, 1e-4);
}

TEST(Correct, MatchesBruteForceIntegrationManyScores) {
  const LdsParams params{1.0, 1.0, 3.0};
  const Gaussian prior{4.0, 2.25};
  const std::vector<double> scores{3.0, 5.5, 4.2, 6.1, 2.8};
  const Gaussian posterior = correct(prior, ScoreSet::from(scores), params);
  const Gaussian brute = brute_force_posterior(prior, scores, params.eta);
  EXPECT_NEAR(posterior.mean, brute.mean, 1e-4);
  EXPECT_NEAR(posterior.var, brute.var, 1e-4);
}

TEST(Correct, MoreScoresShrinkVariance) {
  const LdsParams params{1.0, 0.5, 2.0};
  const Gaussian prior{5.0, 2.0};
  double previous_var = prior.var;
  ScoreSet set;
  for (int n = 1; n <= 10; ++n) {
    set.add(5.0);
    const Gaussian posterior = correct(prior, set, params);
    EXPECT_LT(posterior.var, previous_var);
    previous_var = posterior.var;
  }
}

TEST(Correct, PosteriorMeanBetweenPriorAndScoreMean) {
  const LdsParams params{1.0, 0.5, 2.0};
  const Gaussian prior{3.0, 1.0};
  ScoreSet set;
  set.add(9.0);
  const Gaussian posterior = correct(prior, set, params);
  EXPECT_GT(posterior.mean, prior.mean);
  EXPECT_LT(posterior.mean, 9.0);
}

TEST(LogMarginal, EmptySetIsZero) {
  const LdsParams params{1.0, 1.0, 1.0};
  EXPECT_EQ(log_marginal({5.0, 1.0}, ScoreSet{}, params), 0.0);
}

TEST(LogMarginal, SingleScoreMatchesConvolution) {
  // For one score, p(s) = N(s; m, K + eta) exactly.
  const LdsParams params{1.0, 1.0, 2.0};
  const Gaussian prior{5.0, 1.5};
  ScoreSet set;
  set.add(6.3);
  const Gaussian convolution{prior.mean, prior.var + params.eta};
  EXPECT_NEAR(log_marginal(prior, set, params), convolution.log_pdf(6.3), 1e-10);
}

TEST(LogMarginal, MatchesBruteForceIntegration) {
  const LdsParams params{1.0, 1.0, 3.0};
  const Gaussian prior{5.0, 2.0};
  const std::vector<double> scores{4.0, 6.0, 5.5};
  // Brute-force: integrate prior * prod emission over q.
  const double lo = -25.0, hi = 35.0;
  const int steps = 400000;
  const double dx = (hi - lo) / steps;
  double z = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double q = lo + (i + 0.5) * dx;
    double logw = prior.log_pdf(q);
    for (double s : scores) logw += Gaussian{q, params.eta}.log_pdf(s);
    z += std::exp(logw);
  }
  EXPECT_NEAR(log_marginal(prior, ScoreSet::from(scores), params),
              std::log(z * dx), 1e-5);
}

TEST(Filter, EmptyHistory) {
  const LdsParams params{1.0, 1.0, 1.0};
  const FilterResult r = filter({5.5, 2.25}, {}, params);
  EXPECT_TRUE(r.priors.empty());
  EXPECT_TRUE(r.posteriors.empty());
  EXPECT_EQ(r.log_likelihood, 0.0);
}

TEST(Filter, ChainsStepsConsistently) {
  const LdsParams params{0.98, 0.2, 2.0};
  const Gaussian init{5.5, 2.25};
  ScoreHistory history;
  util::Rng rng(99);
  for (int r = 0; r < 20; ++r) {
    ScoreSet set;
    const int n = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < n; ++i) set.add(rng.uniform(1.0, 10.0));
    history.push_back(set);
  }
  const FilterResult result = filter(init, history, params);
  ASSERT_EQ(result.posteriors.size(), history.size());
  Gaussian posterior = init;
  for (std::size_t t = 0; t < history.size(); ++t) {
    posterior = filter_step(posterior, history[t], params);
    EXPECT_NEAR(result.posteriors[t].mean, posterior.mean, 1e-12);
    EXPECT_NEAR(result.posteriors[t].var, posterior.var, 1e-12);
    EXPECT_NEAR(result.priors[t].mean,
                params.a * (t == 0 ? init.mean : result.posteriors[t - 1].mean),
                1e-12);
  }
}

TEST(Filter, TracksConstantSignal) {
  const LdsParams params{1.0, 0.01, 1.0};
  const Gaussian init{2.0, 4.0};
  ScoreHistory history;
  for (int r = 0; r < 50; ++r) {
    ScoreSet set;
    for (int i = 0; i < 3; ++i) set.add(8.0);
    history.push_back(set);
  }
  const FilterResult result = filter(init, history, params);
  EXPECT_NEAR(result.posteriors.back().mean, 8.0, 0.05);
}

TEST(Filter, UnobservedRunsGrowVariance) {
  const LdsParams params{1.0, 0.5, 1.0};
  const Gaussian init{5.0, 1.0};
  ScoreHistory history(5);  // all empty
  const FilterResult result = filter(init, history, params);
  for (std::size_t t = 1; t < result.posteriors.size(); ++t) {
    EXPECT_GT(result.posteriors[t].var, result.posteriors[t - 1].var);
  }
  EXPECT_NEAR(result.posteriors.back().var, 1.0 + 5 * 0.5, 1e-12);
}

TEST(Params, ValidationRejectsNonPositiveVariances) {
  EXPECT_THROW((LdsParams{1.0, 0.0, 1.0}).validate(), std::domain_error);
  EXPECT_THROW((LdsParams{1.0, 1.0, -2.0}).validate(), std::domain_error);
  EXPECT_NO_THROW((LdsParams{1.0, 1.0, 1.0}).validate());
}

TEST(Filter, RejectsInvalidInitialPosterior) {
  const LdsParams params{1.0, 1.0, 1.0};
  EXPECT_THROW(filter({5.0, 0.0}, {}, params), std::domain_error);
}

// Parameterized sweep: Theorem 3 must agree with brute-force integration
// across a grid of (a, gamma, eta) regimes.
struct KalmanCase {
  double a, gamma, eta;
};

class KalmanSweep : public ::testing::TestWithParam<KalmanCase> {};

TEST_P(KalmanSweep, ClosedFormMatchesBruteForce) {
  const auto& c = GetParam();
  const LdsParams params{c.a, c.gamma, c.eta};
  const Gaussian previous{5.0, 1.8};
  const std::vector<double> scores{4.1, 6.7, 5.0, 5.9};
  const Gaussian prior = predict(previous, params);
  const Gaussian posterior = correct(prior, ScoreSet::from(scores), params);
  const Gaussian brute = brute_force_posterior(prior, scores, params.eta);
  EXPECT_NEAR(posterior.mean, brute.mean, 1e-3);
  EXPECT_NEAR(posterior.var, brute.var, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, KalmanSweep,
    ::testing::Values(KalmanCase{1.0, 0.1, 1.0}, KalmanCase{0.9, 1.0, 2.0},
                      KalmanCase{1.05, 0.5, 5.0}, KalmanCase{0.5, 2.0, 0.5},
                      KalmanCase{1.0, 5.0, 10.0}, KalmanCase{0.99, 0.01, 9.0}));

}  // namespace
}  // namespace melody::lds
