// Grid-filter-backed tracker: agreement with the Kalman tracker for
// Gaussian emissions and end-to-end non-Gaussian tracking.
#include "estimators/grid_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "estimators/melody_estimator.h"
#include "util/rng.h"

namespace melody::estimators {
namespace {

lds::ScoreSet scores_of(std::initializer_list<double> values) {
  return lds::ScoreSet::from(std::vector<double>(values));
}

GridEstimatorConfig gaussian_config() {
  GridEstimatorConfig config;
  config.quality_min = -10.0;
  config.quality_max = 20.0;
  config.grid_points = 1200;
  config.initial_posterior = {5.5, 2.25};
  config.params = {1.0, 0.5, 4.0};
  return config;
}

TEST(GridEstimatorTest, MatchesKalmanTrackerForGaussianEmissions) {
  GridEstimator grid(gaussian_config());
  MelodyEstimatorConfig kalman_config;
  kalman_config.initial_posterior = {5.5, 2.25};
  kalman_config.initial_params = {1.0, 0.5, 4.0};
  kalman_config.reestimation_period = 0;  // fixed params, like the grid
  kalman_config.estimate_min = -100.0;    // disable clamps for the compare
  kalman_config.estimate_max = 100.0;
  MelodyEstimator kalman(kalman_config);

  grid.register_worker(1);
  kalman.register_worker(1);
  util::Rng rng(4);
  for (int r = 0; r < 25; ++r) {
    lds::ScoreSet set;
    const int n = static_cast<int>(rng.uniform_int(0, 3));
    for (int s = 0; s < n; ++s) set.add(rng.uniform(2.0, 9.0));
    grid.observe(1, set);
    kalman.observe(1, set);
    EXPECT_NEAR(grid.posterior_mean(1), kalman.posterior(1).mean, 2e-3)
        << "run " << r;
    EXPECT_NEAR(grid.posterior_variance(1), kalman.posterior(1).var, 2e-2)
        << "run " << r;
  }
  EXPECT_NEAR(grid.estimate(1), kalman.estimate(1), 2e-3);
}

TEST(GridEstimatorTest, RegisterIsIdempotent) {
  GridEstimator e(gaussian_config());
  e.register_worker(1);
  e.observe(1, scores_of({8.0, 8.0}));
  const double after = e.estimate(1);
  e.register_worker(1);
  EXPECT_DOUBLE_EQ(e.estimate(1), after);
}

TEST(GridEstimatorTest, EmptyRunFreezesByDefault) {
  GridEstimator e(gaussian_config());
  e.register_worker(1);
  const double before_mean = e.posterior_mean(1);
  const double before_var = e.posterior_variance(1);
  e.observe(1, {});
  EXPECT_NEAR(e.posterior_mean(1), before_mean, 1e-12);
  EXPECT_NEAR(e.posterior_variance(1), before_var, 1e-12);
}

TEST(GridEstimatorTest, AdvanceOnEmptyGrowsVariance) {
  auto config = gaussian_config();
  config.advance_on_empty_runs = true;
  GridEstimator e(config);
  e.register_worker(1);
  const double before = e.posterior_variance(1);
  e.observe(1, {});
  EXPECT_GT(e.posterior_variance(1), before);
}

TEST(GridEstimatorTest, PoissonCountTrackingEndToEnd) {
  // Worker "quality" is a rate of useful annotations per task; the
  // platform observes counts. No Gaussian anywhere in the emission.
  GridEstimatorConfig config;
  config.quality_min = 0.1;
  config.quality_max = 25.0;
  config.grid_points = 800;
  config.initial_posterior = {5.0, 4.0};
  config.params = {1.0, 0.05, 1.0};
  config.emission = lds::poisson_emission();
  GridEstimator e(config);
  e.register_worker(1);
  util::Rng rng(9);
  // True rate 9: sample Poisson(9) by inversion.
  auto sample_poisson = [&](double mean) {
    double u = rng.uniform01();
    int k = 0;
    double p = std::exp(-mean);
    double cdf = p;
    while (u > cdf && k < 200) {
      ++k;
      p *= mean / (k);
      cdf += p;
    }
    return static_cast<double>(k);
  };
  for (int r = 0; r < 60; ++r) {
    std::vector<double> counts{sample_poisson(9.0), sample_poisson(9.0)};
    e.observe_scores(1, counts);
  }
  EXPECT_NEAR(e.estimate(1), 9.0, 0.8);
}

TEST(GridEstimatorTest, BetaAccuracyTrackingEndToEnd) {
  // Worker quality is an accuracy in (0, 1) observed as Beta samples.
  GridEstimatorConfig config;
  config.quality_min = 0.02;
  config.quality_max = 0.98;
  config.grid_points = 600;
  config.initial_posterior = {0.5, 0.05};
  config.params = {1.0, 0.0005, 1.0};
  config.emission = lds::beta_emission(12.0);
  GridEstimator e(config);
  e.register_worker(1);
  util::Rng rng(11);
  for (int r = 0; r < 80; ++r) {
    // Observations concentrated around true accuracy 0.85.
    std::vector<double> obs{std::clamp(rng.normal(0.85, 0.08), 0.03, 0.97)};
    e.observe_scores(1, obs);
  }
  EXPECT_NEAR(e.estimate(1), 0.85, 0.07);
}

TEST(GridEstimatorTest, NameAndConfigValidation) {
  EXPECT_EQ(GridEstimator(gaussian_config()).name(), "GRID");
  GridEstimatorConfig bad = gaussian_config();
  bad.params.gamma = 0.0;
  EXPECT_THROW(GridEstimator{bad}, std::domain_error);
}

}  // namespace
}  // namespace melody::estimators
