// Load-generation building blocks (svc/loadgen.h): the pure counter-based
// request stream and the open-loop schedule's deterministic-retry contract
// — the fresh-arrival grid NEVER shifts, rejected requests re-send on
// their retry_after_ms hint with a bounded budget, and due retries take
// priority over fresh sends.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "svc/loadgen.h"
#include "svc/protocol.h"

namespace melody::svc::loadgen {
namespace {

TEST(LoadgenStream, RequestsArePureFunctionsOfSeedClientIndex) {
  const StreamConfig config{.seed = 7, .workers = 50, .task_budget = 200.0};
  for (int client = 0; client < 3; ++client) {
    for (int index = 0; index < 64; ++index) {
      const Request a = make_request(config, client, index);
      const Request b = make_request(config, client, index);
      EXPECT_EQ(a, b) << "client " << client << " index " << index;
      EXPECT_EQ(a.id, static_cast<std::int64_t>(client) * 1000000 + index + 1);
    }
  }
  // Counter-based streams: a different coordinate is a different stream
  // (spot-check — equality would mean the derivation ignores an input).
  EXPECT_NE(make_request(config, 0, 0), make_request(config, 1, 0));
  EXPECT_NE(make_request(config, 0, 0), make_request(config, 0, 1));
  const StreamConfig reseeded{.seed = 8, .workers = 50, .task_budget = 200.0};
  int differing = 0;
  for (int index = 0; index < 64; ++index) {
    if (!(make_request(config, 0, index) == make_request(reseeded, 0, index))) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(LoadgenStream, MixMatchesTheDocumentedDistribution) {
  StreamConfig config;
  config.proto = 2;  // the pre-continuous-auction mix
  std::map<Op, int> counts;
  int newcomers = 0;
  const int n = 20000;
  for (int index = 0; index < n; ++index) {
    const Request r = make_request(config, 0, index);
    ++counts[r.op];
    if (r.op == Op::kSubmitBid && r.has_bid) ++newcomers;
    if (r.op == Op::kSubmitTasks) {
      EXPECT_GE(r.task_count, 50);
      EXPECT_LE(r.task_count, 500);
      EXPECT_GT(r.budget, 0.0);
    }
  }
  // 72% submit_bid (2% of which are newcomer registrations), 10%
  // submit_tasks, 10% query_worker, 5% query_run, 3% stats — each within a
  // generous tolerance of the nominal rate.
  EXPECT_NEAR(counts[Op::kSubmitBid] / double(n), 0.72, 0.02);
  EXPECT_NEAR(newcomers / double(n), 0.02, 0.01);
  EXPECT_NEAR(counts[Op::kSubmitTasks] / double(n), 0.10, 0.02);
  EXPECT_NEAR(counts[Op::kQueryWorker] / double(n), 0.10, 0.02);
  EXPECT_NEAR(counts[Op::kQueryRun] / double(n), 0.05, 0.015);
  EXPECT_NEAR(counts[Op::kStats] / double(n), 0.03, 0.015);
  // A proto-2 stream never emits ops the peer would not understand.
  EXPECT_EQ(counts[Op::kUpdateBid], 0);
  EXPECT_EQ(counts[Op::kWithdrawBid], 0);
}

TEST(LoadgenStream, ProtoThreeMixCarvesOutTheContinuousAuctionOps) {
  const StreamConfig config;  // default: the build's own protocol version
  ASSERT_GE(config.proto, 3);
  std::map<Op, int> counts;
  const int n = 20000;
  for (int index = 0; index < n; ++index) {
    const Request r = make_request(config, 0, index);
    ++counts[r.op];
    if (r.op == Op::kUpdateBid) {
      EXPECT_TRUE(r.has_bid);
      EXPECT_GT(r.cost, 0.0);
      EXPECT_GE(r.frequency, 1);
    }
    if (r.op == Op::kWithdrawBid) EXPECT_FALSE(r.worker.empty());
  }
  // The v3 mix carves update_bid (6%) and withdraw_bid (2%) out of the
  // submit_bid share; everything from submit_tasks on is unchanged, so a
  // v3 stream stresses the new ops without perturbing the task/query load.
  EXPECT_NEAR(counts[Op::kSubmitBid] / double(n), 0.64, 0.02);
  EXPECT_NEAR(counts[Op::kUpdateBid] / double(n), 0.06, 0.015);
  EXPECT_NEAR(counts[Op::kWithdrawBid] / double(n), 0.02, 0.01);
  EXPECT_NEAR(counts[Op::kSubmitTasks] / double(n), 0.10, 0.02);
  EXPECT_NEAR(counts[Op::kQueryWorker] / double(n), 0.10, 0.02);
  EXPECT_NEAR(counts[Op::kQueryRun] / double(n), 0.05, 0.015);
  EXPECT_NEAR(counts[Op::kStats] / double(n), 0.03, 0.015);
}

using Kind = OpenLoopSchedule::Action::Kind;

TEST(OpenLoopSchedule, FreshGridNeverShiftsUnderRejections) {
  OpenLoopSchedule schedule(4, 100.0);  // fresh sends due every 10 ms
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(schedule.fresh_due(k), k * 0.010);
  }
  auto action = schedule.next(0.0);
  ASSERT_EQ(action.kind, Kind::kSend);
  EXPECT_EQ(action.index, 0);
  EXPECT_FALSE(action.is_retry);

  // Request 0 bounces with a 25 ms hint: the retry lands at 26 ms, and the
  // fresh grid is exactly where it always was.
  EXPECT_TRUE(schedule.note_rejected(0, 0.001, 25.0));
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(schedule.fresh_due(k), k * 0.010);
  }
  action = schedule.next(0.002);
  ASSERT_EQ(action.kind, Kind::kWait);
  EXPECT_DOUBLE_EQ(action.wait_until, 0.010);  // fresh 1, not the retry

  action = schedule.next(0.010);
  ASSERT_EQ(action.kind, Kind::kSend);
  EXPECT_EQ(action.index, 1);
  action = schedule.next(0.020);
  ASSERT_EQ(action.kind, Kind::kSend);
  EXPECT_EQ(action.index, 2);
  action = schedule.next(0.0201);
  ASSERT_EQ(action.kind, Kind::kWait);
  EXPECT_NEAR(action.wait_until, 0.026, 1e-12);  // the retry is now nearest

  action = schedule.next(0.0265);
  ASSERT_EQ(action.kind, Kind::kSend);
  EXPECT_EQ(action.index, 0);
  EXPECT_TRUE(action.is_retry);

  action = schedule.next(0.030);
  ASSERT_EQ(action.kind, Kind::kSend);
  EXPECT_EQ(action.index, 3);
  EXPECT_EQ(schedule.next(0.031).kind, Kind::kDone);
  EXPECT_EQ(schedule.fresh_sent(), 4);
  EXPECT_EQ(schedule.retries_sent(), 1);
  EXPECT_EQ(schedule.retries_dropped(), 0);
}

TEST(OpenLoopSchedule, DueRetriesGoBeforeDueFreshSends) {
  OpenLoopSchedule schedule(3, 100.0);
  ASSERT_EQ(schedule.next(0.0).index, 0);
  EXPECT_TRUE(schedule.note_rejected(0, 0.001, 5.0));
  // At t = 10 ms both the retry (due 6 ms) and fresh 1 (due 10 ms) are
  // due: the already-late retry goes first, the grid is untouched.
  auto action = schedule.next(0.010);
  ASSERT_EQ(action.kind, Kind::kSend);
  EXPECT_EQ(action.index, 0);
  EXPECT_TRUE(action.is_retry);
  action = schedule.next(0.010);
  ASSERT_EQ(action.kind, Kind::kSend);
  EXPECT_EQ(action.index, 1);
  EXPECT_FALSE(action.is_retry);
}

TEST(OpenLoopSchedule, RetryTiesBreakOnIndexAndBudgetIsBounded) {
  OpenLoopSchedule schedule(5, 0.0, /*max_retries=*/2);  // all due at once
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(schedule.next(0.0).index, k);
  }
  // Two rejections due at the same instant drain in index order.
  EXPECT_TRUE(schedule.note_rejected(3, 0.0, 10.0));
  EXPECT_TRUE(schedule.note_rejected(1, 0.0, 10.0));
  auto action = schedule.next(0.010);
  ASSERT_EQ(action.kind, Kind::kSend);
  EXPECT_EQ(action.index, 1);
  EXPECT_EQ(schedule.next(0.010).index, 3);

  // Request 1 keeps bouncing: the budget (2) exhausts, the drop is counted.
  EXPECT_TRUE(schedule.note_rejected(1, 0.011, 1.0));
  EXPECT_FALSE(schedule.note_rejected(1, 0.012, 1.0));
  EXPECT_EQ(schedule.retries_dropped(), 1);
  action = schedule.next(0.013);
  ASSERT_EQ(action.kind, Kind::kSend);
  EXPECT_EQ(action.index, 1);
  EXPECT_EQ(schedule.next(0.013).kind, Kind::kDone);
  EXPECT_EQ(schedule.retries_sent(), 3);
}

TEST(OpenLoopSchedule, OutOfRangeIndexesAreIgnored) {
  OpenLoopSchedule schedule(2, 0.0);
  EXPECT_FALSE(schedule.note_rejected(-1, 0.0, 1.0));
  EXPECT_FALSE(schedule.note_rejected(2, 0.0, 1.0));
  EXPECT_EQ(schedule.retries_sent(), 0);
}

}  // namespace
}  // namespace melody::svc::loadgen
