// End-to-end cluster exercises over real processes and real TCP: a
// coordinator (tools/melody_cluster) spawning two melody_serve members,
// driven through the control port with cluster::LineClient — live
// migration plus publish — and the chaos harness (tools/melody_chaos)
// kill/respawn rounds asserting no acknowledged submission is lost.
// Real networking, fork/exec and multi-second recovery loops, so this
// suite lives outside tier-1; CI bounds it via the chaos --timeout-s.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cluster/net.h"
#include "svc/wire.h"

#ifndef MELODY_TOOL_DIR
#error "MELODY_TOOL_DIR must point at the built tools directory"
#endif

namespace melody::cluster {
namespace {

std::string tool(const char* name) {
  return std::string(MELODY_TOOL_DIR) + "/" + name;
}

/// A port unlikely to collide across parallel ctest jobs.
int pick_port(int salt) {
  return 7300 + ((static_cast<int>(::getpid()) * 7 + salt) % 600);
}

pid_t spawn(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

/// Wait for `pid` to exit, failing the test after `timeout`.
int wait_exit(pid_t pid, std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    int status = 0;
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      ADD_FAILURE() << "process " << pid << " had to be killed";
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

/// One control-plane exchange; empty reply object on transport failure.
svc::WireObject control(LineClient& client, const std::string& host, int port,
                        const svc::WireObject& command) {
  if (!client.connected() && !client.connect(host, port)) return {};
  std::string reply;
  if (!client.exchange(svc::format_wire(command), &reply)) return {};
  return svc::parse_wire(reply);
}

svc::WireObject cmd(const char* name) {
  svc::WireObject command;
  command.set("cmd", svc::WireValue::of(name));
  return command;
}

bool wait_ready(LineClient& client, int port,
                std::chrono::seconds timeout = std::chrono::seconds(30)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    const svc::WireObject status =
        control(client, "127.0.0.1", port, cmd("status"));
    if (status.boolean_or("ready", false)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  return false;
}

std::vector<std::string> cluster_args(int port, const std::string& dir) {
  return {tool("melody_cluster"), "--shards", "8",  "--workers", "40",
          "--tasks", "32",        "--runs",   "400", "--members", "2",
          "--ctl-port", std::to_string(port),  "--publish-dir", dir,
          "--quiet"};
}

TEST(ClusterE2E, LiveMigrationAndPublishOverTcp) {
  const int port = pick_port(0);
  const std::string dir = "cluster_e2e_migrate_tmp";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const pid_t coordinator = spawn(cluster_args(port, dir));
  ASSERT_GT(coordinator, 0);
  LineClient client;
  ASSERT_TRUE(wait_ready(client, port)) << "cluster never became ready";

  // Live migration: shard 2 (owned by m0 under the contiguous split) hops
  // to m1; the epoch advances and the envelope lands in the publish dir.
  svc::WireObject migrate = cmd("migrate");
  migrate.set("shard", svc::WireValue::of(std::int64_t{2}));
  migrate.set("to", svc::WireValue::of("m1"));
  const svc::WireObject migrated =
      control(client, "127.0.0.1", port, migrate);
  ASSERT_TRUE(migrated.boolean_or("ok", false))
      << migrated.text_or("error", "<no reply>");
  EXPECT_EQ(static_cast<std::int64_t>(migrated.number("epoch")), 2);
  EXPECT_GE(migrated.number("pause_ms"), 0.0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/shard2_e2_migrate.mldymigr"));

  // Publish snapshots every shard without moving anything.
  const svc::WireObject published =
      control(client, "127.0.0.1", port, cmd("publish"));
  ASSERT_TRUE(published.boolean_or("ok", false));
  for (int s = 0; s < 8; ++s) {
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/shard" + std::to_string(s) + "_e2_publish.mldymigr"))
        << "shard " << s;
  }

  const svc::WireObject table =
      control(client, "127.0.0.1", port, cmd("route_table"));
  ASSERT_TRUE(table.boolean_or("ok", false));
  const std::vector<double>& owner = table.number_list("owner");
  ASSERT_EQ(owner.size(), 8u);
  EXPECT_EQ(static_cast<int>(owner[2]), 1) << "shard 2 must now live on m1";

  EXPECT_TRUE(
      control(client, "127.0.0.1", port, cmd("shutdown")).boolean_or("ok",
                                                                     false));
  client.close();
  EXPECT_EQ(wait_exit(coordinator, std::chrono::seconds(20)), 0);
}

TEST(ClusterE2E, ChaosKillsLoseNoAckedSubmission) {
  const int port = pick_port(1);
  const std::string dir = "cluster_e2e_chaos_tmp";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const pid_t coordinator = spawn(cluster_args(port, dir));
  ASSERT_GT(coordinator, 0);

  const pid_t chaos = spawn({tool("melody_chaos"), "--ctl",
                             "127.0.0.1:" + std::to_string(port), "--rounds",
                             "2", "--batch", "8", "--timeout-s", "50"});
  ASSERT_GT(chaos, 0);
  EXPECT_EQ(wait_exit(chaos, std::chrono::seconds(55)), 0)
      << "chaos harness reported a lost acked submission or no recovery";
  // The harness shuts the cluster down on success.
  EXPECT_EQ(wait_exit(coordinator, std::chrono::seconds(20)), 0);
}

}  // namespace
}  // namespace melody::cluster
