#include "util/table.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace melody::util {
namespace {

TEST(TablePrinter, RendersHeaderSeparatorAndRows) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "2"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
  // header + separator + 2 rows = 4 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, TitleBanner) {
  TablePrinter table({"x"});
  const std::string out = table.render("Fig. 4a");
  EXPECT_EQ(out.rfind("== Fig. 4a ==\n", 0), 0u);
}

TEST(TablePrinter, NumericRowFormatting) {
  TablePrinter table({"label", "a", "b"});
  table.add_row("row", {1.23456, 2.0}, 2);
  const std::string out = table.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"only-one"});
  const std::string out = table.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(TablePrinter, ColumnsAlign) {
  TablePrinter table({"h", "value"});
  table.add_row({"longer-label", "1"});
  table.add_row({"x", "2"});
  const std::string out = table.render();
  // Every line must have the same position for the final '|'.
  std::size_t expected = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::string line = out.substr(start, end - start);
    if (!line.empty() && line.front() == '|') {
      const std::size_t last = line.rfind('|');
      if (expected == std::string::npos) expected = last;
      EXPECT_EQ(last, expected) << "misaligned line: " << line;
    }
    start = end + 1;
  }
}

TEST(TablePrinter, FormatHelper) {
  EXPECT_EQ(TablePrinter::format(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::format(2.0, 0), "2");
}

}  // namespace
}  // namespace melody::util
