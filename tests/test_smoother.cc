// RTS smoother verification: consistency with the filter, variance
// reduction, and agreement with brute-force joint-posterior integration on
// short chains.
#include "lds/smoother.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace melody::lds {
namespace {

ScoreHistory make_history(const std::vector<std::vector<double>>& runs) {
  ScoreHistory history;
  for (const auto& run : runs) history.push_back(ScoreSet::from(run));
  return history;
}

TEST(Smoother, EmptyHistoryKeepsInitial) {
  const LdsParams params{1.0, 1.0, 1.0};
  const Gaussian init{5.5, 2.25};
  const SmootherResult result = smooth(init, {}, params);
  ASSERT_EQ(result.smoothed.size(), 1u);
  EXPECT_EQ(result.smoothed[0], init);
}

TEST(Smoother, LastSmoothedEqualsLastFiltered) {
  const LdsParams params{0.97, 0.3, 2.0};
  const Gaussian init{5.5, 2.25};
  const ScoreHistory history =
      make_history({{4.0, 5.0}, {6.0}, {}, {7.0, 8.0, 6.5}});
  const SmootherResult smoothed = smooth(init, history, params);
  const FilterResult filtered = filter(init, history, params);
  EXPECT_NEAR(smoothed.smoothed.back().mean, filtered.posteriors.back().mean,
              1e-12);
  EXPECT_NEAR(smoothed.smoothed.back().var, filtered.posteriors.back().var,
              1e-12);
}

TEST(Smoother, SmoothedVarianceNeverExceedsFiltered) {
  const LdsParams params{1.0, 0.4, 1.5};
  const Gaussian init{5.0, 2.0};
  util::Rng rng(5);
  ScoreHistory history;
  for (int r = 0; r < 30; ++r) {
    ScoreSet set;
    const int n = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < n; ++i) set.add(rng.uniform(1.0, 10.0));
    history.push_back(set);
  }
  const SmootherResult smoothed = smooth(init, history, params);
  const FilterResult filtered = filter(init, history, params);
  for (std::size_t t = 1; t <= history.size(); ++t) {
    EXPECT_LE(smoothed.smoothed[t].var, filtered.posteriors[t - 1].var + 1e-12);
  }
}

/// Brute-force smoothing of a 2-run chain by dense 2-D integration over
/// (q1, q2) with fixed q0 prior integrated analytically is hard; instead we
/// integrate over a 3-D grid (q0, q1, q2). Kept tiny but accurate enough.
struct BruteSmoothed {
  double mean_q0, var_q0, mean_q1, var_q1, mean_q2, var_q2, cross_q1q2;
};

BruteSmoothed brute_force_two_run(const Gaussian& init, const LdsParams& p,
                                  const std::vector<double>& s1,
                                  const std::vector<double>& s2) {
  const double lo = -10.0, hi = 20.0;
  const int n = 120;
  const double dx = (hi - lo) / n;
  double z = 0;
  double m0 = 0, m1 = 0, m2 = 0, v0 = 0, v1 = 0, v2 = 0, c12 = 0;
  for (int i = 0; i < n; ++i) {
    const double q0 = lo + (i + 0.5) * dx;
    const double w0 = init.pdf(q0);
    if (w0 < 1e-14) continue;
    for (int j = 0; j < n; ++j) {
      const double q1 = lo + (j + 0.5) * dx;
      double w1 = w0 * Gaussian{p.a * q0, p.gamma}.pdf(q1);
      if (w1 < 1e-16) continue;
      for (double s : s1) w1 *= Gaussian{q1, p.eta}.pdf(s);
      if (w1 < 1e-18) continue;
      for (int k = 0; k < n; ++k) {
        const double q2 = lo + (k + 0.5) * dx;
        double w = w1 * Gaussian{p.a * q1, p.gamma}.pdf(q2);
        for (double s : s2) w *= Gaussian{q2, p.eta}.pdf(s);
        z += w;
        m0 += w * q0;
        m1 += w * q1;
        m2 += w * q2;
        v0 += w * q0 * q0;
        v1 += w * q1 * q1;
        v2 += w * q2 * q2;
        c12 += w * q1 * q2;
      }
    }
  }
  BruteSmoothed out;
  out.mean_q0 = m0 / z;
  out.mean_q1 = m1 / z;
  out.mean_q2 = m2 / z;
  out.var_q0 = v0 / z - out.mean_q0 * out.mean_q0;
  out.var_q1 = v1 / z - out.mean_q1 * out.mean_q1;
  out.var_q2 = v2 / z - out.mean_q2 * out.mean_q2;
  out.cross_q1q2 = c12 / z - out.mean_q1 * out.mean_q2;
  return out;
}

TEST(Smoother, MatchesBruteForceOnTwoRunChain) {
  const LdsParams params{0.95, 0.8, 2.0};
  const Gaussian init{5.0, 1.5};
  const std::vector<double> s1{4.5, 6.0};
  const std::vector<double> s2{7.0};
  const SmootherResult result =
      smooth(init, make_history({s1, s2}), params);
  const BruteSmoothed brute = brute_force_two_run(init, params, s1, s2);

  EXPECT_NEAR(result.smoothed[0].mean, brute.mean_q0, 5e-3);
  EXPECT_NEAR(result.smoothed[0].var, brute.var_q0, 5e-3);
  EXPECT_NEAR(result.smoothed[1].mean, brute.mean_q1, 5e-3);
  EXPECT_NEAR(result.smoothed[1].var, brute.var_q1, 5e-3);
  EXPECT_NEAR(result.smoothed[2].mean, brute.mean_q2, 5e-3);
  EXPECT_NEAR(result.smoothed[2].var, brute.var_q2, 5e-3);
  EXPECT_NEAR(result.cross_covariance[2], brute.cross_q1q2, 5e-3);
}

TEST(Smoother, CrossMomentsConsistent) {
  const LdsParams params{1.0, 0.5, 1.0};
  const Gaussian init{5.0, 1.0};
  const ScoreHistory history = make_history({{5.0}, {6.0}, {4.0}});
  const SmootherResult result = smooth(init, history, params);
  for (std::size_t t = 1; t <= history.size(); ++t) {
    // Cauchy-Schwarz on the smoothed joint: |Cov| <= sqrt(v_{t-1} v_t).
    const double bound = std::sqrt(result.smoothed[t - 1].var *
                                   result.smoothed[t].var);
    EXPECT_LE(std::abs(result.cross_covariance[t]), bound + 1e-12);
    // cross_moment must equal Cov + mean product.
    EXPECT_NEAR(result.cross_moment(t),
                result.cross_covariance[t] +
                    result.smoothed[t - 1].mean * result.smoothed[t].mean,
                1e-12);
  }
}

TEST(Smoother, AllEmptyHistoryReducesTowardPrior) {
  // With no observations anywhere, smoothing changes nothing: the smoothed
  // q^0 equals the initial posterior.
  const LdsParams params{1.0, 0.5, 1.0};
  const Gaussian init{5.5, 2.25};
  const SmootherResult result = smooth(init, ScoreHistory(4), params);
  EXPECT_NEAR(result.smoothed[0].mean, init.mean, 1e-12);
  EXPECT_NEAR(result.smoothed[0].var, init.var, 1e-12);
}

TEST(Smoother, FutureObservationInformsPast) {
  // One observation in run 3 only; the smoothed estimate of run 1 must move
  // toward it, while the filtered estimate of run 1 cannot.
  const LdsParams params{1.0, 0.5, 1.0};
  const Gaussian init{5.0, 1.0};
  const ScoreHistory history = make_history({{}, {}, {9.0, 9.0, 9.0}});
  const SmootherResult smoothed = smooth(init, history, params);
  const FilterResult filtered = filter(init, history, params);
  EXPECT_NEAR(filtered.posteriors[0].mean, 5.0, 1e-12);
  EXPECT_GT(smoothed.smoothed[1].mean, 5.5);
}

TEST(Smoother, SecondMomentHelper) {
  const LdsParams params{1.0, 1.0, 1.0};
  const Gaussian init{2.0, 3.0};
  const SmootherResult result = smooth(init, {}, params);
  EXPECT_DOUBLE_EQ(result.second_moment(0), 3.0 + 4.0);
  EXPECT_DOUBLE_EQ(result.mean(0), 2.0);
}

}  // namespace
}  // namespace melody::lds
