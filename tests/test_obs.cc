// Observability layer tests: metric correctness, handle stability, the
// enabled() gate, concurrent recording through the shared pool, and a full
// JSON-lines round-trip through a mini parser (events + registry dump).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "auction/melody_auction.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/scenario.h"
#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace melody::obs {
namespace {

// ------------------------------------------------------------------ metrics

TEST(ObsCounter, AccumulatesAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsGauge, LastWriteWins) {
  Gauge gauge;
  gauge.set(1.5);
  gauge.set(-2.25);
  EXPECT_EQ(gauge.value(), -2.25);
}

TEST(ObsSummary, WelfordStatsAreExact) {
  Summary summary;
  for (double x : {1.0, 2.0, 3.0, 4.0}) summary.record(x);
  const auto stats = summary.stats();
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.stddev, std::sqrt(1.25));  // population stddev
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_DOUBLE_EQ(stats.sum, 10.0);
  EXPECT_GE(stats.p90, stats.p50);
  EXPECT_GE(stats.p99, stats.p90);
}

TEST(ObsSummary, PercentilesTrackTheRecentRingOnly) {
  Summary summary;
  // Fill the ring with large values, then overwrite it completely with
  // small ones: percentiles must follow the recent window while min/max
  // remember the full stream.
  for (std::size_t i = 0; i < Summary::kRingCapacity; ++i) {
    summary.record(1000.0);
  }
  for (std::size_t i = 0; i < Summary::kRingCapacity; ++i) {
    summary.record(1.0);
  }
  const auto stats = summary.stats();
  EXPECT_DOUBLE_EQ(stats.p50, 1.0);
  EXPECT_DOUBLE_EQ(stats.p99, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 1000.0);
  EXPECT_EQ(stats.count, 2 * Summary::kRingCapacity);
}

TEST(ObsScopedTimer, RecordsSecondsIntoSummary) {
  Summary summary;
  { ScopedTimer timer(&summary); }
  const auto stats = summary.stats();
  EXPECT_EQ(stats.count, 1u);
  EXPECT_GE(stats.min, 0.0);
}

TEST(ObsScopedTimer, NullSummaryIsANoop) {
  ScopedTimer timer(nullptr);  // must not crash or read the clock
}

// ----------------------------------------------------------------- registry

TEST(ObsRegistry, HandlesAreStableAcrossReset) {
  Counter& counter = registry().counter("test_obs/stable_counter");
  Summary& summary = registry().summary("test_obs/stable_summary");
  counter.add(7);
  summary.record(3.0);
  registry().reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(summary.stats().count, 0u);
  // Same name -> same object, and the old handle still records.
  EXPECT_EQ(&registry().counter("test_obs/stable_counter"), &counter);
  counter.add(1);
  EXPECT_EQ(registry().counter("test_obs/stable_counter").value(), 1u);
}

TEST(ObsRegistry, EnabledGateControlsTimerLookup) {
  ScopedEnable disable(false);
  EXPECT_EQ(timer_if_enabled("test_obs/gated"), nullptr);
  EXPECT_EQ(summary_if_enabled("test_obs/gated"), nullptr);
  {
    ScopedEnable enable(true);
    EXPECT_NE(timer_if_enabled("test_obs/gated"), nullptr);
    EXPECT_NE(summary_if_enabled("test_obs/gated"), nullptr);
  }
  EXPECT_EQ(timer_if_enabled("test_obs/gated"), nullptr);
}

TEST(ObsRegistry, SnapshotTagsTimersDistinctFromSummaries) {
  registry().timer("test_obs/a_timer").record(0.5);
  registry().summary("test_obs/a_value").record(0.5);
  const auto snapshot = registry().snapshot();
  bool saw_timer = false, saw_value = false;
  for (const auto& s : snapshot.summaries) {
    if (s.name == "test_obs/a_timer") {
      saw_timer = true;
      EXPECT_TRUE(s.is_timer);
    }
    if (s.name == "test_obs/a_value") {
      saw_value = true;
      EXPECT_FALSE(s.is_timer);
    }
  }
  EXPECT_TRUE(saw_timer);
  EXPECT_TRUE(saw_value);
}

TEST(ObsRegistry, ConcurrentRecordingUnderSharedPool) {
  util::set_shared_thread_count(8);
  Counter& counter = registry().counter("test_obs/concurrent_counter");
  Summary& summary = registry().summary("test_obs/concurrent_summary");
  counter.reset();
  summary.reset();
  constexpr std::size_t kItems = 20000;
  util::parallel_for(util::shared_pool(), kItems, [&](std::size_t i) {
    counter.add();
    summary.record(static_cast<double>(i % 10));
    // Lookup by name from pool threads must also be safe and return the
    // same handle.
    registry().counter("test_obs/concurrent_counter");
  });
  util::set_shared_thread_count(1);
  EXPECT_EQ(counter.value(), kItems);
  const auto stats = summary.stats();
  EXPECT_EQ(stats.count, kItems);
  // sum of (i % 10) over any 20000 consecutive i starting at 0: 2000 full
  // cycles of 0..9 = 2000 * 45.
  EXPECT_DOUBLE_EQ(stats.sum, 2000.0 * 45.0);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 9.0);
}

// ------------------------------------------------------- JSON-lines parsing

/// Minimal parser for the flat JSON objects the sink emits: string, number,
/// and null values only (no nesting — the format guarantees flatness).
/// Values are returned as raw text with strings unescaped.
std::map<std::string, std::string> parse_flat_json(const std::string& line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  const auto fail = [&](const char* what) {
    throw std::runtime_error(std::string(what) + " at offset " +
                             std::to_string(i) + " in: " + line);
  };
  const auto skip_space = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  };
  const auto parse_string = [&]() -> std::string {
    if (line[i] != '"') fail("expected '\"'");
    ++i;
    std::string s;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        ++i;
        if (i >= line.size()) fail("bad escape");
        switch (line[i]) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'u': {
            if (i + 4 >= line.size()) fail("bad \\u escape");
            s += static_cast<char>(
                std::stoi(line.substr(i + 1, 4), nullptr, 16));
            i += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        s += line[i];
      }
      ++i;
    }
    if (i >= line.size()) fail("unterminated string");
    ++i;  // closing quote
    return s;
  };
  skip_space();
  if (i >= line.size() || line[i] != '{') fail("expected '{'");
  ++i;
  skip_space();
  if (i < line.size() && line[i] == '}') return out;
  for (;;) {
    skip_space();
    const std::string key = parse_string();
    skip_space();
    if (i >= line.size() || line[i] != ':') fail("expected ':'");
    ++i;
    skip_space();
    std::string value;
    if (line[i] == '"') {
      value = parse_string();
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      value = line.substr(start, i - start);
      while (!value.empty() && std::isspace(static_cast<unsigned char>(
                                   value.back()))) {
        value.pop_back();
      }
      if (value != "null" && value.find_first_not_of("+-0123456789.eE") !=
                                 std::string::npos) {
        fail("unquoted value is neither number nor null");
      }
    }
    out[key] = value;
    skip_space();
    if (i >= line.size()) fail("unterminated object");
    if (line[i] == '}') break;
    if (line[i] != ',') fail("expected ',' or '}'");
    ++i;
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(ObsJsonLines, EventRoundTripsThroughParser) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  sink.event("test/event",
             std::vector<Field>{{"run", 7}, {"utility", 3.5},
                                {"label", "a \"quoted\"\nname"}});
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  const auto object = parse_flat_json(lines[0]);
  EXPECT_EQ(object.at("type"), "event");
  EXPECT_EQ(object.at("name"), "test/event");
  EXPECT_EQ(object.at("run"), "7");
  EXPECT_DOUBLE_EQ(std::stod(object.at("utility")), 3.5);
  EXPECT_EQ(object.at("label"), "a \"quoted\"\nname");
  EXPECT_EQ(sink.lines_written(), 1u);
}

TEST(ObsJsonLines, RegistryDumpRoundTripsThroughParser) {
  registry().counter("test_obs/json_counter").reset();
  registry().counter("test_obs/json_counter").add(13);
  registry().timer("test_obs/json_timer").reset();
  registry().timer("test_obs/json_timer").record(0.25);
  registry().timer("test_obs/json_timer").record(0.75);

  std::ostringstream out;
  JsonLinesSink sink(out);
  sink.append_registry(registry());

  bool saw_counter = false, saw_timer = false;
  for (const auto& line : split_lines(out.str())) {
    const auto object = parse_flat_json(line);  // every line must parse
    if (object.at("type") == "counter" &&
        object.at("name") == "test_obs/json_counter") {
      saw_counter = true;
      EXPECT_EQ(object.at("value"), "13");
    }
    if (object.at("type") == "timer" &&
        object.at("name") == "test_obs/json_timer") {
      saw_timer = true;
      EXPECT_EQ(object.at("unit"), "seconds");
      EXPECT_EQ(object.at("count"), "2");
      EXPECT_DOUBLE_EQ(std::stod(object.at("mean")), 0.5);
      EXPECT_DOUBLE_EQ(std::stod(object.at("sum")), 1.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_timer);
}

TEST(ObsJsonLines, NonFiniteValuesBecomeNull) {
  registry().gauge("test_obs/json_nan").set(
      std::numeric_limits<double>::quiet_NaN());
  std::ostringstream out;
  JsonLinesSink sink(out);
  sink.append_registry(registry());
  for (const auto& line : split_lines(out.str())) {
    const auto object = parse_flat_json(line);
    if (object.at("type") == "gauge" &&
        object.at("name") == "test_obs/json_nan") {
      EXPECT_EQ(object.at("value"), "null");
      return;
    }
  }
  FAIL() << "gauge test_obs/json_nan not found in registry dump";
}

// ---------------------------------------------------------- sinks + context

TEST(ObsSink, GlobalEmitIsDroppedWithoutASink) {
  ASSERT_EQ(sink(), nullptr);
  emit("test/dropped", {{"x", 1}});  // must be a safe no-op
}

TEST(ObsSink, ScopedSinkInstallsAndRestores) {
  NullSink null_sink;
  {
    ScopedSink scoped(&null_sink);
    EXPECT_EQ(sink(), &null_sink);
  }
  EXPECT_EQ(sink(), nullptr);
}

/// AuctionContext carries an explicit sink that overrides the global one;
/// with no explicit sink, ctx.emit falls through to the global sink.
TEST(ObsSink, AuctionContextRoutesEventsToItsSink) {
  sim::SraScenario scenario;
  scenario.num_workers = 30;
  scenario.num_tasks = 20;
  scenario.budget = 50.0;
  util::Rng rng(11);
  const auto workers = scenario.sample_workers(rng);
  const auto tasks = scenario.sample_tasks(rng);
  const auto config = scenario.auction_config();
  auction::MelodyAuction mechanism;

  std::ostringstream out;
  JsonLinesSink json(out);
  const auto context_result = mechanism.run(
      auction::AuctionContext{workers, tasks, config, &json});
  bool saw_result_event = false;
  for (const auto& line : split_lines(out.str())) {
    const auto object = parse_flat_json(line);
    if (object.at("type") == "event" &&
        object.at("name") == "auction/result") {
      saw_result_event = true;
      EXPECT_EQ(object.at("mechanism"), "MELODY");
      EXPECT_EQ(object.at("assignments"),
                std::to_string(context_result.assignments.size()));
    }
  }
  EXPECT_TRUE(saw_result_event);

  // A minimal context (no sink, run 0, no fault plan) must produce the
  // identical allocation: the optional fields are provenance only.
  const auto minimal_result = mechanism.run({workers, tasks, config});
  ASSERT_EQ(minimal_result.assignments.size(),
            context_result.assignments.size());
  for (std::size_t a = 0; a < minimal_result.assignments.size(); ++a) {
    EXPECT_EQ(minimal_result.assignments[a].worker,
              context_result.assignments[a].worker);
    EXPECT_EQ(minimal_result.assignments[a].task,
              context_result.assignments[a].task);
    EXPECT_EQ(minimal_result.assignments[a].payment,
              context_result.assignments[a].payment);
  }
}

}  // namespace
}  // namespace melody::obs
