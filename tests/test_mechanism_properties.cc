// Seeded randomized property tests over the mechanism-design theorems.
//
// Coverage (one generated auction = one property instance):
//   * 1000 multi-task auctions: individual rationality (every winner's
//     payment covers his cost for every assigned task, so p_i >= n_i c_i
//     over his portfolio — Theorem 6), budget feasibility (sum p <= B),
//     frequency feasibility, and task satisfaction. Zero violations.
//   * 1000 single-task auctions: strict dominant-strategy truthfulness in
//     cost — no deviation on an 11-point grid around the true cost raises
//     utility. Zero violations. (Single-task is where the critical-value
//     argument is exact; see tests/test_truthfulness.cc's header for why
//     multi-task truthfulness is an aggregate, not per-instance, claim.)
//   * The same grid over the multi-task instances, asserted in aggregate:
//     deviating loses in expectation.
//   * SoA/scalar twin runs: the production (SoA) mechanism and the frozen
//     scalar reference (perf/reference.h) consume identical seeded streams;
//     both must satisfy IR and budget feasibility AND produce the same
//     allocation. Includes radix-scale markets (>= 2048 qualified workers,
//     asserted via the obs counter) so the linear-time rank sort — not just
//     the comparison sort — is property-tested, including a truthfulness
//     grid at that scale.
// Everything derives from fixed seeds via util::Rng, so the "random"
// instances are reproducible bit-for-bit on every platform.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "auction/melody_auction.h"
#include "obs/metrics.h"
#include "perf/reference.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace melody::auction {
namespace {

constexpr int kInstances = 1000;
constexpr double kEps = 1e-9;

struct Instance {
  std::vector<WorkerProfile> workers;
  std::vector<Task> tasks;
  AuctionConfig config;
};

/// One random auction: sizes, budget and thresholds are themselves drawn
/// from the generator, so the suite sweeps tiny starved markets and large
/// saturated ones out of a single seed.
Instance sample_instance(util::Rng& rng, int max_tasks) {
  sim::SraScenario scenario;
  scenario.num_workers = static_cast<int>(rng.uniform_int(5, 60));
  scenario.num_tasks = static_cast<int>(rng.uniform_int(1, max_tasks));
  scenario.budget = rng.uniform(10.0, 400.0);
  scenario.threshold = {rng.uniform(4.0, 8.0), rng.uniform(8.0, 16.0)};
  Instance instance;
  instance.workers = scenario.sample_workers(rng);
  instance.tasks = scenario.sample_tasks(rng);
  instance.config = scenario.auction_config();
  return instance;
}

double utility_of(const AllocationResult& result, WorkerId id,
                  double true_cost) {
  return result.payment_to(id) - true_cost * result.tasks_assigned_to(id);
}

const WorkerProfile* profile_of(const Instance& instance, WorkerId id) {
  for (const auto& w : instance.workers) {
    if (w.id == id) return &w;
  }
  return nullptr;
}

TEST(MechanismProperties, IndividualRationalityAndFeasibilityOver1kAuctions) {
  util::Rng rng(20170601);  // ICDCS'17: fixed, documented master seed
  MelodyAuction auction(PaymentRule::kCriticalValue);
  int violations = 0;
  int nonempty = 0;
  for (int i = 0; i < kInstances; ++i) {
    const Instance instance = sample_instance(rng, 40);
    const auto result =
        auction.run({instance.workers, instance.tasks, instance.config});
    if (!result.assignments.empty()) ++nonempty;

    // IR, per assignment (stronger than the portfolio claim p_i >= n_i c_i,
    // which follows by summation).
    for (const auto& a : result.assignments) {
      const WorkerProfile* w = profile_of(instance, a.worker);
      ASSERT_NE(w, nullptr);
      if (a.payment < w->bid.cost - kEps) ++violations;
    }
    for (const auto& w : instance.workers) {
      if (utility_of(result, w.id, w.bid.cost) < -kEps) ++violations;
    }
    if (!check_budget_feasibility(result, instance.config).empty()) {
      ++violations;
    }
    if (!check_frequency_feasibility(result, instance.workers).empty()) {
      ++violations;
    }
    if (!check_task_satisfaction(result, instance.workers, instance.tasks)
             .empty()) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
  // The generator must produce real markets, not degenerate empty ones.
  EXPECT_GT(nonempty, kInstances / 2);
}

TEST(MechanismProperties, PaperPaymentRuleAlsoIrAndBudgetFeasible) {
  util::Rng rng(20170602);
  MelodyAuction auction(PaymentRule::kPaperNextInQueue);
  int violations = 0;
  for (int i = 0; i < kInstances; ++i) {
    const Instance instance = sample_instance(rng, 40);
    const auto result =
        auction.run({instance.workers, instance.tasks, instance.config});
    for (const auto& a : result.assignments) {
      const WorkerProfile* w = profile_of(instance, a.worker);
      ASSERT_NE(w, nullptr);
      if (a.payment < w->bid.cost - kEps) ++violations;
    }
    if (!check_budget_feasibility(result, instance.config).empty()) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
}

/// The 11-point misreport grid spans underbidding to near-double.
constexpr double kCostGrid[] = {0.5,  0.7,  0.8,  0.9,  0.95, 1.05,
                                1.1,  1.2,  1.4,  1.7,  1.95};

TEST(MechanismProperties, SingleTaskTruthfulnessOver1kAuctions) {
  util::Rng rng(20170603);
  MelodyAuction auction(PaymentRule::kCriticalValue);
  int violations = 0;
  int probes = 0;
  for (int i = 0; i < kInstances; ++i) {
    const Instance instance = sample_instance(rng, /*max_tasks=*/1);
    const auto truthful =
        auction.run({instance.workers, instance.tasks, instance.config});
    // Probe one uniformly chosen worker per instance (probing all 60 x 11
    // re-auctions x 1000 instances would dominate the suite's runtime
    // without adding coverage: the deviator is already random).
    const std::size_t probe = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(instance.workers.size()) - 1));
    const double true_cost = instance.workers[probe].bid.cost;
    const WorkerId id = instance.workers[probe].id;
    const double baseline = utility_of(truthful, id, true_cost);
    for (double factor : kCostGrid) {
      auto deviated = instance.workers;
      deviated[probe].bid.cost = true_cost * factor;
      const auto outcome =
          auction.run({deviated, instance.tasks, instance.config});
      if (utility_of(outcome, id, true_cost) > baseline + kEps) ++violations;
      ++probes;
    }
  }
  EXPECT_EQ(violations, 0) << "out of " << probes << " deviation probes";
}

TEST(MechanismProperties, MultiTaskDeviationLosesInAggregate) {
  util::Rng rng(20170604);
  MelodyAuction auction(PaymentRule::kCriticalValue);
  double total_gain = 0.0;
  double max_gain = 0.0;
  int probes = 0;
  for (int i = 0; i < 250; ++i) {  // 250 x 11 grid = 2750 re-auctions
    const Instance instance = sample_instance(rng, 40);
    const auto truthful =
        auction.run({instance.workers, instance.tasks, instance.config});
    const std::size_t probe = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(instance.workers.size()) - 1));
    const double true_cost = instance.workers[probe].bid.cost;
    const WorkerId id = instance.workers[probe].id;
    const double baseline = utility_of(truthful, id, true_cost);
    for (double factor : kCostGrid) {
      auto deviated = instance.workers;
      deviated[probe].bid.cost = true_cost * factor;
      const auto outcome =
          auction.run({deviated, instance.tasks, instance.config});
      const double gain = utility_of(outcome, id, true_cost) - baseline;
      total_gain += gain;
      max_gain = std::max(max_gain, gain);
      ++probes;
    }
  }
  ASSERT_GT(probes, 0);
  EXPECT_LE(total_gain / probes, kEps)
      << "cheating profited in expectation (max single gain " << max_gain
      << ")";
}

// ---------------------------------------------------------------------------
// SoA/scalar twin properties: the production mechanism and the frozen scalar
// reference run on identical seeded instances. The theorems must hold on the
// SoA path directly (not only by transitivity through bit-identity), and the
// two paths must still agree allocation-for-allocation.
// ---------------------------------------------------------------------------

/// IR + budget + frequency + task-satisfaction violations in one result.
int property_violations(const AllocationResult& result,
                        const Instance& instance) {
  int violations = 0;
  for (const auto& a : result.assignments) {
    const WorkerProfile* w = profile_of(instance, a.worker);
    if (w == nullptr || a.payment < w->bid.cost - kEps) ++violations;
  }
  if (!check_budget_feasibility(result, instance.config).empty()) ++violations;
  if (!check_frequency_feasibility(result, instance.workers).empty()) {
    ++violations;
  }
  if (!check_task_satisfaction(result, instance.workers, instance.tasks)
           .empty()) {
    ++violations;
  }
  return violations;
}

void expect_same_allocation(const AllocationResult& soa,
                            const AllocationResult& scalar, int instance) {
  ASSERT_EQ(soa.selected_tasks, scalar.selected_tasks)
      << "instance " << instance;
  ASSERT_EQ(soa.assignments.size(), scalar.assignments.size())
      << "instance " << instance;
  for (std::size_t a = 0; a < scalar.assignments.size(); ++a) {
    EXPECT_EQ(soa.assignments[a].worker, scalar.assignments[a].worker)
        << "instance " << instance << " assignment " << a;
    EXPECT_EQ(soa.assignments[a].task, scalar.assignments[a].task)
        << "instance " << instance << " assignment " << a;
    EXPECT_EQ(soa.assignments[a].payment, scalar.assignments[a].payment)
        << "instance " << instance << " assignment " << a;
  }
}

TEST(MechanismProperties, SoaAndScalarTwinsBothIrAndFeasibleAndAgree) {
  util::Rng rng(20170605);
  MelodyAuction auction(PaymentRule::kCriticalValue);
  int soa_violations = 0;
  int scalar_violations = 0;
  for (int i = 0; i < 300; ++i) {
    const Instance instance = sample_instance(rng, 40);
    const auto soa =
        auction.run({instance.workers, instance.tasks, instance.config});
    const auto scalar = perf::reference::run_greedy(
        instance.workers, instance.tasks, instance.config,
        PaymentRule::kCriticalValue);
    soa_violations += property_violations(soa, instance);
    scalar_violations += property_violations(scalar, instance);
    expect_same_allocation(soa, scalar, i);
  }
  EXPECT_EQ(soa_violations, 0);
  EXPECT_EQ(scalar_violations, 0);
}

/// A market wide enough that the qualified set crosses the greedy core's
/// radix rank-sort threshold (2048 entries in ascending id order).
Instance sample_radix_scale_instance(util::Rng& rng) {
  sim::SraScenario scenario;
  scenario.num_workers = 6000;
  scenario.num_tasks = static_cast<int>(rng.uniform_int(40, 120));
  scenario.budget = rng.uniform(1000.0, 4000.0);
  scenario.threshold = {rng.uniform(60.0, 90.0), rng.uniform(100.0, 140.0)};
  Instance instance;
  instance.workers = scenario.sample_workers(rng);
  instance.tasks = scenario.sample_tasks(rng);
  instance.config = scenario.auction_config();
  return instance;
}

TEST(MechanismProperties, RadixScaleMarketsIrFeasibleAndMatchScalar) {
  util::Rng rng(20170606);
  MelodyAuction auction(PaymentRule::kCriticalValue);
  // The radix path requires qualified entries in strictly ascending id
  // order; verify the generator supplies it, then prove via the obs
  // counter that the markets really crossed the 2048-entry threshold.
  obs::ScopedEnable obs_on(true);
  obs::Counter& qualified =
      obs::registry().counter("auction/qualified_workers");
  for (int i = 0; i < 5; ++i) {
    const Instance instance = sample_radix_scale_instance(rng);
    for (std::size_t w = 1; w < instance.workers.size(); ++w) {
      ASSERT_LT(instance.workers[w - 1].id, instance.workers[w].id);
    }
    qualified.reset();
    const auto soa =
        auction.run({instance.workers, instance.tasks, instance.config});
    ASSERT_GE(qualified.value(), 2048u)
        << "market " << i << " too small to engage the radix rank sort";
    const auto scalar = perf::reference::run_greedy(
        instance.workers, instance.tasks, instance.config,
        PaymentRule::kCriticalValue);
    EXPECT_EQ(property_violations(soa, instance), 0) << "market " << i;
    expect_same_allocation(soa, scalar, i);
  }
}

TEST(MechanismProperties, RadixScaleSingleTaskTruthfulness) {
  // The misreport grid at radix scale: a deviating bid must not profit when
  // the ranking ran through the radix path either. Single-task markets keep
  // the critical-value argument exact (see the header).
  util::Rng rng(20170607);
  MelodyAuction auction(PaymentRule::kCriticalValue);
  obs::ScopedEnable obs_on(true);
  obs::Counter& qualified =
      obs::registry().counter("auction/qualified_workers");
  int violations = 0;
  int probes = 0;
  for (int i = 0; i < 3; ++i) {
    Instance instance = sample_radix_scale_instance(rng);
    instance.tasks.resize(1);
    qualified.reset();
    const auto truthful =
        auction.run({instance.workers, instance.tasks, instance.config});
    ASSERT_GE(qualified.value(), 2048u) << "market " << i;
    for (int p = 0; p < 2; ++p) {
      const std::size_t probe = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(instance.workers.size()) - 1));
      const double true_cost = instance.workers[probe].bid.cost;
      const WorkerId id = instance.workers[probe].id;
      const double baseline = utility_of(truthful, id, true_cost);
      for (double factor : kCostGrid) {
        auto deviated = instance.workers;
        deviated[probe].bid.cost = true_cost * factor;
        const auto outcome =
            auction.run({deviated, instance.tasks, instance.config});
        if (utility_of(outcome, id, true_cost) > baseline + kEps) {
          ++violations;
        }
        ++probes;
      }
    }
  }
  EXPECT_EQ(violations, 0) << "out of " << probes << " deviation probes";
}

}  // namespace
}  // namespace melody::auction
