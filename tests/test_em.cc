// EM learner (Algorithm 2) tests: likelihood monotonicity, parameter
// recovery on synthetic LDS data, M-step properties, and degenerate-input
// guards.
#include "lds/em.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lds/smoother.h"
#include "util/rng.h"

namespace melody::lds {
namespace {

/// Generate a synthetic worker history from ground-truth LDS parameters.
ScoreHistory synthesize(const LdsParams& truth, const Gaussian& init, int runs,
                        int scores_per_run, util::Rng& rng) {
  ScoreHistory history;
  double q = rng.normal(init.mean, init.stddev());
  for (int r = 0; r < runs; ++r) {
    q = truth.a * q + rng.normal(0.0, std::sqrt(truth.gamma));
    ScoreSet set;
    for (int s = 0; s < scores_per_run; ++s) {
      set.add(q + rng.normal(0.0, std::sqrt(truth.eta)));
    }
    history.push_back(set);
  }
  return history;
}

TEST(EmFit, EmptyHistoryReturnsInitialParams) {
  const LdsParams init_params{0.9, 0.5, 2.0};
  const EmResult result = fit_lds({5.5, 2.25}, {}, init_params);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.params, init_params);
}

TEST(EmFit, LogLikelihoodMonotoneNonDecreasing) {
  util::Rng rng(17);
  const LdsParams truth{0.99, 0.3, 4.0};
  const Gaussian init{5.5, 2.25};
  const ScoreHistory history = synthesize(truth, init, 80, 3, rng);

  EmOptions options;
  options.max_iterations = 40;
  options.tolerance = 0.0;  // force all iterations
  const EmResult result =
      fit_lds(init, history, LdsParams{1.0, 1.0, 1.0}, options);
  ASSERT_GE(result.log_likelihood_trace.size(), 2u);
  for (std::size_t i = 1; i < result.log_likelihood_trace.size(); ++i) {
    EXPECT_GE(result.log_likelihood_trace[i],
              result.log_likelihood_trace[i - 1] - 1e-6)
        << "EM likelihood decreased at iteration " << i;
  }
}

TEST(EmFit, ImprovesLikelihoodOverInitialGuess) {
  util::Rng rng(23);
  const LdsParams truth{0.98, 0.5, 2.0};
  const Gaussian init{5.5, 2.25};
  const ScoreHistory history = synthesize(truth, init, 120, 4, rng);
  const LdsParams guess{1.0, 5.0, 10.0};
  const double before = log_likelihood(init, history, guess);
  const EmResult result = fit_lds(init, history, guess);
  const double after = log_likelihood(init, history, result.params);
  EXPECT_GT(after, before);
}

TEST(EmFit, RecoversEmissionVariance) {
  // eta is the best-identified parameter (many scores per run).
  util::Rng rng(31);
  const LdsParams truth{1.0, 0.05, 4.0};
  const Gaussian init{5.5, 1.0};
  const ScoreHistory history = synthesize(truth, init, 300, 8, rng);
  const EmResult result = fit_lds(init, history, LdsParams{1.0, 1.0, 1.0});
  EXPECT_NEAR(result.params.eta, truth.eta, 1.0);
}

TEST(EmFit, RecoversTransitionCoefficientSign) {
  util::Rng rng(37);
  const LdsParams truth{0.95, 0.2, 1.0};
  const Gaussian init{5.0, 1.0};
  const ScoreHistory history = synthesize(truth, init, 400, 5, rng);
  const EmResult result = fit_lds(init, history, LdsParams{1.0, 1.0, 1.0});
  EXPECT_GT(result.params.a, 0.8);
  EXPECT_LT(result.params.a, 1.1);
}

TEST(EmFit, VarianceFloorsAreRespected) {
  // Constant scores in every run: the unconstrained eta MLE is ~0; the
  // floor must keep the model proper.
  ScoreHistory history;
  for (int r = 0; r < 20; ++r) {
    ScoreSet set;
    for (int i = 0; i < 3; ++i) set.add(5.0);
    history.push_back(set);
  }
  EmOptions options;
  options.min_variance = 1e-4;
  const EmResult result =
      fit_lds({5.0, 1.0}, history, LdsParams{1.0, 1.0, 1.0}, options);
  EXPECT_GE(result.params.eta, options.min_variance);
  EXPECT_GE(result.params.gamma, options.min_variance);
}

TEST(EmFit, TransitionClampApplies) {
  // A history that rises explosively would push a above the clamp.
  ScoreHistory history;
  double level = 1.0;
  for (int r = 0; r < 15; ++r) {
    level *= 6.0;
    ScoreSet set;
    set.add(level);
    history.push_back(set);
  }
  EmOptions options;
  options.max_abs_a = 2.0;
  const EmResult result =
      fit_lds({1.0, 1.0}, history, LdsParams{1.0, 1.0, 1.0}, options);
  EXPECT_LE(std::abs(result.params.a), 2.0 + 1e-12);
}

TEST(EmFit, ConvergesBeforeMaxIterations) {
  util::Rng rng(41);
  const ScoreHistory history =
      synthesize(LdsParams{1.0, 0.2, 1.0}, {5.0, 1.0}, 100, 3, rng);
  EmOptions options;
  options.max_iterations = 200;
  options.tolerance = 1e-8;
  const EmResult result =
      fit_lds({5.0, 1.0}, history, LdsParams{1.0, 1.0, 1.0}, options);
  EXPECT_LT(result.iterations, 200);
}

TEST(EmFit, SingleRunHistoryDoesNotCrash) {
  ScoreHistory history;
  history.push_back(ScoreSet::from(std::vector<double>{4.0, 6.0}));
  const EmResult result = fit_lds({5.0, 1.0}, history, LdsParams{1.0, 1.0, 1.0});
  EXPECT_GT(result.params.gamma, 0.0);
  EXPECT_GT(result.params.eta, 0.0);
}

TEST(EmFit, HistoryWithEmptyRunsHandled) {
  util::Rng rng(43);
  ScoreHistory history = synthesize(LdsParams{1.0, 0.3, 2.0}, {5.0, 1.0}, 60,
                                    2, rng);
  for (std::size_t t = 0; t < history.size(); t += 3) history[t] = ScoreSet{};
  const EmResult result = fit_lds({5.0, 1.0}, history, LdsParams{1.0, 1.0, 1.0});
  EXPECT_GT(result.params.eta, 0.0);
  EXPECT_TRUE(std::isfinite(result.log_likelihood_trace.back()));
}

TEST(MStep, ClosedFormOnDeterministicMoments) {
  // Hand-crafted moments: q_t = 2, 4 with zero variances; one run with one
  // score of 5 at t=1... use a 1-run history for full control.
  ScoreHistory history;
  history.push_back(ScoreSet::from(std::vector<double>{5.0}));
  SmootherResult moments;
  moments.smoothed = {Gaussian{2.0, 0.0}, Gaussian{4.0, 0.0}};
  moments.cross_covariance = {0.0, 0.0};
  EmOptions options;
  options.min_variance = 1e-9;
  options.max_abs_a = 10.0;
  const LdsParams params = m_step({2.0, 1.0}, history, moments, options);
  // a* = E[q1 q0] / E[q0^2] = 8 / 4 = 2.
  EXPECT_NEAR(params.a, 2.0, 1e-12);
  // gamma* = E[(q1 - a q0)^2] = (4 - 2*2)^2 = 0 -> floored.
  EXPECT_NEAR(params.gamma, options.min_variance, 1e-12);
  // eta* = (5 - q1)^2 = 1.
  EXPECT_NEAR(params.eta, 1.0, 1e-12);
}

// Parameterized recovery sweep over ground-truth regimes.
struct EmCase {
  double a, gamma, eta;
  std::uint64_t seed;
};

class EmRecovery : public ::testing::TestWithParam<EmCase> {};

TEST_P(EmRecovery, FittedModelBeatsMispecifiedBaseline) {
  const auto& c = GetParam();
  util::Rng rng(c.seed);
  const LdsParams truth{c.a, c.gamma, c.eta};
  const Gaussian init{5.5, 2.25};
  const ScoreHistory history = synthesize(truth, init, 200, 4, rng);
  const EmResult fit = fit_lds(init, history, LdsParams{1.0, 1.0, 1.0});
  const double fitted = log_likelihood(init, history, fit.params);
  // A deliberately mis-specified model must not beat the EM fit.
  const double mispecified =
      log_likelihood(init, history, LdsParams{1.0, 10.0, 0.1});
  EXPECT_GE(fitted, mispecified);
  // And the fit should be close to the truth's likelihood.
  const double oracle = log_likelihood(init, history, truth);
  EXPECT_GE(fitted, oracle - 30.0);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, EmRecovery,
    ::testing::Values(EmCase{1.0, 0.1, 1.0, 101}, EmCase{0.95, 0.5, 4.0, 102},
                      EmCase{1.0, 0.02, 9.0, 103}, EmCase{0.9, 1.0, 0.5, 104},
                      EmCase{1.01, 0.2, 2.0, 105}));

}  // namespace
}  // namespace melody::lds
