// Unit tests for the parallel execution primitives: pool lifecycle,
// exception propagation, nested submission, and parallel_for /
// parallel_sort over awkward range shapes.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel_for.h"
#include "util/rng.h"

namespace melody::util {
namespace {

TEST(ThreadPool, StartupAndShutdownAcrossSizes) {
  for (std::size_t threads : {0u, 1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }  // destructor joins; nothing to assert beyond not hanging
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(3);
  auto a = pool.submit([] { return 21 * 2; });
  auto b = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "done");
}

TEST(ThreadPool, InlinePoolExecutesOnCaller) {
  ThreadPool pool(0);
  std::atomic<int> calls{0};
  pool.post([&] { ++calls; });
  EXPECT_EQ(calls.load(), 1);  // ran synchronously: size-0 pool is inline
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The pool must survive a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, PendingTasksDrainBeforeShutdown) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) pool.post([&] { ++executed; });
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 5; });
    // Waiting on a nested future inside a task is NOT supported in
    // general (it can deadlock a saturated pool); posting nested work is.
    // parallel_for is the sanctioned blocking construct — exercised below.
    pool.post([] {});
    return inner;
  });
  EXPECT_EQ(outer.get().get(), 5);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(&pool, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleElementRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1, 0);
  parallel_for(&pool, 1, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
}

TEST(ParallelFor, OddSizedRangesCoverEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (std::size_t n : {2u, 3u, 7u, 17u, 1001u, 4097u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(&pool, n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " index " << i;
    }
  }
}

TEST(ParallelFor, NullPoolIsTheSerialLoop) {
  std::vector<int> order;
  parallel_for(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, MatchesSerialResultBitForBit) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<double> serial(n), parallel(n);
  auto value_at = [](std::size_t i) {
    Rng rng(derive_stream(123, i));
    return rng.normal();
  };
  for (std::size_t i = 0; i < n; ++i) serial[i] = value_at(i);
  parallel_for(&pool, n, [&](std::size_t i) { parallel[i] = value_at(i); });
  EXPECT_EQ(serial, parallel);  // exact double equality, not approximate
}

TEST(ParallelFor, PropagatesTheTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 1000,
                   [](std::size_t i) {
                     if (i == 517) throw std::invalid_argument("bad index");
                   }),
      std::invalid_argument);
  // The pool and subsequent loops must still work.
  std::atomic<std::size_t> sum{0};
  parallel_for(&pool, 100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelFor, NestedLoopsComplete) {
  ThreadPool pool(2);  // fewer threads than outer iterations: must not hang
  std::vector<std::atomic<int>> cell(6 * 40);
  parallel_for(&pool, 6, [&](std::size_t outer) {
    parallel_for(&pool, 40,
                 [&](std::size_t inner) { ++cell[outer * 40 + inner]; });
  });
  for (auto& c : cell) ASSERT_EQ(c.load(), 1);
}

TEST(ParallelSort, MatchesStdSortForTotalOrders) {
  ThreadPool pool(4);
  Rng rng(99);
  for (std::size_t n : {0u, 1u, 2u, 17u, 4095u, 4096u, 20000u}) {
    std::vector<std::uint64_t> expect(n);
    for (auto& x : expect) x = rng();
    std::vector<std::uint64_t> got = expect;
    std::sort(expect.begin(), expect.end());
    parallel_sort(&pool, got.begin(), got.end(),
                  std::less<std::uint64_t>{}, /*min_parallel=*/2);
    ASSERT_EQ(got, expect) << "n=" << n;
  }
}

TEST(SharedPool, ThreadCountConfiguration) {
  EXPECT_GE(shared_thread_count(), 1);
  set_shared_thread_count(4);
  ASSERT_NE(shared_pool(), nullptr);
  EXPECT_EQ(shared_pool()->size(), 3u);  // caller participates as the 4th
  EXPECT_EQ(shared_thread_count(), 4);
  set_shared_thread_count(1);
  EXPECT_EQ(shared_pool(), nullptr);
  EXPECT_EQ(shared_thread_count(), 1);
  set_shared_thread_count(0);  // auto-detect
  EXPECT_GE(shared_thread_count(), 1);
  set_shared_thread_count(1);
}

TEST(Rng, DeriveStreamIsAPureFunctionOfItsCoordinates) {
  EXPECT_EQ(derive_stream(1, 2, 3), derive_stream(1, 2, 3));
  EXPECT_NE(derive_stream(1, 2, 3), derive_stream(1, 2, 4));
  EXPECT_NE(derive_stream(1, 2, 3), derive_stream(1, 3, 3));
  EXPECT_NE(derive_stream(1, 2, 3), derive_stream(2, 2, 3));
  // Streams with adjacent coordinates must not be shifted copies: compare
  // a few draws from neighbouring (worker, run) cells.
  Rng a(derive_stream(42, 7, 9)), b(derive_stream(42, 7, 10));
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace melody::util
