#include "auction/types.h"

#include <gtest/gtest.h>

#include <cmath>

namespace melody::auction {
namespace {

TEST(AuctionConfig, QualificationFilter) {
  AuctionConfig config;
  config.theta_min = 2.0;
  config.theta_max = 4.0;
  config.cost_min = 1.0;
  config.cost_max = 2.0;

  WorkerProfile ok{1, {1.5, 3}, 3.0};
  EXPECT_TRUE(config.qualifies(ok));

  WorkerProfile low_quality{2, {1.5, 3}, 1.9};
  EXPECT_FALSE(config.qualifies(low_quality));
  WorkerProfile high_quality{3, {1.5, 3}, 4.1};
  EXPECT_FALSE(config.qualifies(high_quality));
  WorkerProfile cheap{4, {0.5, 3}, 3.0};
  EXPECT_FALSE(config.qualifies(cheap));
  WorkerProfile expensive{5, {2.5, 3}, 3.0};
  EXPECT_FALSE(config.qualifies(expensive));

  // Boundary values are inclusive.
  WorkerProfile edges{6, {1.0, 1}, 2.0};
  EXPECT_TRUE(config.qualifies(edges));
  WorkerProfile edges_hi{7, {2.0, 1}, 4.0};
  EXPECT_TRUE(config.qualifies(edges_hi));
}

TEST(AuctionConfig, DefaultAcceptsEverything) {
  const AuctionConfig config;
  EXPECT_TRUE(config.qualifies({1, {100.0, 1}, 0.5}));
}

TEST(AuctionConfig, LambdaMatchesLemma3) {
  AuctionConfig config;
  config.theta_min = 2.0;
  config.theta_max = 4.0;
  config.cost_min = 1.0;
  config.cost_max = 2.0;
  // lambda = C_M^2 (Theta_m + Theta_M) Theta_M^2 / (C_m^2 Theta_m^3)
  //        = 4 * 6 * 16 / (1 * 8) = 48 (the paper's "48 beta" remark).
  EXPECT_DOUBLE_EQ(config.lambda(), 48.0);
}

TEST(AuctionConfig, LambdaInfiniteForDegenerateIntervals) {
  AuctionConfig config;  // cost_min = theta_min = 0
  EXPECT_TRUE(std::isinf(config.lambda()));
}

TEST(AllocationResult, TotalsAndLookups) {
  AllocationResult r;
  r.assignments = {{1, 10, 2.0}, {1, 11, 3.0}, {2, 10, 1.5}};
  r.selected_tasks = {10, 11};

  EXPECT_DOUBLE_EQ(r.total_payment(), 6.5);
  EXPECT_DOUBLE_EQ(r.payment_to(1), 5.0);
  EXPECT_DOUBLE_EQ(r.payment_to(2), 1.5);
  EXPECT_DOUBLE_EQ(r.payment_to(99), 0.0);
  EXPECT_EQ(r.tasks_assigned_to(1), 2);
  EXPECT_EQ(r.tasks_assigned_to(2), 1);
  EXPECT_EQ(r.tasks_assigned_to(99), 0);
  EXPECT_EQ(r.requester_utility(), 2u);
  EXPECT_TRUE(r.is_assigned(1, 10));
  EXPECT_FALSE(r.is_assigned(2, 11));

  const auto workers = r.workers_of(10);
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0], 1);
  EXPECT_EQ(workers[1], 2);
}

TEST(AllocationResult, EmptyResult) {
  const AllocationResult r;
  EXPECT_EQ(r.requester_utility(), 0u);
  EXPECT_EQ(r.total_payment(), 0.0);
  EXPECT_TRUE(r.workers_of(1).empty());
}

TEST(Checks, BudgetFeasibility) {
  AllocationResult r;
  r.assignments = {{1, 10, 5.0}};
  AuctionConfig config;
  config.budget = 5.0;
  EXPECT_EQ(check_budget_feasibility(r, config), "");
  config.budget = 4.9;
  EXPECT_NE(check_budget_feasibility(r, config), "");
}

TEST(Checks, FrequencyFeasibility) {
  AllocationResult r;
  r.assignments = {{1, 10, 1.0}, {1, 11, 1.0}};
  std::vector<WorkerProfile> workers{{1, {1.0, 2}, 3.0}};
  EXPECT_EQ(check_frequency_feasibility(r, workers), "");
  workers[0].bid.frequency = 1;
  EXPECT_NE(check_frequency_feasibility(r, workers), "");
}

TEST(Checks, FrequencyUnknownWorker) {
  AllocationResult r;
  r.assignments = {{42, 10, 1.0}};
  std::vector<WorkerProfile> workers{{1, {1.0, 2}, 3.0}};
  EXPECT_NE(check_frequency_feasibility(r, workers), "");
}

TEST(Checks, TaskSatisfaction) {
  AllocationResult r;
  r.assignments = {{1, 10, 1.0}, {2, 10, 1.0}};
  r.selected_tasks = {10};
  std::vector<WorkerProfile> workers{{1, {1.0, 2}, 3.0}, {2, {1.0, 2}, 3.5}};
  std::vector<Task> tasks{{10, 6.0}};
  EXPECT_EQ(check_task_satisfaction(r, workers, tasks), "");
  tasks[0].quality_threshold = 7.0;
  EXPECT_NE(check_task_satisfaction(r, workers, tasks), "");
}

TEST(Checks, TaskSatisfactionUnknownIds) {
  AllocationResult r;
  r.selected_tasks = {99};
  std::vector<WorkerProfile> workers;
  std::vector<Task> tasks{{10, 6.0}};
  EXPECT_NE(check_task_satisfaction(r, workers, tasks), "");
}

}  // namespace
}  // namespace melody::auction
