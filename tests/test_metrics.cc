#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace melody::sim {
namespace {

std::vector<RunRecord> sample_records() {
  RunRecord a;
  a.run = 1;
  a.estimated_utility = 10;
  a.true_utility = 8;
  a.estimation_error = 1.0;
  a.total_payment = 100.0;
  a.assignments = 50;
  RunRecord b;
  b.run = 2;
  b.estimated_utility = 20;
  b.true_utility = 12;
  b.estimation_error = 3.0;
  b.total_payment = 200.0;
  b.assignments = 70;
  return {a, b};
}

TEST(Metrics, SummarizeAverages) {
  const auto records = sample_records();
  const MetricSummary s = summarize(records);
  EXPECT_DOUBLE_EQ(s.mean_estimated_utility, 15.0);
  EXPECT_DOUBLE_EQ(s.mean_true_utility, 10.0);
  EXPECT_DOUBLE_EQ(s.mean_estimation_error, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_total_payment, 150.0);
  EXPECT_DOUBLE_EQ(s.mean_assignments, 60.0);
}

TEST(Metrics, SummarizeEmpty) {
  const MetricSummary s = summarize({});
  EXPECT_EQ(s.mean_true_utility, 0.0);
  EXPECT_EQ(s.mean_estimation_error, 0.0);
}

TEST(Metrics, SummarizeAfterSkipsWarmup) {
  const auto records = sample_records();
  const MetricSummary s = summarize_after(records, 1);
  EXPECT_DOUBLE_EQ(s.mean_true_utility, 12.0);
  EXPECT_DOUBLE_EQ(s.mean_estimation_error, 3.0);
}

TEST(Metrics, SummarizeAfterBeyondEndIsEmpty) {
  const auto records = sample_records();
  const MetricSummary s = summarize_after(records, 5);
  EXPECT_EQ(s.mean_true_utility, 0.0);
}

}  // namespace
}  // namespace melody::sim
