// Format-robustness matrix for the persistence and trace surfaces: a
// fuzz-style negative sweep over svc::config_from_trace (mistyped or
// hostile header fields must throw, never misconfigure), malformed
// MLDYSVCK / MLDYMIGR inputs (bad magic, alien version, truncation at
// every prefix), the structured missing-resume-checkpoint error, and the
// build-info pinning of every format version a binary speaks.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "svc/config.h"
#include "svc/replay.h"
#include "svc/router.h"
#include "svc/service.h"
#include "svc/trace_log.h"
#include "svc/wire.h"
#include "util/build_info.h"

namespace melody::svc {
namespace {

/// A minimal valid MLDYTRC header; each negative case mutates one field.
WireObject valid_header() {
  WireObject header;
  header.set("magic", WireValue::of("MLDYTRC"));
  header.set("version", WireValue::of(std::int64_t{1}));
  header.set("proto", WireValue::of(std::int64_t{kProtoVersion}));
  header.set("shards", WireValue::of(std::int64_t{2}));
  header.set("workers", WireValue::of(std::int64_t{12}));
  header.set("tasks", WireValue::of(std::int64_t{8}));
  header.set("runs", WireValue::of(std::int64_t{4}));
  header.set("budget", WireValue::of(40.0));
  header.set("seed", WireValue::of(std::int64_t{2017}));
  header.set("estimator", WireValue::of("melody"));
  header.set("manual_clock", WireValue::of(true));
  return header;
}

TraceFile trace_with(WireObject header) {
  TraceFile trace;
  trace.header = std::move(header);
  return trace;
}

TEST(ConfigFromTrace, AcceptsTheValidHeader) {
  const ServiceConfig config = config_from_trace(trace_with(valid_header()));
  EXPECT_EQ(config.shards, 2);
  EXPECT_EQ(config.scenario.num_workers, 12);
  EXPECT_TRUE(config.manual_clock);
  ShardedService service(config);  // and it builds
  EXPECT_EQ(service.shard_count(), 2);
}

TEST(ConfigFromTrace, MistypedFieldsThrowInsteadOfMisconfiguring) {
  // Every numeric/boolean/text header field flipped to a hostile kind must
  // surface as a WireError — silently adopting a fallback would replay the
  // trace against the wrong deployment.
  const struct {
    const char* field;
    WireValue value;
  } cases[] = {
      {"shards", WireValue::of("eight")},
      {"workers", WireValue::of("lots")},
      {"tasks", WireValue::of(true)},
      {"runs", WireValue::of("many")},
      {"budget", WireValue::of("big")},
      {"seed", WireValue::of("hunter2")},
      {"estimator", WireValue::of(std::int64_t{7})},
      {"manual_clock", WireValue::of("yes")},
      {"min_bids", WireValue::of("three")},
      {"budget_target", WireValue::of(std::vector<double>{1.0, 2.0})},
      {"queue_capacity", WireValue::of("deep")},
      {"rolling", WireValue::of(std::int64_t{1})},
      {"incremental", WireValue::of("on")},
  };
  for (const auto& c : cases) {
    WireObject header = valid_header();
    header.set(c.field, c.value);
    EXPECT_THROW(config_from_trace(trace_with(std::move(header))), WireError)
        << "field " << c.field;
  }
}

TEST(ConfigFromTrace, HostileValuesFailServiceValidation) {
  // Type-correct but semantically poisoned headers parse, then die in
  // config validation when the deployment is built — never under-build.
  const struct {
    const char* field;
    WireValue value;
  } cases[] = {
      {"shards", WireValue::of(std::int64_t{-3})},
      {"shards", WireValue::of(std::int64_t{1000})},
      {"workers", WireValue::of(std::int64_t{0})},
      {"runs", WireValue::of(std::int64_t{-1})},
      {"estimator", WireValue::of("quantum")},
      {"queue_capacity", WireValue::of(std::int64_t{-5})},
  };
  for (const auto& c : cases) {
    WireObject header = valid_header();
    header.set(c.field, c.value);
    ServiceConfig config;
    try {
      config = config_from_trace(trace_with(std::move(header)));
    } catch (const std::exception&) {
      continue;  // rejected at parse time: also fine
    }
    EXPECT_THROW(ShardedService service(config), std::exception)
        << "field " << c.field;
  }
}

TEST(ConfigFromTrace, MalformedFaultSpecThrows) {
  WireObject header = valid_header();
  header.set("faults", WireValue::of("no-show=purple"));
  EXPECT_THROW(config_from_trace(trace_with(std::move(header))),
               std::exception);
}

TEST(TraceParsing, RejectsBadHeaderMagicAndVersion) {
  {
    std::istringstream in("{\"magic\":\"MLDYXXX\",\"version\":1}\n");
    EXPECT_THROW(parse_trace(in), std::runtime_error);
  }
  {
    std::istringstream in("{\"magic\":\"MLDYTRC\",\"version\":99}\n");
    EXPECT_THROW(parse_trace(in), std::runtime_error);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(parse_trace(in), std::runtime_error);
  }
}

// ---------------------------------------------- MLDYSVCK / MLDYMIGR --

ServiceConfig small_config() {
  ServiceConfig config;
  config.scenario.num_workers = 10;
  config.scenario.num_tasks = 6;
  config.scenario.runs = 8;
  config.scenario.budget = 30.0;
  config.seed = 2017;
  config.manual_clock = true;
  return config;
}

/// A service with one executed run, so the serialized state is non-trivial.
std::unique_ptr<AuctionService> warm_service() {
  auto service = std::make_unique<AuctionService>(small_config());
  for (int w = 0; w < 10; ++w) {
    Request r;
    r.op = Op::kSubmitBid;
    r.id = w + 1;
    r.worker = "w" + std::to_string(w);
    const Response response = service->apply(r);
    EXPECT_TRUE(response.ok) << response.error;
  }
  return service;
}

TEST(CheckpointFormat, RejectsBadMagicVersionAndTruncation) {
  auto service = warm_service();
  std::ostringstream out;
  service->save_state(out);
  const std::string bytes = out.str();
  ASSERT_GT(bytes.size(), 16u);

  {
    std::string corrupt = bytes;
    corrupt[0] = 'X';  // magic
    std::istringstream in(corrupt);
    AuctionService victim(small_config());
    EXPECT_THROW(victim.load_state(in), std::runtime_error);
  }
  {
    std::string corrupt = bytes;
    corrupt[8] = 99;  // version u32 little-endian low byte
    std::istringstream in(corrupt);
    AuctionService victim(small_config());
    EXPECT_THROW(victim.load_state(in), std::runtime_error);
  }
  // Truncation at a sweep of prefixes must throw, never half-load.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, bytes.size() / 4,
        bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, keep));
    AuctionService victim(small_config());
    EXPECT_THROW(victim.load_state(in), std::runtime_error)
        << "prefix " << keep << " of " << bytes.size();
  }
}

TEST(MigrationFormat, RoundTripsAndRejectsCorruption) {
  auto service = warm_service();
  std::ostringstream out;
  service->save_migration(out);
  const std::string bytes = out.str();
  ASSERT_GT(bytes.size(), 16u);

  {
    std::istringstream in(bytes);
    AuctionService twin(small_config());
    twin.load_migration(in);
    // The envelope carries the session tail a checkpoint drops.
    EXPECT_EQ(twin.records().size(), service->records().size());
  }
  {
    std::string corrupt = bytes;
    corrupt[0] = 'X';
    std::istringstream in(corrupt);
    AuctionService victim(small_config());
    EXPECT_THROW(victim.load_migration(in), std::runtime_error);
  }
  {
    std::string corrupt = bytes;
    corrupt[8] = 42;  // version
    std::istringstream in(corrupt);
    AuctionService victim(small_config());
    EXPECT_THROW(victim.load_migration(in), std::runtime_error);
  }
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{10}, bytes.size() / 3, bytes.size() - 2}) {
    std::istringstream in(bytes.substr(0, keep));
    AuctionService victim(small_config());
    EXPECT_THROW(victim.load_migration(in), std::runtime_error)
        << "prefix " << keep << " of " << bytes.size();
  }
}

// ------------------------------------------------- resume checkpoint --

TEST(ResumeCheckpoint, MissingFileIsAStructuredError) {
  const std::string path = "definitely_missing_dir/nope.ckpt";
  try {
    require_resume_checkpoint(path);
    FAIL() << "expected CheckpointMissingError";
  } catch (const CheckpointMissingError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos)
        << "the message must carry the fix hint";
  }
}

TEST(ResumeCheckpoint, TraceHeaderPinsTheResumePath) {
  WireObject header = valid_header();
  EXPECT_EQ(resume_path_from_trace(trace_with(header)), "");
  header.set("resume", WireValue::of("state/svc.ckpt"));
  EXPECT_EQ(resume_path_from_trace(trace_with(std::move(header))),
            "state/svc.ckpt");
}

// ------------------------------------------------------- build info --

TEST(BuildInfo, PinsEveryFormatVersion) {
  const util::FormatVersions v = util::format_versions();
  EXPECT_EQ(v.proto, kProtoVersion);
  EXPECT_EQ(v.service_checkpoint, 3);
  EXPECT_EQ(v.composed_checkpoint, 2);
  EXPECT_EQ(v.trace, 1);
  EXPECT_EQ(v.migration, 1);

  const std::string line = util::build_info_line("melody_test");
  EXPECT_EQ(line.find("melody_test "), 0u);
  for (const char* tag : {"proto=", "checkpoint=", "composed=", "trace=",
                          "migration="}) {
    EXPECT_NE(line.find(tag), std::string::npos) << tag;
  }
  EXPECT_FALSE(util::build_git_sha().empty());
}

}  // namespace
}  // namespace melody::svc
