// melody_chaos — deterministic kill/restart harness for a live cluster.
//
// Drives a running melody_cluster deployment through R rounds of
//   submit B newcomer bids (acked -> ledger) -> publish snapshots
//   -> submit B more -> SIGKILL one member (round-robin) -> respawn it
//   bare (--cluster-shards none, so the coordinator re-imports its shards
//   from the published envelopes) -> wait for the routing epoch to advance
// and then asserts the durability contract:
//   * every submission acked before the last publish survives the kill
//     outright (a lost one is a hard failure — the recovery floor held);
//   * submissions acked after the publish are re-driven at-least-once
//     (the client-retry half of the contract) and must then be visible.
// The schedule is keyed to acknowledgment counts and a fixed seed, never
// to wall-clock time, so a failure reproduces.
//
// Exit status: 0 all rounds held, 1 a contract violation or a timeout
// (details on stderr).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client_router.h"
#include "cluster/net.h"
#include "cluster/routing.h"
#include "svc/protocol.h"
#include "svc/wire.h"
#include "util/build_info.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace melody;

struct Options {
  std::string ctl = "127.0.0.1:7200";
  std::int64_t rounds = 3;
  std::int64_t batch = 16;
  std::int64_t seed = 2017;
  std::int64_t timeout_s = 50;
  bool quiet = false;
  bool version = false;
};

Options read_options(const util::Flags& flags) {
  Options o;
  o.ctl = flags.get_string("ctl", "127.0.0.1:7200", "HOST:PORT",
                           "coordinator control endpoint");
  o.rounds = flags.get_int("rounds", 3, "R", "kill/restart rounds");
  o.batch = flags.get_int("batch", 16, "B",
                          "newcomer submissions per phase (two per round)");
  o.seed = flags.get_int("seed", 2017, "S",
                         "seed for the deterministic bid stream");
  o.timeout_s = flags.get_int("timeout-s", 50, "SEC",
                              "overall wall-clock budget");
  o.quiet = flags.has_switch("quiet", "suppress the per-round lines");
  o.version = flags.has_switch(
      "version", "print the build sha and format versions, then exit");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_chaos",
                        "Chaos harness: kills and respawns cluster members "
                        "mid-load on a deterministic schedule and asserts "
                        "no acknowledged submission is lost past the last "
                        "published snapshot.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 1 : 0;
}

struct LedgerEntry {
  std::string worker;
  double cost = 1.0;
  int frequency = 1;
  bool durable = false;  // acked before the most recent publish
};

class Harness {
 public:
  explicit Harness(Options options) : options_(std::move(options)) {}

  int run() {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::seconds(options_.timeout_s);
    const auto colon = options_.ctl.rfind(':');
    if (colon == std::string::npos) {
      return fail("--ctl must be HOST:PORT");
    }
    ctl_host_ = options_.ctl.substr(0, colon);
    ctl_port_ = std::stoi(options_.ctl.substr(colon + 1));

    client_ = std::make_unique<cluster::ClusterClient>(
        [this](const cluster::ClusterMember& member,
               const svc::Request& request, svc::Response* out) {
          return pool_.call(member, request, out);
        },
        [this](const svc::WireObject& command, svc::WireObject* reply) {
          return control(command, reply);
        });

    if (!wait_ready()) return 1;
    if (!fetch_spawn_args()) return 1;
    if (!client_->refresh_table()) {
      return fail("route_table: " + client_->last_error());
    }

    util::Rng rng(static_cast<std::uint64_t>(options_.seed));
    for (std::int64_t round = 0; round < options_.rounds; ++round) {
      if (expired()) return fail("timed out before round " +
                                 std::to_string(round));
      if (!submit_batch(rng)) return 1;
      if (!publish()) return 1;
      if (!submit_batch(rng)) return 1;

      const cluster::RoutingTable table = client_->table();
      const std::size_t victim_index =
          static_cast<std::size_t>(round) % table.members.size();
      const cluster::ClusterMember victim = table.members[victim_index];
      if (!options_.quiet) {
        std::printf("melody_chaos: round %lld: killing %s (pid %lld)\n",
                    static_cast<long long>(round), victim.name.c_str(),
                    static_cast<long long>(victim.pid));
        std::fflush(stdout);
      }
      if (::kill(static_cast<pid_t>(victim.pid), SIGKILL) != 0) {
        return fail("kill " + victim.name + " failed");
      }
      pool_.drop(victim);
      if (!respawn(victim.name)) return 1;
      if (!wait_recovered(table.epoch, victim)) return 1;
      if (!verify_and_repair()) return 1;
      if (!options_.quiet) {
        std::printf(
            "melody_chaos: round %lld held (%zu ledger entries, "
            "%lld resubmitted)\n",
            static_cast<long long>(round), ledger_.size(),
            static_cast<long long>(resubmitted_));
        std::fflush(stdout);
      }
    }
    if (!verify_all_present("final sweep")) return 1;
    shutdown_cluster();
    if (!options_.quiet) {
      std::printf(
          "melody_chaos: PASS — %lld rounds, %zu acked submissions, "
          "%lld resubmitted after kills, 0 lost\n",
          static_cast<long long>(options_.rounds), ledger_.size(),
          static_cast<long long>(resubmitted_));
    }
    return 0;
  }

 private:
  bool expired() const {
    return std::chrono::steady_clock::now() >= deadline_;
  }

  int fail(const std::string& message) {
    std::fprintf(stderr, "melody_chaos: FAIL: %s\n", message.c_str());
    return 1;
  }

  bool control(const svc::WireObject& command, svc::WireObject* reply) {
    std::string reply_line;
    // Redial once: the control server survives kills, but the connection
    // may have idled out across a slow recovery.
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (!ctl_.connected() && !ctl_.connect(ctl_host_, ctl_port_)) continue;
      if (!ctl_.exchange(svc::format_wire(command), &reply_line)) continue;
      try {
        *reply = svc::parse_wire(reply_line);
        return true;
      } catch (const svc::WireError&) {
        return false;
      }
    }
    return false;
  }

  bool wait_ready() {
    svc::WireObject status;
    status.set("cmd", svc::WireValue::of("status"));
    while (!expired()) {
      svc::WireObject reply;
      if (control(status, &reply) && reply.boolean_or("ready", false)) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    fail("cluster never became ready");
    return false;
  }

  bool fetch_spawn_args() {
    svc::WireObject command;
    command.set("cmd", svc::WireValue::of("spawn_args"));
    svc::WireObject reply;
    if (!control(command, &reply) || !reply.boolean_or("ok", false)) {
      fail("spawn_args fetch failed");
      return false;
    }
    const auto count = static_cast<std::size_t>(reply.number_or("count", 0));
    for (std::size_t i = 0; i < count; ++i) {
      spawn_args_.push_back(reply.text("arg" + std::to_string(i)));
    }
    if (spawn_args_.empty()) {
      fail("coordinator advertises no spawn args");
      return false;
    }
    return true;
  }

  bool submit_batch(util::Rng& rng) {
    for (std::int64_t i = 0; i < options_.batch; ++i) {
      LedgerEntry entry;
      entry.worker = "cw" + std::to_string(next_worker_++);
      entry.cost = 0.5 + 1.5 * rng.uniform01();
      entry.frequency = 1 + static_cast<int>(rng() % 3);
      svc::Response response;
      if (!submit_entry(entry, &response)) {
        fail("submit_bid " + entry.worker + ": " + client_->last_error());
        return false;
      }
      if (!response.ok) {
        fail("submit_bid " + entry.worker + " rejected: " + response.error);
        return false;
      }
      ledger_.push_back(entry);  // acked — from here on it must survive
    }
    return true;
  }

  bool submit_entry(const LedgerEntry& entry, svc::Response* response) {
    svc::Request request;
    request.op = svc::Op::kSubmitBid;
    request.id = next_request_id_++;
    request.worker = entry.worker;
    request.cost = entry.cost;
    request.frequency = entry.frequency;
    request.has_bid = true;
    // Backpressure is part of the protocol: retry overloads briefly.
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (!client_->call(request, response)) return false;
      if (response->ok || response->retry_after_ms <= 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
  }

  bool publish() {
    svc::WireObject command;
    command.set("cmd", svc::WireValue::of("publish"));
    svc::WireObject reply;
    if (!control(command, &reply) || !reply.boolean_or("ok", false)) {
      fail("publish failed: " + reply.text_or("error", "no reply"));
      return false;
    }
    for (LedgerEntry& entry : ledger_) entry.durable = true;
    return true;
  }

  bool respawn(const std::string& member) {
    std::vector<std::string> args = spawn_args_;
    args.push_back("--cluster-member");
    args.push_back(member);
    args.push_back("--cluster-shards");
    args.push_back("none");
    const pid_t pid = ::fork();
    if (pid < 0) {
      fail("fork failed");
      return false;
    }
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const std::string& arg : args) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    children_.push_back(pid);
    return true;
  }

  /// Recovery is visible as an epoch advance (the respawn join re-imports
  /// and bumps the table) with the victim re-registered under a new pid.
  bool wait_recovered(std::int64_t old_epoch,
                      const cluster::ClusterMember& victim) {
    while (!expired()) {
      if (client_->refresh_table()) {
        const cluster::RoutingTable& table = client_->table();
        for (const cluster::ClusterMember& member : table.members) {
          if (member.name == victim.name && member.pid != victim.pid &&
              table.epoch > old_epoch) {
            pool_.drop(victim);  // the cached endpoint may have changed
            return true;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    fail("recovery of " + victim.name + " timed out");
    return false;
  }

  bool verify_and_repair() {
    for (LedgerEntry& entry : ledger_) {
      svc::Request request;
      request.op = svc::Op::kQueryWorker;
      request.id = next_request_id_++;
      request.worker = entry.worker;
      svc::Response response;
      if (!client_->call(request, &response)) {
        fail("query_worker " + entry.worker + ": " + client_->last_error());
        return false;
      }
      if (response.ok) continue;
      if (entry.durable) {
        // The hard half of the contract: this submission was inside the
        // published snapshot the coordinator restored from.
        fail("durable submission " + entry.worker +
             " lost across a kill: " + response.error);
        return false;
      }
      // Acked after the last publish: at-least-once re-drive.
      if (!submit_entry(entry, &response) || !response.ok) {
        fail("resubmit " + entry.worker + " failed: " +
             (response.ok ? client_->last_error() : response.error));
        return false;
      }
      ++resubmitted_;
    }
    return true;
  }

  bool verify_all_present(const std::string& what) {
    for (const LedgerEntry& entry : ledger_) {
      svc::Request request;
      request.op = svc::Op::kQueryWorker;
      request.id = next_request_id_++;
      request.worker = entry.worker;
      svc::Response response;
      if (!client_->call(request, &response) || !response.ok) {
        fail(what + ": " + entry.worker + " missing");
        return false;
      }
    }
    return true;
  }

  void shutdown_cluster() {
    svc::WireObject command;
    command.set("cmd", svc::WireValue::of("shutdown"));
    svc::WireObject reply;
    control(command, &reply);
    for (const pid_t pid : children_) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }

  Options options_;
  std::chrono::steady_clock::time_point deadline_;
  std::string ctl_host_;
  int ctl_port_ = 0;
  cluster::LineClient ctl_;
  cluster::MemberPool pool_;
  std::unique_ptr<cluster::ClusterClient> client_;
  std::vector<std::string> spawn_args_;
  std::vector<LedgerEntry> ledger_;
  std::vector<pid_t> children_;
  std::int64_t next_worker_ = 0;
  std::int64_t next_request_id_ = 1;
  std::int64_t resubmitted_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<util::Flags> flags;
  try {
    flags = std::make_unique<util::Flags>(argc, argv);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  Options options;
  try {
    options = read_options(*flags);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (flags->has("help")) return usage(nullptr);
  if (options.version) {
    std::puts(util::build_info_line("melody_chaos").c_str());
    return 0;
  }
  if (const auto unknown = flags->unused(); !unknown.empty()) {
    return usage(("unknown flag --" + unknown.front()).c_str());
  }
  if (options.rounds < 1) return usage("--rounds must be >= 1");
  if (options.batch < 1) return usage("--batch must be >= 1");

  std::signal(SIGPIPE, SIG_IGN);
  try {
    Harness harness(options);
    return harness.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "melody_chaos: %s\n", e.what());
    return 1;
  }
}
