// melody_replay — re-drive a recorded MLDYTRC wire trace (melody_serve
// --trace-out) against a rebuilt deployment and verify the responses match
// byte for byte.
//
// The deployment is reconstructed from the trace header (shard count,
// population, seed, estimator, batch triggers, fault plan, clock mode);
// --resume restores a checkpoint first, so a trace recorded after a
// kill/resume verifies against the same resumed state. In-frames are
// applied in file order through the single-threaded poll loop — the same
// per-shard order the live event loop produced — so with a manual clock
// every response is a pure function of the trace and any divergence is a
// real determinism break. Differences are reported frame by frame with the
// offending field; volatile fields (backpressure hints, queue gauges,
// event-loop tallies, latency percentiles) are masked by default, and
// --mask adds more patterns.
//
// Exit status: 0 on a clean replay, 1 on any diff, 2 on usage/IO errors.
//
// Note: a trace whose deployment configured --checkpoint re-executes its
// checkpoint ops, rewriting those files (bit-identical content by the
// determinism contract). Copy them first if the originals matter.
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "svc/replay.h"
#include "svc/router.h"
#include "util/build_info.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace {

using namespace melody;

struct Options {
  std::string trace_path;
  std::string resume_path;
  std::string mask;
  std::int64_t threads = 1;
  std::int64_t max_diffs = 16;
  bool quiet = false;
  bool version = false;
};

Options read_options(const util::Flags& flags) {
  Options o;
  o.trace_path =
      flags.get_string("trace", "", "PATH", "MLDYTRC trace file to replay");
  o.resume_path = flags.get_string(
      "resume", "", "PATH",
      "restore this service checkpoint before replaying (default: the "
      "trace header's recorded resume path, if any)");
  o.mask = flags.get_string(
      "mask", "", "P1,P2",
      "extra volatile-field mask patterns (exact key, 'prefix*' or "
      "'*suffix'), added to the defaults");
  o.threads = flags.get_int(
      "threads", 1, "T",
      "worker threads for run execution (0: all hardware threads) — the "
      "replay must be bit-identical at any value");
  o.max_diffs =
      flags.get_int("max-diffs", 16, "N", "stop after N diffs (0: collect all)");
  o.quiet = flags.has_switch("quiet", "suppress the summary line");
  o.version = flags.has_switch(
      "version", "print the build sha and format versions, then exit");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_replay",
                        "Replay a recorded melody_serve wire trace against a "
                        "rebuilt deployment and diff every response.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<util::Flags> flags;
  try {
    flags = std::make_unique<util::Flags>(argc, argv);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  Options options;
  try {
    options = read_options(*flags);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (flags->has("help")) return usage(nullptr);
  if (options.version) {
    std::printf("%s\n", util::build_info_line("melody_replay").c_str());
    return 0;
  }
  if (const auto unknown = flags->unused(); !unknown.empty()) {
    return usage(("unknown flag --" + unknown.front()).c_str());
  }
  if (options.trace_path.empty()) return usage("--trace is required");

  util::set_shared_thread_count(static_cast<int>(options.threads));

  try {
    const svc::TraceFile trace = svc::read_trace(options.trace_path);
    svc::ServiceConfig config = svc::config_from_trace(trace);
    if (!config.manual_clock && !options.quiet) {
      std::fprintf(stderr,
                   "melody_replay: warning: trace was recorded without "
                   "--manual-clock; batch timing may diverge\n");
    }
    // A trace recorded by a resumed session pins its checkpoint in the
    // header; replaying it fresh would diverge on frame one, so the
    // recorded path is the default and a missing file is a structured
    // error naming the path, not an open failure deep in restore().
    std::string resume = options.resume_path.empty()
                             ? svc::resume_path_from_trace(trace)
                             : options.resume_path;
    if (!resume.empty()) svc::require_resume_checkpoint(resume);
    svc::ShardedService service(std::move(config));
    if (!resume.empty()) service.restore(resume);

    svc::ReplayOptions replay_options;
    replay_options.max_diffs = static_cast<std::size_t>(options.max_diffs);
    if (!options.mask.empty()) {
      std::istringstream patterns(options.mask);
      std::string pattern;
      while (std::getline(patterns, pattern, ',')) {
        if (!pattern.empty()) replay_options.mask.push_back(pattern);
      }
    }

    const svc::ReplayResult result =
        svc::replay_trace(trace, service, replay_options);
    for (const svc::FrameDiff& diff : result.diffs) {
      std::fprintf(stderr, "melody_replay: %s\n",
                   svc::format_diff(diff).c_str());
    }
    if (!options.quiet) {
      std::fprintf(
          stderr,
          "melody_replay: %zu frames applied, %zu compared, %zu diffs "
          "(%zu rejections skipped, %zu after shutdown, %zu unmatched "
          "out-frames)\n",
          result.applied, result.compared, result.diffs.size(),
          result.skipped_rejections, result.skipped_after_shutdown,
          result.unmatched_out);
    }
    return result.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "melody_replay: %s\n", e.what());
    return 2;
  }
}
