// melody_cluster — the cluster coordinator process (melody::cluster).
//
// Launches (or adopts, with --no-spawn) K melody_serve members, each
// serving a contiguous slice of the global platform shards, and serves the
// line-JSON control protocol (cluster/coordinator.h) beside the members'
// data protocol: join/heartbeat from members, status/route_table for
// clients, and the operator verbs — migrate one shard live between
// processes, drain a member, publish recovery snapshots. All member state
// moves over the regular v5 data ops (shard_export / shard_import), so the
// coordinator itself holds nothing but the routing table.
//
// Scenario/seed flags mirror melody_serve (the shared
// svc::ServiceConfig::from_flags set): the coordinator validates the
// deployment shape once and re-serializes the canonical flags into the
// spawn argv, so every member runs the identical global config and the
// chaos harness can respawn a killed member from the spawn_args op alone.
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/net.h"
#include "svc/config.h"
#include "svc/wire.h"
#include "util/build_info.h"
#include "util/flags.h"

namespace {

using namespace melody;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  svc::ServiceConfig service;
  std::string publish_dir = ".";
  std::string serve_bin;
  std::int64_t ctl_port = 7200;
  std::int64_t members = 2;
  std::int64_t heartbeat_ms = 1000;
  bool no_spawn = false;
  bool quiet = false;
  bool version = false;
};

Options read_options(const util::Flags& flags) {
  Options o;
  o.service = svc::ServiceConfig::from_flags(flags);
  o.ctl_port = flags.get_int("ctl-port", 7200, "PORT",
                             "control-protocol TCP port");
  o.members = flags.get_int("members", 2, "M",
                            "cluster members to spawn (and expect)");
  o.publish_dir = flags.get_string(
      "publish-dir", ".", "DIR",
      "directory for published snapshots and migration envelopes");
  o.serve_bin = flags.get_string(
      "serve-bin", "", "PATH",
      "melody_serve binary to spawn (default: beside this binary)");
  o.heartbeat_ms = flags.get_int("heartbeat-ms", 1000, "MS",
                                 "member heartbeat cadence (0 disables)");
  o.no_spawn = flags.has_switch(
      "no-spawn", "adopt externally started members instead of spawning "
                  "(members join with their own --cluster-shards)");
  o.quiet = flags.has_switch("quiet", "suppress the startup/status lines");
  o.version = flags.has_switch(
      "version", "print the build sha and format versions, then exit");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_cluster",
                        "Cluster coordinator: spawns melody_serve members, "
                        "serves the control protocol (join/status/"
                        "route_table/migrate/drain/publish), and drives "
                        "live shard migration.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 1 : 0;
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  return buffer;
}

/// The canonical argv (binary first) every member is spawned with; member
/// identity (--cluster-member / --cluster-shards) is appended per spawn.
std::vector<std::string> member_spawn_args(const Options& o) {
  const svc::ServiceConfig& c = o.service;
  std::vector<std::string> args;
  args.push_back(o.serve_bin);
  const auto flag = [&args](const char* name, const std::string& value) {
    args.push_back(name);
    args.push_back(value);
  };
  flag("--workers", std::to_string(c.scenario.num_workers));
  flag("--tasks", std::to_string(c.scenario.num_tasks));
  flag("--runs", std::to_string(c.scenario.runs));
  flag("--budget", format_double(c.scenario.budget));
  flag("--reestimation-period",
       std::to_string(c.scenario.reestimation_period));
  flag("--estimator", c.estimator);
  flag("--exploration-beta", format_double(c.exploration_beta));
  flag("--payment-rule",
       c.payment_rule == auction::PaymentRule::kPaperNextInQueue ? "paper"
                                                                 : "critical");
  flag("--seed", std::to_string(c.seed));
  if (c.faults.active()) flag("--faults", c.faults.describe());
  if (c.incremental && !c.batch.per_task_arrival) {
    args.push_back("--incremental");
  }
  if (c.batch.min_bids > 0) {
    flag("--batch-min-bids", std::to_string(c.batch.min_bids));
  }
  if (c.batch.max_delay > 0.0) {
    flag("--batch-max-delay", format_double(c.batch.max_delay));
  }
  if (c.batch.budget_target > 0.0) {
    flag("--batch-budget", format_double(c.batch.budget_target));
  }
  if (c.batch.per_task_arrival) args.push_back("--rolling");
  if (c.manual_clock) args.push_back("--manual-clock");
  flag("--shards", std::to_string(c.shards));
  flag("--queue-capacity", std::to_string(c.queue_capacity));
  flag("--port", "0");  // ephemeral; the member reports its port on join
  flag("--heartbeat-ms", std::to_string(o.heartbeat_ms));
  flag("--cluster-ctl", "127.0.0.1:" + std::to_string(o.ctl_port));
  args.push_back("--quiet");
  return args;
}

pid_t spawn(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  std::fprintf(stderr, "melody_cluster: exec %s: %s\n", argv[0],
               std::strerror(errno));
  ::_exit(127);
}

/// Poll-driven control-protocol server: one line in, one reply line out,
/// per connection. Single-threaded — Coordinator::handle serializes
/// anyway, and control traffic is a trickle next to the data plane.
class ControlServer {
 public:
  ControlServer(cluster::Coordinator& coordinator, int port)
      : coordinator_(coordinator) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("control: socket failed");
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof enable);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      throw std::runtime_error("control: cannot listen on port " +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    }
  }

  ~ControlServer() {
    for (const auto& [fd, buffer] : clients_) ::close(fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  /// Serve for up to `timeout_ms`, then return (the caller interleaves
  /// child reaping and the stop checks).
  void serve_once(int timeout_ms) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, buffer] : clients_) {
      fds.push_back({fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready <= 0) return;
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) clients_.emplace(fd, std::string());
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      handle_readable(fds[i].fd);
    }
  }

 private:
  void handle_readable(int fd) {
    const auto it = clients_.find(fd);
    if (it == clients_.end()) return;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      ::close(fd);
      clients_.erase(it);
      return;
    }
    it->second.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = it->second.find('\n')) != std::string::npos) {
      const std::string line = it->second.substr(0, newline);
      it->second.erase(0, newline + 1);
      std::string reply_line;
      try {
        reply_line =
            svc::format_wire(coordinator_.handle(svc::parse_wire(line)));
      } catch (const std::exception& e) {
        svc::WireObject reply;
        reply.set("ok", svc::WireValue::of(false));
        reply.set("error", svc::WireValue::of(std::string(e.what())));
        reply_line = svc::format_wire(reply);
      }
      reply_line += "\n";
      std::size_t sent = 0;
      while (sent < reply_line.size()) {
        const ssize_t w = ::send(fd, reply_line.data() + sent,
                                 reply_line.size() - sent, MSG_NOSIGNAL);
        if (w <= 0) break;
        sent += static_cast<std::size_t>(w);
      }
    }
  }

  cluster::Coordinator& coordinator_;
  int listen_fd_ = -1;
  std::map<int, std::string> clients_;  // fd -> partial-line buffer
};

std::string shard_csv(int lo, int hi) {
  std::string csv;
  for (int s = lo; s < hi; ++s) {
    if (!csv.empty()) csv += ",";
    csv += std::to_string(s);
  }
  return csv.empty() ? "none" : csv;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<util::Flags> flags;
  try {
    flags = std::make_unique<util::Flags>(argc, argv);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  Options options;
  try {
    options = read_options(*flags);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (flags->has("help")) return usage(nullptr);
  if (options.version) {
    std::puts(util::build_info_line("melody_cluster").c_str());
    return 0;
  }
  if (const auto unknown = flags->unused(); !unknown.empty()) {
    return usage(("unknown flag --" + unknown.front()).c_str());
  }
  if (options.members < 1) return usage("--members must be >= 1");
  if (options.serve_bin.empty()) {
    const std::string self = argv[0];
    const std::size_t slash = self.rfind('/');
    options.serve_bin = (slash == std::string::npos
                             ? std::string(".")
                             : self.substr(0, slash)) +
                        "/melody_serve";
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    cluster::CoordinatorOptions coordinator_options;
    coordinator_options.shards = options.service.shards;
    coordinator_options.workers = options.service.scenario.num_workers;
    coordinator_options.expected_members =
        static_cast<int>(options.members);
    coordinator_options.publish_dir = options.publish_dir;
    coordinator_options.spawn_args = member_spawn_args(options);

    cluster::MemberPool pool;
    cluster::Coordinator coordinator(
        coordinator_options,
        [&pool](const cluster::ClusterMember& member,
                const svc::Request& request, svc::Response* out) {
          return pool.call(member, request, out);
        });
    ControlServer control(coordinator,
                          static_cast<int>(options.ctl_port));

    std::vector<pid_t> children;
    if (!options.no_spawn) {
      const int k = options.service.shards;
      const int m = static_cast<int>(options.members);
      for (int i = 0; i < m; ++i) {
        // Contiguous shard slices, first K%M members take one extra.
        const int lo = i * (k / m) + std::min(i, k % m);
        const int hi = (i + 1) * (k / m) + std::min(i + 1, k % m);
        std::vector<std::string> args = coordinator_options.spawn_args;
        args.push_back("--cluster-member");
        args.push_back("m" + std::to_string(i));
        args.push_back("--cluster-shards");
        args.push_back(shard_csv(lo, hi));
        const pid_t pid = spawn(args);
        if (pid < 0) throw std::runtime_error("fork failed");
        children.push_back(pid);
      }
    }
    if (!options.quiet) {
      std::printf(
          "melody_cluster: control on 127.0.0.1:%d, %d member(s) %s, "
          "%d shard(s), publish dir %s\n",
          static_cast<int>(options.ctl_port),
          static_cast<int>(options.members),
          options.no_spawn ? "expected" : "spawned", options.service.shards,
          options.publish_dir.c_str());
      std::fflush(stdout);
    }

    bool announced_ready = false;
    while (g_stop == 0 && !coordinator.shutdown_requested()) {
      control.serve_once(200);
      if (!announced_ready && coordinator.ready()) {
        announced_ready = true;
        if (!options.quiet) {
          std::printf("melody_cluster: ready (%zu members joined)\n",
                      coordinator.table().members.size());
          std::fflush(stdout);
        }
      }
      // Reap members that exited (expected under the chaos harness; the
      // respawn re-joins and re-imports from the published envelopes).
      int status = 0;
      while (::waitpid(-1, &status, WNOHANG) > 0) {
      }
    }
    if (!coordinator.shutdown_requested()) {
      // SIGINT path: forward the shutdown so members drain cleanly.
      svc::WireObject cmd;
      cmd.set("cmd", svc::WireValue::of("shutdown"));
      coordinator.handle(cmd);
    }
    for (const pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    if (!options.quiet) {
      std::fprintf(stderr, "melody_cluster: stopped (epoch %lld)\n",
                   static_cast<long long>(coordinator.table().epoch));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "melody_cluster: %s\n", e.what());
    return 1;
  }
  return 0;
}
