// melody_loadgen — deterministic load generator for melody_serve.
//
// Each client connection replays a request stream derived from counter-based
// RNG streams (util::derive_stream(seed, client, request)), so a given
// --seed/--clients/--requests triple always produces the same operation
// sequence regardless of scheduling. Two pacing modes:
//
//   * closed — send, wait for the response, think, repeat: latency under a
//     fixed concurrency level (the classic closed-loop client);
//   * open   — a sender thread paces requests on the fixed arrival grid of
//     svc::loadgen::OpenLoopSchedule while a receiver thread matches
//     in-order responses to send timestamps: the server sees arrivals that
//     do not slow down when it does, which is what actually drives the
//     queue into backpressure. A request rejected with retry_after_ms is
//     re-sent after that hint WITHOUT shifting the fresh-request grid, so
//     a rejected run offers the same deterministic load as a clean one.
//
// Latency percentiles over all completed requests are printed and mirrored
// via bench::Reporter (CSV lands in out/). --metrics-json additionally
// records one obs::Summary per op ("loadgen/<op>_latency_ms") and dumps the
// registry as JSON lines at exit, so per-op tails are visible without
// re-running. With --dry-run the request lines go to stdout instead of a
// socket — piping them into `melody_serve --stdin` replays the identical
// stream without networking.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_common.h"
#include "cluster/client_router.h"
#include "cluster/net.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "svc/loadgen.h"
#include "svc/protocol.h"
#include "util/build_info.h"
#include "util/flags.h"

namespace {

using namespace melody;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  std::int64_t port = 7117;
  std::string mode = "closed";
  std::int64_t clients = 4;
  std::int64_t requests = 200;
  std::int64_t workers = 300;
  double rate = 200.0;
  double think_ms = 0.0;
  double task_budget = 800.0;
  std::int64_t seed = 1;
  std::int64_t proto = svc::kProtoVersion;
  std::string ops;
  std::string csv;
  std::string metrics_json;
  std::string cluster;
  bool dry_run = false;
  bool quiet = false;
  bool version = false;
};

Options read_options(const util::Flags& flags) {
  Options o;
  o.host = flags.get_string("host", o.host, "HOST", "server address");
  o.port = flags.get_int("port", o.port, "PORT", "server TCP port");
  o.mode = flags.get_string("mode", o.mode, "MODE",
                            "pacing: closed (send-wait-think) or open "
                            "(fixed-rate arrivals)");
  o.clients = flags.get_int("clients", o.clients, "C",
                            "concurrent client connections");
  o.requests =
      flags.get_int("requests", o.requests, "N", "requests per client");
  o.workers = flags.get_int(
      "workers", o.workers, "N",
      "worker name space size; names w0..w{N-1} match the server scenario");
  o.rate = flags.get_double("rate", o.rate, "R",
                            "open mode: requests per second per client");
  o.think_ms = flags.get_double("think-ms", o.think_ms, "MS",
                                "closed mode: delay between requests");
  o.task_budget = flags.get_double("task-budget", o.task_budget, "B",
                                   "budget carried by submit_tasks requests");
  o.seed = flags.get_int("seed", o.seed, "S",
                         "master seed for the per-client request streams");
  o.proto = flags.get_int(
      "proto", o.proto, "V",
      "client protocol version; the stream speaks min(V, build version) — "
      "below 3 it never emits update_bid/withdraw_bid");
  o.ops = flags.get_string(
      "ops", "", "LIST",
      "dry-run only: restrict the printed stream to these comma-separated "
      "op names; names the negotiated proto does not support are rejected");
  o.csv = flags.get_string("csv", "loadgen_latency.csv", "NAME",
                           "latency summary CSV (written under out/)");
  o.metrics_json = flags.get_string(
      "metrics-json", "", "PATH",
      "record per-op latency summaries (loadgen/<op>_latency_ms) and write "
      "the metric registry to PATH as JSON lines at exit");
  o.cluster = flags.get_string(
      "cluster", "", "HOST:PORT",
      "melody_cluster control endpoint: fetch the routing table and route "
      "each request to the member owning its shard (closed mode; "
      "--host/--port are ignored)");
  o.dry_run = flags.has_switch(
      "dry-run", "print request lines to stdout instead of connecting "
                 "(pipe into melody_serve --stdin)");
  o.quiet = flags.has_switch("quiet", "suppress the per-client progress");
  o.version = flags.has_switch(
      "version", "print the build sha and format versions, then exit");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_loadgen",
                        "Deterministic closed/open-loop client for "
                        "melody_serve.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 1 : 0;
}

/// The shared deterministic stream (svc/loadgen.h): request k of client c
/// is a pure function of (seed, c, k).
/// The protocol version the stream may assume: what a hello handshake with
/// this build would negotiate (both sides speak the older version).
int negotiated_proto(const Options& options) {
  return static_cast<int>(
      std::min<std::int64_t>(options.proto, svc::kProtoVersion));
}

svc::loadgen::StreamConfig stream_config(const Options& options) {
  svc::loadgen::StreamConfig config;
  config.seed = static_cast<std::uint64_t>(options.seed);
  config.workers = options.workers;
  config.task_budget = options.task_budget;
  config.proto = negotiated_proto(options);
  return config;
}

/// Every op the build knows, for --ops name resolution.
constexpr svc::Op kAllOps[] = {
    svc::Op::kHello,      svc::Op::kSubmitBid,   svc::Op::kUpdateBid,
    svc::Op::kWithdrawBid, svc::Op::kSubmitTasks, svc::Op::kPostScores,
    svc::Op::kQueryWorker, svc::Op::kQueryRun,    svc::Op::kRunNow,
    svc::Op::kTick,        svc::Op::kStats,       svc::Op::kCheckpoint,
    svc::Op::kShutdown,
};

/// Parse the --ops filter. Throws std::invalid_argument on an op name the
/// build does not know or one the negotiated protocol version cannot carry.
std::vector<svc::Op> parse_ops_filter(const std::string& list,
                                      int negotiated) {
  std::vector<svc::Op> allowed;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(start, comma - start);
    start = comma + 1;
    if (name.empty()) continue;
    bool found = false;
    svc::Op match = svc::Op::kHello;
    for (const svc::Op op : kAllOps) {
      if (svc::to_string(op) == name) {
        found = true;
        match = op;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("--ops: unknown op '" + name + "'");
    }
    if (svc::min_proto(match) > negotiated) {
      throw std::invalid_argument(
          "--ops: op '" + name + "' requires proto >= " +
          std::to_string(svc::min_proto(match)) + " (negotiated " +
          std::to_string(negotiated) + ")");
    }
    allowed.push_back(match);
  }
  return allowed;
}

svc::Request make_request(const Options& options, int client, int index) {
  return svc::loadgen::make_request(stream_config(options), client, index);
}

/// Per-op latency distribution under --metrics-json. Off the measurement
/// path (the latency is already taken) and gated on obs::enabled(), so the
/// default run pays one load + branch per response.
void record_op_latency(svc::Op op, double latency_ms) {
  if (!obs::enabled()) return;
  obs::registry()
      .summary("loadgen/" + std::string(svc::to_string(op)) + "_latency_ms")
      .record(latency_ms);
}

struct ClientResult {
  std::vector<double> latencies_ms;
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t errors = 0;    // ok:false responses that are not overloads
  std::size_t rejected = 0;  // overload rejections (retry_after_ms > 0)
  std::size_t retried = 0;   // open mode: deterministic re-sends
};

int connect_to(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line, carrying leftover bytes across calls.
bool recv_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

void tally_response(const std::string& line, ClientResult& result) {
  try {
    const svc::Response response = svc::parse_response(line);
    if (response.ok) {
      ++result.ok;
    } else if (response.retry_after_ms > 0) {
      ++result.rejected;
    } else {
      ++result.errors;
    }
  } catch (const svc::WireError&) {
    ++result.errors;
  }
}

ClientResult run_closed_client(const Options& options, int client) {
  ClientResult result;
  const int fd = connect_to(options.host, static_cast<int>(options.port));
  if (fd < 0) {
    result.errors = static_cast<std::size_t>(options.requests);
    return result;
  }
  std::string buffer;
  std::string line;
  for (int k = 0; k < options.requests; ++k) {
    const svc::Request request = make_request(options, client, k);
    const auto start = Clock::now();
    if (!send_line(fd, svc::format_request(request)) ||
        !recv_line(fd, buffer, line)) {
      ++result.errors;
      break;
    }
    const double latency_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    result.latencies_ms.push_back(latency_ms);
    record_op_latency(request.op, latency_ms);
    ++result.sent;
    tally_response(line, result);
    if (options.think_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options.think_ms));
    }
  }
  ::close(fd);
  return result;
}

ClientResult run_open_client(const Options& options, int client) {
  ClientResult result;
  const int fd = connect_to(options.host, static_cast<int>(options.port));
  if (fd < 0) {
    result.errors = static_cast<std::size_t>(options.requests);
    return result;
  }
  // Sender paces on the schedule's fixed fresh-request grid; receiver
  // matches in-order responses to send records and feeds overload
  // rejections back as deterministic retries (svc/loadgen.h).
  std::mutex mutex;
  svc::loadgen::OpenLoopSchedule schedule(static_cast<int>(options.requests),
                                          options.rate);
  std::deque<std::pair<int, Clock::time_point>> in_flight;
  const auto epoch = Clock::now();
  const auto now_s = [epoch] {
    return std::chrono::duration<double>(Clock::now() - epoch).count();
  };
  bool send_failed = false;

  std::thread receiver([&] {
    std::string buffer;
    std::string line;
    for (;;) {
      if (!recv_line(fd, buffer, line)) break;  // sender shut the socket
      int index = 0;
      Clock::time_point sent_at;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (in_flight.empty()) break;  // protocol violation; bail out
        index = in_flight.front().first;
        sent_at = in_flight.front().second;
        in_flight.pop_front();
      }
      const double latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - sent_at)
              .count();
      result.latencies_ms.push_back(latency_ms);
      // The request op is a pure function of (seed, client, index), so the
      // receiver regenerates it instead of threading it through in_flight.
      record_op_latency(make_request(options, client, index).op, latency_ms);
      try {
        const svc::Response response = svc::parse_response(line);
        if (response.ok) {
          ++result.ok;
        } else if (response.retry_after_ms > 0) {
          ++result.rejected;
          std::lock_guard<std::mutex> lock(mutex);
          schedule.note_rejected(
              index, now_s(),
              static_cast<double>(response.retry_after_ms));
        } else {
          ++result.errors;
        }
      } catch (const svc::WireError&) {
        ++result.errors;
      }
    }
  });

  for (;;) {
    svc::loadgen::OpenLoopSchedule::Action action;
    bool outstanding = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      action = schedule.next(now_s());
      outstanding = !in_flight.empty();
    }
    using Kind = svc::loadgen::OpenLoopSchedule::Action::Kind;
    if (action.kind == Kind::kDone) {
      // Every fresh request went out and no retry is pending, but an
      // in-flight response could still come back rejected and schedule
      // one — drain before declaring the stream finished.
      if (!outstanding) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (action.kind == Kind::kWait) {
      std::this_thread::sleep_until(
          epoch + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(action.wait_until)));
      continue;
    }
    const svc::Request request = make_request(options, client, action.index);
    {
      std::lock_guard<std::mutex> lock(mutex);
      in_flight.emplace_back(action.index, Clock::now());
    }
    if (!send_line(fd, svc::format_request(request))) {
      ++result.errors;
      send_failed = true;
      break;
    }
    ++result.sent;
  }
  // Unblock the receiver (it has consumed every pending response unless
  // the socket already failed) and finish.
  ::shutdown(fd, send_failed ? SHUT_WR : SHUT_RDWR);
  receiver.join();
  ::close(fd);
  result.retried = static_cast<std::size_t>(schedule.retries_sent());
  return result;
}

/// Split --cluster's "HOST:PORT". False on a malformed endpoint.
bool parse_endpoint(const std::string& spec, std::string* host, int* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  *host = spec.substr(0, colon);
  try {
    *port = std::stoi(spec.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return *port >= 1 && *port <= 65535;
}

/// Closed-loop client routed through the cluster: fetch the routing table
/// from the coordinator, then send each request to the member owning its
/// shard (broadcasts fan out and re-merge). A not_owner rejection mid-run
/// (a live migration) refreshes the table and retries inside call(), so
/// the stream sees the same responses a single-process deployment gives.
ClientResult run_cluster_client(const Options& options, int client) {
  ClientResult result;
  std::string ctl_host;
  int ctl_port = 0;
  parse_endpoint(options.cluster, &ctl_host, &ctl_port);  // validated in main
  auto control_conn = std::make_shared<cluster::LineClient>();
  auto pool = std::make_shared<cluster::MemberPool>();
  cluster::ClusterClient router(
      [pool](const cluster::ClusterMember& member,
             const svc::Request& request, svc::Response* out) {
        return pool->call(member, request, out);
      },
      [control_conn, ctl_host, ctl_port](const svc::WireObject& command,
                                         svc::WireObject* reply) {
        if (!control_conn->connected() &&
            !control_conn->connect(ctl_host, ctl_port)) {
          return false;
        }
        std::string line;
        if (!control_conn->exchange(svc::format_wire(command), &line)) {
          return false;
        }
        *reply = svc::parse_wire(line);
        return true;
      });
  if (!router.refresh_table()) {
    result.errors = static_cast<std::size_t>(options.requests);
    if (!options.quiet) {
      std::fprintf(stderr, "melody_loadgen: client %d: %s\n", client,
                   router.last_error().c_str());
    }
    return result;
  }
  for (int k = 0; k < options.requests; ++k) {
    const svc::Request request = make_request(options, client, k);
    svc::Response response;
    const auto start = Clock::now();
    if (!router.call(request, &response)) {
      ++result.errors;
      continue;
    }
    const double latency_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    result.latencies_ms.push_back(latency_ms);
    record_op_latency(request.op, latency_ms);
    ++result.sent;
    tally_response(svc::format_response(response), result);
    if (options.think_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(options.think_ms));
    }
  }
  return result;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<util::Flags> flags;
  try {
    flags = std::make_unique<util::Flags>(argc, argv);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  Options options;
  try {
    options = read_options(*flags);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (flags->has("help")) return usage(nullptr);
  if (options.version) {
    std::printf("%s\n", util::build_info_line("melody_loadgen").c_str());
    return 0;
  }
  if (const auto unknown = flags->unused(); !unknown.empty()) {
    return usage(("unknown flag --" + unknown.front()).c_str());
  }
  if (options.mode != "closed" && options.mode != "open") {
    return usage("--mode must be closed or open");
  }
  if (!options.cluster.empty()) {
    std::string ctl_host;
    int ctl_port = 0;
    if (!parse_endpoint(options.cluster, &ctl_host, &ctl_port)) {
      return usage("--cluster must be HOST:PORT");
    }
    if (options.mode != "closed") {
      return usage("--cluster requires --mode closed (open-loop in-order "
                   "matching does not survive broadcast fan-out)");
    }
    if (options.dry_run) {
      return usage("--cluster and --dry-run are mutually exclusive");
    }
  }
  if (options.clients < 1 || options.requests < 1 || options.workers < 1) {
    return usage("--clients/--requests/--workers must be positive");
  }
  if (options.proto < 1) {
    return usage("--proto must be at least 1");
  }
  if (!options.ops.empty() && !options.dry_run) {
    return usage("--ops only applies to --dry-run streams");
  }
  std::unique_ptr<obs::JsonLinesSink> metrics_sink;
  if (!options.metrics_json.empty() && !options.dry_run) {
    try {
      metrics_sink = std::make_unique<obs::JsonLinesSink>(options.metrics_json);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
    obs::set_sink(metrics_sink.get());
    obs::set_enabled(true);
  }

  const int negotiated = negotiated_proto(options);
  std::vector<svc::Op> allowed;
  if (!options.ops.empty()) {
    try {
      allowed = parse_ops_filter(options.ops, negotiated);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  }

  if (options.dry_run) {
    // The stream a hello handshake with this build would produce; stdout
    // stays pure request lines for piping into melody_serve --stdin.
    std::fprintf(stderr,
                 "melody_loadgen: negotiated proto %d (requested %d, build "
                 "speaks %d)\n",
                 negotiated, static_cast<int>(options.proto),
                 svc::kProtoVersion);
    for (int c = 0; c < options.clients; ++c) {
      for (int k = 0; k < options.requests; ++k) {
        const svc::Request request = make_request(options, c, k);
        if (!allowed.empty() &&
            std::find(allowed.begin(), allowed.end(), request.op) ==
                allowed.end()) {
          continue;
        }
        std::puts(svc::format_request(request).c_str());
      }
    }
    return 0;
  }

  std::vector<ClientResult> results(
      static_cast<std::size_t>(options.clients));
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&options, &results, c] {
      results[static_cast<std::size_t>(c)] =
          !options.cluster.empty() ? run_cluster_client(options, c)
          : options.mode == "closed" ? run_closed_client(options, c)
                                     : run_open_client(options, c);
    });
  }
  for (std::thread& t : threads) t.join();

  const auto flush_metrics = [&] {
    if (metrics_sink == nullptr) return;
    metrics_sink->append_registry(obs::registry());
    obs::set_sink(nullptr);
    obs::set_enabled(false);
  };

  ClientResult total;
  for (const ClientResult& r : results) {
    total.sent += r.sent;
    total.ok += r.ok;
    total.errors += r.errors;
    total.rejected += r.rejected;
    total.retried += r.retried;
    total.latencies_ms.insert(total.latencies_ms.end(), r.latencies_ms.begin(),
                              r.latencies_ms.end());
  }
  if (total.sent == 0) {
    std::fprintf(stderr,
                 "melody_loadgen: no requests completed — is melody_serve "
                 "running on %s:%d?\n",
                 options.host.c_str(), static_cast<int>(options.port));
    flush_metrics();
    return 1;
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  double sum = 0.0;
  for (const double v : total.latencies_ms) sum += v;
  const double mean =
      total.latencies_ms.empty()
          ? 0.0
          : sum / static_cast<double>(total.latencies_ms.size());
  const double p50 = percentile(total.latencies_ms, 0.50);
  const double p90 = percentile(total.latencies_ms, 0.90);
  const double p99 = percentile(total.latencies_ms, 0.99);
  const double max =
      total.latencies_ms.empty() ? 0.0 : total.latencies_ms.back();

  if (!options.cluster.empty()) {
    std::printf(
        "melody_loadgen: %s loop, %lld clients x %lld requests via cluster "
        "%s\n",
        options.mode.c_str(), static_cast<long long>(options.clients),
        static_cast<long long>(options.requests), options.cluster.c_str());
  } else {
    std::printf(
        "melody_loadgen: %s loop, %lld clients x %lld requests against "
        "%s:%d\n",
        options.mode.c_str(), static_cast<long long>(options.clients),
        static_cast<long long>(options.requests), options.host.c_str(),
        static_cast<int>(options.port));
  }
  std::printf("  sent %zu  ok %zu  rejected %zu  retried %zu  errors %zu\n",
              total.sent, total.ok, total.rejected, total.retried,
              total.errors);
  std::printf("  latency ms: mean %.3f  p50 %.3f  p90 %.3f  p99 %.3f  max "
              "%.3f\n",
              mean, p50, p90, p99, max);

  bench::Reporter reporter(options.csv,
                           {"mode", "clients", "requests", "sent", "ok",
                            "rejected", "retried", "errors", "mean_ms",
                            "p50_ms", "p90_ms", "p99_ms", "max_ms"});
  reporter.row({options.mode, std::to_string(options.clients),
                std::to_string(options.requests), std::to_string(total.sent),
                std::to_string(total.ok), std::to_string(total.rejected),
                std::to_string(total.retried), std::to_string(total.errors),
                std::to_string(mean), std::to_string(p50),
                std::to_string(p90), std::to_string(p99),
                std::to_string(max)});
  if (reporter.active()) {
    std::printf("  summary CSV: %s\n", reporter.path().c_str());
  }
  flush_metrics();
  if (metrics_sink != nullptr) {
    std::printf("  metrics JSON: %s\n", options.metrics_json.c_str());
  }
  return 0;
}
