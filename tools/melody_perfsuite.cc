// melody_perfsuite — run the pinned perf-trajectory benchmark matrix and
// emit a schema-v1 BENCH_<date>_<gitsha>.json artifact (see perf/suite.h
// for the matrix and perf/artifact.h for the schema).
//
// The artifact is written to the repo root by convention (committed once
// per PR); diff two artifacts with tools/perf_compare, which is also the
// CI regression gate:
//
//   melody_perfsuite --quick --out ci_candidate.json
//   perf_compare BENCH_<date>_<sha>.json ci_candidate.json --threshold 0.75
#include <cstdio>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "perf/artifact.h"
#include "perf/suite.h"
#include "util/flags.h"

namespace {

using namespace melody;

struct Options {
  perf::SuiteOptions suite;
  std::string out;
  std::string root = ".";
};

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream stream(list);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

Options read_options(const util::Flags& flags) {
  Options o;
  o.suite.quick = flags.has_switch(
      "quick", "small sizes + fewer repeats (CI); artifact records quick=true");
  o.suite.repeats = static_cast<int>(flags.get_int(
      "repeats", 0, "K", "timed repeats per bench (0: 5 full / 3 quick)"));
  o.suite.threads = static_cast<int>(flags.get_int(
      "threads", 0, "N", "shared-pool concurrency (0: current setting)"));
  o.suite.only = split_csv(flags.get_string(
      "only", "", "A,B", "run only the named benches (comma-separated)"));
  o.suite.date = flags.get_string("date", "", "YYYY-MM-DD",
                                  "override the artifact date stamp");
  o.suite.git_sha = flags.get_string(
      "git-sha", "", "SHA", "override the artifact git sha stamp");
  o.out = flags.get_string(
      "out", "", "PATH",
      "artifact destination (default: BENCH_<date>_<gitsha>.json in --root)");
  o.root = flags.get_string("root", ".", "DIR",
                            "directory bare artifact names resolve against");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_perfsuite",
                        "Run the pinned perf benchmark matrix and emit a "
                        "BENCH_*.json trajectory artifact.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    util::Flags flags(argc, argv);
    if (flags.has("help")) return usage(nullptr);
    options = read_options(flags);
    const std::vector<std::string> unused = flags.unused();
    if (!unused.empty()) {
      return usage(("unknown flag --" + unused.front()).c_str());
    }
    if (!flags.positional().empty()) {
      return usage("melody_perfsuite takes no positional arguments");
    }
  } catch (const std::exception& e) {
    return usage(e.what());
  }

  try {
    const perf::PerfArtifact artifact =
        perf::run_suite(options.suite, std::cout);
    const std::string name =
        options.out.empty() ? perf::artifact_file_name(artifact) : options.out;
    const std::string path = bench::perf_artifact_path(name, options.root);
    perf::write_artifact(artifact, path);
    std::printf("wrote %s (%zu benchmarks, %d repeats, %d threads%s)\n",
                path.c_str(), artifact.benchmarks.size(), artifact.repeats,
                artifact.threads, artifact.quick ? ", quick" : "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
