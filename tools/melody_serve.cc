// melody_serve — the online auction service (melody::svc) as a process.
//
// Serves the line-delimited JSON protocol of svc/protocol.h over a loopback
// TCP socket (one thread per connection feeding the bounded request queue;
// a full queue answers "overloaded" with retry_after_ms), or over
// stdin/stdout with --stdin so tests and CI pipelines need no networking.
// The platform state is owned by a single event-loop thread; runs fire when
// the configured batch policy (count / deadline / budget accumulation)
// triggers. SIGINT drains the queue, executes due batches, writes a final
// checkpoint when --checkpoint is set, and exits cleanly.
//
// Scenario and seed flags mirror melody_sim: with --manual-clock (implied
// by nothing — set it explicitly) and a trace of submit_bid/tick lines, the
// run outcomes are bit-identical to the equivalent batch simulation.
#include <csignal>
#include <cstdio>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "svc/loop.h"
#include "svc/service.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace {

using namespace melody;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  svc::ServiceConfig service;
  std::string payment_rule = "critical";
  std::string faults_spec;
  std::string resume_path;
  std::string metrics_path;
  std::int64_t port = 7117;
  std::int64_t queue_capacity = 128;
  std::int64_t threads = 1;
  bool stdin_mode = false;
  bool quiet = false;
};

Options read_options(const util::Flags& flags) {
  Options o;
  auto& s = o.service;
  s.scenario.num_workers = static_cast<int>(
      flags.get_int("workers", 300, "N", "scenario population size"));
  s.scenario.num_tasks = static_cast<int>(
      flags.get_int("tasks", 500, "M", "tasks published per run"));
  s.scenario.runs = static_cast<int>(
      flags.get_int("runs", 1000, "R", "scripted run horizon"));
  s.scenario.budget =
      flags.get_double("budget", 800.0, "B", "per-run auction budget");
  s.scenario.reestimation_period = static_cast<int>(flags.get_int(
      "reestimation-period", 10, "T", "estimator re-estimation period"));
  s.estimator = flags.get_string("estimator", "melody", "NAME",
                                 "quality estimator: melody|static|ml-cr|"
                                 "ml-ar");
  s.exploration_beta = flags.get_double("exploration-beta", 0.0, "BETA",
                                        "exploration bonus weight");
  o.payment_rule = flags.get_string("payment-rule", "critical", "RULE",
                                    "payment rule: critical|paper");
  s.seed = static_cast<std::uint64_t>(flags.get_int(
      "seed", 2017, "S", "master seed (same derivations as melody_sim)"));
  s.batch.min_bids = static_cast<int>(flags.get_int(
      "batch-min-bids", 0, "N",
      "run once N bids are pending (0: off; no trigger at all defaults to "
      "one run per full participation round)"));
  s.batch.max_delay = flags.get_double(
      "batch-max-delay", 0.0, "SEC",
      "run once the oldest pending bid is SEC old (0: off)");
  s.batch.budget_target = flags.get_double(
      "batch-budget", 0.0, "B",
      "run once submit_tasks budget accrues to B (0: off)");
  s.checkpoint_path = flags.get_string(
      "checkpoint", "", "PATH",
      "write service checkpoints to PATH (atomic tmp+rename); one is "
      "written on shutdown");
  s.checkpoint_every = static_cast<int>(flags.get_int(
      "checkpoint-every", 0, "N", "also checkpoint after every N-th run"));
  s.manual_clock = flags.has_switch(
      "manual-clock",
      "drive the service clock with tick ops instead of the wall clock "
      "(deterministic traces)");
  s.exit_after_runs = static_cast<int>(flags.get_int(
      "exit-after-runs", 0, "N",
      "shut down after N runs have executed this session (0: never)"));
  o.faults_spec = flags.get_string(
      "faults", "", "SPEC",
      "deterministic fault plan, e.g. no-show=0.05,drop=0.1 (see "
      "sim/fault.h)");
  o.resume_path = flags.get_string("resume", "", "PATH",
                                   "resume from a service checkpoint");
  o.metrics_path = flags.get_string(
      "metrics-json", "", "PATH",
      "enable observability and write metric summaries to PATH at exit");
  o.port = flags.get_int("port", 7117, "PORT",
                         "loopback TCP port to listen on");
  o.queue_capacity = flags.get_int(
      "queue-capacity", 128, "N",
      "bounded request queue size; a full queue rejects with retry_after_ms");
  o.threads = flags.get_int("threads", 1, "T",
                            "worker threads for run execution (0: all "
                            "hardware threads)");
  o.stdin_mode = flags.has_switch(
      "stdin", "serve one session over stdin/stdout instead of TCP");
  o.quiet = flags.has_switch("quiet", "suppress the startup/summary lines");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_serve",
                        "Online MELODY auction service: bounded request "
                        "queue, batched runs, checkpointed state.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 1 : 0;
}

bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void handle_connection(int fd, svc::ServiceLoop* loop) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      svc::Request request;
      try {
        request = svc::parse_request(line);
      } catch (const svc::WireError& e) {
        if (!write_all(fd, svc::format_response(
                               svc::Response::failure(0, e.what())) +
                               "\n")) {
          open = false;
        }
        continue;
      }
      // One in-flight request per connection: responses stay in request
      // order without any reordering machinery.
      std::promise<svc::Response> promise;
      std::future<svc::Response> future = promise.get_future();
      const svc::PushResult submitted = loop->try_submit(
          request,
          [&promise](const svc::Response& r) { promise.set_value(r); });
      const svc::Response response = submitted == svc::PushResult::kOk
                                         ? future.get()
                                         : loop->rejection(submitted, request);
      if (!write_all(fd, svc::format_response(response) + "\n")) open = false;
      if (request.op == svc::Op::kShutdown && response.ok) open = false;
    }
  }
  ::close(fd);
}

int serve_tcp(svc::ServiceLoop& loop, svc::AuctionService& service, int port,
              bool quiet) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("melody_serve: socket");
    return 1;
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd, 64) != 0) {
    std::perror("melody_serve: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  if (!quiet) {
    std::printf("melody_serve: listening on 127.0.0.1:%d (queue %zu)\n", port,
                loop.queue_capacity());
    std::fflush(stdout);
  }

  std::thread loop_thread([&loop] { loop.run(); });
  std::mutex fds_mutex;
  std::vector<int> fds;
  std::vector<std::thread> connections;
  while (g_stop == 0 && !service.shutdown_requested()) {
    pollfd waiter{listen_fd, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, 200);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(fds_mutex);
      fds.push_back(fd);
    }
    connections.emplace_back(handle_connection, fd, &loop);
  }
  ::close(listen_fd);

  // Drain: stop accepting, let the loop process everything queued, then
  // unblock any connection still parked in recv so its thread can exit.
  loop.close();
  loop_thread.join();
  {
    std::lock_guard<std::mutex> lock(fds_mutex);
    for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connections) t.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<util::Flags> flags;
  try {
    flags = std::make_unique<util::Flags>(argc, argv);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  Options options;
  try {
    options = read_options(*flags);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (flags->has("help")) return usage(nullptr);
  if (const auto unknown = flags->unused(); !unknown.empty()) {
    return usage(("unknown flag --" + unknown.front()).c_str());
  }

  if (options.payment_rule == "critical") {
    options.service.payment_rule = auction::PaymentRule::kCriticalValue;
  } else if (options.payment_rule == "paper") {
    options.service.payment_rule = auction::PaymentRule::kPaperNextInQueue;
  } else {
    return usage("payment-rule must be critical or paper");
  }
  if (options.port < 1 || options.port > 65535) {
    return usage("--port must be in [1, 65535]");
  }
  try {
    if (!options.faults_spec.empty()) {
      options.service.faults = sim::FaultPlan::parse(options.faults_spec);
    }
  } catch (const std::exception& e) {
    return usage(e.what());
  }

  util::set_shared_thread_count(static_cast<int>(options.threads));

  std::unique_ptr<obs::JsonLinesSink> metrics_sink;
  if (!options.metrics_path.empty()) {
    try {
      metrics_sink = std::make_unique<obs::JsonLinesSink>(options.metrics_path);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
    obs::set_sink(metrics_sink.get());
    obs::set_enabled(true);
  }

  int exit_code = 0;
  try {
    svc::AuctionService service(std::move(options.service));
    if (!options.resume_path.empty()) service.restore(options.resume_path);
    svc::ServiceLoop loop(service,
                          static_cast<std::size_t>(options.queue_capacity));

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    if (options.stdin_mode) {
      const svc::StdioResult result =
          svc::run_stdio_session(loop, std::cin, std::cout);
      service.finalize();
      if (!options.quiet) {
        std::fprintf(stderr,
                     "melody_serve: %zu requests, %zu parse errors, %zu "
                     "rejected, %zu runs this session%s\n",
                     result.requests, result.parse_errors, result.rejected,
                     service.records().size(),
                     result.shutdown ? " (shutdown op)" : "");
      }
    } else {
      exit_code = serve_tcp(loop, service, static_cast<int>(options.port),
                            options.quiet);
      service.finalize();
      if (!options.quiet) {
        const std::string note =
            service.config().checkpoint_path.empty()
                ? ""
                : " (checkpoint " + service.config().checkpoint_path + ")";
        std::fprintf(stderr, "melody_serve: stopped after %zu runs%s\n",
                     service.records().size(), note.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "melody_serve: %s\n", e.what());
    exit_code = 1;
  }

  if (metrics_sink != nullptr) {
    metrics_sink->append_registry(obs::registry());
    obs::set_sink(nullptr);
    obs::set_enabled(false);
  }
  return exit_code;
}
