// melody_serve — the online auction service (melody::svc) as a process.
//
// Serves the line-delimited JSON protocol of svc/protocol.h over TCP with a
// single nonblocking epoll event-loop thread (svc/event_loop.h) in front of
// K platform shards (--shards, svc/router.h): accept/read/write are all
// multiplexed on one thread, each shard runs its own consumer loop over its
// own bounded queue, and a full queue still answers "overloaded" with
// retry_after_ms — the backpressure contract is unchanged from the old
// thread-per-connection server, but a million registered workers no longer
// need a thread per client. --stdin serves one session over stdin/stdout so
// tests and CI pipelines need no networking.
//
// Scenario and seed flags mirror melody_sim (both parse the shared
// svc::ServiceConfig::from_flags set): with --manual-clock and a trace of
// submit_bid/tick lines, run outcomes at --shards 1 are bit-identical to
// the equivalent batch simulation. SIGINT drains the queues, executes due
// batches, writes a final composed checkpoint when --checkpoint is set
// (MLDYSVCK v2: one sub-snapshot per shard), and exits cleanly.
//
// --rolling turns the service into a continuous auction: every submit_tasks
// queues exactly one run against the standing price-ladder bid book (implies
// --incremental — bids persist across runs and can be revised with the v3
// update_bid / withdraw_bid ops; allocation stays bit-identical to a full
// re-sort).
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "svc/config.h"
#include "svc/event_loop.h"
#include "svc/router.h"
#include "svc/trace_log.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace {

using namespace melody;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  svc::ServiceConfig service;
  std::string resume_path;
  std::string metrics_path;
  std::string trace_path;
  std::int64_t port = 7117;
  std::int64_t threads = 1;
  bool stdin_mode = false;
  bool trace = false;
  bool quiet = false;
};

Options read_options(const util::Flags& flags) {
  Options o;
  o.service = svc::ServiceConfig::from_flags(flags);
  o.resume_path = flags.get_string("resume", "", "PATH",
                                   "resume from a service checkpoint");
  o.metrics_path = flags.get_string(
      "metrics-json", "", "PATH",
      "enable observability and write metric summaries to PATH at exit");
  o.trace_path = flags.get_string(
      "trace-out", "", "PATH",
      "record every wire frame to an MLDYTRC trace at PATH (atomic tmp + "
      "rename; replay with melody_replay)");
  o.trace = flags.has_switch(
      "trace", "enable request tracing (span minting + trace ids in "
               "--trace-out) without a --metrics-json sink");
  o.port = flags.get_int("port", 7117, "PORT", "TCP port to listen on");
  o.threads = flags.get_int("threads", 1, "T",
                            "worker threads for run execution (0: all "
                            "hardware threads)");
  o.stdin_mode = flags.has_switch(
      "stdin", "serve one session over stdin/stdout instead of TCP");
  o.quiet = flags.has_switch("quiet", "suppress the startup/summary lines");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_serve",
                        "Online MELODY auction service: sharded platform, "
                        "epoll front end, bounded queues, batched runs, "
                        "checkpointed state.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 1 : 0;
}

std::size_t total_session_runs(const svc::ShardedService& service) {
  std::size_t runs = 0;
  for (int s = 0; s < service.shard_count(); ++s) {
    runs += service.shard(s).service().records().size();
  }
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<util::Flags> flags;
  try {
    flags = std::make_unique<util::Flags>(argc, argv);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  Options options;
  try {
    options = read_options(*flags);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (flags->has("help")) return usage(nullptr);
  if (const auto unknown = flags->unused(); !unknown.empty()) {
    return usage(("unknown flag --" + unknown.front()).c_str());
  }
  if (options.port < 1 || options.port > 65535) {
    return usage("--port must be in [1, 65535]");
  }

  util::set_shared_thread_count(static_cast<int>(options.threads));

  std::unique_ptr<obs::JsonLinesSink> metrics_sink;
  if (!options.metrics_path.empty()) {
    try {
      metrics_sink = std::make_unique<obs::JsonLinesSink>(options.metrics_path);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
    obs::set_sink(metrics_sink.get());
    obs::set_enabled(true);
  }
  if (options.trace) obs::set_enabled(true);

  int exit_code = 0;
  try {
    svc::ShardedService service(std::move(options.service));
    if (!options.resume_path.empty()) service.restore(options.resume_path);

    std::unique_ptr<svc::TraceRecorder> recorder;
    if (!options.trace_path.empty()) {
      recorder = std::make_unique<svc::TraceRecorder>(options.trace_path);
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    if (options.stdin_mode) {
      const svc::StdioResult result =
          svc::run_stdio_session(service, std::cin, std::cout, recorder.get());
      service.finalize();
      if (recorder != nullptr) recorder->finish();
      if (!options.quiet) {
        const std::string trace_note =
            recorder == nullptr
                ? ""
                : " (trace " + options.trace_path + ", " +
                      std::to_string(recorder->frames()) + " frames)";
        std::fprintf(stderr,
                     "melody_serve: %zu requests, %zu parse errors, %zu "
                     "rejected, %zu runs this session across %d shard(s)%s%s\n",
                     result.requests, result.parse_errors, result.rejected,
                     total_session_runs(service), service.shard_count(),
                     result.shutdown ? " (shutdown op)" : "",
                     trace_note.c_str());
      }
    } else {
      svc::EventLoopOptions loop_options;
      loop_options.port = static_cast<int>(options.port);
      loop_options.should_stop = [] { return g_stop != 0; };
      loop_options.recorder = recorder.get();
      svc::EventLoop front(service, loop_options);
      front.listen();
      service.start();
      if (!options.quiet) {
        std::printf(
            "melody_serve: listening on port %d (%d shard(s), queue %lld "
            "per shard)\n",
            front.actual_port(), service.shard_count(),
            static_cast<long long>(service.config().queue_capacity));
        std::fflush(stdout);
      }
      const svc::EventLoopStats stats = front.run();
      service.finalize();
      if (recorder != nullptr) recorder->finish();
      if (!options.quiet) {
        std::string note = service.config().checkpoint_path.empty()
                               ? ""
                               : " (checkpoint " +
                                     service.config().checkpoint_path + ")";
        if (recorder != nullptr) {
          note += " (trace " + options.trace_path + ", " +
                  std::to_string(recorder->frames()) + " frames)";
        }
        // The full drain summary: every EventLoopStats tally, so operators
        // see parse errors and backpressure without scraping the stats op.
        std::fprintf(stderr,
                     "melody_serve: stopped after %llu connections, %llu "
                     "requests, %llu parse errors, %llu rejected, %zu "
                     "runs%s\n",
                     static_cast<unsigned long long>(stats.accepted),
                     static_cast<unsigned long long>(stats.requests),
                     static_cast<unsigned long long>(stats.parse_errors),
                     static_cast<unsigned long long>(stats.rejected),
                     total_session_runs(service), note.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "melody_serve: %s\n", e.what());
    exit_code = 1;
  }

  if (metrics_sink != nullptr) {
    metrics_sink->append_registry(obs::registry());
    obs::set_sink(nullptr);
    obs::set_enabled(false);
  }
  return exit_code;
}
