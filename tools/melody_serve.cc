// melody_serve — the online auction service (melody::svc) as a process.
//
// Serves the line-delimited JSON protocol of svc/protocol.h over TCP with a
// single nonblocking epoll event-loop thread (svc/event_loop.h) in front of
// K platform shards (--shards, svc/router.h): accept/read/write are all
// multiplexed on one thread, each shard runs its own consumer loop over its
// own bounded queue, and a full queue still answers "overloaded" with
// retry_after_ms — the backpressure contract is unchanged from the old
// thread-per-connection server, but a million registered workers no longer
// need a thread per client. --stdin serves one session over stdin/stdout so
// tests and CI pipelines need no networking.
//
// Scenario and seed flags mirror melody_sim (both parse the shared
// svc::ServiceConfig::from_flags set): with --manual-clock and a trace of
// submit_bid/tick lines, run outcomes at --shards 1 are bit-identical to
// the equivalent batch simulation. SIGINT drains the queues, executes due
// batches, writes a final composed checkpoint when --checkpoint is set
// (MLDYSVCK v2: one sub-snapshot per shard), and exits cleanly.
//
// --rolling turns the service into a continuous auction: every submit_tasks
// queues exactly one run against the standing price-ladder bid book (implies
// --incremental — bids persist across runs and can be revised with the v3
// update_bid / withdraw_bid ops; allocation stays bit-identical to a full
// re-sort).
//
// Cluster membership (--cluster-member): the process keeps the full
// global-K deployment config but only *activates* the shards named by
// --cluster-shards; frames for inactive shards answer a structured
// not_owner rejection, and the coordinator (melody_cluster) moves shards
// between members live with the v5 shard_export / shard_import ops. With
// --cluster-ctl the member announces itself to the coordinator after
// binding (reporting the actual port, so --port 0 works) and heartbeats
// until shutdown.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/net.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "svc/config.h"
#include "svc/event_loop.h"
#include "svc/router.h"
#include "svc/trace_log.h"
#include "util/build_info.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace {

using namespace melody;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  svc::ServiceConfig service;
  std::string resume_path;
  std::string metrics_path;
  std::string trace_path;
  std::string cluster_member;
  std::string cluster_shards = "all";
  std::string cluster_ctl;
  std::int64_t heartbeat_ms = 1000;
  std::int64_t epoch = 1;
  std::int64_t port = 7117;
  std::int64_t threads = 1;
  bool stdin_mode = false;
  bool trace = false;
  bool quiet = false;
  bool version = false;
};

Options read_options(const util::Flags& flags) {
  Options o;
  o.service = svc::ServiceConfig::from_flags(flags);
  o.resume_path = flags.get_string("resume", "", "PATH",
                                   "resume from a service checkpoint");
  o.metrics_path = flags.get_string(
      "metrics-json", "", "PATH",
      "enable observability and write metric summaries to PATH at exit");
  o.trace_path = flags.get_string(
      "trace-out", "", "PATH",
      "record every wire frame to an MLDYTRC trace at PATH (atomic tmp + "
      "rename; replay with melody_replay)");
  o.trace = flags.has_switch(
      "trace", "enable request tracing (span minting + trace ids in "
               "--trace-out) without a --metrics-json sink");
  o.port = flags.get_int("port", 7117, "PORT", "TCP port to listen on");
  o.threads = flags.get_int("threads", 1, "T",
                            "worker threads for run execution (0: all "
                            "hardware threads)");
  o.stdin_mode = flags.has_switch(
      "stdin", "serve one session over stdin/stdout instead of TCP");
  o.cluster_member = flags.get_string(
      "cluster-member", "", "NAME",
      "join a cluster as member NAME (activates cluster routing: frames "
      "for shards this process does not own answer not_owner)");
  o.cluster_shards = flags.get_string(
      "cluster-shards", "all", "SPEC",
      "global shards this member serves: \"all\", \"none\" (respawn — the "
      "coordinator re-imports), or a comma list like \"0,3,5\"");
  o.cluster_ctl = flags.get_string(
      "cluster-ctl", "", "HOST:PORT",
      "coordinator control endpoint to join and heartbeat against");
  o.heartbeat_ms = flags.get_int(
      "heartbeat-ms", 1000, "MS",
      "coordinator heartbeat cadence (0 disables)");
  o.epoch = flags.get_int("epoch", 1, "E", "initial routing epoch");
  o.quiet = flags.has_switch("quiet", "suppress the startup/summary lines");
  o.version = flags.has_switch(
      "version", "print the build sha and format versions, then exit");
  return o;
}

/// "all" / "none" / "0,3,5" -> activity mask over the K global shards.
/// Throws std::invalid_argument on a malformed spec.
std::uint64_t parse_shard_spec(const std::string& spec, const int shards,
                               std::vector<int>* active) {
  if (spec == "all") {
    for (int s = 0; s < shards; ++s) active->push_back(s);
    return shards >= 64 ? ~0ull : (1ull << shards) - 1;
  }
  if (spec == "none") return 0;
  std::uint64_t mask = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(pos, end - pos);
    std::size_t used = 0;
    int s = -1;
    try {
      s = std::stoi(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != token.size() || s < 0 || s >= shards) {
      throw std::invalid_argument("--cluster-shards: bad shard \"" + token +
                                  "\"");
    }
    mask |= 1ull << static_cast<unsigned>(s);
    active->push_back(s);
    pos = end + 1;
  }
  return mask;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_serve",
                        "Online MELODY auction service: sharded platform, "
                        "epoll front end, bounded queues, batched runs, "
                        "checkpointed state.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 1 : 0;
}

std::size_t total_session_runs(const svc::ShardedService& service) {
  std::size_t runs = 0;
  for (int s = 0; s < service.shard_count(); ++s) {
    runs += service.shard(s).service().records().size();
  }
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<util::Flags> flags;
  try {
    flags = std::make_unique<util::Flags>(argc, argv);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  Options options;
  try {
    options = read_options(*flags);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (flags->has("help")) return usage(nullptr);
  if (options.version) {
    std::puts(util::build_info_line("melody_serve").c_str());
    return 0;
  }
  if (const auto unknown = flags->unused(); !unknown.empty()) {
    return usage(("unknown flag --" + unknown.front()).c_str());
  }
  if (options.port < 0 || options.port > 65535) {
    return usage("--port must be in [0, 65535] (0: ephemeral)");
  }

  util::set_shared_thread_count(static_cast<int>(options.threads));

  std::unique_ptr<obs::JsonLinesSink> metrics_sink;
  if (!options.metrics_path.empty()) {
    try {
      metrics_sink = std::make_unique<obs::JsonLinesSink>(options.metrics_path);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
    obs::set_sink(metrics_sink.get());
    obs::set_enabled(true);
  }
  if (options.trace) obs::set_enabled(true);

  int exit_code = 0;
  try {
    svc::ShardedService service(std::move(options.service));
    if (!options.resume_path.empty()) service.restore(options.resume_path);

    std::vector<int> active_shards;
    if (!options.cluster_member.empty()) {
      const std::uint64_t mask = parse_shard_spec(
          options.cluster_shards, service.shard_count(), &active_shards);
      service.configure_cluster(mask, options.epoch);
    }

    std::unique_ptr<svc::TraceRecorder> recorder;
    if (!options.trace_path.empty()) {
      recorder = std::make_unique<svc::TraceRecorder>(options.trace_path);
      recorder->set_resume_path(options.resume_path);
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    if (options.stdin_mode) {
      const svc::StdioResult result =
          svc::run_stdio_session(service, std::cin, std::cout, recorder.get());
      service.finalize();
      if (recorder != nullptr) recorder->finish();
      if (!options.quiet) {
        const std::string trace_note =
            recorder == nullptr
                ? ""
                : " (trace " + options.trace_path + ", " +
                      std::to_string(recorder->frames()) + " frames)";
        std::fprintf(stderr,
                     "melody_serve: %zu requests, %zu parse errors, %zu "
                     "rejected, %zu runs this session across %d shard(s)%s%s\n",
                     result.requests, result.parse_errors, result.rejected,
                     total_session_runs(service), service.shard_count(),
                     result.shutdown ? " (shutdown op)" : "",
                     trace_note.c_str());
      }
    } else {
      svc::EventLoopOptions loop_options;
      loop_options.port = static_cast<int>(options.port);
      loop_options.should_stop = [] { return g_stop != 0; };
      loop_options.recorder = recorder.get();
      svc::EventLoop front(service, loop_options);
      front.listen();
      service.start();
      if (!options.quiet) {
        std::printf(
            "melody_serve: listening on port %d (%d shard(s), queue %lld "
            "per shard)\n",
            front.actual_port(), service.shard_count(),
            static_cast<long long>(service.config().queue_capacity));
        std::fflush(stdout);
      }
      // Cluster agent: join the coordinator (retrying while it comes up),
      // then heartbeat. Runs beside front.run() — a respawn join makes the
      // coordinator send shard_import RPCs back to this very process, so
      // the data plane must already be serving when the join lands.
      std::atomic<bool> agent_stop{false};
      std::thread agent;
      if (!options.cluster_member.empty() && !options.cluster_ctl.empty()) {
        const auto colon = options.cluster_ctl.rfind(':');
        if (colon == std::string::npos) {
          throw std::runtime_error("--cluster-ctl must be HOST:PORT");
        }
        const std::string ctl_host = options.cluster_ctl.substr(0, colon);
        const int ctl_port =
            std::stoi(options.cluster_ctl.substr(colon + 1));
        svc::WireObject join;
        join.set("cmd", svc::WireValue::of("join"));
        join.set("member", svc::WireValue::of(options.cluster_member));
        join.set("host", svc::WireValue::of("127.0.0.1"));
        join.set("port", svc::WireValue::of(
                             static_cast<std::int64_t>(front.actual_port())));
        join.set("pid", svc::WireValue::of(
                            static_cast<std::int64_t>(::getpid())));
        join.set("shards",
                 svc::WireValue::of(std::vector<double>(
                     active_shards.begin(), active_shards.end())));
        agent = std::thread([&agent_stop, ctl_host, ctl_port,
                             join_line = svc::format_wire(join),
                             member = options.cluster_member,
                             beat_ms = options.heartbeat_ms] {
          const auto idle = [&agent_stop](std::int64_t ms) {
            for (std::int64_t waited = 0;
                 waited < ms && !agent_stop.load(std::memory_order_relaxed);
                 waited += 50) {
              std::this_thread::sleep_for(std::chrono::milliseconds(50));
            }
          };
          cluster::LineClient ctl;
          bool joined = false;
          while (!joined && !agent_stop.load(std::memory_order_relaxed)) {
            std::string reply_line;
            if (ctl.connect(ctl_host, ctl_port) &&
                ctl.exchange(join_line, &reply_line)) {
              try {
                const svc::WireObject reply = svc::parse_wire(reply_line);
                if (reply.boolean_or("ok", false)) {
                  joined = true;
                  break;
                }
                std::fprintf(stderr, "melody_serve: cluster join: %s\n",
                             reply.text_or("error", "rejected").c_str());
              } catch (const std::exception& e) {
                std::fprintf(stderr,
                             "melody_serve: bad join reply: %s\n", e.what());
              }
            }
            idle(200);
          }
          if (beat_ms <= 0) return;
          svc::WireObject beat;
          beat.set("cmd", svc::WireValue::of("heartbeat"));
          beat.set("member", svc::WireValue::of(member));
          const std::string beat_line = svc::format_wire(beat);
          while (!agent_stop.load(std::memory_order_relaxed)) {
            std::string reply_line;
            if (!ctl.connected()) ctl.connect(ctl_host, ctl_port);
            if (ctl.connected()) ctl.exchange(beat_line, &reply_line);
            idle(beat_ms);
          }
        });
      }
      const svc::EventLoopStats stats = front.run();
      agent_stop.store(true, std::memory_order_relaxed);
      if (agent.joinable()) agent.join();
      service.finalize();
      if (recorder != nullptr) recorder->finish();
      if (!options.quiet) {
        std::string note = service.config().checkpoint_path.empty()
                               ? ""
                               : " (checkpoint " +
                                     service.config().checkpoint_path + ")";
        if (recorder != nullptr) {
          note += " (trace " + options.trace_path + ", " +
                  std::to_string(recorder->frames()) + " frames)";
        }
        // The full drain summary: every EventLoopStats tally, so operators
        // see parse errors and backpressure without scraping the stats op.
        std::fprintf(stderr,
                     "melody_serve: stopped after %llu connections, %llu "
                     "requests, %llu parse errors, %llu rejected, %zu "
                     "runs%s\n",
                     static_cast<unsigned long long>(stats.accepted),
                     static_cast<unsigned long long>(stats.requests),
                     static_cast<unsigned long long>(stats.parse_errors),
                     static_cast<unsigned long long>(stats.rejected),
                     total_session_runs(service), note.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "melody_serve: %s\n", e.what());
    exit_code = 1;
  }

  if (metrics_sink != nullptr) {
    metrics_sink->append_registry(obs::registry());
    obs::set_sink(nullptr);
    obs::set_enabled(false);
  }
  return exit_code;
}
