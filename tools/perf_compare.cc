// perf_compare — diff two BENCH_*.json perf-trajectory artifacts and gate
// on regressions. Benchmarks are matched by name; a median-wall-time ratio
// above (1 + --threshold) fails the gate.
//
// Exit codes (scripted by CI):
//   0  every common benchmark within threshold (improvements included)
//   1  at least one regression
//   2  malformed artifact, empty intersection, or --require-all violation
//
//   perf_compare <baseline.json> <candidate.json> [--threshold F]
//       [--require-all]
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "perf/compare.h"
#include "util/flags.h"

namespace {

using namespace melody;

struct Options {
  perf::CompareOptions compare;
};

Options read_options(const util::Flags& flags) {
  Options o;
  o.compare.threshold = flags.get_double(
      "threshold", o.compare.threshold, "F",
      "allowed fractional slowdown (0.25 passes ratios up to 1.25)");
  o.compare.require_all = flags.has_switch(
      "require-all",
      "fail when a baseline benchmark is missing from the candidate");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs("usage: perf_compare <baseline.json> <candidate.json> "
             "[options]\n\n",
             stderr);
  std::fputs(dummy.help("perf_compare",
                        "Compare two BENCH_*.json artifacts by median wall "
                        "time; non-zero exit past the threshold.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string baseline;
  std::string candidate;
  try {
    util::Flags flags(argc, argv);
    if (flags.has("help")) {
      usage(nullptr);
      return 0;
    }
    options = read_options(flags);
    const auto& positional = flags.positional();
    if (positional.size() != 2) {
      return usage("expected exactly two artifact paths");
    }
    baseline = positional[0];
    candidate = positional[1];
    const auto unused = flags.unused();
    if (!unused.empty()) {
      return usage(("unknown flag --" + unused.front()).c_str());
    }
  } catch (const std::exception& e) {
    return usage(e.what());
  }

  const perf::CompareStatus status = perf::compare_files(
      baseline, candidate, options.compare, std::cout);
  return static_cast<int>(status);
}
