// melody_sim — command-line driver for the long-term crowdsourcing
// simulation (the Table-4 experiment with every knob exposed).
//
// Usage:
//   melody_sim [--workers N] [--tasks M] [--runs R] [--budget B]
//              [--estimator melody|static|ml-cr|ml-ar]
//              [--reestimation-period T] [--exploration-beta BETA]
//              [--payment-rule critical|paper] [--seed S]
//              [--threads T] [--csv out.csv] [--metrics-json out.json]
//              [--quiet]
//
// Prints the per-run series (downsampled) and the summary metrics; with
// --csv, writes the full per-run records. With --metrics-json, enables the
// observability layer and writes a JSON-lines stream: one "platform/run"
// and one "auction/result" event per run, followed by the metric summaries
// (auction-phase timers, estimator update stats, thread-pool counters).
// Metrics never perturb the simulation: outputs are bit-identical with the
// flag on or off, at any --threads value.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "auction/melody_auction.h"
#include "estimators/melody_estimator.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "estimators/ml_ar_estimator.h"
#include "estimators/ml_cr_estimator.h"
#include "estimators/static_estimator.h"
#include "sim/metrics.h"
#include "sim/platform.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace melody;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: melody_sim [--workers N] [--tasks M] [--runs R]\n"
               "                  [--budget B] [--estimator melody|static|"
               "ml-cr|ml-ar]\n"
               "                  [--reestimation-period T] "
               "[--exploration-beta BETA]\n"
               "                  [--payment-rule critical|paper] [--seed S]\n"
               "                  [--threads T] [--csv out.csv]\n"
               "                  [--metrics-json out.json] [--quiet]\n"
               "  --threads T   total worker threads (0 = all hardware\n"
               "                threads, 1 = serial). Output is identical\n"
               "                for every T: per-(worker, run) RNG streams\n"
               "                make the simulation schedule-independent.\n"
               "  --metrics-json PATH\n"
               "                enable observability and write a JSON-lines\n"
               "                stream: per-run events plus auction-phase\n"
               "                timers, estimator update stats, and thread-\n"
               "                pool counters. Does not change the outputs.\n");
  return error != nullptr ? 1 : 0;
}

std::unique_ptr<estimators::QualityEstimator> make_estimator(
    const std::string& name, const sim::LongTermScenario& scenario,
    double exploration_beta) {
  if (name == "static") {
    return std::make_unique<estimators::StaticEstimator>(scenario.initial_mu,
                                                         50);
  }
  if (name == "ml-cr") {
    return std::make_unique<estimators::MlCurrentRunEstimator>(
        scenario.initial_mu);
  }
  if (name == "ml-ar") {
    return std::make_unique<estimators::MlAllRunsEstimator>(
        scenario.initial_mu);
  }
  if (name == "melody") {
    estimators::MelodyEstimatorConfig config;
    config.initial_posterior = {scenario.initial_mu, scenario.initial_sigma};
    config.reestimation_period = scenario.reestimation_period;
    config.exploration_beta = exploration_beta;
    return std::make_unique<estimators::MelodyEstimator>(config);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<util::Flags> flags;
  try {
    flags = std::make_unique<util::Flags>(argc, argv);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (flags->has("help")) return usage(nullptr);

  sim::LongTermScenario scenario;
  std::string estimator_name;
  std::string payment_rule_name;
  std::string csv_path;
  std::string metrics_path;
  double exploration_beta = 0.0;
  std::uint64_t seed = 0;
  int threads = 1;
  bool quiet = false;
  try {
    scenario.num_workers = static_cast<int>(flags->get_int("workers", 300));
    scenario.num_tasks = static_cast<int>(flags->get_int("tasks", 500));
    scenario.runs = static_cast<int>(flags->get_int("runs", 1000));
    scenario.budget = flags->get_double("budget", 800.0);
    scenario.reestimation_period =
        static_cast<int>(flags->get_int("reestimation-period", 10));
    estimator_name = flags->get_string("estimator", "melody");
    payment_rule_name = flags->get_string("payment-rule", "critical");
    exploration_beta = flags->get_double("exploration-beta", 0.0);
    seed = static_cast<std::uint64_t>(flags->get_int("seed", 2017));
    threads = static_cast<int>(flags->get_int("threads", 1));
    csv_path = flags->get_string("csv", "");
    metrics_path = flags->get_string("metrics-json", "");
    quiet = flags->get_bool("quiet", false);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (scenario.num_workers <= 0 || scenario.num_tasks <= 0 ||
      scenario.runs <= 0 || scenario.budget < 0.0) {
    return usage("workers/tasks/runs must be positive, budget non-negative");
  }
  if (const auto unknown = flags->unused(); !unknown.empty()) {
    return usage(("unknown flag --" + unknown.front()).c_str());
  }

  auto estimator = make_estimator(estimator_name, scenario, exploration_beta);
  if (estimator == nullptr) {
    return usage("estimator must be one of melody|static|ml-cr|ml-ar");
  }
  auction::PaymentRule rule;
  if (payment_rule_name == "critical") {
    rule = auction::PaymentRule::kCriticalValue;
  } else if (payment_rule_name == "paper") {
    rule = auction::PaymentRule::kPaperNextInQueue;
  } else {
    return usage("payment-rule must be critical or paper");
  }

  util::set_shared_thread_count(threads);

  std::unique_ptr<obs::JsonLinesSink> metrics_sink;
  if (!metrics_path.empty()) {
    try {
      metrics_sink = std::make_unique<obs::JsonLinesSink>(metrics_path);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
    obs::set_sink(metrics_sink.get());
    obs::set_enabled(true);
  }

  auction::MelodyAuction mechanism(rule);
  util::Rng population_rng(seed);
  sim::Platform platform(
      scenario, mechanism, *estimator,
      sim::sample_population(scenario.population_config(), population_rng),
      seed + 1);
  const auto records = platform.run_all();

  if (metrics_sink != nullptr) {
    metrics_sink->append_registry(obs::registry());
    obs::set_sink(nullptr);
    obs::set_enabled(false);
  }

  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    csv.write_row({"run", "estimated_utility", "true_utility",
                   "estimation_error", "total_payment", "assignments"});
    for (const auto& r : records) {
      csv.write_numeric_row({static_cast<double>(r.run),
                             static_cast<double>(r.estimated_utility),
                             static_cast<double>(r.true_utility),
                             r.estimation_error, r.total_payment,
                             static_cast<double>(r.assignments)});
    }
  }

  if (!quiet) {
    util::TablePrinter table({"run", "true utility", "est. error", "payment"});
    const int step = std::max(1, scenario.runs / 20);
    for (int r = step - 1; r < scenario.runs; r += step) {
      const auto& record = records[static_cast<std::size_t>(r)];
      table.add_row(std::to_string(record.run),
                    {static_cast<double>(record.true_utility),
                     record.estimation_error, record.total_payment},
                    2);
    }
    table.print(estimator_name + " / " + payment_rule_name + " payments");
  }

  const auto summary = sim::summarize(records);
  std::printf("\nsummary over %d runs (%s estimator, %d thread%s):\n",
              scenario.runs, estimator_name.c_str(),
              util::shared_thread_count(),
              util::shared_thread_count() == 1 ? "" : "s");
  std::printf("  mean true utility:      %.2f\n", summary.mean_true_utility);
  std::printf("  mean estimated utility: %.2f\n",
              summary.mean_estimated_utility);
  std::printf("  mean estimation error:  %.4f\n",
              summary.mean_estimation_error);
  std::printf("  mean total payment:     %.2f (budget %.2f)\n",
              summary.mean_total_payment, scenario.budget);
  if (!csv_path.empty()) std::printf("  per-run CSV: %s\n", csv_path.c_str());
  if (metrics_sink != nullptr) {
    std::printf("  metrics JSON-lines: %s (%zu lines)\n", metrics_path.c_str(),
                metrics_sink->lines_written());
  }
  return 0;
}
