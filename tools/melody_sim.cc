// melody_sim — command-line driver for the long-term crowdsourcing
// simulation (the Table-4 experiment with every knob exposed).
//
// Usage:
//   melody_sim [--workers N] [--tasks M] [--runs R] [--budget B]
//              [--estimator melody|static|ml-cr|ml-ar]
//              [--reestimation-period T] [--exploration-beta BETA]
//              [--payment-rule critical|paper] [--seed S]
//              [--threads T] [--csv out.csv] [--metrics-json out.json]
//              [--checkpoint PATH] [--checkpoint-every N] [--resume PATH]
//              [--faults SPEC] [--quiet]
//
// Prints the per-run series (downsampled) and the summary metrics; with
// --csv, writes the full per-run records. With --metrics-json, enables the
// observability layer and writes a JSON-lines stream: one "platform/run"
// and one "auction/result" event per run, followed by the metric summaries
// (auction-phase timers, estimator update stats, thread-pool counters).
// Metrics never perturb the simulation: outputs are bit-identical with the
// flag on or off, at any --threads value.
//
// Robustness runtime: --checkpoint writes crash-safe platform snapshots
// (every --checkpoint-every runs, plus one after the final run); --resume
// restores one and continues, bit-identical to a run that never stopped.
// --faults installs a deterministic fault plan (see sim/fault.h), e.g.
// "no-show=0.05,drop=0.1,corrupt=0.02,churn=0.1".
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "auction/melody_auction.h"
#include "estimators/factory.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/metrics.h"
#include "sim/platform.h"
#include "svc/config.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/build_info.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace melody;

struct Options {
  // The shared scenario/estimator/checkpoint half is the same validated
  // aggregate melody_serve parses (svc::ServiceConfig::from_flags), so the
  // two tools document and check identical knobs identically.
  svc::ServiceConfig service;
  std::string csv_path;
  std::string metrics_path;
  std::string resume_path;
  int threads = 1;
  bool quiet = false;
  bool version = false;
};

// All getter calls live here so the --help text is generated from the same
// calls that parse (run over an empty Flags instance by usage()).
Options read_options(const util::Flags& flags) {
  Options o;
  o.service = svc::ServiceConfig::from_flags(flags, /*serve_flags=*/false);
  o.threads = static_cast<int>(flags.get_int(
      "threads", 1, "T",
      "worker threads (0: all hardware threads, 1: serial); output is "
      "bit-identical for every T"));
  o.csv_path = flags.get_string("csv", "", "PATH",
                                "write the full per-run records as CSV");
  o.metrics_path = flags.get_string(
      "metrics-json", "", "PATH",
      "enable observability and write a JSON-lines stream (per-run events, "
      "phase timers, estimator stats); never changes the outputs");
  o.resume_path = flags.get_string(
      "resume", "", "PATH",
      "resume from a snapshot written with the same scenario flags; "
      "bit-identical to a run that never stopped");
  o.quiet = flags.get_bool("quiet", false, "", "suppress the run table");
  o.version = flags.has_switch(
      "version", "print the build sha and format versions, then exit");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_sim",
                        "Long-term crowdsourcing simulation (the Table-4 "
                        "experiment with every knob exposed).")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<util::Flags> flags;
  try {
    flags = std::make_unique<util::Flags>(argc, argv);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  Options options;
  try {
    options = read_options(*flags);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (flags->has("help")) return usage(nullptr);
  if (options.version) {
    std::printf("%s\n", util::build_info_line("melody_sim").c_str());
    return 0;
  }

  const svc::ServiceConfig& config = options.service;
  const sim::LongTermScenario& scenario = config.scenario;
  const std::string& estimator_name = config.estimator;
  const std::string& csv_path = options.csv_path;
  const std::string& metrics_path = options.metrics_path;
  const std::string& checkpoint_path = config.checkpoint_path;
  const std::string& resume_path = options.resume_path;
  const bool faults_given = flags->has("faults");
  const std::int64_t checkpoint_every = config.checkpoint_every;
  const std::uint64_t seed = config.seed;
  const int threads = options.threads;
  const bool quiet = options.quiet;
  try {
    config.validate();
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  if (const auto unknown = flags->unused(); !unknown.empty()) {
    return usage(("unknown flag --" + unknown.front()).c_str());
  }

  // Shared estimator registry: the same construction melody_serve and the
  // perf suite use, so the four call sites cannot drift apart.
  auto estimator =
      estimators::make(estimator_name, config.estimator_params());
  if (estimator == nullptr) {
    return usage(
        ("estimator must be one of " + estimators::known_kinds()).c_str());
  }
  const auction::PaymentRule rule = config.payment_rule;
  const std::string payment_rule_name =
      rule == auction::PaymentRule::kCriticalValue ? "critical" : "paper";

  util::set_shared_thread_count(threads);

  std::unique_ptr<obs::JsonLinesSink> metrics_sink;
  if (!metrics_path.empty()) {
    try {
      metrics_sink = std::make_unique<obs::JsonLinesSink>(metrics_path);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
    obs::set_sink(metrics_sink.get());
    obs::set_enabled(true);
  }

  auction::MelodyAuction mechanism(rule);
  util::Rng population_rng(seed);
  sim::Platform platform(
      scenario, mechanism, *estimator,
      sim::sample_population(scenario.population_config(), population_rng),
      seed + 1);
  if (config.incremental) platform.enable_bid_book();
  try {
    if (!resume_path.empty()) sim::load_checkpoint(platform, resume_path);
    if (faults_given) platform.set_fault_plan(config.faults);
  } catch (const std::exception& e) {
    return usage(e.what());
  }

  std::vector<sim::RunRecord> records;
  const int first_run = platform.current_run();
  if (checkpoint_path.empty()) {
    records = platform.run_all();
  } else {
    records.reserve(static_cast<std::size_t>(scenario.runs));
    while (platform.current_run() <= scenario.runs) {
      records.push_back(platform.step());
      if (checkpoint_every > 0 && records.back().run % checkpoint_every == 0) {
        sim::save_checkpoint(platform, checkpoint_path);
      }
    }
    sim::save_checkpoint(platform, checkpoint_path);
  }

  if (metrics_sink != nullptr) {
    metrics_sink->append_registry(obs::registry());
    obs::set_sink(nullptr);
    obs::set_enabled(false);
  }

  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    csv.write_row({"run", "estimated_utility", "true_utility",
                   "estimation_error", "total_payment", "assignments",
                   "no_shows", "churned_out", "scores_dropped",
                   "scores_corrupted"});
    for (const auto& r : records) {
      csv.write_numeric_row({static_cast<double>(r.run),
                             static_cast<double>(r.estimated_utility),
                             static_cast<double>(r.true_utility),
                             r.estimation_error, r.total_payment,
                             static_cast<double>(r.assignments),
                             static_cast<double>(r.no_shows),
                             static_cast<double>(r.churned_out),
                             static_cast<double>(r.scores_dropped),
                             static_cast<double>(r.scores_corrupted)});
    }
  }

  if (!quiet && !records.empty()) {
    util::TablePrinter table({"run", "true utility", "est. error", "payment"});
    const std::size_t step =
        std::max<std::size_t>(1, records.size() / 20);
    for (std::size_t k = step - 1; k < records.size(); k += step) {
      const auto& record = records[k];
      table.add_row(std::to_string(record.run),
                    {static_cast<double>(record.true_utility),
                     record.estimation_error, record.total_payment},
                    2);
    }
    table.print(estimator_name + " / " + payment_rule_name + " payments");
  }

  const auto summary = sim::summarize(records);
  std::printf("\nsummary over %zu runs (%s estimator, %d thread%s):\n",
              records.size(), estimator_name.c_str(),
              util::shared_thread_count(),
              util::shared_thread_count() == 1 ? "" : "s");
  if (first_run > 1) {
    std::printf("  resumed at run %d from %s\n", first_run,
                resume_path.c_str());
  }
  if (platform.fault_plan().active()) {
    std::printf("  fault plan: %s\n", platform.fault_plan().describe().c_str());
  }
  std::printf("  mean true utility:      %.2f\n", summary.mean_true_utility);
  std::printf("  mean estimated utility: %.2f\n",
              summary.mean_estimated_utility);
  std::printf("  mean estimation error:  %.4f\n",
              summary.mean_estimation_error);
  std::printf("  mean total payment:     %.2f (budget %.2f)\n",
              summary.mean_total_payment, scenario.budget);
  if (!csv_path.empty()) std::printf("  per-run CSV: %s\n", csv_path.c_str());
  if (!checkpoint_path.empty()) {
    std::printf("  checkpoint: %s\n", checkpoint_path.c_str());
  }
  if (metrics_sink != nullptr) {
    std::printf("  metrics JSON-lines: %s (%zu lines)\n", metrics_path.c_str(),
                metrics_sink->lines_written());
  }
  return 0;
}
