// melody_audit — run one MELODY auction over bids and tasks read from CSV
// files and print the allocation, payments, and feasibility audit. Lets a
// platform operator replay a round offline and inspect exactly why each
// worker won or lost.
//
// Usage:
//   melody_audit --workers workers.csv --tasks tasks.csv --budget B
//                [--payment-rule critical|paper]
//                [--theta-min X --theta-max X --cost-min X --cost-max X]
//                [--dual-target U] [--metrics]
//
// workers.csv: header + rows  id,cost,frequency,estimated_quality
// tasks.csv:   header + rows  id,quality_threshold
//
// With --dual-target, runs the dual form instead (footnote 6) and reports
// the minimum budget for the target utility. With --metrics, enables the
// observability layer for the replay and prints the metric summaries
// (phase timers in milliseconds, counters) after the audit.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "auction/dual_sra.h"
#include "auction/melody_auction.h"
#include "obs/metrics.h"
#include "util/csv.h"
#include "util/build_info.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace melody;

struct Options {
  std::string workers_path;
  std::string tasks_path;
  std::string rule_name;
  auction::AuctionConfig config;
  std::int64_t dual_target = -1;
  bool with_metrics = false;
  bool version = false;
};

// All getter calls live here so the --help text is generated from the same
// calls that parse (run over an empty Flags instance by usage()).
Options read_options(const util::Flags& flags) {
  Options o;
  o.workers_path = flags.get_string(
      "workers", "", "CSV",
      "required; rows: id,cost,frequency,estimated_quality");
  o.tasks_path = flags.get_string("tasks", "", "CSV",
                                  "required; rows: id,quality_threshold");
  o.config.budget = flags.get_double("budget", 0.0, "B", "auction budget");
  o.config.theta_min = flags.get_double("theta-min", 0.0, "X",
                                        "qualification: minimum quality");
  o.config.theta_max = flags.get_double("theta-max", 1e18, "X",
                                        "qualification: maximum quality");
  o.config.cost_min =
      flags.get_double("cost-min", 0.0, "X", "qualification: minimum cost");
  o.config.cost_max =
      flags.get_double("cost-max", 1e18, "X", "qualification: maximum cost");
  o.rule_name = flags.get_string("payment-rule", "critical", "RULE",
                                 "payment rule: critical|paper");
  o.dual_target = flags.get_int(
      "dual-target", -1, "U",
      "run the dual form (footnote 6): report the minimum budget that "
      "reaches target utility U");
  o.with_metrics = flags.get_bool(
      "metrics", false, "",
      "print observability summaries (phase timers in ms, counters) "
      "collected during the replay");
  o.version = flags.has_switch(
      "version", "print the build sha and format versions, then exit");
  return o;
}

int usage(const char* error) {
  util::Flags dummy;
  read_options(dummy);
  std::fputs(dummy.help("melody_audit",
                        "Replay one MELODY auction from CSV bids/tasks and "
                        "audit the allocation.")
                 .c_str(),
             stderr);
  if (error != nullptr) std::fprintf(stderr, "\nerror: %s\n", error);
  return error != nullptr ? 1 : 0;
}

double parse_double(const std::string& cell, const char* what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(cell, &consumed);
    if (consumed != cell.size()) throw std::invalid_argument(cell);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad ") + what + " value '" + cell +
                             "'");
  }
}

std::vector<auction::WorkerProfile> load_workers(const std::string& path) {
  const util::CsvRows rows = util::read_csv_file(path);
  if (rows.size() < 2) throw std::runtime_error("workers.csv: no data rows");
  std::vector<auction::WorkerProfile> workers;
  for (std::size_t r = 1; r < rows.size(); ++r) {  // skip header
    const auto& row = rows[r];
    if (row.size() != 4) {
      throw std::runtime_error("workers.csv: expected 4 columns per row");
    }
    auction::WorkerProfile w;
    w.id = static_cast<auction::WorkerId>(parse_double(row[0], "worker id"));
    w.bid.cost = parse_double(row[1], "cost");
    w.bid.frequency = static_cast<int>(parse_double(row[2], "frequency"));
    w.estimated_quality = parse_double(row[3], "estimated_quality");
    workers.push_back(w);
  }
  return workers;
}

std::vector<auction::Task> load_tasks(const std::string& path) {
  const util::CsvRows rows = util::read_csv_file(path);
  if (rows.size() < 2) throw std::runtime_error("tasks.csv: no data rows");
  std::vector<auction::Task> tasks;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 2) {
      throw std::runtime_error("tasks.csv: expected 2 columns per row");
    }
    tasks.push_back(
        {static_cast<auction::TaskId>(parse_double(row[0], "task id")),
         parse_double(row[1], "quality_threshold")});
  }
  return tasks;
}

void print_allocation(const auction::AllocationResult& result,
                      const std::vector<auction::WorkerProfile>& workers,
                      const std::vector<auction::Task>& tasks,
                      const auction::AuctionConfig& config) {
  util::TablePrinter assignments({"task", "worker", "payment", "bid cost"});
  for (const auto& a : result.assignments) {
    double cost = 0.0;
    for (const auto& w : workers) {
      if (w.id == a.worker) cost = w.bid.cost;
    }
    assignments.add_row({std::to_string(a.task), std::to_string(a.worker),
                         util::TablePrinter::format(a.payment, 4),
                         util::TablePrinter::format(cost, 4)});
  }
  assignments.print("Assignments");
  std::printf("\nselected tasks: %zu of %zu | total payment: %.4f\n",
              result.selected_tasks.size(), tasks.size(),
              result.total_payment());

  const std::string budget_check =
      auction::check_budget_feasibility(result, config);
  const std::string frequency_check =
      auction::check_frequency_feasibility(result, workers);
  const std::string satisfaction_check =
      auction::check_task_satisfaction(result, workers, tasks);
  std::printf("audit: budget %s | frequency %s | satisfaction %s\n",
              budget_check.empty() ? "OK" : budget_check.c_str(),
              frequency_check.empty() ? "OK" : frequency_check.c_str(),
              satisfaction_check.empty() ? "OK" : satisfaction_check.c_str());
}

void print_metrics_summary() {
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  if (!snapshot.summaries.empty()) {
    util::TablePrinter timers({"timer", "count", "mean", "p50", "max"});
    for (const auto& s : snapshot.summaries) {
      if (!s.is_timer) continue;
      // Phase timers record seconds; milliseconds read better at replay
      // scale (one auction ~ microseconds-to-milliseconds per phase).
      timers.add_row({s.name, std::to_string(s.stats.count),
                      util::TablePrinter::format(s.stats.mean * 1e3, 4),
                      util::TablePrinter::format(s.stats.p50 * 1e3, 4),
                      util::TablePrinter::format(s.stats.max * 1e3, 4)});
    }
    timers.print("Timers (ms)");
    util::TablePrinter values({"summary", "count", "mean", "p50", "max"});
    bool any_value = false;
    for (const auto& s : snapshot.summaries) {
      if (s.is_timer) continue;
      any_value = true;
      values.add_row({s.name, std::to_string(s.stats.count),
                      util::TablePrinter::format(s.stats.mean, 4),
                      util::TablePrinter::format(s.stats.p50, 4),
                      util::TablePrinter::format(s.stats.max, 4)});
    }
    if (any_value) values.print("Summaries");
  }
  if (!snapshot.counters.empty()) {
    util::TablePrinter counters({"counter", "value"});
    for (const auto& c : snapshot.counters) {
      counters.add_row({c.name, std::to_string(c.value)});
    }
    counters.print("Counters");
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    const Options options = read_options(flags);
    if (flags.has("help")) return usage(nullptr);
    if (options.version) {
      std::printf("%s\n", util::build_info_line("melody_audit").c_str());
      return 0;
    }
    const std::string& workers_path = options.workers_path;
    const std::string& tasks_path = options.tasks_path;
    if (workers_path.empty() || tasks_path.empty()) {
      return usage("--workers and --tasks are required");
    }

    const auction::AuctionConfig& config = options.config;
    auction::PaymentRule rule;
    if (options.rule_name == "critical") {
      rule = auction::PaymentRule::kCriticalValue;
    } else if (options.rule_name == "paper") {
      rule = auction::PaymentRule::kPaperNextInQueue;
    } else {
      return usage("payment-rule must be critical or paper");
    }
    const std::int64_t dual_target = options.dual_target;
    const bool with_metrics = options.with_metrics;
    if (const auto unknown = flags.unused(); !unknown.empty()) {
      return usage(("unknown flag --" + unknown.front()).c_str());
    }

    const auto workers = load_workers(workers_path);
    const auto tasks = load_tasks(tasks_path);
    if (with_metrics) obs::set_enabled(true);

    if (dual_target >= 0) {
      const auto dual = auction::run_dual_sra(
          workers, tasks, config, static_cast<std::size_t>(dual_target), rule);
      std::printf("dual SRA: target %lld %s; required budget %.4f\n",
                  static_cast<long long>(dual_target),
                  dual.target_met ? "met" : "NOT met", dual.required_budget);
      print_allocation(dual.allocation, workers, tasks, config);
      if (with_metrics) print_metrics_summary();
      return 0;
    }

    auction::MelodyAuction auction(rule);
    print_allocation(auction.run({workers, tasks, config}), workers, tasks,
                     config);
    if (with_metrics) print_metrics_summary();
    return 0;
  } catch (const std::exception& e) {
    return usage(e.what());
  }
}
