#include "core/multi_type.h"

#include <stdexcept>

namespace melody::core {

void MultiTypeMarket::add_type(const std::string& type) {
  add_type(type, defaults_);
}

void MultiTypeMarket::add_type(const std::string& type,
                               const MelodyOptions& options) {
  markets_.try_emplace(type, options);
}

bool MultiTypeMarket::has_type(const std::string& type) const {
  return markets_.count(type) > 0;
}

std::vector<std::string> MultiTypeMarket::types() const {
  std::vector<std::string> names;
  names.reserve(markets_.size());
  for (const auto& [name, market] : markets_) names.push_back(name);
  return names;
}

Melody& MultiTypeMarket::market(const std::string& type) {
  const auto it = markets_.find(type);
  if (it == markets_.end()) {
    throw std::out_of_range("MultiTypeMarket: unknown type " + type);
  }
  return it->second;
}

const Melody& MultiTypeMarket::market(const std::string& type) const {
  const auto it = markets_.find(type);
  if (it == markets_.end()) {
    throw std::out_of_range("MultiTypeMarket: unknown type " + type);
  }
  return it->second;
}

int MultiTypeMarket::end_run() {
  for (auto& [name, market] : markets_) market.end_run();
  return ++completed_runs_;
}

std::map<std::string, double> MultiTypeMarket::quality_profile(
    auction::WorkerId id) const {
  std::map<std::string, double> profile;
  for (const auto& [name, market] : markets_) {
    if (market.is_registered(id)) {
      profile[name] = market.estimated_quality(id);
    }
  }
  return profile;
}

}  // namespace melody::core
