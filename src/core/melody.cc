#include "core/melody.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <sstream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/sink.h"

namespace melody::core {

Melody::Melody(MelodyOptions options)
    : options_(std::move(options)), tracker_(options_.tracker) {}

void Melody::register_worker(auction::WorkerId id) {
  if (is_registered(id)) return;
  tracker_.register_worker(id);
  registered_.push_back(id);
}

bool Melody::is_registered(auction::WorkerId id) const {
  return std::find(registered_.begin(), registered_.end(), id) !=
         registered_.end();
}

double Melody::estimated_quality(auction::WorkerId id) const {
  return tracker_.estimate(id);
}

auction::AllocationResult Melody::run_auction(
    const std::vector<BidSubmission>& bids,
    const std::vector<auction::Task>& tasks, double budget) {
  auction::AuctionConfig config;
  config.budget = budget;
  config.theta_min = options_.theta_min;
  config.theta_max = options_.theta_max;
  config.cost_min = options_.cost_min;
  config.cost_max = options_.cost_max;

  std::vector<auction::WorkerProfile> profiles;
  profiles.reserve(bids.size());
  for (const BidSubmission& b : bids) {
    register_worker(b.worker);
    profiles.push_back({b.worker, b.bid, tracker_.estimate(b.worker)});
  }
  // Context entry point with the process-wide sink, so facade users get
  // auction events without plumbing a sink through MelodyOptions.
  return auction_.run(
      auction::AuctionContext{profiles, tasks, config, obs::sink()});
}

void Melody::submit_scores(auction::WorkerId id, const lds::ScoreSet& scores) {
  if (!is_registered(id)) {
    throw std::invalid_argument("submit_scores: unregistered worker");
  }
  lds::ScoreSet& pending = pending_scores_[id];
  pending.count += scores.count;
  pending.sum += scores.sum;
  pending.sum_squares += scores.sum_squares;
}

int Melody::end_run() {
  for (auction::WorkerId id : registered_) {
    const auto it = pending_scores_.find(id);
    tracker_.observe(id, it == pending_scores_.end() ? lds::ScoreSet{}
                                                     : it->second);
  }
  pending_scores_.clear();
  return ++completed_runs_;
}

namespace {
constexpr char kPlatformHeader[] = "MELODY_PLATFORM v1";
}

void Melody::save(std::ostream& out) const {
  if (!pending_scores_.empty()) {
    throw std::runtime_error(
        "Melody::save: scores pending in an open run; call end_run() first");
  }
  out << kPlatformHeader << '\n'
      << completed_runs_ << ' ' << registered_.size() << '\n';
  for (auction::WorkerId id : registered_) out << id << ' ';
  out << '\n';
  tracker_.save(out);
  if (!out) throw std::runtime_error("Melody::save: write failed");
}

void Melody::load(std::istream& in) {
  std::string header;
  std::getline(in, header);
  if (header != kPlatformHeader) {
    throw std::runtime_error("Melody::load: bad snapshot header");
  }
  int completed = 0;
  std::size_t registered_count = 0;
  if (!(in >> completed >> registered_count) || completed < 0) {
    throw std::runtime_error("Melody::load: malformed counters");
  }
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  std::string registry_line;
  std::getline(in, registry_line);
  std::istringstream registry(registry_line);
  std::vector<auction::WorkerId> registered(registered_count);
  for (auction::WorkerId& id : registered) {
    if (!(registry >> id)) {
      throw std::runtime_error("Melody::load: truncated worker registry");
    }
  }
  tracker_.load(in);
  registered_ = std::move(registered);
  completed_runs_ = completed;
  pending_scores_.clear();
}

}  // namespace melody::core
