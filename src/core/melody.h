// Public facade of the MELODY library: one object that owns the Algorithm-1
// auction and the Algorithm-3 quality tracker and exposes the full
// per-run workflow of Fig. 2 to an embedding application.
//
// Typical use (see examples/quickstart.cc):
//
//   melody::core::Melody platform(options);
//   platform.register_worker(42);
//   auto outcome = platform.run_auction(bids, tasks, budget);
//   ... workers complete tasks, requester scores answers ...
//   platform.submit_scores(42, scores);
//   platform.end_run();
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "auction/melody_auction.h"
#include "auction/types.h"
#include "estimators/melody_estimator.h"

namespace melody::core {

struct MelodyOptions {
  /// Qualification intervals applied in every run (Algorithm 1, line 1).
  double theta_min = 1.0;
  double theta_max = 10.0;
  double cost_min = 0.01;
  double cost_max = 100.0;
  /// Quality-tracker configuration (initial posterior, EM period T, ...).
  estimators::MelodyEstimatorConfig tracker;
};

/// A worker's bid submission for one run.
struct BidSubmission {
  auction::WorkerId worker = -1;
  auction::Bid bid;
};

/// The long-lived MELODY platform: persists worker quality state across
/// runs; each run is one reverse auction followed by score submission.
class Melody {
 public:
  explicit Melody(MelodyOptions options = {});

  /// Introduce a worker (idempotent). Newcomers start from the preset
  /// initial posterior (Algorithm 3, lines 1-2).
  void register_worker(auction::WorkerId id);

  bool is_registered(auction::WorkerId id) const;

  /// The platform's current quality estimate mu_i for the next auction.
  double estimated_quality(auction::WorkerId id) const;

  /// Run the Algorithm-1 auction over the submitted bids. Unregistered
  /// bidders are registered on the fly (newcomers).
  auction::AllocationResult run_auction(
      const std::vector<BidSubmission>& bids,
      const std::vector<auction::Task>& tasks, double budget);

  /// Record the scores worker `id` earned in the current run. May be called
  /// at most once per worker per run; accumulates into the pending run.
  void submit_scores(auction::WorkerId id, const lds::ScoreSet& scores);

  /// Close the current run: every registered worker's posterior is updated
  /// (with an empty score set when no scores were submitted), advancing the
  /// quality chain by one step. Returns the number of the run just closed.
  int end_run();

  int completed_runs() const noexcept { return completed_runs_; }

  /// Access the underlying tracker (posterior/params inspection).
  const estimators::MelodyEstimator& tracker() const noexcept { return tracker_; }

  /// Persist the platform's learned state — run counter, worker registry,
  /// and the full tracker snapshot — so a restarted process resumes where
  /// this one stopped. Options are not saved: construct the new platform
  /// with the same MelodyOptions before load(). Scores pending in an open
  /// run are not part of a snapshot; call end_run() first.
  /// Throws std::runtime_error on I/O failure, malformed input, or a
  /// snapshot taken mid-run.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  MelodyOptions options_;
  auction::MelodyAuction auction_;
  estimators::MelodyEstimator tracker_;
  std::vector<auction::WorkerId> registered_;
  std::unordered_map<auction::WorkerId, lds::ScoreSet> pending_scores_;
  int completed_runs_ = 0;
};

}  // namespace melody::core
