#include "core/bellman.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace melody::core {

double QualityGrid::value(std::size_t index) const {
  if (points < 2) return quality_min;
  return quality_min + (quality_max - quality_min) *
                           static_cast<double>(index) /
                           static_cast<double>(points - 1);
}

double QualityGrid::step() const {
  if (points < 2) return 0.0;
  return (quality_max - quality_min) / static_cast<double>(points - 1);
}

std::vector<double> value_iteration(const BellmanConfig& config,
                                    const StageModel& model) {
  if (!model.assignment_probability || !model.utility_when_assigned) {
    throw std::invalid_argument("value_iteration: model callbacks required");
  }
  const std::size_t n = config.grid.points;
  const double h = config.grid.step();

  // Precompute the transition matrix row-by-row: P[s][s'] is the
  // probability mass of moving from grid state s to s', with boundary mass
  // folded into the edge states (the quality range is clamped, as in the
  // score model).
  std::vector<std::vector<double>> transition(n, std::vector<double>(n, 0.0));
  const double var =
      config.transition_stddev * config.transition_stddev;
  for (std::size_t s = 0; s < n; ++s) {
    const double center = config.transition_a * config.grid.value(s);
    double total = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double d = config.grid.value(t) - center;
      transition[s][t] = std::exp(-d * d / (2.0 * var));
      total += transition[s][t];
    }
    for (std::size_t t = 0; t < n; ++t) transition[s][t] /= total;
  }
  (void)h;

  std::vector<double> value(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < config.iterations; ++iter) {
    for (std::size_t s = 0; s < n; ++s) {
      const double mu = config.grid.value(s);
      const double p = model.assignment_probability(mu);
      const double u = model.utility_when_assigned(mu);
      double expectation = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        expectation += transition[s][t] * value[t];
      }
      next[s] = p * (u + expectation) + (1.0 - p) * value[s];
    }
    value.swap(next);
  }
  return value;
}

}  // namespace melody::core
