// Value iteration over a worker's expected long-term utility (the Bellman
// recursion of Theorem 5): V(mu) = u(mu) + E_{mu'}[V(mu')], where mu' is
// drawn from the quality transition kernel. Used to demonstrate long-term
// truthfulness numerically: V under truthful per-run utilities dominates V
// under any untruthful per-run utilities.
#pragma once

#include <functional>
#include <vector>

namespace melody::core {

/// Discretization of worker quality over [quality_min, quality_max].
struct QualityGrid {
  double quality_min = 1.0;
  double quality_max = 10.0;
  std::size_t points = 101;

  double value(std::size_t index) const;
  double step() const;
};

struct BellmanConfig {
  QualityGrid grid;
  /// Number of synchronous value-iteration sweeps (the paper initializes
  /// all values at zero and updates "for given times").
  int iterations = 100;
  /// Gaussian quality transition kernel N(a*mu, sigma^2), matching the LDS.
  double transition_a = 1.0;
  double transition_stddev = 0.5;
};

/// Per-state inputs: the probability of being assigned tasks at quality mu
/// and the expected per-run utility when assigned.
struct StageModel {
  std::function<double(double /*mu*/)> assignment_probability;
  std::function<double(double /*mu*/)> utility_when_assigned;
};

/// Run value iteration; returns V(mu) on the grid after `iterations`
/// sweeps of Eq. (20):
///   V_{k+1}(mu) = p(mu) * (u(mu) + E[V_k(mu')]) + (1 - p(mu)) * V_k(mu).
std::vector<double> value_iteration(const BellmanConfig& config,
                                    const StageModel& model);

}  // namespace melody::core
