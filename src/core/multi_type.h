// Multi-type crowdsourcing market (Section 3.1): the paper assumes
// homogeneous tasks and notes the model "can be easily extended to the
// scenario with multiple types of tasks by designing the incentive
// mechanism for each individual type respectively". This wrapper does
// exactly that: one independent MELODY market — auction plus quality
// tracker — per task type, with a synchronized run clock. A worker's
// proofreading skill says nothing about his audio-transcription skill, so
// per-type tracking is the correct granularity.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/melody.h"

namespace melody::core {

class MultiTypeMarket {
 public:
  /// `defaults` configures every market created without explicit options.
  explicit MultiTypeMarket(MelodyOptions defaults = {})
      : defaults_(std::move(defaults)) {}

  /// Create a market for a new task type (idempotent; existing markets
  /// keep their state and options).
  void add_type(const std::string& type);
  void add_type(const std::string& type, const MelodyOptions& options);

  bool has_type(const std::string& type) const;
  std::vector<std::string> types() const;

  /// Access one type's market; throws std::out_of_range for unknown types.
  Melody& market(const std::string& type);
  const Melody& market(const std::string& type) const;

  /// Close the current run across every type at once (markets added later
  /// join at the shared clock's current value). Returns the run number.
  int end_run();

  int completed_runs() const noexcept { return completed_runs_; }

  /// A worker's estimated quality per type (only for types where he is
  /// registered).
  std::map<std::string, double> quality_profile(auction::WorkerId id) const;

 private:
  MelodyOptions defaults_;
  std::map<std::string, Melody> markets_;
  int completed_runs_ = 0;
};

}  // namespace melody::core
