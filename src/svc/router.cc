#include "svc/router.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/trace_log.h"
#include "util/binio.h"

namespace melody::svc {

namespace binio = util::binio;

namespace {

constexpr char kMagic[8] = {'M', 'L', 'D', 'Y', 'S', 'V', 'C', 'K'};
constexpr std::uint32_t kComposedVersion = 2;

// Response fields that sum across shards in a merged broadcast reply
// (counts and budgets of independent sub-markets).
bool additive_field(std::string_view key) noexcept {
  return key == "runs_executed" || key == "runs_total" ||
         key == "runs_this_session" || key == "pending_bids" ||
         key == "accrued_budget" || key == "workers" || key == "sessions" ||
         key == "requests" || key == "overload_rejects" ||
         key == "queue_depth" || key == "min_bids" || key == "budget_target";
}

// Run cursors take the furthest shard (union-platform progress).
bool maximal_field(std::string_view key) noexcept {
  return key == "run" || key == "next_run";
}

std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

int route_worker(const std::string& worker,
                 const std::vector<int>& worker_offsets,
                 const int num_workers) {
  const int k = static_cast<int>(worker_offsets.size()) - 1;
  if (k == 1) return 0;
  // Scenario names "w<g>" with g inside the initial population map to the
  // contiguous range owner (matches the planner's split and the per-shard
  // worker_name_offset bindings).
  if (worker.size() > 1 && worker.front() == 'w') {
    bool digits = true;
    long g = 0;
    for (std::size_t i = 1; i < worker.size(); ++i) {
      const char c = worker[i];
      if (c < '0' || c > '9' || g > num_workers) {
        digits = false;
        break;
      }
      g = g * 10 + (c - '0');
    }
    if (digits && g < num_workers) {
      const auto it = std::upper_bound(worker_offsets.begin(),
                                       worker_offsets.end() - 1,
                                       static_cast<int>(g));
      return static_cast<int>(it - worker_offsets.begin()) - 1;
    }
  }
  // Newcomers and foreign names: deterministic hash affinity — the same
  // name always lands on the same shard, so its session state sticks.
  return static_cast<int>(fnv1a(worker) % static_cast<std::uint64_t>(k));
}

struct ShardedService::FanOut {
  std::mutex mutex;
  std::vector<Response> parts;
  std::vector<int> shard_indices;  // global shard producing each part
  int remaining = 0;
  Op op = Op::kHello;
  std::int64_t id = 0;
  int global_shards = 1;
  bool rehome_all = false;  // cluster members re-home every broadcast op
  std::function<void(const Response&)> done;
  std::function<void(Response&)> post;  // final router-level adjustment
};

struct ShardedService::CheckpointJob {
  std::vector<std::string> blobs;
  std::vector<int> runs;  // per-shard last completed run index
  std::atomic<int> remaining{0};
  std::atomic<bool> failed{false};
  std::string path;
  std::int64_t id = 0;
  std::function<void(const Response&)> done;
};

ShardedService::ShardedService(ServiceConfig config)
    : config_(std::move(config)) {
  const std::vector<ShardPlan> plans = plan_shards(config_);
  shards_.reserve(plans.size());
  worker_offsets_.reserve(plans.size() + 1);
  for (const ShardPlan& plan : plans) {
    worker_offsets_.push_back(plan.worker_offset);
    shards_.push_back(std::make_unique<PlatformShard>(plan));
    shards_.back()->set_run_sink(
        [this](int s, const sim::RunRecord& r) { on_run(s, r); });
  }
  worker_offsets_.push_back(config_.scenario.num_workers);
}

ShardedService::~ShardedService() {
  begin_shutdown();
  join();
}

void ShardedService::restore(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("svc: cannot open checkpoint: " + path);
  load_state(in);
}

void ShardedService::start() {
  if (started_) return;
  started_ = true;
  for (auto& shard : shards_) shard->start();
}

int ShardedService::route(const std::string& worker) const {
  return route_worker(worker, worker_offsets_, config_.scenario.num_workers);
}

void ShardedService::configure_cluster(const std::uint64_t active_mask,
                                       const std::int64_t epoch) {
  if (shard_count() > 64) {
    throw std::invalid_argument(
        "svc: cluster mode supports at most 64 shards (activity mask width)");
  }
  cluster_mode_ = true;
  active_mask_.store(active_mask, std::memory_order_release);
  epoch_.store(epoch, std::memory_order_release);
}

void ShardedService::set_shard_active(const int s, const bool active) noexcept {
  const std::uint64_t bit = 1ull << static_cast<unsigned>(s);
  if (active) {
    active_mask_.fetch_or(bit, std::memory_order_acq_rel);
  } else {
    active_mask_.fetch_and(~bit, std::memory_order_acq_rel);
  }
}

std::vector<int> ShardedService::broadcast_targets() const {
  std::vector<int> targets;
  targets.reserve(static_cast<std::size_t>(shard_count()));
  for (int s = 0; s < shard_count(); ++s) {
    if (!cluster_mode_ || shard_active(s)) targets.push_back(s);
  }
  return targets;
}

PushResult ShardedService::submit(const Request& request,
                                  std::function<void(const Response&)> done,
                                  const obs::TraceContext& trace) {
  switch (request.op) {
    case Op::kSubmitBid:
    case Op::kUpdateBid:
    case Op::kWithdrawBid:
    case Op::kPostScores:
    case Op::kQueryWorker: {
      const int s = route(request.worker);
      if (cluster_mode_ && !shard_active(s)) {
        if (obs::enabled()) obs::registry().counter("cluster/not_owner").add();
        done(Response::not_owner(request.id, s, routing_epoch()));
        return PushResult::kOk;
      }
      return shards_[static_cast<std::size_t>(s)]->submit(
          request, std::move(done), trace);
    }
    case Op::kQueryRun: {
      if (request.shard < 0 || request.shard >= shard_count()) {
        done(Response::failure(request.id, "query_run: shard out of range"));
        return PushResult::kOk;
      }
      if (cluster_mode_ && !shard_active(request.shard)) {
        if (obs::enabled()) obs::registry().counter("cluster/not_owner").add();
        done(Response::not_owner(request.id, request.shard, routing_epoch()));
        return PushResult::kOk;
      }
      return shards_[static_cast<std::size_t>(request.shard)]->submit(
          request, std::move(done), trace);
    }
    case Op::kCheckpoint:
      return submit_checkpoint(request, std::move(done), trace);
    case Op::kShardExport:
      return submit_shard_export(request, std::move(done), trace);
    case Op::kShardImport:
      return submit_shard_import(request, std::move(done), trace);
    case Op::kShutdown:
      shutdown_.store(true, std::memory_order_relaxed);
      return broadcast(request, std::move(done), trace);
    default:
      return broadcast(request, std::move(done), trace);
  }
}

int ShardedService::routing_decision(const Request& request) const {
  switch (request.op) {
    case Op::kSubmitBid:
    case Op::kUpdateBid:
    case Op::kWithdrawBid:
    case Op::kPostScores:
    case Op::kQueryWorker:
      return route(request.worker);
    case Op::kQueryRun:
      if (request.shard < 0 || request.shard >= shard_count()) {
        return kShardNone;  // answered inline by submit()
      }
      return request.shard;
    case Op::kShardExport:
    case Op::kShardImport:
      if (request.shard < 0 || request.shard >= shard_count()) {
        return kShardNone;  // answered inline by submit()
      }
      return request.shard;
    default:
      return kShardBroadcast;  // fan-out ops, incl. checkpoint tasks
  }
}

Response ShardedService::rejection(PushResult result,
                                   const Request& request) const {
  return shards_.front()->rejection(result, request);
}

PushResult ShardedService::broadcast(
    const Request& request, std::function<void(const Response&)> done,
    const obs::TraceContext& trace) {
  const int k = shard_count();
  const std::vector<int> targets = broadcast_targets();
  if (targets.empty()) {
    // A cluster member that owns no shards at the moment (mid-migration,
    // or freshly respawned) has nothing to fan out to.
    done(Response::failure(request.id, "no active shards"));
    return PushResult::kOk;
  }
  // All-or-nothing admission. The front end is the single regular
  // producer, so a free slot observed on every queue cannot be taken
  // before we enqueue; the parts then go in with push_force (checkpoint
  // tasks forced in concurrently must not fail a pre-checked broadcast).
  for (const int s : targets) {
    const auto& shard = shards_[static_cast<std::size_t>(s)];
    if (shard->loop().queue_depth() >= shard->loop().queue_capacity()) {
      shard->service().note_overload_reject();
      return PushResult::kFull;
    }
  }
  auto fan = std::make_shared<FanOut>();
  fan->parts.resize(targets.size());
  fan->shard_indices = targets;
  fan->remaining = static_cast<int>(targets.size());
  fan->op = request.op;
  fan->id = request.id;
  fan->global_shards = k;
  fan->rehome_all = cluster_mode_;
  fan->done = std::move(done);
  if (request.op == Op::kHello) {
    const bool cluster = cluster_mode_;
    const std::int64_t epoch = routing_epoch();
    fan->post = [k, cluster, epoch](Response& merged) {
      merged.fields.set("shards", WireValue::of(static_cast<std::int64_t>(k)));
      // Cluster members advertise their routing epoch so clients can
      // detect a stale table right from the handshake.
      if (cluster) merged.fields.set("epoch", WireValue::of(epoch));
    };
  } else if (request.op == Op::kShutdown &&
             !config_.checkpoint_path.empty()) {
    // The composed v2 file is written by finalize() once the shards have
    // drained; the reply advertises it like the unsharded service does.
    fan->post = [path = config_.checkpoint_path](Response& merged) {
      merged.fields.set("checkpoint", WireValue::of(path));
    };
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const int s = targets[i];
    Request part = request;
    if (request.op == Op::kSubmitTasks && k > 1) {
      const auto lo = static_cast<std::int64_t>(worker_offsets_[s]);
      const auto hi = static_cast<std::int64_t>(worker_offsets_[s + 1]);
      const auto n = static_cast<std::int64_t>(config_.scenario.num_workers);
      part.budget = request.budget * (static_cast<double>(hi - lo) /
                                      static_cast<double>(n));
      // Telescoping integer split: the per-shard counts sum to the total.
      part.task_count = static_cast<int>(request.task_count * hi / n -
                                         request.task_count * lo / n);
    }
    auto deliver = [fan, i](const Response& response) {
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(fan->mutex);
        fan->parts[i] = response;
        last = --fan->remaining == 0;
      }
      if (!last) return;
      Response merged = merge_shard_parts(fan->op, fan->id, fan->parts,
                                          fan->shard_indices,
                                          fan->global_shards,
                                          fan->rehome_all);
      if (fan->post) fan->post(merged);
      if (fan->done) fan->done(merged);
    };
    // Forced enqueue of the pre-checked part: a task that applies the
    // request on the consumer thread (ServiceLoop has no forced request
    // path, and push_force must not fail a broadcast the capacity check
    // above already admitted).
    const PushResult pushed =
        shards_[static_cast<std::size_t>(s)]->submit_task(
            [part, deliver, trace](AuctionService& service) mutable {
              // Install the frame's root context so every shard's apply
              // span parents on the same inbound frame.
              obs::ScopedTraceContext install(trace);
              deliver(service.apply(part));
            });
    if (pushed != PushResult::kOk) {
      deliver(Response::failure(request.id, "shutting down"));
    }
  }
  return PushResult::kOk;
}

PushResult ShardedService::submit_checkpoint(
    const Request& request, std::function<void(const Response&)> done,
    const obs::TraceContext& trace) {
  const std::string path =
      request.path.empty() ? config_.checkpoint_path : request.path;
  if (path.empty()) {
    done(Response::failure(
        request.id, "checkpoint: no path in the request and none configured"));
    return PushResult::kOk;
  }
  if (checkpoint_in_flight_.exchange(true)) {
    done(Response::failure(request.id, "checkpoint already in progress"));
    return PushResult::kOk;
  }
  // Cluster members snapshot the shards they own; a single-process
  // deployment snapshots all K (identical to the pre-cluster behavior).
  const std::vector<int> targets = broadcast_targets();
  if (targets.empty()) {
    checkpoint_in_flight_.store(false, std::memory_order_relaxed);
    done(Response::failure(request.id, "no active shards"));
    return PushResult::kOk;
  }
  auto job = std::make_shared<CheckpointJob>();
  job->blobs.resize(targets.size());
  job->runs.resize(targets.size(), 0);
  job->remaining.store(static_cast<int>(targets.size()),
                       std::memory_order_relaxed);
  job->path = path;
  job->id = request.id;
  job->done = std::move(done);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const PushResult pushed =
        shards_[static_cast<std::size_t>(targets[i])]->submit_task(
            [this, job, i, trace](AuctionService& service) {
              obs::ScopedTraceContext install(trace);
              service.note_control_request();
              std::ostringstream blob;
              service.save_state(blob);
              job->blobs[i] = blob.str();
              job->runs[i] = service.platform().current_run() - 1;
              if (job->remaining.fetch_sub(1) == 1) complete_checkpoint(job);
            });
    if (pushed != PushResult::kOk) {
      job->failed.store(true, std::memory_order_relaxed);
      if (job->remaining.fetch_sub(1) == 1) complete_checkpoint(job);
    }
  }
  return PushResult::kOk;
}

void ShardedService::complete_checkpoint(
    const std::shared_ptr<CheckpointJob>& job) {
  Response response = Response::success(job->id);
  if (job->failed.load(std::memory_order_relaxed)) {
    response = Response::failure(job->id, "checkpoint: service shutting down");
  } else {
    try {
      const std::string tmp = job->path + ".tmp";
      {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
          throw std::runtime_error("svc: cannot write checkpoint: " + tmp);
        }
        out.write(kMagic, sizeof kMagic);
        binio::write_u32(out, kComposedVersion);
        binio::write_u32(out, static_cast<std::uint32_t>(job->blobs.size()));
        for (const std::string& blob : job->blobs) {
          binio::write_bytes(out, blob);
        }
        if (!out) {
          throw std::runtime_error("svc: short write on checkpoint: " + tmp);
        }
      }
      if (std::rename(tmp.c_str(), job->path.c_str()) != 0) {
        throw std::runtime_error("svc: cannot rename checkpoint into place: " +
                                 job->path);
      }
      response.fields.set("path", WireValue::of(job->path));
      response.fields.set(
          "run", WireValue::of(static_cast<std::int64_t>(
                     *std::max_element(job->runs.begin(), job->runs.end()))));
      if (shard_count() > 1) {
        response.fields.set(
            "shards",
            WireValue::of(static_cast<std::int64_t>(shard_count())));
      }
    } catch (const std::exception& e) {
      response = Response::failure(job->id, e.what());
    }
  }
  checkpoint_in_flight_.store(false, std::memory_order_relaxed);
  if (job->done) job->done(response);
}

PushResult ShardedService::submit_shard_export(
    const Request& request, std::function<void(const Response&)> done,
    const obs::TraceContext& trace) {
  if (!cluster_mode_) {
    done(Response::failure(request.id,
                           "shard_export: cluster deployments only"));
    return PushResult::kOk;
  }
  const int s = request.shard;
  if (s < 0 || s >= shard_count()) {
    done(Response::failure(request.id, "shard_export: shard out of range"));
    return PushResult::kOk;
  }
  if (!shard_active(s)) {
    done(Response::not_owner(request.id, s, routing_epoch()));
    return PushResult::kOk;
  }
  if (request.path.empty()) {
    done(Response::failure(request.id, "shard_export: path required"));
    return PushResult::kOk;
  }
  // Detach on the submitting thread, BEFORE the export task is enqueued:
  // every frame accepted so far is already in the shard's queue ahead of
  // the snapshot task, and nothing routed after this point can land behind
  // it — the envelope captures exactly the acknowledged prefix.
  if (request.detach) {
    set_shard_active(s, false);
    if (request.epoch != 0) {
      epoch_.store(request.epoch, std::memory_order_release);
    }
  }
  const std::int64_t epoch = routing_epoch();
  const PushResult pushed = shards_[static_cast<std::size_t>(s)]->submit_task(
      [request, done, trace, epoch](AuctionService& service) {
        obs::ScopedTraceContext install(trace);
        obs::ScopedSpan span("cluster/export");
        span.annotate("shard", request.shard);
        span.annotate("detach", request.detach ? 1 : 0);
        Response response = Response::success(request.id);
        try {
          const std::string tmp = request.path + ".tmp";
          {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (!out) {
              throw std::runtime_error("cluster: cannot write envelope: " +
                                       tmp);
            }
            service.save_migration(out);
            out.flush();
            if (!out) {
              throw std::runtime_error("cluster: short write on envelope: " +
                                       tmp);
            }
          }
          if (std::rename(tmp.c_str(), request.path.c_str()) != 0) {
            throw std::runtime_error(
                "cluster: cannot rename envelope into place: " + request.path);
          }
          response.fields.set(
              "shard", WireValue::of(static_cast<std::int64_t>(request.shard)));
          response.fields.set("path", WireValue::of(request.path));
          response.fields.set("detached", WireValue::of(request.detach));
          response.fields.set("epoch", WireValue::of(epoch));
          response.fields.set(
              "run", WireValue::of(static_cast<std::int64_t>(
                         service.platform().current_run() - 1)));
          if (obs::enabled()) obs::registry().counter("cluster/exports").add();
        } catch (const std::exception& e) {
          response = Response::failure(request.id, e.what());
        }
        done(response);
      });
  if (pushed != PushResult::kOk) {
    // The queue is closed (shutdown); undo the detach so status reporting
    // stays truthful — the shard never left this process.
    if (request.detach) set_shard_active(s, true);
    done(Response::failure(request.id, "shutting down"));
  }
  return PushResult::kOk;
}

PushResult ShardedService::submit_shard_import(
    const Request& request, std::function<void(const Response&)> done,
    const obs::TraceContext& trace) {
  if (!cluster_mode_) {
    done(Response::failure(request.id,
                           "shard_import: cluster deployments only"));
    return PushResult::kOk;
  }
  const int s = request.shard;
  if (s < 0 || s >= shard_count()) {
    done(Response::failure(request.id, "shard_import: shard out of range"));
    return PushResult::kOk;
  }
  if (shard_active(s)) {
    done(Response::failure(request.id,
                           "shard_import: shard " + std::to_string(s) +
                               " is already active here"));
    return PushResult::kOk;
  }
  if (request.path.empty()) {
    done(Response::failure(request.id, "shard_import: path required"));
    return PushResult::kOk;
  }
  const PushResult pushed = shards_[static_cast<std::size_t>(s)]->submit_task(
      [this, request, done, trace](AuctionService& service) {
        obs::ScopedTraceContext install(trace);
        obs::ScopedSpan span("cluster/import");
        span.annotate("shard", request.shard);
        Response response = Response::success(request.id);
        try {
          std::ifstream in(request.path, std::ios::binary);
          if (!in) {
            throw std::runtime_error("cluster: cannot open envelope: " +
                                     request.path);
          }
          service.load_migration(in);
          // Activate only after the state is fully loaded; a frame routed
          // here in between answers not_owner and the client retries.
          if (request.epoch != 0) {
            epoch_.store(request.epoch, std::memory_order_release);
          }
          set_shard_active(request.shard, true);
          response.fields.set(
              "shard", WireValue::of(static_cast<std::int64_t>(request.shard)));
          response.fields.set("path", WireValue::of(request.path));
          response.fields.set("epoch", WireValue::of(routing_epoch()));
          response.fields.set(
              "next_run", WireValue::of(static_cast<std::int64_t>(
                              service.platform().current_run())));
          if (obs::enabled()) obs::registry().counter("cluster/imports").add();
        } catch (const std::exception& e) {
          response = Response::failure(request.id, e.what());
        }
        done(response);
      });
  if (pushed != PushResult::kOk) {
    done(Response::failure(request.id, "shutting down"));
  }
  return PushResult::kOk;
}

void ShardedService::on_run(int /*shard_index*/,
                            const sim::RunRecord& /*record*/) {
  const std::uint64_t total =
      total_runs_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.checkpoint_every <= 0 || config_.checkpoint_path.empty()) {
    return;
  }
  if (total % static_cast<std::uint64_t>(config_.checkpoint_every) != 0) {
    return;
  }
  if (shutdown_.load(std::memory_order_relaxed)) return;
  Request request;
  request.op = Op::kCheckpoint;
  // Cadence checkpoints are best-effort: skip when one is in flight (the
  // exchange inside submit_checkpoint reports it; we drop the response).
  submit_checkpoint(request, [](const Response&) {});
}

Response merge_shard_parts(Op op, std::int64_t id,
                           const std::vector<Response>& parts,
                           const std::vector<int>& shard_indices,
                           int global_shards, bool rehome_all) {
  Response merged;
  merged.id = id;
  for (const Response& part : parts) {
    if (part.ok) continue;
    if (merged.ok) {
      merged.ok = false;
      merged.error = part.error;
    }
    merged.retry_after_ms = std::max(merged.retry_after_ms,
                                     part.retry_after_ms);
  }
  const Response& head = parts.front();
  for (const auto& [key, value] : head.fields.entries()) {
    if (op == Op::kTraceStatus && global_shards > 1) {
      // Latency percentiles are per-shard distributions — they cannot be
      // merged by value, so the top level drops them (they survive under
      // the shard<k>/ views below); sample counts sum.
      if (std::string_view(key).ends_with("_ms")) continue;
      if (std::string_view(key).ends_with("_count")) {
        double sum = 0.0;
        for (const Response& part : parts) {
          if (part.fields.has(key)) sum += part.fields.number(key);
        }
        merged.fields.set(key, WireValue::of(sum));
        continue;
      }
    }
    if (value.kind == WireValue::Kind::kNumber && additive_field(key)) {
      double sum = 0.0;
      for (const Response& part : parts) {
        if (part.fields.has(key)) sum += part.fields.number(key);
      }
      merged.fields.set(key, WireValue::of(sum));
    } else if (value.kind == WireValue::Kind::kNumber && maximal_field(key)) {
      double top = value.number;
      for (const Response& part : parts) {
        if (part.fields.has(key)) top = std::max(top, part.fields.number(key));
      }
      merged.fields.set(key, WireValue::of(top));
    } else if (value.kind == WireValue::Kind::kBool && key == "finished") {
      bool all = true;
      for (const Response& part : parts) {
        all = all && part.fields.boolean_or(key, true);
      }
      merged.fields.set(key, WireValue::of(all));
    } else {
      merged.fields.set(key, value);
    }
  }
  // Introspection ops additionally expose every shard's own numbers,
  // re-homed under "shard<g>/..." (GLOBAL index) after the merged totals.
  // Guarded on the deployment's K, not the part count, so a cluster member
  // owning one shard of a K-shard deployment still replies in the K-shard
  // shape; a true single-shard reply stays byte-identical to the unsharded
  // service (the bit-identity contract).
  if (global_shards > 1 &&
      (rehome_all || op == Op::kStats || op == Op::kTraceStatus)) {
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const std::string prefix =
          "shard" + std::to_string(shard_indices[i]) + "/";
      for (const auto& [key, value] : parts[i].fields.entries()) {
        merged.fields.set(prefix + key, value);
      }
    }
  }
  return merged;
}

bool ShardedService::poll_once(std::chrono::nanoseconds timeout) {
  bool any = false;
  for (auto& shard : shards_) any = shard->poll_once(timeout) || any;
  return any;
}

void ShardedService::begin_shutdown() {
  for (auto& shard : shards_) shard->close();
}

bool ShardedService::shutdown_requested() const {
  if (shutdown_.load(std::memory_order_relaxed)) return true;
  for (const auto& shard : shards_) {
    if (shard->service().shutdown_requested()) return true;
  }
  return false;
}

void ShardedService::join() {
  for (auto& shard : shards_) shard->join();
}

void ShardedService::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (config_.checkpoint_path.empty()) return;
  const std::string tmp = config_.checkpoint_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("svc: cannot write checkpoint: " + tmp);
    }
    save_state(out);
    if (!out) {
      throw std::runtime_error("svc: short write on checkpoint: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), config_.checkpoint_path.c_str()) != 0) {
    throw std::runtime_error("svc: cannot rename checkpoint into place: " +
                             config_.checkpoint_path);
  }
}

std::vector<sim::RunRecord> ShardedService::aggregated_records() const {
  std::vector<std::vector<sim::RunRecord>> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    parts.push_back(shard->service().records());
  }
  return sim::merge_run_records(parts);
}

void ShardedService::save_state(std::ostream& out) const {
  out.write(kMagic, sizeof kMagic);
  binio::write_u32(out, kComposedVersion);
  binio::write_u32(out, static_cast<std::uint32_t>(shards_.size()));
  for (const auto& shard : shards_) {
    std::ostringstream blob;
    shard->service().save_state(blob);
    binio::write_bytes(out, blob.str());
  }
}

void ShardedService::load_state(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  if (in.gcount() != sizeof magic ||
      !std::equal(magic, magic + sizeof magic, kMagic)) {
    throw std::runtime_error("svc: bad checkpoint magic");
  }
  const std::uint32_t version = binio::read_u32(in, "svc checkpoint version");
  if (version == 1 || version == 3) {
    // A plain single-platform snapshot (v1, or v3 with pending task
    // arrivals): only a K=1 deployment can adopt it (a composed deployment
    // cannot split one platform after the fact).
    if (shard_count() != 1) {
      throw std::runtime_error(
          "svc: v1 checkpoint requires a single-shard deployment");
    }
    // Re-feed the already-consumed header to the shard's own loader.
    std::ostringstream rest;
    rest.write(kMagic, sizeof kMagic);
    binio::write_u32(rest, version);
    rest << in.rdbuf();
    std::istringstream replay(rest.str());
    shards_.front()->service().load_state(replay);
    return;
  }
  if (version != kComposedVersion) {
    throw std::runtime_error("svc: unsupported checkpoint version " +
                             std::to_string(version));
  }
  const std::uint32_t k = binio::read_u32(in, "svc checkpoint shards");
  if (k != static_cast<std::uint32_t>(shard_count())) {
    throw std::runtime_error(
        "svc: checkpoint shard count " + std::to_string(k) +
        " does not match the deployment's " + std::to_string(shard_count()));
  }
  for (auto& shard : shards_) {
    const std::string blob =
        binio::read_bytes(in, "svc checkpoint shard snapshot");
    std::istringstream replay(blob);
    shard->service().load_state(replay);
  }
}

StdioResult run_stdio_session(ShardedService& service, std::istream& in,
                              std::ostream& out, TraceRecorder* recorder) {
  StdioResult result;
  std::string line;
  // Stdio sessions record as connection 1, frames numbered in line order —
  // the same (conn, seq) keying the TCP front end uses.
  std::uint64_t seq = 0;
  if (recorder != nullptr) recorder->begin_session(service.config());
  // Answer a line the router never routes (parse errors, rejections)
  // directly, mirroring it into the trace as an unrouted frame pair.
  const auto answer_inline = [&](std::uint64_t frame_seq,
                                 const std::string& request_line,
                                 const Response& response) {
    const std::string reply = format_response(response);
    if (recorder != nullptr) {
      recorder->record_in(1, frame_seq, request_line, kShardNone, 0);
      recorder->record_out(1, frame_seq, reply);
    }
    out << reply << '\n';
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::uint64_t frame_seq = seq++;
    Request request;
    try {
      request = parse_request(line);
    } catch (const UnsupportedOpError& e) {
      ++result.parse_errors;
      answer_inline(frame_seq, line, Response::unsupported_op(e.id(), e.op()));
      continue;
    } catch (const WireError& e) {
      ++result.parse_errors;
      answer_inline(frame_seq, line, Response::failure(0, e.what()));
      continue;
    }
    obs::TraceContext trace;
    if (obs::enabled()) {
      trace = obs::TraceContext{obs::mint_trace_id(1, frame_seq),
                                obs::next_span_id(), 0};
    }
    if (recorder != nullptr) {
      int proto = 0;
      if (request.op == Op::kHello) {
        proto = request.proto == 0 ? kProtoVersion
                                   : std::min(kProtoVersion, request.proto);
      }
      recorder->record_in(1, frame_seq, line,
                          service.routing_decision(request), trace.span_id,
                          proto);
    }
    auto delivered = std::make_shared<bool>(false);
    const PushResult submitted = service.submit(
        request,
        [&out, delivered, recorder, frame_seq](const Response& r) {
          const std::string reply = format_response(r);
          if (recorder != nullptr) recorder->record_out(1, frame_seq, reply);
          out << reply << '\n';
          *delivered = true;
        },
        trace);
    if (submitted != PushResult::kOk) {
      ++result.rejected;
      const std::string reply =
          format_response(service.rejection(submitted, request));
      if (recorder != nullptr) recorder->record_out(1, frame_seq, reply);
      out << reply << '\n';
      continue;
    }
    // Single-threaded session: drain every shard until the (possibly
    // merged) response has been written, then read the next line.
    while (!*delivered) {
      if (!service.poll_once(std::chrono::nanoseconds{0})) break;
    }
    ++result.requests;
    if (service.shutdown_requested()) {
      result.shutdown = true;
      break;
    }
  }
  // EOF without a shutdown op: fire remaining due batches and finish.
  service.begin_shutdown();
  while (service.poll_once(std::chrono::nanoseconds{0})) {
  }
  out.flush();
  return result;
}

}  // namespace melody::svc
