// Wire-trace replay: re-drive a recorded MLDYTRC session (svc/trace_log.h)
// against a fresh — or checkpoint-resumed — sharded service and assert the
// responses are byte-identical to what the live session sent.
//
// Why this works: the event loop is the single thread that submits frames,
// so each shard's apply order equals the submission order — the trace's
// in-frame file order filtered to that shard. Replaying the in-frames in
// file order through a single-threaded poll loop reproduces every shard's
// exact request sequence, and with a manual clock every response is then a
// pure function of the trace. Frames the live session answered without
// touching a shard are reproduced locally (parse errors) or skipped
// (overload rejections — queue pressure is an environment fact, and a
// rejected frame never mutated state).
//
// Comparison is byte-equality first; on mismatch both lines are parsed and
// diffed field by field against a volatile-field mask (timing-, queue- and
// tracing-scoped fields that legitimately differ across environments), so
// a divergence report names the frame and the exact field that changed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "svc/config.h"
#include "svc/trace_log.h"

namespace melody::svc {

class ShardedService;

/// One field-level divergence between the recorded and replayed response
/// for a frame. `field` is the wire key ("ok", "error", "run", ...);
/// kWholeLine means the line did not parse as a wire object on one side.
struct FrameDiff {
  static constexpr const char* kWholeLine = "<line>";

  std::size_t frame_index = 0;  // index into TraceFile::frames
  std::uint64_t conn = 0;
  std::uint64_t seq = 0;
  std::string field;
  std::string recorded;  // formatted recorded value ("<absent>" if missing)
  std::string replayed;
};

/// Replay knobs. The default mask covers every field the serve path emits
/// that is a fact about the recording environment rather than the service
/// trajectory: backpressure hints, queue gauges, the event loop's own
/// tallies (a replay has no event loop), and tracing/latency introspection.
struct ReplayOptions {
  /// Mask patterns: exact keys, or one leading/trailing '*' wildcard
  /// ("loop_*", "*_ms"). Matched keys never produce diffs.
  std::vector<std::string> mask = default_mask();
  /// Stop after this many diffs (0: collect all).
  std::size_t max_diffs = 0;

  static std::vector<std::string> default_mask();
};

/// Outcome of one replay.
struct ReplayResult {
  std::size_t applied = 0;    // in-frames driven through the service
  std::size_t compared = 0;   // responses checked against recorded ones
  std::size_t skipped_rejections = 0;     // recorded overload rejections
  std::size_t skipped_after_shutdown = 0; // in-frames past the shutdown op
  std::size_t unmatched_out = 0;  // out-frames with no recorded in-frame
  std::vector<FrameDiff> diffs;

  bool clean() const noexcept { return diffs.empty(); }
};

/// True when `key` matches any mask pattern.
bool mask_matches(const std::vector<std::string>& mask, std::string_view key);

/// Structured failure for a resume checkpoint the trace references but the
/// filesystem no longer has: carries the offending path, and the what()
/// message names it plus the fix (restore the file, or point --resume at
/// its new location) instead of a generic open error deep in restore().
class CheckpointMissingError : public std::runtime_error {
 public:
  explicit CheckpointMissingError(std::string path)
      : std::runtime_error(
            "resume checkpoint not found: " + path +
            " (the trace was recorded against a restored checkpoint; put "
            "the file back or pass --resume with its current location)"),
        path_(std::move(path)) {}
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// The checkpoint the recorded session resumed from, pinned by the trace
/// header's "resume" field ("" when the session started fresh).
std::string resume_path_from_trace(const TraceFile& trace);

/// Throw CheckpointMissingError unless `path` names a readable file.
void require_resume_checkpoint(const std::string& path);

/// The deployment config a trace header pins: shard count, population,
/// seed, estimator, batch triggers, fault plan, clock mode, checkpoint
/// path. Scenario knobs the header does not carry keep their defaults —
/// record with the default scenario shape (tests do) or reconstruct the
/// config out of band. Throws WireError / std::invalid_argument on a
/// malformed header.
ServiceConfig config_from_trace(const TraceFile& trace);

/// Drive every in-frame of `trace` through `service` (fresh, or restore()d
/// from a mid-trace checkpoint by the caller) in file order, comparing each
/// response against the recorded out-frame. The service must not be
/// start()ed — replay is single-threaded by construction and polls the
/// shards itself. Returns the diff report; never throws for divergences.
ReplayResult replay_trace(const TraceFile& trace, ShardedService& service,
                          const ReplayOptions& options = {});

/// Render one diff as a human-readable line (the melody_replay report).
std::string format_diff(const FrameDiff& diff);

}  // namespace melody::svc
