#include "svc/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/trace_log.h"

namespace melody::svc {

namespace {

constexpr int kEpollTimeoutMs = 50;
constexpr std::size_t kReadChunk = 64 * 1024;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("event_loop: cannot set O_NONBLOCK");
  }
}

}  // namespace

// In-flight trace bookkeeping for one accepted frame: the minted ids plus
// the monotonic receive time, so the frame_out event can report the
// wall-to-wall latency the client saw. Populated only while tracing is on.
struct FrameTrace {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::chrono::steady_clock::time_point start;
};

// Per-connection state machine: a framing buffer on the read side, a
// reorder map + write buffer on the response side.
struct EventLoop::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::string inbuf;
  std::string outbuf;
  std::uint64_t next_seq = 0;    // assigned to the next accepted line
  std::uint64_t next_flush = 0;  // seq whose response leaves next
  std::map<std::uint64_t, Completion> pending;  // out-of-order completions
  std::map<std::uint64_t, FrameTrace> inflight;  // traced frames by seq
  bool want_write = false;  // EPOLLOUT currently registered
  bool read_eof = false;    // peer half-closed; flush remaining, then close
  bool closing = false;     // close once the write buffer drains
};

EventLoop::EventLoop(ShardedService& service, EventLoopOptions options)
    : service_(service), options_(std::move(options)) {}

EventLoop::~EventLoop() {
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw std::runtime_error("event_loop: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    throw std::runtime_error("event_loop: cannot bind port " +
                             std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 1024) < 0) {
    throw std::runtime_error("event_loop: listen() failed");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    actual_port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("event_loop: epoll_create1() failed");
  }
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd_ < 0) {
    throw std::runtime_error("event_loop: eventfd() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // 0: the listener
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw std::runtime_error("event_loop: epoll_ctl(listener) failed");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = 1;  // 1: the completion wakeup
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
    throw std::runtime_error("event_loop: epoll_ctl(eventfd) failed");
  }
}

EventLoopStats EventLoop::run() {
  if (epoll_fd_ < 0) throw std::logic_error("event_loop: listen() first");
  if (options_.recorder != nullptr) {
    options_.recorder->begin_session(service_.config());
  }
  epoll_event events[128];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)),
                               kEpollTimeoutMs);
    if (n < 0 && errno != EINTR) {
      throw std::runtime_error("event_loop: epoll_wait() failed");
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        accept_ready();
        continue;
      }
      if (tag == 1) {
        std::uint64_t tick = 0;
        while (::read(event_fd_, &tick, sizeof tick) > 0) {
        }
        drain_completions();
        continue;
      }
      const auto it = connections_.find(tag);
      if (it == connections_.end()) continue;  // closed this iteration
      Connection* conn = it->second.get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        destroy(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(conn);
      if (connections_.find(tag) == connections_.end()) continue;
      if ((events[i].events & EPOLLOUT) != 0) handle_writable(conn);
    }
    // Completions may have been posted by shard threads without the
    // eventfd edge landing in this wait; drain opportunistically.
    drain_completions();
    const bool stop_flag = options_.should_stop && options_.should_stop();
    if (stop_flag || service_.shutdown_requested()) {
      drain_and_exit();
      return stats_;
    }
  }
}

void EventLoop::drain_and_exit() {
  // Stop accepting, let the shards drain their queues and exit, deliver
  // every completion they posted, then flush what the sockets will take.
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  service_.begin_shutdown();
  service_.join();
  drain_completions();
  // Bounded flush: pending writes get ~2s of epoll-driven progress.
  for (int spin = 0; spin < 200; ++spin) {
    bool waiting = false;
    for (auto& [id, conn] : connections_) {
      if (!conn->outbuf.empty()) waiting = true;
    }
    if (!waiting) break;
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)), 10);
    for (int i = 0; i < n; ++i) {
      const auto it = connections_.find(events[i].data.u64);
      if (it != connections_.end()) try_write(it->second.get());
    }
  }
  while (!connections_.empty()) destroy(connections_.begin()->second.get());
}

void EventLoop::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EMFILE ||
          errno == ENFILE) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = ++next_conn_id_;  // ids 0/1 are the listener/eventfd tags
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      return;
    }
    ++stats_.accepted;
    if (obs::enabled()) {
      static obs::Counter& accepted =
          obs::registry().counter("svc/loop/accepted");
      accepted.add();
    }
    connections_.emplace(conn->id, std::move(conn));
  }
}

void EventLoop::post_completion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(std::move(completion));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(event_fd_, &one, sizeof one);
}

void EventLoop::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) apply_completion(completion);
}

void EventLoop::apply_completion(Completion& completion) {
  const auto it = connections_.find(completion.conn);
  if (it == connections_.end()) return;  // connection died first
  Connection* conn = it->second.get();
  conn->pending.emplace(completion.seq, std::move(completion));
  flush_ready(conn);
}

void EventLoop::handle_readable(Connection* conn) {
  char buffer[kReadChunk];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buffer, sizeof buffer);
    if (n > 0) {
      conn->inbuf.append(buffer, static_cast<std::size_t>(n));
      if (conn->inbuf.size() > options_.max_line) {
        // A line this large is a framing bug, not load: answer once and
        // drop the connection (there is no way to resynchronize).
        ++stats_.parse_errors;
        conn->inbuf.clear();
        conn->read_eof = true;  // stop consuming the unframed stream
        ::shutdown(conn->fd, SHUT_RD);
        // May destroy the connection once the error line flushes — touch
        // nothing after this call.
        answer_inline(conn, conn->next_seq++,
                      format_response(Response::failure(
                          0, "protocol: request line too long")),
                      /*close_after=*/true);
        return;
      }
      continue;
    }
    if (n == 0) {
      conn->read_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    destroy(conn);
    return;
  }
  // Split complete lines out of the framing buffer.
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = conn->inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->inbuf.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = nl + 1;
    if (!line.empty()) handle_line(conn, std::move(line));
    if (connections_.find(conn->id) == connections_.end()) return;
  }
  if (start > 0) conn->inbuf.erase(0, start);
  if (conn->read_eof) {
    if (conn->pending.empty() && conn->outbuf.empty() &&
        conn->next_flush == conn->next_seq) {
      destroy(conn);
    }
    // Otherwise responses are still in flight; they flush, then close.
  }
}

void EventLoop::handle_line(Connection* conn, std::string line) {
  const std::uint64_t seq = conn->next_seq++;
  Request request;
  try {
    request = parse_request(line);
  } catch (const UnsupportedOpError& e) {
    ++stats_.parse_errors;
    if (options_.recorder != nullptr) {
      options_.recorder->record_in(conn->id, seq, line, kShardNone, 0);
    }
    answer_inline(conn, seq,
                  format_response(Response::unsupported_op(e.id(), e.op())));
    return;
  } catch (const WireError& e) {
    ++stats_.parse_errors;
    if (options_.recorder != nullptr) {
      options_.recorder->record_in(conn->id, seq, line, kShardNone, 0);
    }
    answer_inline(conn, seq, format_response(Response::failure(0, e.what())));
    return;
  }
  // Mint the frame's root trace context: the trace id is a deterministic
  // function of (conn, seq), the span id the process-wide counter. The
  // frame_in/frame_out pair brackets the frame's entire residence time.
  obs::TraceContext trace;
  if (obs::enabled()) {
    trace = obs::TraceContext{obs::mint_trace_id(conn->id, seq),
                              obs::next_span_id(), 0};
    conn->inflight.emplace(
        seq, FrameTrace{trace.trace_id, trace.span_id,
                        std::chrono::steady_clock::now()});
    obs::emit("svc/frame_in",
              {{"conn", static_cast<std::int64_t>(conn->id)},
               {"seq", static_cast<std::int64_t>(seq)},
               {"trace", static_cast<std::int64_t>(trace.trace_id)},
               {"span", static_cast<std::int64_t>(trace.span_id)}});
  }
  if (options_.recorder != nullptr) {
    int proto = 0;
    if (request.op == Op::kHello) {
      proto = request.proto == 0 ? kProtoVersion
                                 : std::min(kProtoVersion, request.proto);
    }
    options_.recorder->record_in(conn->id, seq, line,
                                 service_.routing_decision(request),
                                 trace.span_id, proto);
  }
  const bool close_after = request.op == Op::kShutdown;
  const std::uint64_t conn_id = conn->id;
  // stats replies get the loop's own tallies appended before they leave —
  // the only live view of front-end state the wire offers. Snapshot here
  // (the loop thread owns stats_); the completion may format on a shard
  // thread. +1 counts this request, matching the service-side tally.
  const bool augment_stats = request.op == Op::kStats;
  EventLoopStats snapshot;
  std::int64_t live_connections = 0;
  if (augment_stats) {
    snapshot = stats_;
    snapshot.requests += 1;
    live_connections = static_cast<std::int64_t>(connections_.size());
  }
  const PushResult submitted = service_.submit(
      request,
      [this, conn_id, seq, close_after, augment_stats, snapshot,
       live_connections](const Response& response) {
        if (!augment_stats || !response.ok) {
          post_completion(
              {conn_id, seq, format_response(response), close_after});
          return;
        }
        Response annotated = response;
        annotated.fields.set("connections",
                             WireValue::of(live_connections));
        annotated.fields.set(
            "loop_accepted",
            WireValue::of(static_cast<std::int64_t>(snapshot.accepted)));
        annotated.fields.set(
            "loop_requests",
            WireValue::of(static_cast<std::int64_t>(snapshot.requests)));
        annotated.fields.set(
            "loop_parse_errors",
            WireValue::of(static_cast<std::int64_t>(snapshot.parse_errors)));
        annotated.fields.set(
            "loop_rejected",
            WireValue::of(static_cast<std::int64_t>(snapshot.rejected)));
        post_completion(
            {conn_id, seq, format_response(annotated), close_after});
      },
      trace);
  if (submitted != PushResult::kOk) {
    ++stats_.rejected;
    answer_inline(conn, seq,
                  format_response(service_.rejection(submitted, request)));
    return;
  }
  ++stats_.requests;
}

void EventLoop::answer_inline(Connection* conn, std::uint64_t seq,
                              std::string line, bool close_after) {
  Completion completion{conn->id, seq, std::move(line), close_after};
  conn->pending.emplace(seq, std::move(completion));
  flush_ready(conn);
}

void EventLoop::flush_ready(Connection* conn) {
  for (;;) {
    const auto it = conn->pending.find(conn->next_flush);
    if (it == conn->pending.end()) break;
    // Record / trace the outbound frame here: flush order is the
    // per-connection sequence order, exactly what the client reads.
    if (options_.recorder != nullptr) {
      options_.recorder->record_out(conn->id, it->first, it->second.line);
    }
    const auto traced = conn->inflight.find(it->first);
    if (traced != conn->inflight.end()) {
      if (obs::enabled()) {
        const double us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - traced->second.start)
                .count();
        obs::emit("svc/frame_out",
                  {{"conn", static_cast<std::int64_t>(conn->id)},
                   {"seq", static_cast<std::int64_t>(it->first)},
                   {"trace", static_cast<std::int64_t>(traced->second.trace)},
                   {"span", static_cast<std::int64_t>(traced->second.span)},
                   {"us", us}});
      }
      conn->inflight.erase(traced);
    }
    conn->outbuf += it->second.line;
    conn->outbuf += '\n';
    if (it->second.close_after) conn->closing = true;
    conn->pending.erase(it);
    ++conn->next_flush;
  }
  try_write(conn);
}

void EventLoop::try_write(Connection* conn) {
  while (!conn->outbuf.empty()) {
    const ssize_t n =
        ::write(conn->fd, conn->outbuf.data(), conn->outbuf.size());
    if (n > 0) {
      conn->outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_write_interest(conn, true);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    destroy(conn);
    return;
  }
  update_write_interest(conn, false);
  if (conn->closing ||
      (conn->read_eof && conn->pending.empty() &&
       conn->next_flush == conn->next_seq)) {
    destroy(conn);
  }
}

void EventLoop::handle_writable(Connection* conn) { try_write(conn); }

void EventLoop::update_write_interest(Connection* conn, bool want) {
  if (conn->want_write == want) return;
  conn->want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void EventLoop::destroy(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  connections_.erase(conn->id);
}

}  // namespace melody::svc
