// SessionRegistry: maps external worker names (arbitrary client strings,
// e.g. "w17" or "alice@example") to the dense internal auction::WorkerId
// space the platform and the estimators use. The registry is the only place
// that knows both sides; everything below the service speaks dense ids.
//
// Registration order is part of the service's deterministic state (the
// next dense id depends on it), so the registry serializes into the service
// checkpoint with its insertion order preserved.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "auction/types.h"

namespace melody::svc {

class SessionRegistry {
 public:
  /// Pre-bind a name to an existing dense id (the scenario population).
  /// Throws std::invalid_argument when either side is already bound.
  void bind(const std::string& name, auction::WorkerId id);

  /// Dense id for a name, assigning the next free id to a new name.
  /// `created` (optional) reports whether this call registered the name.
  auction::WorkerId intern(const std::string& name, bool* created = nullptr);

  std::optional<auction::WorkerId> find(const std::string& name) const;

  /// External name for a dense id; nullptr when the id was never bound.
  const std::string* name_of(auction::WorkerId id) const;

  /// Count one bid submission for the worker (session statistics).
  void count_bid(auction::WorkerId id);
  std::uint64_t bids_submitted(auction::WorkerId id) const;

  std::size_t size() const noexcept { return order_.size(); }

  /// Serialize in insertion order (magic "MLDYSESS" + version). Both throw
  /// std::runtime_error on I/O failure or malformed input; load replaces
  /// the registry wholesale.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  struct Entry {
    std::string name;
    auction::WorkerId id = -1;
    std::uint64_t bids = 0;
  };

  std::vector<Entry> order_;  // insertion order; index into by maps below
  std::unordered_map<std::string, std::size_t> by_name_;
  std::unordered_map<auction::WorkerId, std::size_t> by_id_;
  auction::WorkerId next_id_ = 0;
};

}  // namespace melody::svc
