// Deterministic load-generation building blocks shared by melody_loadgen
// and its regression tests.
//
// make_request is the pure request stream: request k of client c is a
// function of (seed, c, k) alone — counter-based RNG, no sequential state —
// so a given seed/clients/requests triple replays the identical operation
// mix regardless of scheduling, socket timing, or retries.
//
// OpenLoopSchedule is the open-loop pacing policy with deterministic
// retry: fresh request k is due at epoch + k/rate on a fixed grid that
// NEVER shifts — an overload rejection schedules a re-send of the same
// request after its retry_after_ms hint without perturbing when the fresh
// requests go out. (The old generator silently dropped rejected requests
// AND let retry sleeps skew the arrival grid, which made rejected runs
// non-reproducible and under-counted offered load.)
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "svc/protocol.h"

namespace melody::svc::loadgen {

/// Shape of the generated request streams.
struct StreamConfig {
  std::uint64_t seed = 1;
  /// Server worker name space: scenario names are w0..w{workers-1}.
  std::int64_t workers = 300;
  /// Budget scale carried by generated submit_tasks requests.
  double task_budget = 800.0;
  /// Negotiated protocol version the stream may assume. Streams at
  /// proto < 3 never emit update_bid / withdraw_bid (the v2 mix).
  int proto = kProtoVersion;
};

/// The deterministic request stream: request `index` of client `client` is
/// a pure function of (config.seed, client, index).
///
/// Mix at proto <= 2: 70% submit_bid, 2% newcomer registration
/// ("lg<c>_<k>"), 10% submit_tasks, 10% query_worker, 5% query_run,
/// 3% stats.
///
/// Mix at proto >= 3 carves the continuous-auction ops out of the
/// submit_bid share (everything from submit_tasks on keeps its v2
/// thresholds): 62% submit_bid, 2% newcomer, 6% update_bid, 2%
/// withdraw_bid, 10% submit_tasks, 10% query_worker, 5% query_run,
/// 3% stats.
Request make_request(const StreamConfig& config, int client, int index);

/// Open-loop pacing with deterministic retry. Time is "seconds since the
/// client's epoch" supplied by the caller, so tests drive it with a
/// synthetic clock. Not internally synchronized — the loadgen's sender and
/// receiver threads share it under one lock.
class OpenLoopSchedule {
 public:
  /// `rate` is fresh requests per second (<= 0: all due immediately);
  /// `max_retries` bounds re-sends per rejected request.
  OpenLoopSchedule(int total_requests, double rate, int max_retries = 4);

  struct Action {
    enum class Kind { kSend, kWait, kDone };
    Kind kind = Kind::kDone;
    int index = 0;          // request index to send (kSend)
    bool is_retry = false;  // re-send of a previously rejected request
    double wait_until = 0.0;  // seconds since epoch to sleep to (kWait)
  };

  /// What the sender should do at time `now`: due retries go first (they
  /// are already late), then the fresh grid, else wait / done. kDone means
  /// every fresh request was sent and no retry is pending.
  Action next(double now);

  /// The response for `index` came back overloaded at `now`; schedule a
  /// re-send after retry_after_ms. Returns false when the request's retry
  /// budget is exhausted (the caller counts it as dropped).
  bool note_rejected(int index, double now, double retry_after_ms);

  /// Fresh-grid due time of request k (epoch + k/rate) — exposed so tests
  /// can assert the grid never shifts.
  double fresh_due(int index) const noexcept {
    return static_cast<double>(index) * interval_s_;
  }

  int fresh_sent() const noexcept { return next_fresh_; }
  int retries_sent() const noexcept { return retries_sent_; }
  int retries_dropped() const noexcept { return retries_dropped_; }

 private:
  struct Retry {
    double due = 0.0;
    int index = 0;
    // Earliest due first; ties break on index so ordering is total.
    bool operator>(const Retry& other) const noexcept {
      return due != other.due ? due > other.due : index > other.index;
    }
  };

  int total_;
  double interval_s_;
  int max_retries_;
  int next_fresh_ = 0;
  int retries_sent_ = 0;
  int retries_dropped_ = 0;
  std::vector<int> attempts_;
  std::priority_queue<Retry, std::vector<Retry>, std::greater<Retry>>
      retries_;
};

}  // namespace melody::svc::loadgen
