// AuctionService: the online serving runtime around sim::Platform. One
// instance owns the full mechanism/estimator/platform stack and is driven
// by a single thread (the event loop in svc/loop.h, or a test calling
// apply() directly); thread-safety lives in the queue in front of it, not
// here.
//
// Execution model: requests mutate accumulation state (pending bids via the
// session registry + RunBatcher, accrued budget), and whenever the batch
// policy fires the service executes Platform::step() — the same auction →
// scoring → estimator-update pipeline the batch tools run, through the same
// AuctionContext entry point. With the service in manual-clock mode
// (--stdin traces, tests) every run outcome is a pure function of the
// request trace, bit-identical to the equivalent melody_sim batch run.
//
// Checkpoints wrap the PR-3 platform snapshot with the service-level state
// (logical clock, batcher accumulation, session registry) under the magic
// "MLDYSVCK"; writes are atomic (tmp + rename). Run records are not part of
// a checkpoint — query_run over pre-resume runs reports them unavailable.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auction/melody_auction.h"
#include "estimators/estimator.h"
#include "sim/fault.h"
#include "sim/platform.h"
#include "svc/batcher.h"
#include "svc/config.h"
#include "svc/protocol.h"
#include "svc/session.h"

namespace melody::obs {
class Counter;
class Gauge;
class Summary;
}  // namespace melody::obs

namespace melody::svc {

class AuctionService {
 public:
  /// Builds mechanism + estimator + platform exactly as melody_sim does
  /// (same seed derivations), binds the scenario population as
  /// "w<worker_name_offset + id>" in the session registry. Throws
  /// std::invalid_argument on a bad config.
  explicit AuctionService(ServiceConfig config);

  AuctionService(const AuctionService&) = delete;
  AuctionService& operator=(const AuctionService&) = delete;

  /// Resume from a service checkpoint written by this class. Replaces the
  /// registry, platform state, clock, and batcher accumulation wholesale;
  /// must be called before any request is applied. Throws
  /// std::runtime_error on I/O failure or malformed input.
  void restore(const std::string& path);

  /// Process one request. Must only be called from one thread (the event
  /// loop). Never throws for client errors — they become ok:false
  /// responses; only I/O failures during checkpointing propagate as an
  /// error response too (the service stays usable).
  Response apply(const Request& request);

  /// Fire any due batches without an attached request (deadline trigger
  /// while idle). Returns the number of runs executed.
  int poll_batches();

  /// Real-clock mode: the event loop feeds elapsed seconds; the clock never
  /// goes backwards. No-op in manual-clock mode.
  void advance_clock(double seconds_since_start);

  /// Seconds until the batcher's deadline trigger fires (negative: none
  /// pending) — the event loop's poll timeout hint.
  double seconds_until_deadline() const noexcept;

  /// Loop-side statistics hooks (queue depth gauge, overload tally).
  void note_queue_depth(std::size_t depth);
  void note_overload_reject();

  /// Count one control-plane operation (a coordinated-checkpoint task) in
  /// the request tally, so stats "requests" matches the unsharded service
  /// where the same operation goes through apply().
  void note_control_request();

  /// Observe every run the platform executes (forwarded to
  /// Platform::set_run_hook). Sharded deployments feed cross-shard run
  /// totals and checkpoint cadence through this; the hook runs on the loop
  /// thread at the end of each step and must not call back into the
  /// service.
  void set_run_hook(std::function<void(const sim::RunRecord&)> hook);

  void request_shutdown() noexcept { shutdown_requested_ = true; }
  bool shutdown_requested() const noexcept { return shutdown_requested_; }

  /// Final checkpoint if one is configured (idempotent; also invoked by
  /// the shutdown op). Throws std::runtime_error on I/O failure.
  void finalize();

  bool manual_clock() const noexcept { return config_.manual_clock; }
  const ServiceConfig& config() const noexcept { return config_; }
  const sim::Platform& platform() const noexcept { return *platform_; }
  const SessionRegistry& registry() const noexcept { return registry_; }
  const RunBatcher& batcher() const noexcept { return batcher_; }
  /// Records of the runs executed in this session (post-restore only).
  const std::vector<sim::RunRecord>& records() const noexcept {
    return records_;
  }

  /// Serialize / deserialize the full service state (checkpoint body).
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

  /// Serialize / deserialize a live-migration envelope ("MLDYMIGR"): the
  /// MLDYSVCK checkpoint body plus the session state a checkpoint
  /// deliberately drops (request tallies, this session's run records). A
  /// migrated shard must answer every subsequent frame byte-identically to
  /// one that never moved, so the handoff carries what restore() does not.
  void save_migration(std::ostream& out) const;
  void load_migration(std::istream& in);

 private:
  Response dispatch(const Request& request);
  void handle_submit_bid(const Request& request, Response& response);
  void handle_update_bid(const Request& request, Response& response);
  void handle_withdraw_bid(const Request& request, Response& response);
  void handle_submit_tasks(const Request& request, Response& response);
  void handle_post_scores(const Request& request, Response& response);
  void handle_query_worker(const Request& request, Response& response);
  void handle_query_run(const Request& request, Response& response);
  void handle_stats(Response& response);
  void handle_trace_status(Response& response);
  void handle_checkpoint(const Request& request, Response& response);
  void handle_hello(Response& response);

  /// Execute platform runs while the batch policy fires; annotate the
  /// response (if any) with runs_executed / last run index.
  int execute_due_runs(Response* response);
  void execute_one_run(int batch_bids);
  void write_checkpoint(const std::string& path) const;
  /// &registry().counter(obs_prefix + name), resolved once and cached in
  /// `slot`. Shard-local services register under their plan's "shard<k>/"
  /// prefix; standalone (K=1) services keep the un-prefixed names.
  obs::Counter& metric_counter(obs::Counter*& slot,
                               std::string_view name) const;
  obs::Summary* metric_timer(obs::Summary*& slot, std::string_view name) const;

  ServiceConfig config_;
  auction::MelodyAuction mechanism_;
  std::unique_ptr<estimators::QualityEstimator> estimator_;
  std::optional<sim::Platform> platform_;
  SessionRegistry registry_;
  RunBatcher batcher_;
  std::vector<sim::RunRecord> records_;
  int first_session_run_ = 1;  // current_run() at construction/restore
  double now_ = 0.0;           // service clock, seconds
  std::uint64_t requests_total_ = 0;
  std::uint64_t overload_rejects_ = 0;
  std::size_t last_queue_depth_ = 0;
  bool shutdown_requested_ = false;
  bool finalized_ = false;
  // Lazily-resolved obs handles under config_.obs_prefix (stable for the
  // registry's lifetime; null until the first enabled use). Per-instance
  // instead of static locals so each shard records under its own names.
  mutable obs::Counter* requests_metric_ = nullptr;
  mutable obs::Counter* runs_metric_ = nullptr;
  mutable obs::Counter* rejects_metric_ = nullptr;
  mutable obs::Counter* oob_scores_metric_ = nullptr;
  mutable obs::Gauge* queue_gauge_ = nullptr;
  mutable obs::Summary* request_timer_ = nullptr;
  mutable obs::Summary* run_timer_ = nullptr;
  mutable obs::Summary* batch_summary_ = nullptr;
};

}  // namespace melody::svc
