// RunBatcher: decides when the submissions accumulated by the service are
// coalesced into one auction run. Three pluggable triggers, any subset
// active, OR-combined:
//
//   * count   — fire once `min_bids` bid submissions are pending;
//   * deadline— fire once the oldest pending bid has waited `max_delay`
//               seconds (bounded staleness even under a trickle of bids);
//   * budget  — fire once requesters have accrued `budget_target` of
//               spending authority via submit_tasks (the reverse-auction
//               analogue of size-based flushing: a run happens when there
//               is a run's worth of budget to spend);
//   * rolling — fire once per task-arrival batch (`per_task_arrival`): every
//               submit_tasks queues exactly one run against the standing
//               bid book, the continuous-auction workload (`--rolling`).
//
// Time is an explicit parameter (seconds on the service's clock), never
// read from a wall clock inside: with the service in manual-clock mode the
// whole batching schedule is a pure function of the request trace, which is
// what makes the serve-vs-batch bit-identity tests possible.
#pragma once

namespace melody::svc {

struct BatchPolicy {
  /// Fire when this many bid submissions are pending. 0 disables.
  int min_bids = 0;
  /// Fire when the oldest pending bid is this old (seconds). 0 disables.
  double max_delay = 0.0;
  /// Fire when accrued budget reaches this target. 0 disables.
  double budget_target = 0.0;
  /// Rolling auction: fire one run per task arrival (each submit_tasks
  /// queues exactly one run against the standing bid book).
  bool per_task_arrival = false;

  /// True iff at least one trigger is configured.
  bool active() const noexcept {
    return min_bids > 0 || max_delay > 0.0 || budget_target > 0.0 ||
           per_task_arrival;
  }
};

class RunBatcher {
 public:
  explicit RunBatcher(BatchPolicy policy) : policy_(policy) {}

  /// A bid submission arrived at time `now`.
  void note_bid(double now) {
    if (pending_bids_ == 0) oldest_bid_time_ = now;
    ++pending_bids_;
  }

  /// A task submission accrued `amount` of budget.
  void note_budget(double amount) {
    if (amount > 0.0) accrued_budget_ += amount;
  }

  /// A task batch arrived (rolling trigger). Arrivals queue: two arrivals
  /// between polls schedule two back-to-back runs.
  void note_task_arrival() noexcept {
    if (policy_.per_task_arrival) ++pending_arrivals_;
  }

  /// Should a run fire at time `now`?
  bool should_fire(double now) const noexcept {
    if (policy_.min_bids > 0 && pending_bids_ >= policy_.min_bids) return true;
    if (policy_.max_delay > 0.0 && pending_bids_ > 0 &&
        now - oldest_bid_time_ >= policy_.max_delay) {
      return true;
    }
    if (policy_.budget_target > 0.0 && accrued_budget_ >= policy_.budget_target) {
      return true;
    }
    if (policy_.per_task_arrival && pending_arrivals_ > 0) return true;
    return false;
  }

  /// Seconds until the deadline trigger would fire, for the event loop's
  /// poll timeout. Returns a negative value when no deadline is pending.
  double seconds_until_deadline(double now) const noexcept {
    if (policy_.max_delay <= 0.0 || pending_bids_ == 0) return -1.0;
    return oldest_bid_time_ + policy_.max_delay - now;
  }

  /// Consume the batch after a run fired at time `now`: pending bids are in
  /// the run; accrued budget is charged one target's worth (overshoot
  /// carries over so back-to-back task bursts schedule back-to-back runs).
  void consume(double now) noexcept {
    pending_bids_ = 0;
    oldest_bid_time_ = now;
    if (policy_.budget_target > 0.0 && accrued_budget_ >= policy_.budget_target) {
      accrued_budget_ -= policy_.budget_target;
    } else {
      accrued_budget_ = 0.0;
    }
    if (pending_arrivals_ > 0) --pending_arrivals_;
  }

  int pending_bids() const noexcept { return pending_bids_; }
  double accrued_budget() const noexcept { return accrued_budget_; }
  int pending_arrivals() const noexcept { return pending_arrivals_; }
  const BatchPolicy& policy() const noexcept { return policy_; }

  /// Checkpoint support: restore the exact accumulation state.
  void restore(int pending_bids, double oldest_bid_time,
               double accrued_budget, int pending_arrivals = 0) noexcept {
    pending_bids_ = pending_bids;
    oldest_bid_time_ = oldest_bid_time;
    accrued_budget_ = accrued_budget;
    pending_arrivals_ = pending_arrivals;
  }
  double oldest_bid_time() const noexcept { return oldest_bid_time_; }

 private:
  BatchPolicy policy_;
  int pending_bids_ = 0;
  double oldest_bid_time_ = 0.0;
  double accrued_budget_ = 0.0;
  int pending_arrivals_ = 0;  // rolling trigger: queued task arrivals
};

}  // namespace melody::svc
