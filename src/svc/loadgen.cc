#include "svc/loadgen.h"

#include <string>

#include "util/rng.h"

namespace melody::svc::loadgen {

Request make_request(const StreamConfig& config, int client, int index) {
  util::Rng rng(util::derive_stream(config.seed,
                                    static_cast<std::uint64_t>(client),
                                    static_cast<std::uint64_t>(index)));
  Request request;
  request.id = static_cast<std::int64_t>(client) * 1000000 + index + 1;
  const double pick = rng.uniform01();
  // The v3 mix carves update_bid/withdraw_bid out of the v2 submit_bid
  // share; every threshold from submit_tasks on is identical in both mixes.
  const bool v3 = config.proto >= 3;
  if (pick < (v3 ? 0.62 : 0.70)) {
    request.op = Op::kSubmitBid;
    request.worker =
        "w" + std::to_string(rng.uniform_int(0, config.workers - 1));
  } else if (pick < (v3 ? 0.64 : 0.72)) {
    // Newcomer registration: a fresh name carrying a bid.
    request.op = Op::kSubmitBid;
    request.worker =
        "lg" + std::to_string(client) + "_" + std::to_string(index);
    request.has_bid = true;
    request.cost = rng.uniform(1.0, 2.0);
    request.frequency = static_cast<int>(rng.uniform_int(1, 5));
  } else if (v3 && pick < 0.70) {
    // Re-bid on a standing scenario worker.
    request.op = Op::kUpdateBid;
    request.worker =
        "w" + std::to_string(rng.uniform_int(0, config.workers - 1));
    request.has_bid = true;
    request.cost = rng.uniform(1.0, 2.0);
    request.frequency = static_cast<int>(rng.uniform_int(1, 5));
  } else if (v3 && pick < 0.72) {
    request.op = Op::kWithdrawBid;
    request.worker =
        "w" + std::to_string(rng.uniform_int(0, config.workers - 1));
  } else if (pick < 0.82) {
    request.op = Op::kSubmitTasks;
    request.task_count = static_cast<int>(rng.uniform_int(50, 500));
    request.budget = config.task_budget * rng.uniform(0.05, 0.25);
  } else if (pick < 0.92) {
    request.op = Op::kQueryWorker;
    request.worker =
        "w" + std::to_string(rng.uniform_int(0, config.workers - 1));
  } else if (pick < 0.97) {
    request.op = Op::kQueryRun;
    request.run = static_cast<int>(rng.uniform_int(1, 50));
  } else {
    request.op = Op::kStats;
  }
  return request;
}

OpenLoopSchedule::OpenLoopSchedule(int total_requests, double rate,
                                   int max_retries)
    : total_(total_requests < 0 ? 0 : total_requests),
      interval_s_(rate > 0.0 ? 1.0 / rate : 0.0),
      max_retries_(max_retries < 0 ? 0 : max_retries),
      attempts_(static_cast<std::size_t>(total_), 0) {}

OpenLoopSchedule::Action OpenLoopSchedule::next(double now) {
  if (!retries_.empty() && retries_.top().due <= now) {
    const Retry retry = retries_.top();
    retries_.pop();
    ++retries_sent_;
    return {Action::Kind::kSend, retry.index, true, 0.0};
  }
  if (next_fresh_ < total_ && fresh_due(next_fresh_) <= now) {
    const int index = next_fresh_++;
    return {Action::Kind::kSend, index, false, 0.0};
  }
  double wait = -1.0;
  if (next_fresh_ < total_) wait = fresh_due(next_fresh_);
  if (!retries_.empty() &&
      (wait < 0.0 || retries_.top().due < wait)) {
    wait = retries_.top().due;
  }
  if (wait < 0.0) return {Action::Kind::kDone, 0, false, 0.0};
  return {Action::Kind::kWait, 0, false, wait};
}

bool OpenLoopSchedule::note_rejected(int index, double now,
                                     double retry_after_ms) {
  if (index < 0 || index >= total_) return false;
  auto& attempts = attempts_[static_cast<std::size_t>(index)];
  if (attempts >= max_retries_) {
    ++retries_dropped_;
    return false;
  }
  ++attempts;
  const double delay_s = retry_after_ms > 0.0 ? retry_after_ms / 1000.0 : 0.0;
  retries_.push(Retry{now + delay_s, index});
  return true;
}

}  // namespace melody::svc::loadgen
