#include "svc/loop.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

namespace melody::svc {

namespace {
// Poll timeout while idle: short enough that shutdown and real-clock
// deadline checks stay responsive, long enough not to spin.
constexpr std::chrono::milliseconds kIdleTick{50};
}  // namespace

PushResult ServiceLoop::try_submit(Request request,
                                   std::function<void(const Response&)> done,
                                   const obs::TraceContext& trace) {
  const PushResult result = queue_.try_push(
      Envelope{std::move(request), std::move(done), nullptr, trace});
  if (result != PushResult::kOk) service_.note_overload_reject();
  return result;
}

PushResult ServiceLoop::submit_task(
    std::function<void(AuctionService&)> task) {
  return queue_.push_force(Envelope{Request{}, nullptr, std::move(task), {}});
}

Response ServiceLoop::rejection(PushResult result,
                                const Request& request) const {
  if (result == PushResult::kClosed) {
    return Response::failure(request.id, "shutting down");
  }
  // Retry hint proportional to the backlog: a queue of N requests at a
  // conservative ~10 ms each. Clients treat it as a floor, not a promise.
  const std::int64_t retry_ms = std::max<std::int64_t>(
      10, static_cast<std::int64_t>(queue_.capacity()) * 10);
  return Response::overloaded(request.id, retry_ms);
}

void ServiceLoop::run() {
  const auto epoch = std::chrono::steady_clock::now();
  for (;;) {
    service_.advance_clock(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
            .count());
    // Wake early for a pending deadline batch so max_delay is honored even
    // with an empty queue.
    std::chrono::nanoseconds timeout = kIdleTick;
    const double until = service_.seconds_until_deadline();
    if (until >= 0.0) {
      timeout = std::min<std::chrono::nanoseconds>(
          timeout, std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::duration<double>(std::max(until, 0.0))));
    }
    std::optional<Envelope> envelope = queue_.pop_for(timeout);
    service_.advance_clock(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
            .count());
    if (envelope.has_value()) {
      process(*envelope);
    } else {
      service_.poll_batches();
    }
    if (service_.shutdown_requested()) {
      queue_.close();
      if (queue_.size() == 0) break;
    } else if (queue_.closed() && queue_.size() == 0) {
      // Externally closed (SIGINT path): drain finished, stop.
      service_.request_shutdown();
      break;
    }
  }
}

bool ServiceLoop::poll_once(std::chrono::nanoseconds timeout) {
  std::optional<Envelope> envelope = queue_.pop_for(timeout);
  if (!envelope.has_value()) {
    service_.poll_batches();
    return false;
  }
  process(*envelope);
  return true;
}

void ServiceLoop::process(Envelope& envelope) {
  service_.note_queue_depth(queue_.size());
  if (envelope.task) {
    envelope.task(service_);
    return;
  }
  // Install the frame's root context for the apply; free when inactive.
  obs::ScopedTraceContext install(envelope.trace);
  const Response response = service_.apply(envelope.request);
  if (envelope.done) envelope.done(response);
}

StdioResult run_stdio_session(ServiceLoop& loop, std::istream& in,
                              std::ostream& out) {
  StdioResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Request request;
    try {
      request = parse_request(line);
    } catch (const UnsupportedOpError& e) {
      ++result.parse_errors;
      out << format_response(Response::unsupported_op(e.id(), e.op())) << '\n';
      continue;
    } catch (const WireError& e) {
      ++result.parse_errors;
      out << format_response(Response::failure(0, e.what())) << '\n';
      continue;
    }
    const PushResult submitted = loop.try_submit(
        request,
        [&out](const Response& r) { out << format_response(r) << '\n'; });
    if (submitted != PushResult::kOk) {
      ++result.rejected;
      out << format_response(loop.rejection(submitted, request)) << '\n';
      continue;
    }
    // Single-threaded session: the submission is sitting in the queue;
    // drain it (and any deadline batches) before reading the next line.
    loop.poll_once(std::chrono::nanoseconds{0});
    ++result.requests;
    if (loop.service().shutdown_requested()) {
      result.shutdown = true;
      break;
    }
  }
  // EOF without a shutdown op: fire remaining due batches and finish.
  loop.close();
  while (loop.poll_once(std::chrono::nanoseconds{0})) {
  }
  out.flush();
  return result;
}

}  // namespace melody::svc
