#include "svc/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "estimators/factory.h"
#include "lds/gaussian.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/trajectory.h"
#include "util/binio.h"
#include "util/rng.h"

namespace melody::svc {

namespace {

constexpr char kMagic[8] = {'M', 'L', 'D', 'Y', 'S', 'V', 'C', 'K'};
// Live-migration envelope: the MLDYSVCK body plus the session tail a
// checkpoint deliberately omits (request tally, run records). Version 1.
constexpr char kMigrationMagic[8] = {'M', 'L', 'D', 'Y', 'M', 'I', 'G', 'R'};
constexpr std::uint32_t kMigrationVersion = 1;
// The MLDYSVCK version namespace is shared with the sharded router's
// composed format, which owns version 2 — the plain service format jumps
// from 1 to 3. v3 appends the rolling trigger's queued task arrivals after
// the accrued budget; v1 checkpoints restore with zero pending arrivals.
constexpr std::uint32_t kVersion = 3;
// Sub-stream salt for newcomer trajectories: outside the per-(worker, run)
// key space Platform::step() uses (runs are small positive integers), so a
// newcomer's curve never aliases a score stream.
constexpr std::uint64_t kNewcomerSalt = 0x4E45'5743'6A6F'696Eull;  // "NEWCjoin"
namespace binio = util::binio;

WireValue of_int(std::int64_t v) { return WireValue::of(v); }

ServiceConfig normalize(ServiceConfig config) {
  config.validate();
  // No trigger configured: one run per full participation round, matching
  // the batch simulator's every-worker-bids-every-run model.
  if (!config.batch.active()) {
    config.batch.min_bids = config.scenario.num_workers;
  }
  return config;
}

}  // namespace

AuctionService::AuctionService(ServiceConfig config)
    : config_(normalize(std::move(config))),
      mechanism_(config_.payment_rule),
      estimator_(
          estimators::make(config_.estimator, config_.estimator_params())),
      batcher_(config_.batch) {
  if (estimator_ == nullptr) {
    throw std::invalid_argument("svc: estimator must be one of " +
                                estimators::known_kinds());
  }
  // Mirror melody_sim's construction exactly (same seed derivations) so a
  // manual-clock trace reproduces the batch run bit for bit.
  util::Rng population_rng(config_.seed);
  platform_.emplace(
      config_.scenario, mechanism_, *estimator_,
      sim::sample_population(config_.scenario.population_config(),
                             population_rng),
      config_.seed + 1);
  if (config_.faults.active()) platform_->set_fault_plan(config_.faults);
  // Rolling / incremental mode: the platform keeps the persistent
  // price-ladder bid book and the greedy mechanism ranks from it.
  if (config_.incremental || config_.batch.per_task_arrival) {
    platform_->enable_bid_book();
  }
  for (const sim::SimWorker& w : platform_->workers()) {
    registry_.bind(
        "w" + std::to_string(config_.worker_name_offset + w.id()), w.id());
  }
  first_session_run_ = platform_->current_run();
}

void AuctionService::restore(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("svc: cannot open checkpoint: " + path);
  load_state(in);
}

obs::Counter& AuctionService::metric_counter(obs::Counter*& slot,
                                             std::string_view name) const {
  if (slot == nullptr) {
    slot = &obs::registry().counter(config_.obs_prefix + std::string(name));
  }
  return *slot;
}

obs::Summary* AuctionService::metric_timer(obs::Summary*& slot,
                                           std::string_view name) const {
  if (!obs::enabled()) return nullptr;
  if (slot == nullptr) {
    slot = &obs::registry().timer(config_.obs_prefix + std::string(name));
  }
  return slot;
}

Response AuctionService::apply(const Request& request) {
  ++requests_total_;
  if (obs::enabled()) {
    metric_counter(requests_metric_, "svc/requests").add();
  }
  obs::ScopedSpan span("svc/apply");
  span.annotate("op", to_string(request.op));
  span.annotate("run", platform_->current_run());
  span.annotate("now", now_);
  obs::ScopedTimer timer(metric_timer(request_timer_, "svc/request_time"));
  try {
    return dispatch(request);
  } catch (const std::exception& e) {
    return Response::failure(request.id, e.what());
  }
}

Response AuctionService::dispatch(const Request& request) {
  Response response = Response::success(request.id);
  switch (request.op) {
    case Op::kHello:
      handle_hello(response);
      break;
    case Op::kSubmitBid:
      handle_submit_bid(request, response);
      break;
    case Op::kUpdateBid:
      handle_update_bid(request, response);
      break;
    case Op::kWithdrawBid:
      handle_withdraw_bid(request, response);
      break;
    case Op::kSubmitTasks:
      handle_submit_tasks(request, response);
      break;
    case Op::kPostScores:
      handle_post_scores(request, response);
      break;
    case Op::kQueryWorker:
      handle_query_worker(request, response);
      break;
    case Op::kQueryRun:
      handle_query_run(request, response);
      break;
    case Op::kRunNow: {
      const int batch = batcher_.pending_bids();
      batcher_.consume(now_);
      execute_one_run(batch);
      response.fields.set("runs_executed", of_int(1));
      response.fields.set("run", of_int(platform_->current_run() - 1));
      break;
    }
    case Op::kTick:
      if (!config_.manual_clock) {
        response = Response::failure(
            request.id, "tick: service is on the real clock (manual-clock "
                        "mode only)");
        break;
      }
      if (!(request.seconds >= 0.0)) {
        response = Response::failure(request.id,
                                     "tick: seconds must be non-negative");
        break;
      }
      now_ += request.seconds;
      execute_due_runs(&response);
      response.fields.set("now", WireValue::of(now_));
      break;
    case Op::kStats:
      handle_stats(response);
      break;
    case Op::kTraceStatus:
      handle_trace_status(response);
      break;
    case Op::kCheckpoint:
      handle_checkpoint(request, response);
      break;
    case Op::kShutdown:
      request_shutdown();
      finalize();
      response.fields.set("runs_total", of_int(platform_->current_run() - 1));
      if (!config_.checkpoint_path.empty()) {
        response.fields.set("checkpoint",
                            WireValue::of(config_.checkpoint_path));
      }
      break;
    case Op::kShardExport:
    case Op::kShardImport:
      // Shard handoff is a router-level mechanic (the sharded service
      // intercepts these before apply()); a standalone service has no
      // routing table to hand a shard off from.
      response = Response::failure(
          request.id, std::string(to_string(request.op)) +
                          ": cluster deployments only");
      break;
  }
  return response;
}

void AuctionService::handle_hello(Response& response) {
  response.fields.set("service", WireValue::of("melody_svc"));
  response.fields.set("proto_version", of_int(kProtoVersion));
  // A standalone service is its own single shard; the sharded router
  // overwrites this with the deployment's K.
  response.fields.set("shards", of_int(1));
  response.fields.set("estimator", WireValue::of(estimator_->name()));
  response.fields.set("next_run", of_int(platform_->current_run()));
  response.fields.set("scenario_runs", of_int(config_.scenario.runs));
  response.fields.set("workers", of_int(static_cast<std::int64_t>(
                                     platform_->workers().size())));
  response.fields.set("manual_clock", WireValue::of(config_.manual_clock));
  response.fields.set("min_bids", of_int(config_.batch.min_bids));
  response.fields.set("max_delay", WireValue::of(config_.batch.max_delay));
  response.fields.set("budget_target",
                      WireValue::of(config_.batch.budget_target));
  response.fields.set("incremental", WireValue::of(config_.incremental));
  response.fields.set("rolling",
                      WireValue::of(config_.batch.per_task_arrival));
}

void AuctionService::handle_submit_bid(const Request& request,
                                       Response& response) {
  if (request.worker.empty()) {
    response = Response::failure(request.id, "submit_bid: worker required");
    return;
  }
  const auto existing = registry_.find(request.worker);
  auction::WorkerId id = 0;
  bool created = false;
  if (existing.has_value()) {
    id = *existing;
    // A fresh submission supersedes any standing withdrawal.
    platform_->set_withdrawn(id, false);
  } else {
    if (!request.has_bid) {
      response = Response::failure(
          request.id, "submit_bid: unknown worker \"" + request.worker +
                          "\" (newcomers must carry cost and frequency)");
      return;
    }
    if (!std::isfinite(request.cost) || request.cost <= 0.0 ||
        request.frequency < 1) {
      response = Response::failure(
          request.id,
          "submit_bid: newcomer needs cost > 0 and frequency >= 1");
      return;
    }
    id = registry_.intern(request.worker, &created);
    // A newcomer's latent trajectory is sampled from the scenario mix out
    // of a dedicated counter-based stream keyed by his dense id, so joining
    // order and timing never perturb anyone else's randomness.
    util::Rng stream(util::derive_stream(platform_->master_seed(),
                                         kNewcomerSalt,
                                         static_cast<std::uint64_t>(id)));
    const sim::TrajectoryKind kind =
        sim::sample_kind(config_.scenario.mix, stream);
    const sim::TrajectoryConfig trajectory =
        sim::sample_config(kind, config_.scenario.runs, stream);
    platform_->add_worker(sim::SimWorker(
        id, auction::Bid{request.cost, request.frequency},
        sim::generate_trajectory(trajectory, config_.scenario.runs, stream)));
  }
  registry_.count_bid(id);
  batcher_.note_bid(now_);
  response.fields.set("worker", WireValue::of(request.worker));
  response.fields.set("internal_id", of_int(id));
  if (created) response.fields.set("registered", WireValue::of(true));
  execute_due_runs(&response);
  response.fields.set("pending_bids", of_int(batcher_.pending_bids()));
}

void AuctionService::handle_update_bid(const Request& request,
                                       Response& response) {
  if (request.worker.empty()) {
    response = Response::failure(request.id, "update_bid: worker required");
    return;
  }
  const auto id = registry_.find(request.worker);
  if (!id.has_value()) {
    response = Response::unknown_worker(request.id, request.worker);
    return;
  }
  if (!std::isfinite(request.cost) || request.cost <= 0.0 ||
      request.frequency < 1) {
    response = Response::failure(
        request.id, "update_bid: needs cost > 0 and frequency >= 1");
    return;
  }
  if (!platform_->update_bid(*id,
                             auction::Bid{request.cost, request.frequency})) {
    response = Response::unknown_worker(request.id, request.worker);
    return;
  }
  // A re-bid participates in batching exactly like a submission: it counts
  // toward the count trigger and starts the staleness clock.
  registry_.count_bid(*id);
  batcher_.note_bid(now_);
  response.fields.set("worker", WireValue::of(request.worker));
  response.fields.set("internal_id", of_int(*id));
  execute_due_runs(&response);
  response.fields.set("pending_bids", of_int(batcher_.pending_bids()));
}

void AuctionService::handle_withdraw_bid(const Request& request,
                                         Response& response) {
  if (request.worker.empty()) {
    response = Response::failure(request.id, "withdraw_bid: worker required");
    return;
  }
  const auto id = registry_.find(request.worker);
  if (!id.has_value()) {
    response = Response::unknown_worker(request.id, request.worker);
    return;
  }
  platform_->set_withdrawn(*id, true);
  response.fields.set("worker", WireValue::of(request.worker));
  response.fields.set("internal_id", of_int(*id));
  response.fields.set("withdrawn", WireValue::of(true));
}

void AuctionService::handle_submit_tasks(const Request& request,
                                         Response& response) {
  if (request.task_count < 0) {
    response = Response::failure(request.id,
                                 "submit_tasks: count must be non-negative");
    return;
  }
  if (!std::isfinite(request.budget) || request.budget < 0.0) {
    response = Response::failure(
        request.id, "submit_tasks: budget must be finite and non-negative");
    return;
  }
  batcher_.note_budget(request.budget);
  if (request.task_count > 0) batcher_.note_task_arrival();
  execute_due_runs(&response);
  response.fields.set("accrued_budget",
                      WireValue::of(batcher_.accrued_budget()));
  response.fields.set("pending_bids", of_int(batcher_.pending_bids()));
}

void AuctionService::handle_post_scores(const Request& request,
                                        Response& response) {
  const auto id = registry_.find(request.worker);
  if (!id.has_value()) {
    response = Response::failure(
        request.id, "post_scores: unknown worker \"" + request.worker + "\"");
    return;
  }
  if (request.scores.empty()) {
    response =
        Response::failure(request.id, "post_scores: scores must be non-empty");
    return;
  }
  for (const double s : request.scores) {
    if (!std::isfinite(s)) {
      response =
          Response::failure(request.id, "post_scores: scores must be finite");
      return;
    }
  }
  // Out-of-band observation: advances this worker's estimator chain by one
  // step, exactly like one platform run's worth of scores. Traces that must
  // stay bit-identical to a batch run simply do not use this op.
  estimator_->observe(*id, lds::ScoreSet::from(request.scores));
  if (obs::enabled()) {
    metric_counter(oob_scores_metric_, "svc/out_of_band_scores")
        .add(request.scores.size());
  }
  response.fields.set("worker", WireValue::of(request.worker));
  response.fields.set("scores", of_int(static_cast<std::int64_t>(
                                    request.scores.size())));
  response.fields.set("estimate", WireValue::of(estimator_->estimate(*id)));
}

void AuctionService::handle_query_worker(const Request& request,
                                         Response& response) {
  const auto id = registry_.find(request.worker);
  if (!id.has_value()) {
    response = Response::failure(
        request.id, "query_worker: unknown worker \"" + request.worker + "\"");
    return;
  }
  response.fields.set("worker", WireValue::of(request.worker));
  response.fields.set("internal_id", of_int(*id));
  response.fields.set("estimate", WireValue::of(estimator_->estimate(*id)));
  response.fields.set("total_utility",
                      WireValue::of(platform_->worker_total_utility(*id)));
  response.fields.set("bids_submitted", of_int(static_cast<std::int64_t>(
                                            registry_.bids_submitted(*id))));
}

void AuctionService::handle_query_run(const Request& request,
                                      Response& response) {
  const int first = first_session_run_;
  const int last = first + static_cast<int>(records_.size()) - 1;
  if (request.run < 1) {
    response = Response::failure(request.id, "query_run: run is 1-based");
    return;
  }
  if (request.run < first) {
    response = Response::failure(
        request.id, "query_run: run " + std::to_string(request.run) +
                        " predates this session (run records are not part of "
                        "a checkpoint)");
    return;
  }
  if (request.run > last) {
    response = Response::failure(
        request.id, "query_run: run " + std::to_string(request.run) +
                        " has not executed yet");
    return;
  }
  const sim::RunRecord& r =
      records_[static_cast<std::size_t>(request.run - first)];
  response.fields.set("run", of_int(r.run));
  response.fields.set("estimated_utility",
                      of_int(static_cast<std::int64_t>(r.estimated_utility)));
  response.fields.set("true_utility",
                      of_int(static_cast<std::int64_t>(r.true_utility)));
  response.fields.set("estimation_error", WireValue::of(r.estimation_error));
  response.fields.set("total_payment", WireValue::of(r.total_payment));
  response.fields.set("assignments",
                      of_int(static_cast<std::int64_t>(r.assignments)));
  response.fields.set("qualified_workers",
                      of_int(static_cast<std::int64_t>(r.qualified_workers)));
  if (platform_->fault_plan().active()) {
    response.fields.set("no_shows",
                        of_int(static_cast<std::int64_t>(r.no_shows)));
    response.fields.set("churned_out",
                        of_int(static_cast<std::int64_t>(r.churned_out)));
    response.fields.set("scores_dropped",
                        of_int(static_cast<std::int64_t>(r.scores_dropped)));
    response.fields.set(
        "scores_corrupted",
        of_int(static_cast<std::int64_t>(r.scores_corrupted)));
  }
}

void AuctionService::handle_stats(Response& response) {
  response.fields.set("next_run", of_int(platform_->current_run()));
  response.fields.set("runs_total", of_int(platform_->current_run() - 1));
  response.fields.set("runs_this_session",
                      of_int(static_cast<std::int64_t>(records_.size())));
  response.fields.set("pending_bids", of_int(batcher_.pending_bids()));
  response.fields.set("accrued_budget",
                      WireValue::of(batcher_.accrued_budget()));
  response.fields.set("workers", of_int(static_cast<std::int64_t>(
                                     platform_->workers().size())));
  response.fields.set("sessions",
                      of_int(static_cast<std::int64_t>(registry_.size())));
  response.fields.set("requests",
                      of_int(static_cast<std::int64_t>(requests_total_)));
  response.fields.set("overload_rejects",
                      of_int(static_cast<std::int64_t>(overload_rejects_)));
  response.fields.set("queue_depth",
                      of_int(static_cast<std::int64_t>(last_queue_depth_)));
  response.fields.set("finished", WireValue::of(platform_->finished()));
}

void AuctionService::handle_trace_status(Response& response) {
  // Live introspection of the tracing layer plus this shard's phase-latency
  // percentiles, read from the same obs registry the instrumentation
  // records into (under this shard's namespace). The router's merge
  // re-homes these fields under "shard<k>/..." and sums the tallies, so a
  // K-shard deployment answers with per-shard and union views at once.
  // With tracing off the timer stats are simply zero.
  response.fields.set("tracing", WireValue::of(obs::enabled()));
  response.fields.set("spans",
                      of_int(static_cast<std::int64_t>(obs::spans_emitted())));
  response.fields.set("requests",
                      of_int(static_cast<std::int64_t>(requests_total_)));
  response.fields.set("runs", of_int(platform_->current_run() - 1));
  const auto add_timer = [this, &response](const std::string& label,
                                           std::string_view metric) {
    const obs::Summary::Stats stats =
        obs::registry()
            .timer(config_.obs_prefix + std::string(metric))
            .stats();
    response.fields.set(label + "_count",
                        of_int(static_cast<std::int64_t>(stats.count)));
    response.fields.set(label + "_p50_ms", WireValue::of(stats.p50 * 1e3));
    response.fields.set(label + "_p90_ms", WireValue::of(stats.p90 * 1e3));
    response.fields.set(label + "_p99_ms", WireValue::of(stats.p99 * 1e3));
  };
  add_timer("request_time", "svc/request_time");
  add_timer("run_time", "svc/run_time");
}

void AuctionService::handle_checkpoint(const Request& request,
                                       Response& response) {
  const std::string& path =
      request.path.empty() ? config_.checkpoint_path : request.path;
  if (path.empty()) {
    response = Response::failure(
        request.id,
        "checkpoint: no path in the request and none configured");
    return;
  }
  write_checkpoint(path);
  response.fields.set("path", WireValue::of(path));
  response.fields.set("run", of_int(platform_->current_run() - 1));
}

int AuctionService::execute_due_runs(Response* response) {
  int executed = 0;
  while (batcher_.should_fire(now_)) {
    const int batch = batcher_.pending_bids();
    batcher_.consume(now_);
    execute_one_run(batch);
    ++executed;
  }
  if (executed > 0 && response != nullptr) {
    response->fields.set("runs_executed", of_int(executed));
    response->fields.set("run", of_int(platform_->current_run() - 1));
  }
  return executed;
}

void AuctionService::execute_one_run(int batch_bids) {
  {
    obs::ScopedSpan span("svc/run");
    span.annotate("run", platform_->current_run());
    span.annotate("batch_bids", batch_bids);
    obs::ScopedTimer timer(metric_timer(run_timer_, "svc/run_time"));
    records_.push_back(platform_->step());
  }
  if (obs::enabled()) {
    metric_counter(runs_metric_, "svc/runs").add();
    if (batch_summary_ == nullptr) {
      batch_summary_ =
          &obs::registry().summary(config_.obs_prefix + "svc/batch_size");
    }
    batch_summary_->record(batch_bids);
  }
  const int run = records_.back().run;
  if (config_.checkpoint_every > 0 && run % config_.checkpoint_every == 0) {
    write_checkpoint(config_.checkpoint_path);
  }
  if (config_.exit_after_runs > 0 &&
      static_cast<int>(records_.size()) >= config_.exit_after_runs) {
    shutdown_requested_ = true;
  }
}

int AuctionService::poll_batches() { return execute_due_runs(nullptr); }

void AuctionService::advance_clock(double seconds_since_start) {
  if (config_.manual_clock) return;
  now_ = std::max(now_, seconds_since_start);
}

double AuctionService::seconds_until_deadline() const noexcept {
  return batcher_.seconds_until_deadline(now_);
}

void AuctionService::note_queue_depth(std::size_t depth) {
  last_queue_depth_ = depth;
  if (obs::enabled()) {
    if (queue_gauge_ == nullptr) {
      queue_gauge_ =
          &obs::registry().gauge(config_.obs_prefix + "svc/queue_depth");
    }
    queue_gauge_->set(static_cast<double>(depth));
  }
}

void AuctionService::set_run_hook(
    std::function<void(const sim::RunRecord&)> hook) {
  platform_->set_run_hook(std::move(hook));
}

void AuctionService::note_control_request() {
  ++requests_total_;
  if (obs::enabled()) {
    metric_counter(requests_metric_, "svc/requests").add();
  }
}

void AuctionService::note_overload_reject() {
  ++overload_rejects_;
  if (obs::enabled()) {
    metric_counter(rejects_metric_, "svc/overload_rejects").add();
  }
}

void AuctionService::finalize() {
  if (finalized_) return;
  if (!config_.checkpoint_path.empty()) {
    write_checkpoint(config_.checkpoint_path);
  }
  finalized_ = true;
}

void AuctionService::save_state(std::ostream& out) const {
  obs::ScopedSpan span("svc/checkpoint_save");
  span.annotate("run", platform_->current_run() - 1);
  out.write(kMagic, sizeof kMagic);
  binio::write_u32(out, kVersion);
  binio::write_f64(out, now_);
  binio::write_i32(out, batcher_.pending_bids());
  binio::write_f64(out, batcher_.oldest_bid_time());
  binio::write_f64(out, batcher_.accrued_budget());
  binio::write_i32(out, batcher_.pending_arrivals());
  registry_.save(out);
  platform_->save(out);
  if (!out) throw std::runtime_error("svc: checkpoint write failure");
}

void AuctionService::load_state(std::istream& in) {
  obs::ScopedSpan span("svc/checkpoint_load");
  char magic[8];
  if (!in.read(magic, sizeof magic) ||
      !std::equal(magic, magic + sizeof magic, kMagic)) {
    throw std::runtime_error("svc: bad checkpoint magic");
  }
  const std::uint32_t version = binio::read_u32(in, "svc version");
  if (version != 1 && version != kVersion) {
    // Version 2 is the sharded router's composed container, not a plain
    // service snapshot — it cannot be adopted here.
    throw std::runtime_error("svc: unsupported checkpoint version " +
                             std::to_string(version));
  }
  const double now = binio::read_f64(in, "svc clock");
  const int pending = binio::read_i32(in, "svc pending bids");
  const double oldest = binio::read_f64(in, "svc oldest bid time");
  const double accrued = binio::read_f64(in, "svc accrued budget");
  const int arrivals =
      version >= 3 ? binio::read_i32(in, "svc pending arrivals") : 0;
  registry_.load(in);
  platform_->load(in);
  now_ = now;
  batcher_.restore(pending, oldest, accrued, arrivals);
  first_session_run_ = platform_->current_run();
  records_.clear();
  finalized_ = false;
}

void AuctionService::save_migration(std::ostream& out) const {
  obs::ScopedSpan span("svc/migration_save");
  span.annotate("run", platform_->current_run() - 1);
  out.write(kMigrationMagic, sizeof kMigrationMagic);
  binio::write_u32(out, kMigrationVersion);
  // The checkpoint body rides as one length-prefixed blob so the envelope
  // can evolve its tail without touching the MLDYSVCK layout.
  std::ostringstream blob;
  save_state(blob);
  binio::write_bytes(out, blob.str());
  binio::write_u64(out, requests_total_);
  binio::write_u64(out, overload_rejects_);
  binio::write_i32(out, first_session_run_);
  binio::write_u64(out, static_cast<std::uint64_t>(records_.size()));
  for (const sim::RunRecord& r : records_) {
    binio::write_i32(out, r.run);
    binio::write_u64(out, static_cast<std::uint64_t>(r.estimated_utility));
    binio::write_u64(out, static_cast<std::uint64_t>(r.true_utility));
    binio::write_f64(out, r.estimation_error);
    binio::write_f64(out, r.total_payment);
    binio::write_u64(out, static_cast<std::uint64_t>(r.assignments));
    binio::write_u64(out, static_cast<std::uint64_t>(r.qualified_workers));
    binio::write_u64(out, static_cast<std::uint64_t>(r.no_shows));
    binio::write_u64(out, static_cast<std::uint64_t>(r.churned_out));
    binio::write_u64(out, static_cast<std::uint64_t>(r.scores_dropped));
    binio::write_u64(out, static_cast<std::uint64_t>(r.scores_corrupted));
  }
  if (!out) throw std::runtime_error("svc: migration write failure");
}

void AuctionService::load_migration(std::istream& in) {
  obs::ScopedSpan span("svc/migration_load");
  char magic[8];
  if (!in.read(magic, sizeof magic) ||
      !std::equal(magic, magic + sizeof magic, kMigrationMagic)) {
    throw std::runtime_error("svc: bad migration magic");
  }
  const std::uint32_t version = binio::read_u32(in, "migration version");
  if (version != kMigrationVersion) {
    throw std::runtime_error("svc: unsupported migration version " +
                             std::to_string(version));
  }
  {
    std::istringstream blob(binio::read_bytes(in, "migration checkpoint"));
    load_state(blob);  // resets records_ / first_session_run_; tail follows
  }
  requests_total_ = binio::read_u64(in, "migration requests");
  overload_rejects_ = binio::read_u64(in, "migration overload rejects");
  first_session_run_ = binio::read_i32(in, "migration first run");
  const std::uint64_t count = binio::read_u64(in, "migration record count");
  records_.clear();
  records_.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    sim::RunRecord r;
    r.run = binio::read_i32(in, "migration record run");
    r.estimated_utility = static_cast<std::size_t>(
        binio::read_u64(in, "migration estimated utility"));
    r.true_utility =
        static_cast<std::size_t>(binio::read_u64(in, "migration true utility"));
    r.estimation_error = binio::read_f64(in, "migration estimation error");
    r.total_payment = binio::read_f64(in, "migration total payment");
    r.assignments =
        static_cast<std::size_t>(binio::read_u64(in, "migration assignments"));
    r.qualified_workers = static_cast<std::size_t>(
        binio::read_u64(in, "migration qualified workers"));
    r.no_shows =
        static_cast<std::size_t>(binio::read_u64(in, "migration no shows"));
    r.churned_out =
        static_cast<std::size_t>(binio::read_u64(in, "migration churned out"));
    r.scores_dropped = static_cast<std::size_t>(
        binio::read_u64(in, "migration scores dropped"));
    r.scores_corrupted = static_cast<std::size_t>(
        binio::read_u64(in, "migration scores corrupted"));
    records_.push_back(r);
  }
}

void AuctionService::write_checkpoint(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("svc: cannot open " + tmp);
    save_state(out);
    out.flush();
    if (!out) throw std::runtime_error("svc: write failure on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("svc: cannot rename " + tmp + " to " + path);
  }
}

}  // namespace melody::svc
