#include "svc/shard.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "util/rng.h"

namespace melody::svc {

namespace {

// Contiguous proportional split of `total` across K shards: the first
// total%K shards take one extra unit. Used for workers, tasks, and any
// explicit min_bids trigger so every split telescopes exactly.
int slice_size(int total, int shards, int index) {
  return total / shards + (index < total % shards ? 1 : 0);
}

}  // namespace

std::vector<ShardPlan> plan_shards(const ServiceConfig& config) {
  config.validate();
  const int k = config.shards;
  std::vector<ShardPlan> plans;
  plans.reserve(static_cast<std::size_t>(k));
  const int total_workers = config.scenario.num_workers;
  int worker_offset = 0;
  for (int s = 0; s < k; ++s) {
    ShardPlan plan;
    plan.index = s;
    plan.worker_offset = worker_offset;
    plan.config = config;
    plan.config.shards = 1;
    plan.config.worker_name_offset = worker_offset;
    // The router owns the composed checkpoint file and its cadence; a
    // shard must never race it with a partial single-shard snapshot.
    plan.config.checkpoint_path.clear();
    plan.config.checkpoint_every = 0;
    if (k > 1) {
      // Shard-local metrics register under their own namespace so the
      // trace_status / stats merges can report per-shard views.
      plan.config.obs_prefix = "shard" + std::to_string(s) + "/";
      const int shard_workers = slice_size(total_workers, k, s);
      const double share = static_cast<double>(shard_workers) /
                           static_cast<double>(total_workers);
      plan.config.scenario.num_workers = shard_workers;
      plan.config.scenario.num_tasks =
          slice_size(config.scenario.num_tasks, k, s);
      plan.config.scenario.budget = config.scenario.budget * share;
      plan.config.seed =
          util::derive_stream(config.seed, kShardSeedSalt,
                              static_cast<std::uint64_t>(s));
      if (config.batch.min_bids > 0) {
        const int part = slice_size(config.batch.min_bids, k, s);
        plan.config.batch.min_bids = part < 1 ? 1 : part;
      }
      if (config.batch.budget_target > 0.0) {
        plan.config.batch.budget_target = config.batch.budget_target * share;
      }
    }
    worker_offset += plan.config.scenario.num_workers;
    plans.push_back(std::move(plan));
  }
  if (worker_offset != total_workers) {
    throw std::logic_error("svc: shard plan does not cover the population");
  }
  return plans;
}

PlatformShard::PlatformShard(const ShardPlan& plan)
    : index_(plan.index),
      worker_offset_(plan.worker_offset),
      service_(plan.config),
      loop_(service_, static_cast<std::size_t>(plan.config.queue_capacity)) {}

PlatformShard::~PlatformShard() {
  loop_.close();
  join();
}

PushResult PlatformShard::submit(Request request,
                                 std::function<void(const Response&)> done,
                                 const obs::TraceContext& trace) {
  const PushResult result =
      loop_.try_submit(std::move(request), std::move(done), trace);
  if (obs::enabled()) {
    const std::string& prefix = service_.config().obs_prefix;
    if (result == PushResult::kOk) {
      if (requests_ == nullptr) {
        requests_ = &obs::registry().counter(prefix + "svc/routed");
      }
      requests_->add();
    } else {
      if (rejects_ == nullptr) {
        rejects_ = &obs::registry().counter(prefix + "svc/routed_rejects");
      }
      rejects_->add();
    }
  }
  return result;
}

PushResult PlatformShard::submit_task(
    std::function<void(AuctionService&)> task) {
  return loop_.submit_task(std::move(task));
}

void PlatformShard::set_run_sink(
    std::function<void(int, const sim::RunRecord&)> sink) {
  // The service already counts runs under obs_prefix + "svc/runs"; the
  // sink hook only forwards to the router's cross-shard aggregation.
  service_.set_run_hook(
      [this, sink = std::move(sink)](const sim::RunRecord& record) {
        if (sink) sink(index_, record);
      });
}

void PlatformShard::start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { loop_.run(); });
}

void PlatformShard::join() {
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

}  // namespace melody::svc
