// ShardedService: the request router in front of K platform shards.
//
// Single-worker ops (submit_bid, post_scores, query_worker) route by
// affinity: scenario names "w<g>" map to the contiguous range owner,
// everything else (newcomers, foreign names) hashes deterministically so a
// worker always lands on the same shard. query_run addresses a shard
// explicitly through the request's "shard" field. Broadcast ops (hello,
// submit_tasks, tick, run_now, stats, shutdown) fan out to every shard and
// merge the K responses into one line — counts and budgets sum, "finished"
// ANDs, run cursors take the max — so a K-shard deployment answers with
// union-platform numbers.
//
// Checkpoints compose: the router writes MLDYSVCK v2 — a header plus K
// length-prefixed v1 sub-snapshots — coordinated by force-pushed tasks
// through each shard's own queue, so every sub-snapshot is taken on its
// consumer thread between requests (per-shard consistency, no locks). v1
// files restore directly when K == 1.
//
// At K=1 every path degenerates to the plain single-platform service:
// identical responses, identical trajectories, identical checkpoint
// payloads (wrapped in the v2 header) — the bit-identity contract the
// shard tests pin.
//
// Cluster mode (configure_cluster) turns one instance into one member of
// a multi-process deployment: every member plans the full global-K shard
// set (identical worker_offsets and per-shard seeds everywhere), and a
// per-shard activity mask marks the shards this process currently owns.
// Inactive shards answer structured not_owner rejections carrying the
// member's routing epoch; broadcasts fan out to active shards only, and
// the merge re-homes per-shard views under their GLOBAL indices, so the
// cluster client can splice member replies back into the exact bytes a
// single-process deployment would emit. Live handoff is the shard_export /
// shard_import op pair: export detaches the shard on the submitting
// thread (nothing can land behind the snapshot) and writes the MLDYMIGR
// envelope from the shard's own consumer thread; import loads it and
// activates the shard on the target.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "svc/shard.h"

namespace melody::svc {

class ShardedService {
 public:
  /// Plans the shards and constructs every platform eagerly; throws
  /// std::invalid_argument (via validate) on an unusable config.
  explicit ShardedService(ServiceConfig config);
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Load a composed checkpoint (v2; plain v1 accepted when K == 1).
  /// Call before start(). Throws std::runtime_error on mismatch.
  void restore(const std::string& path);

  /// Spawn the K consumer threads (TCP deployments). Sync drivers (the
  /// stdio session, tests) skip this and drive poll_once instead.
  void start();
  bool started() const noexcept { return started_; }

  /// Route or broadcast one request. kFull / kClosed mean the request was
  /// NOT accepted anywhere and `done` will never run — send rejection().
  /// `done` may run on any shard's consumer thread (or inline, for
  /// requests the router answers itself). `trace` (optional) is the
  /// inbound frame's root trace context; it rides the envelope (or the
  /// fan-out task closures) so every shard-side span parents on the frame.
  PushResult submit(const Request& request,
                    std::function<void(const Response&)> done,
                    const obs::TraceContext& trace = {});

  /// Where submit() would send `request`: a shard index for single-worker
  /// ops and an in-range query_run, kShardBroadcast (see svc/trace_log.h)
  /// for fan-out ops (including checkpoint), kShardNone for a request the
  /// router answers inline (query_run with the shard out of range). Pure —
  /// the trace recorder's routing column.
  int routing_decision(const Request& request) const;

  Response rejection(PushResult result, const Request& request) const;

  /// Single-threaded driving: process at most one envelope per shard.
  /// Returns true if any shard processed one.
  bool poll_once(std::chrono::nanoseconds timeout);

  /// Stop accepting new requests on every shard (SIGINT path); queued
  /// work still drains and the consumer threads then exit.
  void begin_shutdown();

  /// True once any shard (or the router itself) saw a shutdown request.
  bool shutdown_requested() const;

  /// Join the consumer threads. After join the services are quiescent.
  void join();

  /// Write the final composed checkpoint if one is configured. Requires
  /// quiescence (threads joined, or never started). Idempotent.
  void finalize();

  /// Enter cluster mode as one member of a multi-process deployment: bit s
  /// of `active_mask` marks shard s as owned by this process, `epoch` seeds
  /// the routing epoch. Must be called before any request is submitted.
  /// Throws std::invalid_argument when the deployment has more than 64
  /// shards (the mask width bounds cluster deployments).
  void configure_cluster(std::uint64_t active_mask, std::int64_t epoch);
  bool cluster_mode() const noexcept { return cluster_mode_; }
  bool shard_active(int s) const noexcept {
    return (active_mask_.load(std::memory_order_acquire) >>
            static_cast<unsigned>(s)) & 1u;
  }
  /// Current routing epoch (bumped by shard_export/shard_import).
  std::int64_t routing_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// The mask of currently-active shards (cluster status reporting).
  std::uint64_t active_mask() const noexcept {
    return active_mask_.load(std::memory_order_acquire);
  }

  int shard_count() const noexcept { return static_cast<int>(shards_.size()); }
  PlatformShard& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }
  const PlatformShard& shard(int s) const {
    return *shards_[static_cast<std::size_t>(s)];
  }
  const ServiceConfig& config() const noexcept { return config_; }
  bool manual_clock() const noexcept { return config_.manual_clock; }

  /// The shard that owns `worker` (stable for the deployment's lifetime).
  int route(const std::string& worker) const;

  /// Runs executed across all shards since construction/restore.
  std::uint64_t total_runs() const noexcept {
    return total_runs_.load(std::memory_order_relaxed);
  }

  /// Union-platform per-run trajectory (sim::merge_run_records over the
  /// shards' records). Requires quiescence.
  std::vector<sim::RunRecord> aggregated_records() const;

  /// Composed v2 snapshot of every shard, taken directly (requires
  /// quiescence). The async checkpoint op uses per-shard tasks instead.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

 private:
  // One in-flight broadcast: collects the K per-shard responses and fires
  // the merged one when the last arrives (on that shard's thread).
  struct FanOut;
  // One in-flight coordinated checkpoint: per-shard sub-snapshot blobs
  // plus the countdown; the last shard composes and writes the file.
  struct CheckpointJob;

  PushResult broadcast(const Request& request,
                       std::function<void(const Response&)> done,
                       const obs::TraceContext& trace);
  PushResult submit_checkpoint(const Request& request,
                               std::function<void(const Response&)> done,
                               const obs::TraceContext& trace = {});
  PushResult submit_shard_export(const Request& request,
                                 std::function<void(const Response&)> done,
                                 const obs::TraceContext& trace);
  PushResult submit_shard_import(const Request& request,
                                 std::function<void(const Response&)> done,
                                 const obs::TraceContext& trace);
  void complete_checkpoint(const std::shared_ptr<CheckpointJob>& job);
  void on_run(int shard_index, const sim::RunRecord& record);
  void set_shard_active(int s, bool active) noexcept;
  /// The global indices of the shards a broadcast fans out to: all of them,
  /// or the active subset in cluster mode.
  std::vector<int> broadcast_targets() const;

  ServiceConfig config_;
  std::vector<std::unique_ptr<PlatformShard>> shards_;
  std::vector<int> worker_offsets_;  // size K+1; [s, s+1) = shard s's range
  std::atomic<std::uint64_t> total_runs_{0};
  std::atomic<bool> checkpoint_in_flight_{false};
  std::atomic<bool> shutdown_{false};
  bool started_ = false;
  bool finalized_ = false;
  bool cluster_mode_ = false;
  std::atomic<std::uint64_t> active_mask_{~0ull};
  std::atomic<std::int64_t> epoch_{1};
};

/// Shard affinity as a pure function (shared by the router and the cluster
/// client's routing table): scenario names "w<g>" with g inside the initial
/// population map to the contiguous range owner; everything else hashes
/// deterministically. `worker_offsets` has K+1 entries (plan_shards' split)
/// and `num_workers` is the scenario population size.
int route_worker(const std::string& worker,
                 const std::vector<int>& worker_offsets, int num_workers);

/// Merge per-shard broadcast responses into one reply line.
/// `shard_indices[i]` is the GLOBAL shard that produced parts[i];
/// `global_shards` is the deployment's K — re-homing and the trace_status
/// percentile rules key on the deployment size, not on how many parts one
/// process contributed. With `rehome_all` every op re-homes its parts
/// under "shard<g>/..." (cluster members always do this — some additive
/// fields appear only on shards that produced them, so a partial merge
/// loses information the coordinator-side re-merge needs; re-homed parts
/// carry every field verbatim). Exposed so the cluster client can re-merge
/// per-member replies into the exact bytes a single-process deployment
/// would have produced.
Response merge_shard_parts(Op op, std::int64_t id,
                           const std::vector<Response>& parts,
                           const std::vector<int>& shard_indices,
                           int global_shards, bool rehome_all = false);

class TraceRecorder;

/// Drive a sharded service from line-delimited requests on `in`, one
/// response line on `out` per request, in order. Single-threaded: every
/// line is submitted and then all shards are polled until the merged
/// response has been delivered. At K=1 the output is bit-identical to the
/// ServiceLoop overload. When `recorder` is given every frame is recorded
/// as connection 1 (stdio sessions have exactly one client) with the
/// router's routing decision; when tracing is enabled each line also mints
/// a root trace context, exactly like the TCP front end.
StdioResult run_stdio_session(ShardedService& service, std::istream& in,
                              std::ostream& out,
                              TraceRecorder* recorder = nullptr);

}  // namespace melody::svc
