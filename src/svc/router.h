// ShardedService: the request router in front of K platform shards.
//
// Single-worker ops (submit_bid, post_scores, query_worker) route by
// affinity: scenario names "w<g>" map to the contiguous range owner,
// everything else (newcomers, foreign names) hashes deterministically so a
// worker always lands on the same shard. query_run addresses a shard
// explicitly through the request's "shard" field. Broadcast ops (hello,
// submit_tasks, tick, run_now, stats, shutdown) fan out to every shard and
// merge the K responses into one line — counts and budgets sum, "finished"
// ANDs, run cursors take the max — so a K-shard deployment answers with
// union-platform numbers.
//
// Checkpoints compose: the router writes MLDYSVCK v2 — a header plus K
// length-prefixed v1 sub-snapshots — coordinated by force-pushed tasks
// through each shard's own queue, so every sub-snapshot is taken on its
// consumer thread between requests (per-shard consistency, no locks). v1
// files restore directly when K == 1.
//
// At K=1 every path degenerates to the plain single-platform service:
// identical responses, identical trajectories, identical checkpoint
// payloads (wrapped in the v2 header) — the bit-identity contract the
// shard tests pin.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "svc/shard.h"

namespace melody::svc {

class ShardedService {
 public:
  /// Plans the shards and constructs every platform eagerly; throws
  /// std::invalid_argument (via validate) on an unusable config.
  explicit ShardedService(ServiceConfig config);
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Load a composed checkpoint (v2; plain v1 accepted when K == 1).
  /// Call before start(). Throws std::runtime_error on mismatch.
  void restore(const std::string& path);

  /// Spawn the K consumer threads (TCP deployments). Sync drivers (the
  /// stdio session, tests) skip this and drive poll_once instead.
  void start();
  bool started() const noexcept { return started_; }

  /// Route or broadcast one request. kFull / kClosed mean the request was
  /// NOT accepted anywhere and `done` will never run — send rejection().
  /// `done` may run on any shard's consumer thread (or inline, for
  /// requests the router answers itself). `trace` (optional) is the
  /// inbound frame's root trace context; it rides the envelope (or the
  /// fan-out task closures) so every shard-side span parents on the frame.
  PushResult submit(const Request& request,
                    std::function<void(const Response&)> done,
                    const obs::TraceContext& trace = {});

  /// Where submit() would send `request`: a shard index for single-worker
  /// ops and an in-range query_run, kShardBroadcast (see svc/trace_log.h)
  /// for fan-out ops (including checkpoint), kShardNone for a request the
  /// router answers inline (query_run with the shard out of range). Pure —
  /// the trace recorder's routing column.
  int routing_decision(const Request& request) const;

  Response rejection(PushResult result, const Request& request) const;

  /// Single-threaded driving: process at most one envelope per shard.
  /// Returns true if any shard processed one.
  bool poll_once(std::chrono::nanoseconds timeout);

  /// Stop accepting new requests on every shard (SIGINT path); queued
  /// work still drains and the consumer threads then exit.
  void begin_shutdown();

  /// True once any shard (or the router itself) saw a shutdown request.
  bool shutdown_requested() const;

  /// Join the consumer threads. After join the services are quiescent.
  void join();

  /// Write the final composed checkpoint if one is configured. Requires
  /// quiescence (threads joined, or never started). Idempotent.
  void finalize();

  int shard_count() const noexcept { return static_cast<int>(shards_.size()); }
  PlatformShard& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }
  const PlatformShard& shard(int s) const {
    return *shards_[static_cast<std::size_t>(s)];
  }
  const ServiceConfig& config() const noexcept { return config_; }
  bool manual_clock() const noexcept { return config_.manual_clock; }

  /// The shard that owns `worker` (stable for the deployment's lifetime).
  int route(const std::string& worker) const;

  /// Runs executed across all shards since construction/restore.
  std::uint64_t total_runs() const noexcept {
    return total_runs_.load(std::memory_order_relaxed);
  }

  /// Union-platform per-run trajectory (sim::merge_run_records over the
  /// shards' records). Requires quiescence.
  std::vector<sim::RunRecord> aggregated_records() const;

  /// Composed v2 snapshot of every shard, taken directly (requires
  /// quiescence). The async checkpoint op uses per-shard tasks instead.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

 private:
  // One in-flight broadcast: collects the K per-shard responses and fires
  // the merged one when the last arrives (on that shard's thread).
  struct FanOut;
  // One in-flight coordinated checkpoint: per-shard sub-snapshot blobs
  // plus the countdown; the last shard composes and writes the file.
  struct CheckpointJob;

  PushResult broadcast(const Request& request,
                       std::function<void(const Response&)> done,
                       const obs::TraceContext& trace);
  PushResult submit_checkpoint(const Request& request,
                               std::function<void(const Response&)> done,
                               const obs::TraceContext& trace = {});
  void complete_checkpoint(const std::shared_ptr<CheckpointJob>& job);
  void on_run(int shard_index, const sim::RunRecord& record);
  static Response merge_parts(Op op, std::int64_t id,
                              const std::vector<Response>& parts);

  ServiceConfig config_;
  std::vector<std::unique_ptr<PlatformShard>> shards_;
  std::vector<int> worker_offsets_;  // size K+1; [s, s+1) = shard s's range
  std::atomic<std::uint64_t> total_runs_{0};
  std::atomic<bool> checkpoint_in_flight_{false};
  std::atomic<bool> shutdown_{false};
  bool started_ = false;
  bool finalized_ = false;
};

class TraceRecorder;

/// Drive a sharded service from line-delimited requests on `in`, one
/// response line on `out` per request, in order. Single-threaded: every
/// line is submitted and then all shards are polled until the merged
/// response has been delivered. At K=1 the output is bit-identical to the
/// ServiceLoop overload. When `recorder` is given every frame is recorded
/// as connection 1 (stdio sessions have exactly one client) with the
/// router's routing decision; when tracing is enabled each line also mints
/// a root trace context, exactly like the TCP front end.
StdioResult run_stdio_session(ShardedService& service, std::istream& in,
                              std::ostream& out,
                              TraceRecorder* recorder = nullptr);

}  // namespace melody::svc
