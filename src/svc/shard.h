// Shard planning + the per-shard runtime unit of the sharded service.
//
// A K-shard deployment splits the scenario population into K contiguous,
// independent sub-markets: shard s owns workers [offset_s, offset_{s+1}),
// its proportional slice of the per-run task load and budget, and its own
// AuctionService + ServiceLoop + (in threaded deployments) consumer thread.
// Shards never share mutable state — cross-shard aggregation happens in
// svc/router.h over immutable run records and composed checkpoints.
//
// Determinism contract: plan_shards(config)[s].config is exactly the
// ServiceConfig a standalone single-platform service would run for that
// sub-market, so a shard's trajectory is bit-identical to the standalone
// service built from the same plan. At K=1 the plan keeps the global seed
// untouched and the sharded runtime reproduces the plain AuctionService
// bit for bit.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "svc/config.h"
#include "svc/loop.h"
#include "svc/service.h"

namespace melody::obs {
class Counter;
}

namespace melody::svc {

/// Salt for per-shard master seeds at K>1: shard s of a K-shard deployment
/// runs on util::derive_stream(seed, kShardSeedSalt, s). K=1 keeps the
/// global seed untouched (bit-identity with the unsharded service).
inline constexpr std::uint64_t kShardSeedSalt = 0x5348'4152'444D'4B59ull;

/// One shard's slice of the deployment: its index, the first global worker
/// name index it owns, and the standalone-equivalent per-shard config.
struct ShardPlan {
  int index = 0;
  int worker_offset = 0;
  ServiceConfig config;
};

/// Split `config` into config.shards per-shard configs: contiguous worker
/// ranges (the first N%K shards take one extra worker), tasks split the
/// same way, budget and any explicit batch triggers scaled by worker
/// share, per-shard seeds salted at K>1. Checkpoint ownership is lifted to
/// the router, so per-shard checkpoint_path/checkpoint_every are cleared.
/// Throws std::invalid_argument (via validate) on an unusable config.
std::vector<ShardPlan> plan_shards(const ServiceConfig& config);

/// One platform shard: an AuctionService plus its single-consumer
/// ServiceLoop and, once start() is called, the consumer thread. Tracks
/// router-level obs counters under the plan's obs_prefix namespace
/// ("shard<k>/svc/routed", "shard<k>/svc/routed_rejects"; un-prefixed at
/// K=1) — the service-level counters live under the same prefix, so one
/// shard's whole metric surface shares one namespace.
class PlatformShard {
 public:
  explicit PlatformShard(const ShardPlan& plan);
  ~PlatformShard();

  PlatformShard(const PlatformShard&) = delete;
  PlatformShard& operator=(const PlatformShard&) = delete;

  /// Enqueue a request from any thread (see ServiceLoop::try_submit).
  PushResult submit(Request request, std::function<void(const Response&)> done,
                    const obs::TraceContext& trace = {});

  /// Enqueue a control-plane task past the capacity bound.
  PushResult submit_task(std::function<void(AuctionService&)> task);

  /// Install the platform run hook: bump the per-shard run counter, then
  /// call `sink(index, record)` — the router's cross-shard aggregation.
  /// Runs on the shard's consumer thread; call before start().
  void set_run_sink(std::function<void(int, const sim::RunRecord&)> sink);

  /// Spawn the consumer thread (threaded deployments; sync drivers use
  /// poll_once instead).
  void start();
  bool started() const noexcept { return started_; }

  /// Stop accepting new requests; queued work still drains.
  void close() { loop_.close(); }

  /// Join the consumer thread if one was started. After join the service
  /// is quiescent and may be touched directly (save_state, records).
  void join();

  /// Single-threaded driving: process at most one queued envelope.
  bool poll_once(std::chrono::nanoseconds timeout) {
    return loop_.poll_once(timeout);
  }

  Response rejection(PushResult result, const Request& request) const {
    return loop_.rejection(result, request);
  }

  int index() const noexcept { return index_; }
  int worker_offset() const noexcept { return worker_offset_; }
  AuctionService& service() noexcept { return service_; }
  const AuctionService& service() const noexcept { return service_; }
  ServiceLoop& loop() noexcept { return loop_; }

 private:
  int index_;
  int worker_offset_;
  AuctionService service_;
  ServiceLoop loop_;
  std::thread thread_;
  bool started_ = false;
  // Lazily-resolved per-shard obs counters (null until first enabled use).
  obs::Counter* requests_ = nullptr;
  obs::Counter* rejects_ = nullptr;
};

}  // namespace melody::svc
