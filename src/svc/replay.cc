#include "svc/replay.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "svc/router.h"

namespace melody::svc {

namespace {

// One mask pattern against one key: exact, "prefix*", or "*suffix".
bool pattern_matches(std::string_view pattern, std::string_view key) {
  if (pattern.empty()) return false;
  if (pattern.front() == '*') {
    const std::string_view suffix = pattern.substr(1);
    return key.size() >= suffix.size() &&
           key.substr(key.size() - suffix.size()) == suffix;
  }
  if (pattern.back() == '*') {
    const std::string_view prefix = pattern.substr(0, pattern.size() - 1);
    return key.substr(0, prefix.size()) == prefix;
  }
  return key == pattern;
}

std::string value_repr(const WireValue* value) {
  if (value == nullptr) return "<absent>";
  switch (value->kind) {
    case WireValue::Kind::kNull:
      return "null";
    case WireValue::Kind::kBool:
      return value->boolean ? "true" : "false";
    case WireValue::Kind::kNumber: {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.17g", value->number);
      return buffer;
    }
    case WireValue::Kind::kString:
      return "\"" + value->text + "\"";
    case WireValue::Kind::kNumberList: {
      std::string out = "[";
      for (std::size_t i = 0; i < value->numbers.size(); ++i) {
        if (i > 0) out += ",";
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.17g", value->numbers[i]);
        out += buffer;
      }
      return out + "]";
    }
  }
  return "<?>";
}

const WireValue* find_value(const WireObject& object, std::string_view key) {
  for (const auto& [k, v] : object.entries()) {
    if (k == key) return &v;
  }
  return nullptr;
}

// True when the recorded response is a front-end rejection: the live
// session answered it from queue state (overload backpressure, or the
// post-shutdown drain) without ever mutating a shard.
bool is_rejection(const std::string& line) {
  try {
    const Response response = parse_response(line);
    return !response.ok &&
           (response.error == "overloaded" || response.error == "shutting down");
  } catch (const WireError&) {
    return false;
  }
}

}  // namespace

std::vector<std::string> ReplayOptions::default_mask() {
  return {
      "retry_after_ms",     // backpressure hint scaled to queue capacity
      "*queue_depth",       // producer-timing dependent gauge
      "*overload_rejects",  // environment (load) dependent tally
      "loop_*",             // event-loop tallies; a replay has no loop
      "connections",        // live connection count (event loop only)
      "*tracing",           // whether tracing was on when recording
                            // (suffix form: covers shard<k>/tracing too)
      "*spans",             // span tallies follow the tracing switch
      "*_ms",               // latency percentiles (trace_status)
      "*_count",            // latency sample counts (trace_status)
  };
}

bool mask_matches(const std::vector<std::string>& mask, std::string_view key) {
  for (const std::string& pattern : mask) {
    if (pattern_matches(pattern, key)) return true;
  }
  return false;
}

std::string resume_path_from_trace(const TraceFile& trace) {
  return trace.header.text_or("resume", "");
}

void require_resume_checkpoint(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw CheckpointMissingError(path);
}

ServiceConfig config_from_trace(const TraceFile& trace) {
  const WireObject& header = trace.header;
  ServiceConfig config;
  config.shards = static_cast<int>(header.number_or("shards", 1));
  config.scenario.num_workers = static_cast<int>(
      header.number_or("workers", config.scenario.num_workers));
  config.scenario.num_tasks =
      static_cast<int>(header.number_or("tasks", config.scenario.num_tasks));
  config.scenario.runs =
      static_cast<int>(header.number_or("runs", config.scenario.runs));
  config.scenario.budget = header.number_or("budget", config.scenario.budget);
  config.seed = static_cast<std::uint64_t>(
      header.number_or("seed", static_cast<double>(config.seed)));
  config.estimator = header.text_or("estimator", config.estimator);
  config.manual_clock = header.boolean_or("manual_clock", false);
  config.incremental = header.boolean_or("incremental", false);
  config.batch.per_task_arrival = header.boolean_or("rolling", false);
  config.batch.min_bids = static_cast<int>(header.number_or("min_bids", 0));
  config.batch.budget_target = header.number_or("budget_target", 0.0);
  config.queue_capacity = static_cast<std::int64_t>(
      header.number_or("queue_capacity", config.queue_capacity));
  if (header.has("faults")) {
    config.faults = sim::FaultPlan::parse(header.text("faults"));
  }
  if (header.has("checkpoint")) {
    config.checkpoint_path = header.text("checkpoint");
  }
  return config;
}

ReplayResult replay_trace(const TraceFile& trace, ShardedService& service,
                          const ReplayOptions& options) {
  ReplayResult result;
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  std::map<Key, const std::string*> recorded_out;
  std::set<Key> recorded_in;
  for (const TraceFrame& frame : trace.frames) {
    if (frame.dir == TraceFrame::Dir::kIn) {
      recorded_in.insert({frame.conn, frame.seq});
    } else {
      recorded_out.emplace(Key{frame.conn, frame.seq}, &frame.line);
    }
  }
  for (const auto& [key, line] : recorded_out) {
    if (!recorded_in.contains(key)) ++result.unmatched_out;
  }

  bool full = false;
  const auto compare = [&](std::size_t index, const TraceFrame& in,
                           const std::string& expected,
                           const std::string& actual) {
    ++result.compared;
    if (full || expected == actual) return;
    const auto push = [&](std::string field, std::string recorded,
                          std::string replayed) {
      if (full) return;
      result.diffs.push_back(FrameDiff{index, in.conn, in.seq,
                                       std::move(field), std::move(recorded),
                                       std::move(replayed)});
      full = options.max_diffs > 0 && result.diffs.size() >= options.max_diffs;
    };
    WireObject recorded, replayed;
    try {
      recorded = parse_wire(expected);
      replayed = parse_wire(actual);
    } catch (const WireError&) {
      push(FrameDiff::kWholeLine, expected, actual);
      return;
    }
    // Field-by-field over the union of keys, recorded order first.
    for (const auto& [key, value] : recorded.entries()) {
      if (mask_matches(options.mask, key)) continue;
      const WireValue* other = find_value(replayed, key);
      if (other == nullptr || !(*other == value)) {
        push(key, value_repr(&value), value_repr(other));
      }
    }
    for (const auto& [key, value] : replayed.entries()) {
      if (mask_matches(options.mask, key)) continue;
      if (find_value(recorded, key) == nullptr) {
        push(key, value_repr(nullptr), value_repr(&value));
      }
    }
  };

  for (std::size_t index = 0; index < trace.frames.size(); ++index) {
    const TraceFrame& frame = trace.frames[index];
    if (frame.dir != TraceFrame::Dir::kIn) continue;
    const auto out_it = recorded_out.find(Key{frame.conn, frame.seq});
    const std::string* expected =
        out_it == recorded_out.end() ? nullptr : out_it->second;
    // Front-end rejections never reached a shard; replaying them would
    // mutate state the live session did not. Skip, tallied.
    if (expected != nullptr && is_rejection(*expected)) {
      ++result.skipped_rejections;
      continue;
    }
    Request request;
    try {
      request = parse_request(frame.line);
    } catch (const UnsupportedOpError& e) {
      // The front ends answer parse errors locally; reproduce that.
      const std::string local =
          format_response(Response::unsupported_op(e.id(), e.op()));
      if (expected != nullptr) compare(index, frame, *expected, local);
      continue;
    } catch (const WireError& e) {
      const std::string local =
          format_response(Response::failure(0, e.what()));
      if (expected != nullptr) compare(index, frame, *expected, local);
      continue;
    }
    std::string actual;
    bool delivered = false;
    const PushResult submitted = service.submit(
        request, [&actual, &delivered](const Response& response) {
          actual = format_response(response);
          delivered = true;
        });
    if (submitted != PushResult::kOk) {
      ++result.skipped_after_shutdown;
      continue;
    }
    // Single-threaded drain: poll every shard until the (possibly merged)
    // response lands — the stdio-session driving pattern.
    while (!delivered) {
      if (!service.poll_once(std::chrono::nanoseconds{0})) break;
    }
    if (!delivered) continue;  // should not happen; nothing to compare
    ++result.applied;
    if (expected != nullptr) compare(index, frame, *expected, actual);
  }
  return result;
}

std::string format_diff(const FrameDiff& diff) {
  return "frame " + std::to_string(diff.frame_index) + " (conn " +
         std::to_string(diff.conn) + ", seq " + std::to_string(diff.seq) +
         ") field " + diff.field + ": recorded " + diff.recorded +
         " != replayed " + diff.replayed;
}

}  // namespace melody::svc
