#include "svc/config.h"

#include <stdexcept>

#include "util/flags.h"

namespace melody::svc {

void ServiceConfig::validate() const {
  if (scenario.num_workers <= 0 || scenario.num_tasks <= 0 ||
      scenario.runs <= 0 || scenario.budget < 0.0) {
    throw std::invalid_argument(
        "svc: workers/tasks/runs must be positive, budget non-negative");
  }
  if (!estimators::known(estimator)) {
    throw std::invalid_argument("svc: estimator must be one of " +
                                estimators::known_kinds());
  }
  if (checkpoint_every < 0) {
    throw std::invalid_argument("svc: checkpoint_every must be non-negative");
  }
  if (checkpoint_every > 0 && checkpoint_path.empty()) {
    throw std::invalid_argument(
        "svc: checkpoint_every requires a checkpoint path");
  }
  if (shards < 1) {
    throw std::invalid_argument("svc: shards must be at least 1");
  }
  if (shards > scenario.num_workers || shards > scenario.num_tasks) {
    throw std::invalid_argument(
        "svc: shards must not exceed the worker population or the task "
        "count (every shard needs a non-empty sub-market)");
  }
  if (queue_capacity < 1) {
    throw std::invalid_argument("svc: queue_capacity must be at least 1");
  }
  if (worker_name_offset < 0) {
    throw std::invalid_argument("svc: worker_name_offset must be >= 0");
  }
}

ServiceConfig ServiceConfig::from_flags(const util::Flags& flags,
                                        bool serve_flags) {
  ServiceConfig c;
  c.scenario.num_workers = static_cast<int>(
      flags.get_int("workers", 300, "N", "scenario population size"));
  c.scenario.num_tasks = static_cast<int>(
      flags.get_int("tasks", 500, "M", "tasks published per run"));
  c.scenario.runs = static_cast<int>(
      flags.get_int("runs", 1000, "R", "scripted run horizon"));
  c.scenario.budget =
      flags.get_double("budget", 800.0, "B", "per-run auction budget");
  c.scenario.reestimation_period = static_cast<int>(flags.get_int(
      "reestimation-period", 10, "T", "estimator re-estimation period"));
  c.estimator =
      flags.get_string("estimator", "melody", "NAME",
                       "quality estimator: " + estimators::known_kinds());
  c.exploration_beta = flags.get_double("exploration-beta", 0.0, "BETA",
                                        "exploration bonus weight");
  const std::string rule = flags.get_string(
      "payment-rule", "critical", "RULE", "payment rule: critical|paper");
  if (rule == "critical") {
    c.payment_rule = auction::PaymentRule::kCriticalValue;
  } else if (rule == "paper") {
    c.payment_rule = auction::PaymentRule::kPaperNextInQueue;
  } else {
    throw std::invalid_argument("payment-rule must be critical or paper");
  }
  c.seed = static_cast<std::uint64_t>(flags.get_int(
      "seed", 2017, "S", "master seed (same derivations as melody_sim)"));
  const std::string faults_spec = flags.get_string(
      "faults", "", "SPEC",
      "deterministic fault plan, e.g. no-show=0.05,drop=0.1 (see "
      "sim/fault.h)");
  if (!faults_spec.empty()) c.faults = sim::FaultPlan::parse(faults_spec);
  c.checkpoint_path = flags.get_string(
      "checkpoint", "", "PATH",
      "write checkpoints to PATH (atomic tmp+rename); one is written on "
      "shutdown");
  c.checkpoint_every = static_cast<int>(flags.get_int(
      "checkpoint-every", 0, "N", "also checkpoint after every N-th run"));
  c.incremental = flags.has_switch(
      "incremental",
      "keep bids on the persistent price-ladder bid book across runs and "
      "rank the greedy auction from it (bit-identical allocation)");
  if (!serve_flags) return c;

  c.batch.min_bids = static_cast<int>(flags.get_int(
      "batch-min-bids", 0, "N",
      "run once N bids are pending (0: off; no trigger at all defaults to "
      "one run per full participation round)"));
  c.batch.max_delay = flags.get_double(
      "batch-max-delay", 0.0, "SEC",
      "run once the oldest pending bid is SEC old (0: off)");
  c.batch.budget_target = flags.get_double(
      "batch-budget", 0.0, "B",
      "run once submit_tasks budget accrues to B (0: off)");
  c.batch.per_task_arrival = flags.has_switch(
      "rolling",
      "rolling auction: every submit_tasks queues one run against the "
      "standing bid book (implies --incremental)");
  if (c.batch.per_task_arrival) c.incremental = true;
  c.manual_clock = flags.has_switch(
      "manual-clock",
      "drive the service clock with tick ops instead of the wall clock "
      "(deterministic traces)");
  c.exit_after_runs = static_cast<int>(flags.get_int(
      "exit-after-runs", 0, "N",
      "shut down after N runs have executed this session (0: never)"));
  c.shards = static_cast<int>(flags.get_int(
      "shards", 1, "K",
      "platform shards the worker population splits across (1: the plain "
      "single-platform service)"));
  c.queue_capacity = flags.get_int(
      "queue-capacity", 128, "N",
      "bounded request queue size per shard; a full queue rejects with "
      "retry_after_ms");
  return c;
}

}  // namespace melody::svc
