#include "svc/protocol.h"

#include <cmath>

namespace melody::svc {

namespace {

constexpr struct {
  Op op;
  std::string_view name;
} kOps[] = {
    {Op::kHello, "hello"},
    {Op::kSubmitBid, "submit_bid"},
    {Op::kUpdateBid, "update_bid"},
    {Op::kWithdrawBid, "withdraw_bid"},
    {Op::kSubmitTasks, "submit_tasks"},
    {Op::kPostScores, "post_scores"},
    {Op::kQueryWorker, "query_worker"},
    {Op::kQueryRun, "query_run"},
    {Op::kRunNow, "run_now"},
    {Op::kTick, "tick"},
    {Op::kStats, "stats"},
    {Op::kTraceStatus, "trace_status"},
    {Op::kCheckpoint, "checkpoint"},
    {Op::kShutdown, "shutdown"},
    {Op::kShardExport, "shard_export"},
    {Op::kShardImport, "shard_import"},
};

Op op_from(const std::string& name, std::int64_t id) {
  for (const auto& entry : kOps) {
    if (entry.name == name) return entry.op;
  }
  throw UnsupportedOpError(name, id);
}

int int_field(const WireObject& object, std::string_view key, int fallback) {
  const double value = object.number_or(key, fallback);
  if (value != std::floor(value)) {
    throw WireError("protocol: field " + std::string(key) +
                    " must be an integer");
  }
  return static_cast<int>(value);
}

}  // namespace

std::string_view to_string(Op op) noexcept {
  for (const auto& entry : kOps) {
    if (entry.op == op) return entry.name;
  }
  return "?";
}

int min_proto(Op op) noexcept {
  switch (op) {
    case Op::kUpdateBid:
    case Op::kWithdrawBid:
      return 3;
    case Op::kTraceStatus:
      return 4;
    case Op::kShardExport:
    case Op::kShardImport:
      return 5;
    default:
      return 1;
  }
}

Request parse_request(std::string_view line) {
  const WireObject object = parse_wire(line);
  Request request;
  // The id parses before the op so an UnsupportedOpError can carry it and
  // the structured reply still correlates with the client's request.
  request.id = static_cast<std::int64_t>(object.number_or("id", 0.0));
  request.op = op_from(object.text("op"), request.id);
  switch (request.op) {
    case Op::kSubmitBid:
      request.worker = object.text("worker");
      request.has_bid = object.has("cost") || object.has("frequency");
      request.cost = object.number_or("cost", 0.0);
      request.frequency = int_field(object, "frequency", 0);
      break;
    case Op::kUpdateBid:
      request.worker = object.text("worker");
      request.cost = object.number("cost");  // required: it IS the update
      if (!object.has("frequency")) {
        throw WireError("protocol: update_bid requires frequency");
      }
      request.frequency = int_field(object, "frequency", 0);
      request.has_bid = true;
      break;
    case Op::kWithdrawBid:
      request.worker = object.text("worker");
      break;
    case Op::kSubmitTasks:
      request.task_count = int_field(object, "count", 0);
      request.budget = object.number_or("budget", 0.0);
      break;
    case Op::kPostScores:
      request.worker = object.text("worker");
      request.scores = object.number_list("scores");
      break;
    case Op::kQueryWorker:
      request.worker = object.text("worker");
      break;
    case Op::kQueryRun:
      request.run = int_field(object, "run", 0);
      request.shard = int_field(object, "shard", 0);
      break;
    case Op::kTick:
      request.seconds = object.number("seconds");
      break;
    case Op::kCheckpoint:
      request.path = object.text_or("path", "");
      break;
    case Op::kShardExport:
      request.shard = int_field(object, "shard", 0);
      request.path = object.text("path");
      request.detach = object.boolean_or("detach", false);
      request.epoch =
          static_cast<std::int64_t>(object.number_or("epoch", 0.0));
      break;
    case Op::kShardImport:
      request.shard = int_field(object, "shard", 0);
      request.path = object.text("path");
      request.epoch =
          static_cast<std::int64_t>(object.number_or("epoch", 0.0));
      break;
    case Op::kHello:
      request.proto = int_field(object, "proto", 0);
      break;
    case Op::kRunNow:
    case Op::kStats:
    case Op::kTraceStatus:
    case Op::kShutdown:
      break;
  }
  return request;
}

std::string format_request(const Request& request) {
  WireObject object;
  object.set("op", WireValue::of(std::string(to_string(request.op))));
  if (request.id != 0) object.set("id", WireValue::of(request.id));
  switch (request.op) {
    case Op::kSubmitBid:
      object.set("worker", WireValue::of(request.worker));
      if (request.has_bid) {
        object.set("cost", WireValue::of(request.cost));
        object.set("frequency",
                   WireValue::of(static_cast<std::int64_t>(request.frequency)));
      }
      break;
    case Op::kUpdateBid:
      object.set("worker", WireValue::of(request.worker));
      object.set("cost", WireValue::of(request.cost));
      object.set("frequency",
                 WireValue::of(static_cast<std::int64_t>(request.frequency)));
      break;
    case Op::kWithdrawBid:
      object.set("worker", WireValue::of(request.worker));
      break;
    case Op::kSubmitTasks:
      object.set("count",
                 WireValue::of(static_cast<std::int64_t>(request.task_count)));
      object.set("budget", WireValue::of(request.budget));
      break;
    case Op::kPostScores:
      object.set("worker", WireValue::of(request.worker));
      object.set("scores", WireValue::of(request.scores));
      break;
    case Op::kQueryWorker:
      object.set("worker", WireValue::of(request.worker));
      break;
    case Op::kQueryRun:
      object.set("run", WireValue::of(static_cast<std::int64_t>(request.run)));
      if (request.shard != 0) {
        object.set("shard",
                   WireValue::of(static_cast<std::int64_t>(request.shard)));
      }
      break;
    case Op::kTick:
      object.set("seconds", WireValue::of(request.seconds));
      break;
    case Op::kCheckpoint:
      if (!request.path.empty()) {
        object.set("path", WireValue::of(request.path));
      }
      break;
    case Op::kShardExport:
      object.set("shard",
                 WireValue::of(static_cast<std::int64_t>(request.shard)));
      object.set("path", WireValue::of(request.path));
      if (request.detach) object.set("detach", WireValue::of(true));
      if (request.epoch != 0) object.set("epoch", WireValue::of(request.epoch));
      break;
    case Op::kShardImport:
      object.set("shard",
                 WireValue::of(static_cast<std::int64_t>(request.shard)));
      object.set("path", WireValue::of(request.path));
      if (request.epoch != 0) object.set("epoch", WireValue::of(request.epoch));
      break;
    case Op::kHello:
      if (request.proto != 0) {
        object.set("proto",
                   WireValue::of(static_cast<std::int64_t>(request.proto)));
      }
      break;
    case Op::kRunNow:
    case Op::kStats:
    case Op::kTraceStatus:
    case Op::kShutdown:
      break;
  }
  return format_wire(object);
}

std::string format_response(const Response& response) {
  WireObject object;
  object.set("ok", WireValue::of(response.ok));
  if (response.id != 0) object.set("id", WireValue::of(response.id));
  if (!response.ok) object.set("error", WireValue::of(response.error));
  if (response.retry_after_ms > 0) {
    object.set("retry_after_ms", WireValue::of(response.retry_after_ms));
  }
  for (const auto& [key, value] : response.fields.entries()) {
    object.set(key, value);
  }
  return format_wire(object);
}

Response parse_response(std::string_view line) {
  const WireObject object = parse_wire(line);
  Response response;
  response.ok = object.boolean_or("ok", false);
  response.id = static_cast<std::int64_t>(object.number_or("id", 0.0));
  response.error = object.text_or("error", "");
  response.retry_after_ms =
      static_cast<std::int64_t>(object.number_or("retry_after_ms", 0.0));
  for (const auto& [key, value] : object.entries()) {
    if (key == "ok" || key == "id" || key == "error" ||
        key == "retry_after_ms") {
      continue;
    }
    response.fields.set(key, value);
  }
  return response;
}

}  // namespace melody::svc
