// Nonblocking epoll front end for melody_serve: one event-loop thread
// multiplexes every TCP connection (accept/read/write state machines,
// per-connection line framing) and feeds the sharded service's bounded
// queues. This replaces the thread-per-connection server — the accept path
// no longer spawns anything, so hundreds of idle clients cost file
// descriptors and buffers, not stacks.
//
// Flow of one request line:
//   read(2) → framing buffer → parse_request → ShardedService::submit
//     → shard consumer thread applies it → done callback posts a
//       Completion (mutex + eventfd wakeup) → event loop reorders it into
//       the connection's response sequence → write buffer → write(2)
//
// Ordering: responses go out in request order per connection even though
// shards complete out of order — each accepted line consumes a sequence
// number (parse errors, unsupported ops and overload rejections too, since
// they answer inline) and completions wait in a per-connection reorder map
// until their turn. Backpressure is unchanged from the threaded server: a
// full shard queue answers "overloaded" + retry_after_ms immediately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "svc/router.h"

namespace melody::svc {

class TraceRecorder;

struct EventLoopOptions {
  /// TCP port to listen on; 0 picks a free port (tests) — read it back
  /// with actual_port() after listen().
  int port = 7117;
  /// Hard cap on one buffered request line; a client exceeding it gets a
  /// protocol error and its connection closed (a framing bug, not load).
  std::size_t max_line = 1 << 20;
  /// Polled between epoll waits; return true to begin the drain shutdown
  /// (the SIGINT flag). The loop also drains when a shutdown op lands.
  std::function<bool()> should_stop;
  /// Optional wire-trace recorder (melody_serve --trace-out). run() writes
  /// the session header; every frame is recorded — inbound lines with
  /// their routing decision and root span id, outbound lines in flush
  /// order. Borrowed; the caller finish()es it after run() returns.
  TraceRecorder* recorder = nullptr;
};

/// Tallies of one serve session: the operator drain-summary line, and —
/// through the stats op's loop_* / connections fields — live introspection
/// (the event loop augments stats replies with a snapshot of these before
/// the response leaves).
struct EventLoopStats {
  std::uint64_t accepted = 0;      // connections accepted
  std::uint64_t requests = 0;      // lines submitted to the service
  std::uint64_t parse_errors = 0;  // lines answered with a protocol error
  std::uint64_t rejected = 0;      // lines answered with backpressure
};

class EventLoop {
 public:
  /// The service must outlive the loop. start() the shards before run().
  EventLoop(ShardedService& service, EventLoopOptions options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Bind + listen + set up epoll/eventfd. Throws std::runtime_error.
  void listen();

  /// The bound port (after listen(); differs from options.port when 0).
  int actual_port() const noexcept { return actual_port_; }

  /// Run until should_stop() or a shutdown op, then drain: stop accepting,
  /// close the shard queues, join the consumer threads, flush every
  /// pending response. Call from the serving thread.
  EventLoopStats run();

 private:
  struct Connection;
  // One response ready to leave: posted from shard consumer threads (or
  // inline for loop-answered errors), reordered per connection by seq.
  struct Completion {
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
    std::string line;
    bool close_after = false;
  };

  void accept_ready();
  void post_completion(Completion completion);
  void drain_completions();
  void apply_completion(Completion& completion);
  void handle_readable(Connection* conn);
  void handle_writable(Connection* conn);
  void handle_line(Connection* conn, std::string line);
  void answer_inline(Connection* conn, std::uint64_t seq, std::string line,
                     bool close_after = false);
  void flush_ready(Connection* conn);
  void try_write(Connection* conn);
  void update_write_interest(Connection* conn, bool want);
  void destroy(Connection* conn);
  void drain_and_exit();

  ShardedService& service_;
  EventLoopOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  int actual_port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
  EventLoopStats stats_;
};

}  // namespace melody::svc
