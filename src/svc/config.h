// ServiceConfig: the single aggregate every service-shaped thing in the
// repo is built from — melody_serve, the sharded router, the perf suite's
// service benches, and the svc test fixtures. One validated struct replaces
// the positional/setter construction that used to be duplicated (and to
// drift) across those call sites; ServiceConfig::from_flags parses the
// shared scenario/estimator/batching/sharding flag set so melody_serve and
// melody_sim document and validate the same knobs the same way.
#pragma once

#include <cstdint>
#include <string>

#include "auction/melody_auction.h"
#include "estimators/factory.h"
#include "sim/fault.h"
#include "sim/scenario.h"
#include "svc/batcher.h"

namespace melody::util {
class Flags;
}

namespace melody::svc {

struct ServiceConfig {
  sim::LongTermScenario scenario;
  std::string estimator = "melody";
  double exploration_beta = 0.0;
  auction::PaymentRule payment_rule = auction::PaymentRule::kCriticalValue;
  std::uint64_t seed = 2017;
  /// Batch triggers; an inactive policy defaults to
  /// min_bids = scenario.num_workers (a run per full participation round).
  BatchPolicy batch;
  /// Persistent price-ladder bid book: the platform keeps bids on an
  /// incrementally-maintained ladder across runs and the greedy mechanism
  /// ranks from it instead of re-sorting (bit-identical allocation).
  /// Implied by batch.per_task_arrival (--rolling): a rolling auction is
  /// only meaningful against a standing book.
  bool incremental = false;
  sim::FaultPlan faults;
  /// Checkpoint file; empty disables automatic and shutdown checkpoints
  /// (explicit checkpoint requests with a path still work).
  std::string checkpoint_path;
  /// Also checkpoint after every N-th run (0: only on shutdown/request).
  int checkpoint_every = 0;
  /// Logical clock driven by tick requests instead of the event loop's
  /// wall clock — deterministic traces (tests, --stdin replays).
  bool manual_clock = false;
  /// Request shutdown automatically once this many runs have executed in
  /// this session (0: never). Lets demos and CI pipelines terminate.
  int exit_after_runs = 0;
  /// Platform shards the worker population splits across (svc/shard.h).
  /// K=1 is the plain single-platform service, bit-identical to PR 4.
  int shards = 1;
  /// Bounded request queue capacity per shard; a full queue rejects with
  /// retry_after_ms (explicit backpressure, never an unbounded buffer).
  std::int64_t queue_capacity = 128;
  /// External names of the scenario population are "w<offset + id>". The
  /// shard planner sets this so shard s's local dense ids map onto the
  /// global name space; standalone services keep 0.
  int worker_name_offset = 0;
  /// Prefix for this service's obs metric names ("shard<k>/" set by the
  /// shard planner at K>1, empty otherwise). K=1 keeps the historical
  /// un-prefixed names — "svc/requests", "svc/request_time" — so
  /// single-shard metric output is unchanged.
  std::string obs_prefix;

  /// The estimator factory input equivalent to this config (scenario
  /// posterior/period plus the exploration weight).
  estimators::MakeParams estimator_params() const {
    return {.initial_mu = scenario.initial_mu,
            .initial_sigma = scenario.initial_sigma,
            .reestimation_period = scenario.reestimation_period,
            .exploration_beta = exploration_beta};
  }

  /// Throws std::invalid_argument on an unusable config (non-positive
  /// scenario sizes, unknown estimator, bad cadence/shard/queue values).
  void validate() const;

  /// Parse the shared flag set (scenario, estimator, payment rule, seed,
  /// faults, checkpointing; plus the serve-only batching/sharding/clock
  /// flags unless `serve_flags` is false — melody_sim shares the scenario
  /// half without advertising knobs that only exist online). Registers
  /// every flag for --help generation; throws std::invalid_argument on a
  /// bad value. Callers still run validate() after their own adjustments.
  static ServiceConfig from_flags(const util::Flags& flags,
                                  bool serve_flags = true);
};

}  // namespace melody::svc
