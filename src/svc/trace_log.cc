#include "svc/trace_log.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "svc/protocol.h"

namespace melody::svc {

namespace {

constexpr std::int64_t kTraceVersion = 1;

WireValue of_int(std::int64_t v) { return WireValue::of(v); }

}  // namespace

TraceRecorder::TraceRecorder(std::string path) : path_(std::move(path)) {
  owned_.open(path_ + ".tmp", std::ios::out | std::ios::trunc);
  if (!owned_) {
    throw std::runtime_error("trace: cannot open " + path_ + ".tmp");
  }
  out_ = &owned_;
}

TraceRecorder::TraceRecorder(std::ostream& out) : out_(&out) {}

TraceRecorder::~TraceRecorder() {
  try {
    finish();
  } catch (...) {
    // Destruction must not throw; an unpublished .tmp is the failure mode.
  }
}

void TraceRecorder::begin_session(const ServiceConfig& config,
                                  const std::string& resume_path) {
  WireObject header;
  header.set("magic", WireValue::of("MLDYTRC"));
  header.set("version", of_int(kTraceVersion));
  header.set("proto", of_int(kProtoVersion));
  header.set("shards", of_int(config.shards));
  header.set("workers", of_int(config.scenario.num_workers));
  header.set("tasks", of_int(config.scenario.num_tasks));
  header.set("runs", of_int(config.scenario.runs));
  header.set("budget", WireValue::of(config.scenario.budget));
  header.set("seed", of_int(static_cast<std::int64_t>(config.seed)));
  header.set("estimator", WireValue::of(config.estimator));
  header.set("manual_clock", WireValue::of(config.manual_clock));
  header.set("incremental", WireValue::of(config.incremental));
  header.set("rolling", WireValue::of(config.batch.per_task_arrival));
  header.set("min_bids", of_int(config.batch.min_bids));
  header.set("budget_target", WireValue::of(config.batch.budget_target));
  header.set("queue_capacity", of_int(config.queue_capacity));
  if (config.faults.active()) {
    header.set("faults", WireValue::of(config.faults.describe()));
  }
  if (!config.checkpoint_path.empty()) {
    header.set("checkpoint", WireValue::of(config.checkpoint_path));
  }
  const std::string& resume =
      resume_path.empty() ? resume_path_ : resume_path;
  if (!resume.empty()) {
    header.set("resume", WireValue::of(resume));
  }
  write_line(header);
}

void TraceRecorder::record_in(std::uint64_t conn, std::uint64_t seq,
                              std::string_view line, int shard,
                              std::uint64_t span, int proto) {
  WireObject frame;
  frame.set("dir", WireValue::of("in"));
  frame.set("conn", of_int(static_cast<std::int64_t>(conn)));
  frame.set("seq", of_int(static_cast<std::int64_t>(seq)));
  frame.set("shard", of_int(shard));
  if (span != 0) frame.set("span", of_int(static_cast<std::int64_t>(span)));
  if (proto != 0) frame.set("proto", of_int(proto));
  frame.set("frame", WireValue::of(std::string(line)));
  write_line(frame);
}

void TraceRecorder::record_out(std::uint64_t conn, std::uint64_t seq,
                               std::string_view line) {
  WireObject frame;
  frame.set("dir", WireValue::of("out"));
  frame.set("conn", of_int(static_cast<std::int64_t>(conn)));
  frame.set("seq", of_int(static_cast<std::int64_t>(seq)));
  frame.set("frame", WireValue::of(std::string(line)));
  write_line(frame);
}

void TraceRecorder::write_line(const WireObject& object) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_ || out_ == nullptr) return;
  *out_ << format_wire(object) << '\n';
  if (object.has("dir")) ++frames_;
}

void TraceRecorder::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  finished_ = true;
  if (out_ != nullptr) out_->flush();
  if (path_.empty()) return;
  owned_.close();
  if (owned_.fail()) {
    throw std::runtime_error("trace: write failure on " + path_ + ".tmp");
  }
  if (std::rename((path_ + ".tmp").c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("trace: cannot rename " + path_ + ".tmp to " +
                             path_);
  }
}

std::size_t TraceRecorder::frames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_;
}

TraceFile parse_trace(std::istream& in) {
  TraceFile trace;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const WireObject object = parse_wire(line);
    if (!have_header) {
      if (object.text_or("magic", "") != "MLDYTRC") {
        throw std::runtime_error("trace: missing MLDYTRC header");
      }
      const auto version = static_cast<int>(object.number_or("version", 0));
      if (version != kTraceVersion) {
        throw std::runtime_error("trace: unsupported version " +
                                 std::to_string(version));
      }
      trace.header = object;
      have_header = true;
      continue;
    }
    TraceFrame frame;
    const std::string& dir = object.text("dir");
    if (dir == "in") {
      frame.dir = TraceFrame::Dir::kIn;
    } else if (dir == "out") {
      frame.dir = TraceFrame::Dir::kOut;
    } else {
      throw std::runtime_error("trace: bad frame direction '" + dir + "'");
    }
    frame.conn = static_cast<std::uint64_t>(object.number("conn"));
    frame.seq = static_cast<std::uint64_t>(object.number("seq"));
    frame.shard = static_cast<int>(object.number_or("shard", kShardNone));
    frame.span = static_cast<std::uint64_t>(object.number_or("span", 0));
    frame.proto = static_cast<int>(object.number_or("proto", 0));
    frame.line = object.text("frame");
    trace.frames.push_back(std::move(frame));
  }
  if (!have_header) {
    throw std::runtime_error("trace: empty file (no MLDYTRC header)");
  }
  return trace;
}

TraceFile read_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return parse_trace(in);
}

}  // namespace melody::svc
