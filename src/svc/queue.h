// Thread-safe bounded MPSC queue feeding the service event loop.
//
// Producers (connection handlers, the stdio driver) call try_push, which
// NEVER blocks: a full queue is reported to the caller so it can answer the
// client with an explicit overload rejection (backpressure) instead of
// stalling the socket and hiding the pressure from everyone. The single
// consumer (the event loop) pops with a timeout so it can interleave
// deadline-triggered batching and shutdown checks with request processing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace melody::svc {

enum class PushResult {
  kOk,      // enqueued; the consumer will see it
  kFull,    // at capacity — reject the request with retry-after
  kClosed,  // queue closed (shutdown in progress) — reject permanently
};

template <typename T>
class BoundedQueue {
 public:
  /// Capacity must be at least 1; a zero-capacity queue could never accept.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking enqueue with explicit backpressure.
  PushResult try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Enqueue past the capacity bound — control-plane items (coordinated
  /// checkpoint barriers) that must not be lost to request backpressure.
  /// These are rare and internally generated, so they cannot grow the queue
  /// unboundedly; a closed queue still refuses (kClosed).
  PushResult push_force(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Blocking dequeue with timeout. Returns nullopt on timeout, or when the
  /// queue was closed and fully drained (check closed() to tell apart).
  std::optional<T> pop_for(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait_for(lock, timeout,
                    [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking dequeue (tests, drain loops).
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stop accepting new items; queued items remain poppable (drain).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace melody::svc
