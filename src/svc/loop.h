// ServiceLoop: the single consumer thread behind the bounded request queue.
// Producers (connection handlers, the stdio driver, tests) call try_submit
// from any thread; it never blocks. When the queue is full the submission is
// rejected immediately and the caller sends the client an "overloaded"
// response carrying retry_after_ms — backpressure is explicit and visible
// on the wire, never an unbounded buffer or a silent stall.
//
// The loop thread is the only thread that touches the AuctionService. In
// real-clock mode it feeds the service clock from a steady_clock epoch and
// wakes early for the batcher's deadline trigger, so max_delay batches fire
// even while no requests arrive.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>

#include "obs/trace.h"
#include "svc/protocol.h"
#include "svc/queue.h"
#include "svc/service.h"

namespace melody::svc {

/// One queued request plus the completion callback that delivers its
/// response. The callback runs on the loop thread; it must be cheap and
/// must not call back into the loop. Alternatively an envelope can carry a
/// `task` — an arbitrary closure over the service (coordinated checkpoints
/// save shard state this way); a task envelope's request/done are unused.
/// `trace` is the frame's root trace context (inactive when tracing is
/// off); the consumer thread installs it around apply() so every span the
/// request opens parents on the inbound frame.
struct Envelope {
  Request request;
  std::function<void(const Response&)> done;
  std::function<void(AuctionService&)> task;
  obs::TraceContext trace;
};

class ServiceLoop {
 public:
  ServiceLoop(AuctionService& service, std::size_t queue_capacity)
      : service_(service), queue_(queue_capacity) {}

  /// Enqueue a request from any thread. kFull / kClosed results mean the
  /// request was NOT accepted and `done` will never run — the caller should
  /// send `rejection(...)` to the client instead. `trace` (optional) is the
  /// frame's root trace context, installed around apply() on the consumer
  /// thread.
  PushResult try_submit(Request request,
                        std::function<void(const Response&)> done,
                        const obs::TraceContext& trace = {});

  /// Enqueue a service task past the capacity bound (control plane; see
  /// BoundedQueue::push_force). kClosed means the loop is shutting down and
  /// the task will never run.
  PushResult submit_task(std::function<void(AuctionService&)> task);

  /// The client-facing response for a failed try_submit: "overloaded" with
  /// a retry_after_ms hint sized to the queue, or a terminal "shutting
  /// down" once the queue is closed.
  Response rejection(PushResult result, const Request& request) const;

  /// Run until shutdown is requested and the queue has drained. Call from
  /// the dedicated loop thread.
  void run();

  /// Process at most one queued envelope, waiting up to `timeout` for one,
  /// then fire any due batches. Returns true if an envelope was processed.
  /// This is run()'s body factored out for single-threaded drivers (the
  /// stdio session, tests).
  bool poll_once(std::chrono::nanoseconds timeout);

  /// Stop accepting new requests; queued envelopes still drain.
  void close() { queue_.close(); }

  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t queue_capacity() const noexcept { return queue_.capacity(); }
  AuctionService& service() noexcept { return service_; }

 private:
  void process(Envelope& envelope);

  AuctionService& service_;
  BoundedQueue<Envelope> queue_;
};

/// Outcome tallies of one stdio session (melody_serve --stdin).
struct StdioResult {
  std::size_t requests = 0;      // lines parsed and applied
  std::size_t parse_errors = 0;  // lines answered with a protocol error
  std::size_t rejected = 0;      // lines rejected by backpressure
  bool shutdown = false;         // session ended via a shutdown op
};

/// Drive a service from line-delimited requests on `in`, one response line
/// on `out` per request, in order. Single-threaded: every line goes through
/// try_submit + poll_once, exercising the same queue/backpressure path as
/// the TCP server. Returns at EOF or after a shutdown op.
StdioResult run_stdio_session(ServiceLoop& loop, std::istream& in,
                              std::ostream& out);

}  // namespace melody::svc
