// MLDYTRC: the versioned wire-trace format behind `melody_serve
// --trace-out` and `melody_replay`. One JSON line per record, written with
// the same wire codec the protocol itself uses (svc/wire.h), so a trace is
// greppable, diffable, and parses with zero new escaping rules:
//
//   {"magic":"MLDYTRC","version":1,"proto":4,"shards":8,"workers":1000,...}
//   {"dir":"in","conn":2,"seq":0,"shard":3,"span":17,"frame":"{\"op\":...}"}
//   {"dir":"out","conn":2,"seq":0,"frame":"{\"ok\":true,...}"}
//
// The header pins everything a replayer must reconstruct the deployment
// from (shard count, population, seed, estimator, batch triggers, fault
// plan, protocol version). Frames carry the connection id, the
// per-connection sequence number (the event loop's response-ordering key),
// the shard routing decision for inbound frames (-1: broadcast fan-out,
// -2: never routed — parse errors and overload rejections answered
// inline), the root span id when tracing was enabled, and the raw frame
// bytes. Outbound frames are recorded in flush order, which is per-
// connection sequence order — exactly what the client saw.
//
// File writes are atomic: the recorder streams to "<path>.tmp" and
// finish() renames into place, so a crashed session never leaves a
// half-trace behind a valid name.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "svc/config.h"
#include "svc/wire.h"

namespace melody::svc {

/// Routing decision markers for inbound frames.
inline constexpr int kShardBroadcast = -1;  // fanned out to every shard
inline constexpr int kShardNone = -2;       // answered inline, never routed

/// One recorded frame (no trailing newline in `line`).
struct TraceFrame {
  enum class Dir { kIn, kOut };

  Dir dir = Dir::kIn;
  std::uint64_t conn = 0;
  std::uint64_t seq = 0;
  int shard = kShardNone;    // in frames: the routing decision
  std::uint64_t span = 0;    // in frames: root span id (0: tracing off)
  int proto = 0;             // in frames: negotiated proto (hello only)
  std::string line;          // raw frame bytes
};

/// A parsed trace: the header object plus every frame in file order.
struct TraceFile {
  WireObject header;
  std::vector<TraceFrame> frames;

  int shards() const { return static_cast<int>(header.number_or("shards", 1)); }
  int version() const {
    return static_cast<int>(header.number_or("version", 0));
  }
};

/// Streams a serve session to an MLDYTRC file. record_* calls are
/// serialized by an internal mutex (the event loop is the only writer, but
/// the stdio driver and tests share the class); begin_session must come
/// first and finish() publishes the file. The destructor calls finish().
class TraceRecorder {
 public:
  /// Records to `path` via "<path>.tmp" + rename-on-finish. Throws
  /// std::runtime_error if the temporary cannot be opened.
  explicit TraceRecorder(std::string path);
  /// Records to a borrowed stream (tests, benches); finish() only flushes.
  explicit TraceRecorder(std::ostream& out);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Write the header line describing the deployment. `resume_path` (when
  /// non-empty) records the checkpoint the session restored from, so a
  /// replayer can resume from the same file without being told out of band.
  /// Omitting it falls back to set_resume_path's stash — the front ends
  /// call begin_session themselves and only the tool knows the --resume
  /// flag, so the tool stashes it on the recorder up front.
  void begin_session(const ServiceConfig& config,
                     const std::string& resume_path = "");

  /// Stash the resume checkpoint for the next begin_session (see above).
  void set_resume_path(std::string path) { resume_path_ = std::move(path); }

  /// One inbound frame: `shard` is the routing decision (>= 0, or
  /// kShardBroadcast / kShardNone), `span` the root span id (0 when
  /// tracing is off), `proto` the negotiated version (hello frames only).
  void record_in(std::uint64_t conn, std::uint64_t seq, std::string_view line,
                 int shard, std::uint64_t span, int proto = 0);

  /// One outbound frame, in flush (per-connection sequence) order.
  void record_out(std::uint64_t conn, std::uint64_t seq,
                  std::string_view line);

  /// Flush and (for the path form) rename the temporary into place.
  /// Idempotent; further record_* calls are dropped. Throws
  /// std::runtime_error on a failed write or rename.
  void finish();

  /// Frames recorded so far (header excluded).
  std::size_t frames() const;

 private:
  void write_line(const WireObject& object);

  mutable std::mutex mutex_;
  std::string path_;       // empty for the borrowed-stream form
  std::string resume_path_;
  std::ofstream owned_;
  std::ostream* out_ = nullptr;
  std::size_t frames_ = 0;
  bool finished_ = false;
};

/// Parse a trace from a stream. Throws std::runtime_error on a missing or
/// wrong header magic or an unsupported version, WireError on a malformed
/// line.
TraceFile parse_trace(std::istream& in);

/// Read and parse the trace at `path`. Throws std::runtime_error.
TraceFile read_trace(const std::string& path);

}  // namespace melody::svc
