#include "svc/wire.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace melody::svc {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t pos) {
  throw WireError("wire: " + std::string(what) + " at offset " +
                  std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  WireObject parse() {
    skip_ws();
    WireObject object = parse_object();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return object;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  WireObject parse_object() {
    expect('{');
    WireObject object;
    skip_ws();
    if (consume('}')) return object;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      object.set(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) return object;
      expect(',');
    }
  }

  WireValue parse_value() {
    const char c = peek();
    if (c == '"') return WireValue::of(parse_string());
    if (c == '[') return parse_number_list();
    if (c == 't' || c == 'f') return WireValue::of(parse_keyword_bool());
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return WireValue::null();
    }
    return WireValue::of(parse_number());
  }

  bool parse_keyword_bool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("bad keyword", pos_);
  }

  WireValue parse_number_list() {
    expect('[');
    std::vector<double> numbers;
    skip_ws();
    if (consume(']')) return WireValue::of(std::move(numbers));
    while (true) {
      skip_ws();
      numbers.push_back(parse_number());
      skip_ws();
      if (consume(']')) return WireValue::of(std::move(numbers));
      expect(',');
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (consume('.')) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || end != token.data() + token.size() ||
        token.empty()) {
      fail("bad number", start);
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // Accept \uXXXX but only map the ASCII plane; the protocol never
          // emits non-ASCII escapes, and rejecting keeps the codec honest.
          if (pos_ + 4 > text_.size()) fail("bad unicode escape", pos_);
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad unicode escape", pos_ - 1);
          }
          if (code > 0x7f) fail("non-ASCII unicode escape unsupported", pos_);
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("unknown escape", pos_ - 1);
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(value));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
  }
}

}  // namespace

void WireObject::set(std::string key, WireValue value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(key), std::move(value));
}

const WireValue* WireObject::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool WireObject::has(std::string_view key) const noexcept {
  return find(key) != nullptr;
}

double WireObject::number(std::string_view key) const {
  const WireValue* v = find(key);
  if (v == nullptr) throw WireError("wire: missing field " + std::string(key));
  if (v->kind != WireValue::Kind::kNumber) {
    throw WireError("wire: field " + std::string(key) + " is not a number");
  }
  return v->number;
}

double WireObject::number_or(std::string_view key, double fallback) const {
  const WireValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != WireValue::Kind::kNumber) {
    throw WireError("wire: field " + std::string(key) + " is not a number");
  }
  return v->number;
}

bool WireObject::boolean_or(std::string_view key, bool fallback) const {
  const WireValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != WireValue::Kind::kBool) {
    throw WireError("wire: field " + std::string(key) + " is not a boolean");
  }
  return v->boolean;
}

const std::string& WireObject::text(std::string_view key) const {
  const WireValue* v = find(key);
  if (v == nullptr) throw WireError("wire: missing field " + std::string(key));
  if (v->kind != WireValue::Kind::kString) {
    throw WireError("wire: field " + std::string(key) + " is not a string");
  }
  return v->text;
}

std::string WireObject::text_or(std::string_view key,
                                std::string fallback) const {
  const WireValue* v = find(key);
  if (v == nullptr) return fallback;
  if (v->kind != WireValue::Kind::kString) {
    throw WireError("wire: field " + std::string(key) + " is not a string");
  }
  return v->text;
}

const std::vector<double>& WireObject::number_list(
    std::string_view key) const {
  const WireValue* v = find(key);
  if (v == nullptr) throw WireError("wire: missing field " + std::string(key));
  if (v->kind != WireValue::Kind::kNumberList) {
    throw WireError("wire: field " + std::string(key) +
                    " is not a number array");
  }
  return v->numbers;
}

WireObject parse_wire(std::string_view line) { return Parser(line).parse(); }

std::string format_wire(const WireObject& object) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : object.entries()) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, key);
    out.push_back(':');
    switch (value.kind) {
      case WireValue::Kind::kNull:
        out += "null";
        break;
      case WireValue::Kind::kBool:
        out += value.boolean ? "true" : "false";
        break;
      case WireValue::Kind::kNumber:
        append_number(out, value.number);
        break;
      case WireValue::Kind::kString:
        append_escaped(out, value.text);
        break;
      case WireValue::Kind::kNumberList: {
        out.push_back('[');
        for (std::size_t i = 0; i < value.numbers.size(); ++i) {
          if (i > 0) out.push_back(',');
          append_number(out, value.numbers[i]);
        }
        out.push_back(']');
        break;
      }
    }
  }
  out.push_back('}');
  return out;
}

}  // namespace melody::svc
