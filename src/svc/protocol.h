// Typed request/response schema of the service wire protocol, layered on
// the flat-JSON codec in svc/wire.h. One request line in, one response line
// out, in order, per client.
//
// Request lines:
//   {"op":"hello","id":1}
//   {"op":"submit_bid","id":2,"worker":"w17","cost":1.4,"frequency":3}
//   {"op":"update_bid","id":2,"worker":"w17","cost":1.2,"frequency":4}   (v3)
//   {"op":"withdraw_bid","id":2,"worker":"w17"}                          (v3)
//   {"op":"submit_tasks","id":3,"count":500,"budget":800}
//   {"op":"post_scores","id":4,"worker":"w17","scores":[6.5,7.1]}
//   {"op":"query_worker","id":5,"worker":"w17"}
//   {"op":"query_run","id":6,"run":12}
//   {"op":"run_now","id":7}
//   {"op":"tick","id":8,"seconds":0.25}
//   {"op":"stats","id":9}
//   {"op":"trace_status","id":9}                                        (v4)
//   {"op":"checkpoint","id":10,"path":"svc.ckpt"}
//   {"op":"shutdown","id":11}
//   {"op":"shard_export","id":12,"shard":3,"path":"s3.migr",
//    "detach":true,"epoch":2}                                          (v5)
//   {"op":"shard_import","id":13,"shard":3,"path":"s3.migr","epoch":2} (v5)
//
// Response lines always carry "ok" plus the echoed "id" (when the request
// had one). Failures carry "error"; overload rejections additionally carry
// "retry_after_ms" — the client-visible half of the backpressure contract.
//
// Version negotiation: "hello" may carry the client's "proto" version; the
// server's reply advertises its own "proto_version" (kProtoVersion) plus
// the shard count, and both sides speak the older of the two. A request
// whose op the server does not know is answered with a structured
// {"ok":false,"error":"unsupported_op","op":...} line — the connection
// stays open, so a newer client degrades instead of being dropped.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "svc/wire.h"

namespace melody::svc {

/// Wire protocol version this build speaks. v2 added hello negotiation
/// (proto_version + shards in the hello reply), structured unsupported_op
/// replies, and the optional "shard" routing field on query_run. v3 added
/// the continuous-auction ops update_bid / withdraw_bid (re-bid between
/// runs, withdraw until the next submit/update) with structured
/// unknown_worker errors; v2 clients simply never send them. v4 added the
/// trace_status introspection op (tracing state + per-shard phase-latency
/// percentiles merged from the shard-namespaced obs registries). v5 added
/// the cluster shard-handoff ops shard_export / shard_import plus the
/// routing-epoch fields ("epoch" in cluster hello replies, structured
/// not_owner rejections) that let a coordinator migrate live shards
/// between processes.
inline constexpr int kProtoVersion = 5;

enum class Op {
  kHello,
  kSubmitBid,
  kUpdateBid,
  kWithdrawBid,
  kSubmitTasks,
  kPostScores,
  kQueryWorker,
  kQueryRun,
  kRunNow,
  kTick,
  kStats,
  kTraceStatus,
  kCheckpoint,
  kShutdown,
  kShardExport,
  kShardImport,
};

std::string_view to_string(Op op) noexcept;

/// The oldest protocol version that includes `op`. Clients negotiate down
/// through hello; an op whose min_proto exceeds the negotiated version must
/// not be sent (melody_loadgen --dry-run enforces this).
int min_proto(Op op) noexcept;

/// parse_request's error for a well-formed line naming an op this build
/// does not implement. Derives from WireError (callers that only know
/// "malformed line" still catch it); responders that know better answer
/// Response::unsupported_op and keep the connection open.
class UnsupportedOpError : public WireError {
 public:
  UnsupportedOpError(std::string op, std::int64_t id)
      : WireError("protocol: unknown op '" + op + "'"),
        op_(std::move(op)),
        id_(id) {}
  const std::string& op() const noexcept { return op_; }
  std::int64_t id() const noexcept { return id_; }

 private:
  std::string op_;
  std::int64_t id_;
};

/// One parsed client request. Fields are meaningful per op (see the schema
/// above); unused fields keep their defaults.
struct Request {
  Op op = Op::kHello;
  std::int64_t id = 0;      // client correlation id; 0 = none
  std::string worker;       // submit_bid / update_bid / withdraw_bid
                            // / post_scores / query_worker
  double cost = 0.0;        // submit_bid (newcomer) / update_bid
  int frequency = 0;        // submit_bid (newcomer) / update_bid
  bool has_bid = false;     // true when cost/frequency were present
  int task_count = 0;       // submit_tasks
  double budget = 0.0;      // submit_tasks (budget-accumulation trigger)
  std::vector<double> scores;  // post_scores
  int run = 0;              // query_run
  int shard = 0;            // query_run / shard_export / shard_import
  double seconds = 0.0;     // tick
  std::string path;         // checkpoint / shard_export / shard_import
  int proto = 0;            // hello (client's protocol version; 0 = unset)
  bool detach = false;      // shard_export: deactivate the shard (migration)
  std::int64_t epoch = 0;   // shard_export / shard_import: new routing epoch

  bool operator==(const Request&) const = default;
};

/// One response under construction. `fields` carries the op-specific
/// payload; ok/error/retry_after_ms render first so failures are obvious
/// even when eyeballing raw logs.
struct Response {
  bool ok = true;
  std::int64_t id = 0;
  std::string error;          // set when !ok
  std::int64_t retry_after_ms = 0;  // > 0 only on overload rejections
  WireObject fields;

  static Response success(std::int64_t id) {
    Response r;
    r.id = id;
    return r;
  }
  static Response failure(std::int64_t id, std::string message) {
    Response r;
    r.ok = false;
    r.id = id;
    r.error = std::move(message);
    return r;
  }
  static Response overloaded(std::int64_t id, std::int64_t retry_after_ms) {
    Response r = failure(id, "overloaded");
    r.retry_after_ms = retry_after_ms;
    return r;
  }
  /// The structured reply for an op this build does not implement: the
  /// offending op plus the server's protocol version, so a newer client
  /// can detect the downgrade instead of losing the connection.
  static Response unsupported_op(std::int64_t id, const std::string& op) {
    Response r = failure(id, "unsupported_op");
    r.fields.set("op", WireValue::of(op));
    r.fields.set("proto_version",
                 WireValue::of(static_cast<std::int64_t>(kProtoVersion)));
    return r;
  }
  /// Structured reply for a bid op naming a worker the service has never
  /// registered (update_bid / withdraw_bid never auto-register).
  static Response unknown_worker(std::int64_t id, const std::string& worker) {
    Response r = failure(id, "unknown_worker");
    r.fields.set("worker", WireValue::of(worker));
    return r;
  }
  /// Structured reply for a frame routed to a shard this process does not
  /// currently own (cluster deployments, mid-migration). Carries the shard
  /// and the responder's routing epoch so the client can refresh its table
  /// and retry against the new owner.
  static Response not_owner(std::int64_t id, int shard, std::int64_t epoch) {
    Response r = failure(id, "not_owner");
    r.fields.set("shard", WireValue::of(static_cast<std::int64_t>(shard)));
    r.fields.set("epoch", WireValue::of(epoch));
    return r;
  }
};

/// Parse one request line. Throws WireError on malformed JSON or
/// missing/mistyped required fields, and UnsupportedOpError (a WireError)
/// on a well-formed line whose op this build does not know.
Request parse_request(std::string_view line);

/// Render a request as one wire line (load generator, trace recording).
/// parse_request(format_request(r)) == r for every valid request.
std::string format_request(const Request& request);

/// Render a response as one wire line (no trailing newline).
std::string format_response(const Response& response);

/// Parse a response line back into its parts (load generator, tests).
Response parse_response(std::string_view line);

}  // namespace melody::svc
