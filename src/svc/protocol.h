// Typed request/response schema of the service wire protocol, layered on
// the flat-JSON codec in svc/wire.h. One request line in, one response line
// out, in order, per client.
//
// Request lines:
//   {"op":"hello","id":1}
//   {"op":"submit_bid","id":2,"worker":"w17","cost":1.4,"frequency":3}
//   {"op":"submit_tasks","id":3,"count":500,"budget":800}
//   {"op":"post_scores","id":4,"worker":"w17","scores":[6.5,7.1]}
//   {"op":"query_worker","id":5,"worker":"w17"}
//   {"op":"query_run","id":6,"run":12}
//   {"op":"run_now","id":7}
//   {"op":"tick","id":8,"seconds":0.25}
//   {"op":"stats","id":9}
//   {"op":"checkpoint","id":10,"path":"svc.ckpt"}
//   {"op":"shutdown","id":11}
//
// Response lines always carry "ok" plus the echoed "id" (when the request
// had one). Failures carry "error"; overload rejections additionally carry
// "retry_after_ms" — the client-visible half of the backpressure contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "svc/wire.h"

namespace melody::svc {

enum class Op {
  kHello,
  kSubmitBid,
  kSubmitTasks,
  kPostScores,
  kQueryWorker,
  kQueryRun,
  kRunNow,
  kTick,
  kStats,
  kCheckpoint,
  kShutdown,
};

std::string_view to_string(Op op) noexcept;

/// One parsed client request. Fields are meaningful per op (see the schema
/// above); unused fields keep their defaults.
struct Request {
  Op op = Op::kHello;
  std::int64_t id = 0;      // client correlation id; 0 = none
  std::string worker;       // submit_bid / post_scores / query_worker
  double cost = 0.0;        // submit_bid (newcomer registration)
  int frequency = 0;        // submit_bid (newcomer registration)
  bool has_bid = false;     // true when cost/frequency were present
  int task_count = 0;       // submit_tasks
  double budget = 0.0;      // submit_tasks (budget-accumulation trigger)
  std::vector<double> scores;  // post_scores
  int run = 0;              // query_run
  double seconds = 0.0;     // tick
  std::string path;         // checkpoint

  bool operator==(const Request&) const = default;
};

/// One response under construction. `fields` carries the op-specific
/// payload; ok/error/retry_after_ms render first so failures are obvious
/// even when eyeballing raw logs.
struct Response {
  bool ok = true;
  std::int64_t id = 0;
  std::string error;          // set when !ok
  std::int64_t retry_after_ms = 0;  // > 0 only on overload rejections
  WireObject fields;

  static Response success(std::int64_t id) {
    Response r;
    r.id = id;
    return r;
  }
  static Response failure(std::int64_t id, std::string message) {
    Response r;
    r.ok = false;
    r.id = id;
    r.error = std::move(message);
    return r;
  }
  static Response overloaded(std::int64_t id, std::int64_t retry_after_ms) {
    Response r = failure(id, "overloaded");
    r.retry_after_ms = retry_after_ms;
    return r;
  }
};

/// Parse one request line. Throws WireError on malformed JSON, an unknown
/// op, or missing/mistyped required fields.
Request parse_request(std::string_view line);

/// Render a request as one wire line (load generator, trace recording).
/// parse_request(format_request(r)) == r for every valid request.
std::string format_request(const Request& request);

/// Render a response as one wire line (no trailing newline).
std::string format_response(const Response& response);

/// Parse a response line back into its parts (load generator, tests).
Response parse_response(std::string_view line);

}  // namespace melody::svc
