#include "svc/session.h"

#include <algorithm>
#include <stdexcept>

#include "util/binio.h"

namespace melody::svc {

namespace {
constexpr char kMagic[8] = {'M', 'L', 'D', 'Y', 'S', 'E', 'S', 'S'};
constexpr std::uint32_t kVersion = 1;
namespace binio = util::binio;
}  // namespace

void SessionRegistry::bind(const std::string& name, auction::WorkerId id) {
  if (by_name_.count(name) != 0) {
    throw std::invalid_argument("session: name already bound: " + name);
  }
  if (by_id_.count(id) != 0) {
    throw std::invalid_argument("session: id already bound: " +
                                std::to_string(id));
  }
  by_name_[name] = order_.size();
  by_id_[id] = order_.size();
  order_.push_back(Entry{name, id, 0});
  next_id_ = std::max(next_id_, id + 1);
}

auction::WorkerId SessionRegistry::intern(const std::string& name,
                                          bool* created) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (created != nullptr) *created = false;
    return order_[it->second].id;
  }
  const auction::WorkerId id = next_id_;
  bind(name, id);
  if (created != nullptr) *created = true;
  return id;
}

std::optional<auction::WorkerId> SessionRegistry::find(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return order_[it->second].id;
}

const std::string* SessionRegistry::name_of(auction::WorkerId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  return &order_[it->second].name;
}

void SessionRegistry::count_bid(auction::WorkerId id) {
  const auto it = by_id_.find(id);
  if (it != by_id_.end()) ++order_[it->second].bids;
}

std::uint64_t SessionRegistry::bids_submitted(auction::WorkerId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? 0 : order_[it->second].bids;
}

void SessionRegistry::save(std::ostream& out) const {
  out.write(kMagic, sizeof kMagic);
  binio::write_u32(out, kVersion);
  binio::write_u64(out, order_.size());
  for (const Entry& entry : order_) {
    binio::write_bytes(out, entry.name);
    binio::write_i32(out, entry.id);
    binio::write_u64(out, entry.bids);
  }
  binio::write_i32(out, next_id_);
  if (!out) throw std::runtime_error("session registry: write failure");
}

void SessionRegistry::load(std::istream& in) {
  char magic[8];
  if (!in.read(magic, sizeof magic) ||
      !std::equal(magic, magic + sizeof magic, kMagic)) {
    throw std::runtime_error("session registry: bad magic");
  }
  const std::uint32_t version = binio::read_u32(in, "session version");
  if (version != kVersion) {
    throw std::runtime_error("session registry: unsupported version " +
                             std::to_string(version));
  }
  const std::uint64_t count = binio::read_u64(in, "session count");
  if (count > (1ull << 32)) {
    throw std::runtime_error("session registry: implausible entry count");
  }
  std::vector<Entry> order;
  order.reserve(static_cast<std::size_t>(count));
  std::unordered_map<std::string, std::size_t> by_name;
  std::unordered_map<auction::WorkerId, std::size_t> by_id;
  for (std::uint64_t k = 0; k < count; ++k) {
    Entry entry;
    entry.name = binio::read_bytes(in, "session name", 1 << 16);
    entry.id = binio::read_i32(in, "session id");
    entry.bids = binio::read_u64(in, "session bids");
    if (!by_name.emplace(entry.name, order.size()).second ||
        !by_id.emplace(entry.id, order.size()).second) {
      throw std::runtime_error("session registry: duplicate entry");
    }
    order.push_back(std::move(entry));
  }
  const auction::WorkerId next_id = binio::read_i32(in, "session next id");
  order_ = std::move(order);
  by_name_ = std::move(by_name);
  by_id_ = std::move(by_id);
  next_id_ = next_id;
}

}  // namespace melody::svc
