// Minimal JSON wire format for the service protocol: one flat object per
// line. Values are strings, numbers, booleans, null, or arrays of numbers —
// exactly what the request/response schema needs, and nothing the codec
// would have to guess about (no nested objects, no mixed arrays).
//
// The parser is strict where it matters (quoting, escapes, commas, UTF-8
// passthrough) and rejects everything outside the subset with a
// WireError carrying the offending position, so a malformed client line
// becomes a clean protocol error instead of a half-parsed request.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace melody::svc {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One value of the wire subset.
struct WireValue {
  enum class Kind { kNull, kBool, kNumber, kString, kNumberList };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<double> numbers;

  static WireValue null() { return {}; }
  static WireValue of(bool b) {
    WireValue v;
    v.kind = Kind::kBool;
    v.boolean = b;
    return v;
  }
  static WireValue of(double d) {
    WireValue v;
    v.kind = Kind::kNumber;
    v.number = d;
    return v;
  }
  static WireValue of(std::int64_t i) {
    return of(static_cast<double>(i));
  }
  static WireValue of(std::string s) {
    WireValue v;
    v.kind = Kind::kString;
    v.text = std::move(s);
    return v;
  }
  /// Without this overload a string literal would convert to bool.
  static WireValue of(const char* s) { return of(std::string(s)); }
  static WireValue of(std::vector<double> list) {
    WireValue v;
    v.kind = Kind::kNumberList;
    v.numbers = std::move(list);
    return v;
  }

  bool operator==(const WireValue&) const = default;
};

/// An ordered flat object: insertion order is preserved so formatted lines
/// are deterministic and human-diffable.
class WireObject {
 public:
  void set(std::string key, WireValue value);
  bool has(std::string_view key) const noexcept;

  /// Typed getters throw WireError on a missing key or a kind mismatch;
  /// the *_or forms return the fallback on a missing key but still throw
  /// on a present key of the wrong kind (a typed client bug, not absence).
  double number(std::string_view key) const;
  double number_or(std::string_view key, double fallback) const;
  bool boolean_or(std::string_view key, bool fallback) const;
  const std::string& text(std::string_view key) const;
  std::string text_or(std::string_view key, std::string fallback) const;
  const std::vector<double>& number_list(std::string_view key) const;

  const std::vector<std::pair<std::string, WireValue>>& entries()
      const noexcept {
    return entries_;
  }

  bool operator==(const WireObject&) const = default;

 private:
  const WireValue* find(std::string_view key) const noexcept;

  std::vector<std::pair<std::string, WireValue>> entries_;
};

/// Parse one line holding exactly one flat JSON object (surrounding
/// whitespace allowed, trailing garbage rejected). Throws WireError.
WireObject parse_wire(std::string_view line);

/// Format as a single JSON line (no trailing newline). Numbers that hold
/// integral values print without a decimal point so ids and counts stay
/// exact and readable.
std::string format_wire(const WireObject& object);

}  // namespace melody::svc
