#include "estimators/factory.h"

#include <algorithm>
#include <cctype>

#include "estimators/melody_estimator.h"
#include "estimators/ml_ar_estimator.h"
#include "estimators/ml_cr_estimator.h"
#include "estimators/static_estimator.h"

namespace melody::estimators {

namespace {

std::string fold(std::string_view kind) {
  std::string folded(kind);
  std::transform(folded.begin(), folded.end(), folded.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return folded;
}

}  // namespace

std::unique_ptr<QualityEstimator> make(std::string_view kind,
                                       const MakeParams& params) {
  const std::string name = fold(kind);
  if (name == "static") {
    return std::make_unique<StaticEstimator>(params.initial_mu,
                                             params.static_warmup_runs);
  }
  if (name == "ml-cr") {
    return std::make_unique<MlCurrentRunEstimator>(params.initial_mu);
  }
  if (name == "ml-ar") {
    return std::make_unique<MlAllRunsEstimator>(params.initial_mu);
  }
  if (name == "melody") {
    MelodyEstimatorConfig config;
    config.initial_posterior = {params.initial_mu, params.initial_sigma};
    config.reestimation_period = params.reestimation_period;
    config.exploration_beta = params.exploration_beta;
    config.max_history = params.max_history;
    return std::make_unique<MelodyEstimator>(config);
  }
  return nullptr;
}

bool known(std::string_view kind) noexcept {
  const std::string name = fold(kind);
  return name == "melody" || name == "static" || name == "ml-cr" ||
         name == "ml-ar";
}

const std::string& known_kinds() {
  static const std::string kinds = "melody|static|ml-cr|ml-ar";
  return kinds;
}

}  // namespace melody::estimators
