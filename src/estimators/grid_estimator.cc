#include "estimators/grid_estimator.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace melody::estimators {

GridEstimator::GridEstimator(GridEstimatorConfig config)
    : config_(std::move(config)) {
  config_.params.validate();
  if (!config_.emission) {
    config_.emission = lds::gaussian_emission(config_.params.eta);
  }
}

void GridEstimator::register_worker(auction::WorkerId id) {
  if (filters_.count(id) > 0) return;
  filters_.emplace(
      id, std::make_unique<lds::GridFilter>(
              lds::GridDensity(config_.quality_min, config_.quality_max,
                               config_.grid_points),
              config_.initial_posterior, config_.params, config_.emission));
}

void GridEstimator::observe(auction::WorkerId id, const lds::ScoreSet& scores) {
  // Sufficient-statistics path: re-expand the set as `count` observations
  // at its mean. For Gaussian emissions this changes only the (unused)
  // marginal-likelihood constant; the posterior is identical because the
  // Gaussian likelihood depends on the scores only through (N, sum).
  std::vector<double> expanded(static_cast<std::size_t>(scores.count),
                               scores.mean());
  observe_scores(id, expanded);
}

void GridEstimator::observe_scores(auction::WorkerId id,
                                   std::span<const double> scores) {
  auto& filter = filters_.at(id);
  if (scores.empty() && !config_.advance_on_empty_runs) return;
  filter->step(scores);
}

double GridEstimator::estimate(auction::WorkerId id) const {
  // Eq. (19) analogue: one transition applied to the posterior mean.
  return config_.params.a * filters_.at(id)->mean();
}

double GridEstimator::posterior_mean(auction::WorkerId id) const {
  return filters_.at(id)->mean();
}

double GridEstimator::posterior_variance(auction::WorkerId id) const {
  return filters_.at(id)->variance();
}

namespace {
constexpr char kGridHeader[] = "MELODY_GRID v1";
}

void GridEstimator::save(std::ostream& out) const {
  std::vector<auction::WorkerId> ids;
  ids.reserve(filters_.size());
  for (const auto& [id, filter] : filters_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  out << kGridHeader << '\n' << ids.size() << '\n';
  // precision 17 round-trips every finite double exactly, so the restored
  // density is bit-identical to the saved one.
  out.precision(17);
  for (auction::WorkerId id : ids) {
    const auto weights = filters_.at(id)->posterior().weights();
    out << id << ' ' << weights.size();
    for (double w : weights) out << ' ' << w;
    out << '\n';
  }
  if (!out) throw std::runtime_error("GridEstimator::save: write failed");
}

void GridEstimator::load(std::istream& in) {
  std::string header;
  std::getline(in, header);
  if (header != kGridHeader) {
    throw std::runtime_error("GridEstimator::load: bad snapshot header");
  }
  std::size_t worker_count = 0;
  if (!(in >> worker_count)) {
    throw std::runtime_error("GridEstimator::load: missing worker count");
  }
  std::unordered_map<auction::WorkerId, std::unique_ptr<lds::GridFilter>>
      loaded;
  loaded.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    auction::WorkerId id = -1;
    std::size_t grid_size = 0;
    if (!(in >> id >> grid_size)) {
      throw std::runtime_error("GridEstimator::load: truncated record");
    }
    if (grid_size != config_.grid_points) {
      throw std::runtime_error(
          "GridEstimator::load: grid size does not match the configuration");
    }
    std::vector<double> weights(grid_size);
    for (double& weight : weights) {
      if (!(in >> weight)) {
        throw std::runtime_error("GridEstimator::load: truncated density");
      }
    }
    auto filter = std::make_unique<lds::GridFilter>(
        lds::GridDensity(config_.quality_min, config_.quality_max,
                         config_.grid_points),
        config_.initial_posterior, config_.params, config_.emission);
    filter->restore_posterior(weights);
    loaded.emplace(id, std::move(filter));
  }
  filters_ = std::move(loaded);
}

}  // namespace melody::estimators
