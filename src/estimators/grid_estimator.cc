#include "estimators/grid_estimator.h"

#include <vector>

namespace melody::estimators {

GridEstimator::GridEstimator(GridEstimatorConfig config)
    : config_(std::move(config)) {
  config_.params.validate();
  if (!config_.emission) {
    config_.emission = lds::gaussian_emission(config_.params.eta);
  }
}

void GridEstimator::register_worker(auction::WorkerId id) {
  if (filters_.count(id) > 0) return;
  filters_.emplace(
      id, std::make_unique<lds::GridFilter>(
              lds::GridDensity(config_.quality_min, config_.quality_max,
                               config_.grid_points),
              config_.initial_posterior, config_.params, config_.emission));
}

void GridEstimator::observe(auction::WorkerId id, const lds::ScoreSet& scores) {
  // Sufficient-statistics path: re-expand the set as `count` observations
  // at its mean. For Gaussian emissions this changes only the (unused)
  // marginal-likelihood constant; the posterior is identical because the
  // Gaussian likelihood depends on the scores only through (N, sum).
  std::vector<double> expanded(static_cast<std::size_t>(scores.count),
                               scores.mean());
  observe_scores(id, expanded);
}

void GridEstimator::observe_scores(auction::WorkerId id,
                                   std::span<const double> scores) {
  auto& filter = filters_.at(id);
  if (scores.empty() && !config_.advance_on_empty_runs) return;
  filter->step(scores);
}

double GridEstimator::estimate(auction::WorkerId id) const {
  // Eq. (19) analogue: one transition applied to the posterior mean.
  return config_.params.a * filters_.at(id)->mean();
}

double GridEstimator::posterior_mean(auction::WorkerId id) const {
  return filters_.at(id)->mean();
}

double GridEstimator::posterior_variance(auction::WorkerId id) const {
  return filters_.at(id)->variance();
}

}  // namespace melody::estimators
