// MELODY's quality updater (Algorithm 3): per-worker Kalman posterior
// update after every run, Eq. (19) prediction for the next run's auction,
// and EM re-estimation of theta = {a, gamma, eta} every T runs.
#pragma once

#include <iosfwd>
#include <unordered_map>

#include "estimators/estimator.h"
#include "lds/em.h"
#include "lds/kalman.h"

namespace melody::estimators {

struct MelodyEstimatorConfig {
  /// Platform-preset initial posterior alpha-hat(q^0) = N(mu0, sigma0).
  lds::Gaussian initial_posterior{5.5, 2.25};
  /// Initial hyper-parameters before the first EM re-estimation.
  lds::LdsParams initial_params{1.0, 1.0, 9.0};
  /// Re-estimate theta every T runs (Algorithm 3 lines 6-8); 0 disables EM.
  int reestimation_period = 10;
  /// EM options. The transition-coefficient clamp is much tighter than the
  /// generic lds::EmOptions default: worker quality evolves slowly, and on
  /// sparse histories an unconstrained |a| makes the idle-worker predict
  /// chain (mu <- a * mu every run) diverge.
  lds::EmOptions em_options{/*max_iterations=*/50, /*tolerance=*/1e-6,
                            /*min_variance=*/1e-6, /*max_abs_a=*/1.25};
  /// After EM updates theta, re-run the filter over the stored history so
  /// the posterior is consistent with the new parameters. Algorithm 3 as
  /// written keeps the stale posterior; re-filtering is a strict refinement
  /// and is benchmarked in the T-ablation.
  bool refilter_after_em = true;
  /// Require at least this many runs *with scores* before running EM (EM
  /// on a near-empty history is ill-posed).
  int min_history_for_em = 5;
  /// Posterior means and estimates are clamped into this interval after
  /// every update. Scores live in a bounded range (Table 4: [1, 10]), so a
  /// quality estimate outside it is never meaningful; the clamp also stops
  /// long idle predict-only chains from drifting without bound.
  double estimate_min = 1.0;
  double estimate_max = 10.0;
  /// Whether a run with no scores advances the worker's latent chain
  /// (posterior <- transition(posterior), variance grows by gamma).
  /// Default false: the chain is indexed by *participation*, so an idle
  /// worker keeps his last posterior exactly. The paper's scalar LDS has no
  /// intercept, so with a fitted a != 1 a long idle stretch under per-run
  /// propagation collapses the estimate to 0 or blows it up — an artifact,
  /// not a prediction (see DESIGN.md).
  bool advance_on_empty_runs = false;
  /// Bound on the stored per-worker history (0 = unbounded, the paper's
  /// behaviour). When the history exceeds the bound, the oldest run is
  /// folded into a per-worker anchor posterior by one exact filter step, so
  /// EM and re-filtering operate on a sliding window with the correct
  /// Bayesian prefix — memory and EM cost become O(window) per worker
  /// instead of O(total runs).
  int max_history = 0;
  /// Exploration extension (beyond the paper; see DESIGN.md ablation A6).
  /// With beta > 0 the reported estimate carries a UCB-style bonus
  /// beta * sqrt(log(runs + 1) / (observed_runs + 1)), so a worker whose
  /// estimate collapsed gets periodically re-tried instead of starving
  /// under scarce budgets. 0 disables the bonus (paper behaviour).
  double exploration_beta = 0.0;
};

class MelodyEstimator final : public QualityEstimator {
 public:
  explicit MelodyEstimator(MelodyEstimatorConfig config = {})
      : config_(std::move(config)) {
    config_.initial_params.validate();
  }

  void register_worker(auction::WorkerId id) override;
  void observe(auction::WorkerId id, const lds::ScoreSet& scores) override;
  /// Shards the per-worker Kalman/EM updates across util::shared_pool().
  /// Safe because each worker's chain touches only its own State and the
  /// state map is never resized during a run; bit-identical to the serial
  /// order for any thread count.
  void observe_run(std::span<const auction::WorkerId> ids,
                   std::span<const lds::ScoreSet> scores) override;
  double estimate(auction::WorkerId id) const override;
  std::string name() const override { return "MELODY"; }

  /// Current posterior alpha-hat(q^r) for a worker (inspection/tests).
  const lds::Gaussian& posterior(auction::WorkerId id) const;
  /// Current hyper-parameters for a worker (inspection/tests).
  const lds::LdsParams& params(auction::WorkerId id) const;
  /// Number of EM re-estimations performed for a worker so far.
  int reestimation_count(auction::WorkerId id) const;

  /// Persist all per-worker state (posteriors, hyper-parameters, score
  /// histories, counters) as a versioned text snapshot, so a platform can
  /// restart without losing what it learned. The configuration itself is
  /// not saved — construct the estimator with the same config before
  /// load(). Throws std::runtime_error on I/O failure or malformed input.
  /// These implement the QualityEstimator persistence interface, so callers
  /// that only hold the base class can snapshot without downcasting.
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  /// Number of registered workers (inspection/tests).
  std::size_t worker_count() const noexcept { return states_.size(); }

 private:
  struct State {
    lds::Gaussian posterior;
    lds::LdsParams params;
    lds::ScoreHistory history;
    /// Posterior at the start of the stored history window; equals the
    /// platform-preset initial posterior until the window starts sliding.
    lds::Gaussian window_anchor;
    int runs_since_em = 0;
    int runs_seen = 0;      // every observe() call, empty or not
    int observed_runs = 0;  // runs with at least one score
    int em_count = 0;
  };

  MelodyEstimatorConfig config_;
  std::unordered_map<auction::WorkerId, State> states_;
};

/// Deprecated MELODY-only persistence entry points, kept as thin wrappers
/// for one release. Persistence is now part of the QualityEstimator
/// interface itself: call estimator.save(out) / estimator.load(in) through
/// the base class instead — no concrete tracker type needed.
[[deprecated("use QualityEstimator::save")]] inline void save_tracker(
    const MelodyEstimator& tracker, std::ostream& out) {
  tracker.save(out);
}
[[deprecated("use QualityEstimator::load")]] inline void load_tracker(
    MelodyEstimator& tracker, std::istream& in) {
  tracker.load(in);
}

}  // namespace melody::estimators
