// MELODY's quality updater (Algorithm 3): per-worker Kalman posterior
// update after every run, Eq. (19) prediction for the next run's auction,
// and EM re-estimation of theta = {a, gamma, eta} every T runs.
//
// State is stored structure-of-arrays: one dense slot per registered
// worker, with the posterior/anchor/parameter scalars in contiguous
// per-field arrays. The per-run batch update walks those arrays in slot
// order — no hash lookup per worker on the hot path — while the arithmetic
// per worker is exactly the scalar chain's (same lds::filter_step /
// fit_lds calls on the same values), so estimates and snapshots are
// bit-identical to the AoS layout (locked by test_soa_equivalence against
// perf::reference::AosKalmanChain).
//
// Score histories have two storage modes. With a sliding window
// (max_history > 0) each worker keeps a small vector, folded at the front
// as it slides. Unbounded mode (max_history == 0, the paper's behaviour)
// instead appends every run's ScoreSet to one shared arena in arrival
// order, with an intrusive backward link per entry and a per-slot head:
// the per-run ingest is then a append to one contiguous array
// instead of a scattered push_back into N separate vectors — the dominant
// cost of a filter-only run. EM, re-filtering, and save() gather a
// worker's chain oldest-first by walking the links; the gathered sequence
// is the exact per-worker vector the old layout held, so everything
// downstream (and every snapshot byte) is unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "estimators/estimator.h"
#include "lds/em.h"
#include "lds/kalman.h"

namespace melody::estimators {

struct MelodyEstimatorConfig {
  /// Platform-preset initial posterior alpha-hat(q^0) = N(mu0, sigma0).
  lds::Gaussian initial_posterior{5.5, 2.25};
  /// Initial hyper-parameters before the first EM re-estimation.
  lds::LdsParams initial_params{1.0, 1.0, 9.0};
  /// Re-estimate theta every T runs (Algorithm 3 lines 6-8); 0 disables EM.
  int reestimation_period = 10;
  /// EM options. The transition-coefficient clamp is much tighter than the
  /// generic lds::EmOptions default: worker quality evolves slowly, and on
  /// sparse histories an unconstrained |a| makes the idle-worker predict
  /// chain (mu <- a * mu every run) diverge.
  lds::EmOptions em_options{/*max_iterations=*/50, /*tolerance=*/1e-6,
                            /*min_variance=*/1e-6, /*max_abs_a=*/1.25};
  /// After EM updates theta, re-run the filter over the stored history so
  /// the posterior is consistent with the new parameters. Algorithm 3 as
  /// written keeps the stale posterior; re-filtering is a strict refinement
  /// and is benchmarked in the T-ablation.
  bool refilter_after_em = true;
  /// Require at least this many runs *with scores* before running EM (EM
  /// on a near-empty history is ill-posed).
  int min_history_for_em = 5;
  /// Posterior means and estimates are clamped into this interval after
  /// every update. Scores live in a bounded range (Table 4: [1, 10]), so a
  /// quality estimate outside it is never meaningful; the clamp also stops
  /// long idle predict-only chains from drifting without bound.
  double estimate_min = 1.0;
  double estimate_max = 10.0;
  /// Whether a run with no scores advances the worker's latent chain
  /// (posterior <- transition(posterior), variance grows by gamma).
  /// Default false: the chain is indexed by *participation*, so an idle
  /// worker keeps his last posterior exactly. The paper's scalar LDS has no
  /// intercept, so with a fitted a != 1 a long idle stretch under per-run
  /// propagation collapses the estimate to 0 or blows it up — an artifact,
  /// not a prediction (see DESIGN.md).
  bool advance_on_empty_runs = false;
  /// Bound on the stored per-worker history (0 = unbounded, the paper's
  /// behaviour). When the history exceeds the bound, the oldest run is
  /// folded into a per-worker anchor posterior by one exact filter step, so
  /// EM and re-filtering operate on a sliding window with the correct
  /// Bayesian prefix — memory and EM cost become O(window) per worker
  /// instead of O(total runs).
  int max_history = 0;
  /// Exploration extension (beyond the paper; see DESIGN.md ablation A6).
  /// With beta > 0 the reported estimate carries a UCB-style bonus
  /// beta * sqrt(log(runs + 1) / (observed_runs + 1)), so a worker whose
  /// estimate collapsed gets periodically re-tried instead of starving
  /// under scarce budgets. 0 disables the bonus (paper behaviour).
  double exploration_beta = 0.0;
};

class MelodyEstimator final : public QualityEstimator {
 public:
  explicit MelodyEstimator(MelodyEstimatorConfig config = {})
      : config_(std::move(config)) {
    config_.initial_params.validate();
  }

  void register_worker(auction::WorkerId id) override;
  void observe(auction::WorkerId id, const lds::ScoreSet& scores) override;
  /// Shards the per-worker Kalman/EM updates across util::shared_pool().
  /// Safe because each worker's chain touches only its own dense slot and
  /// the arrays are never resized during a run; bit-identical to the
  /// serial order for any thread count. When `ids` matches the dense slot
  /// order (the platform's usual case — workers observed in registration
  /// order), the per-worker id lookup is skipped entirely and the update
  /// streams straight over the state arrays.
  void observe_run(std::span<const auction::WorkerId> ids,
                   std::span<const lds::ScoreSet> scores) override;
  double estimate(auction::WorkerId id) const override;
  std::string name() const override { return "MELODY"; }

  /// Current posterior alpha-hat(q^r) for a worker (inspection/tests).
  /// Returned by value: under the SoA layout the mean and variance live in
  /// different arrays, so there is no Gaussian object to reference.
  lds::Gaussian posterior(auction::WorkerId id) const;
  /// Current hyper-parameters for a worker (inspection/tests). By value,
  /// as with posterior().
  lds::LdsParams params(auction::WorkerId id) const;
  /// Number of EM re-estimations performed for a worker so far.
  int reestimation_count(auction::WorkerId id) const;

  /// Persist all per-worker state (posteriors, hyper-parameters, score
  /// histories, counters) as a versioned text snapshot, so a platform can
  /// restart without losing what it learned. The configuration itself is
  /// not saved — construct the estimator with the same config before
  /// load(). Throws std::runtime_error on I/O failure or malformed input.
  /// These implement the QualityEstimator persistence interface, so callers
  /// that only hold the base class can snapshot without downcasting.
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  /// Number of registered workers (inspection/tests).
  std::size_t worker_count() const noexcept { return ids_.size(); }

 private:
  /// One appended run in the shared history arena (unbounded mode): the
  /// run's sufficient statistics plus a link to the same worker's previous
  /// entry (kNoHistory when this is the worker's first).
  struct HistoryNode {
    lds::ScoreSet scores;
    std::uint32_t prev = 0;
  };

  /// True when histories live in the shared arena (max_history == 0).
  bool arena_history() const noexcept { return config_.max_history == 0; }

  /// The full Algorithm 3 update for the worker in dense slot `slot`.
  void observe_slot(std::size_t slot, const lds::ScoreSet& scores);

  /// The update body after the empty-run gate, with the arena position for
  /// this run's history entry already reserved (ignored in window mode).
  /// Distinct slots write disjoint state, so observe_run shards calls to
  /// this across the pool once the serial prefix pass has sized the arena.
  void observe_slot_at(std::size_t slot, const lds::ScoreSet& scores,
                       std::uint32_t arena_pos);

  /// Algorithm 3 lines 6-8: EM re-estimation of theta for one slot, plus
  /// the optional posterior re-filter. `posterior` is this run's filtered
  /// posterior on entry and the re-filtered one on exit.
  void reestimate_slot(std::size_t slot, const lds::LdsParams& params,
                       lds::Gaussian& posterior, bool collect);

  /// Arena-mode batch body: the observe_slot_at update fused into one
  /// loop over [begin, end) of a run's rows, with the observability gate
  /// hoisted and the filter step inlined — the per-(worker, run) cost is
  /// the Theorem-3 arithmetic plus one contiguous arena write, instead of
  /// a call chain per worker. `pos` holds each row's pre-assigned arena
  /// position (kNoHistory for skipped rows); `slots` maps row -> dense
  /// slot, or nullptr when the run is already in slot order.
  void update_arena_range(std::size_t begin, std::size_t end,
                          std::span<const lds::ScoreSet> scores,
                          const std::uint32_t* pos,
                          const std::uint32_t* slots);

  /// Arena mode: a worker's history gathered oldest-first into a
  /// thread-local scratch vector — element-for-element the per-worker
  /// vector the window mode (and the old layout) stores directly.
  const lds::ScoreHistory& gathered_history(std::size_t slot) const;

  /// True when `ids` is exactly the dense slot order, making per-worker
  /// map lookups unnecessary.
  bool matches_slot_order(std::span<const auction::WorkerId> ids) const;

  MelodyEstimatorConfig config_;

  // Dense SoA state: slot s of every array belongs to worker ids_[s];
  // index_ maps id -> slot. Hot per-run fields are contiguous doubles/ints;
  // the score histories (touched only on ingestion and EM) stay per-worker.
  std::vector<auction::WorkerId> ids_;  // registration order
  std::unordered_map<auction::WorkerId, std::size_t> index_;
  std::vector<double> mean_;         // posterior mean
  std::vector<double> var_;          // posterior variance
  std::vector<double> anchor_mean_;  // window-anchor posterior
  std::vector<double> anchor_var_;
  std::vector<double> a_;  // theta = {a, gamma, eta}
  std::vector<double> gamma_;
  std::vector<double> eta_;
  std::vector<int> runs_since_em_;
  std::vector<int> runs_seen_;      // every observe() call, empty or not
  std::vector<int> observed_runs_;  // runs with at least one score
  std::vector<int> em_count_;

  // Window mode (max_history > 0): per-worker history vectors.
  std::vector<lds::ScoreHistory> history_;

  // Arena mode (max_history == 0): one append-only arena shared by all
  // workers, chained per slot through HistoryNode::prev.
  std::vector<HistoryNode> history_arena_;
  std::vector<std::uint32_t> history_head_;  // kNoHistory when empty
  std::vector<std::uint32_t> history_len_;

  // observe_run scratch (prefix-pass arena positions and slot lookups);
  // never part of the logical state.
  std::vector<std::uint32_t> run_positions_;
  std::vector<std::uint32_t> run_slots_;
};

/// Deprecated MELODY-only persistence entry points, kept as thin wrappers
/// for one release. Persistence is now part of the QualityEstimator
/// interface itself: call estimator.save(out) / estimator.load(in) through
/// the base class instead — no concrete tracker type needed.
[[deprecated("use QualityEstimator::save")]] inline void save_tracker(
    const MelodyEstimator& tracker, std::ostream& out) {
  tracker.save(out);
}
[[deprecated("use QualityEstimator::load")]] inline void load_tracker(
    MelodyEstimator& tracker, std::istream& in) {
  tracker.load(in);
}

}  // namespace melody::estimators
