#include "estimators/ml_ar_estimator.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace melody::estimators {

void MlAllRunsEstimator::register_worker(auction::WorkerId id) {
  states_.try_emplace(id);
}

void MlAllRunsEstimator::observe(auction::WorkerId id,
                                 const lds::ScoreSet& scores) {
  State& state = states_.at(id);
  state.score_sum += scores.sum;
  state.score_count += scores.count;
}

double MlAllRunsEstimator::estimate(auction::WorkerId id) const {
  const State& state = states_.at(id);
  if (state.score_count == 0) return initial_estimate_;
  return state.score_sum / state.score_count;
}

namespace {
constexpr char kMlArHeader[] = "MELODY_ML_AR v1";
}

void MlAllRunsEstimator::save(std::ostream& out) const {
  std::vector<auction::WorkerId> ids;
  ids.reserve(states_.size());
  for (const auto& [id, state] : states_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  out << kMlArHeader << '\n' << ids.size() << '\n';
  out.precision(17);
  for (auction::WorkerId id : ids) {
    const State& s = states_.at(id);
    out << id << ' ' << s.score_sum << ' ' << s.score_count << '\n';
  }
  if (!out) throw std::runtime_error("MlAllRunsEstimator::save: write failed");
}

void MlAllRunsEstimator::load(std::istream& in) {
  std::string header;
  std::getline(in, header);
  if (header != kMlArHeader) {
    throw std::runtime_error("MlAllRunsEstimator::load: bad snapshot header");
  }
  std::size_t worker_count = 0;
  if (!(in >> worker_count)) {
    throw std::runtime_error("MlAllRunsEstimator::load: missing worker count");
  }
  std::unordered_map<auction::WorkerId, State> loaded;
  loaded.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    auction::WorkerId id = -1;
    State s;
    if (!(in >> id >> s.score_sum >> s.score_count)) {
      throw std::runtime_error("MlAllRunsEstimator::load: truncated record");
    }
    loaded.emplace(id, s);
  }
  states_ = std::move(loaded);
}

}  // namespace melody::estimators
