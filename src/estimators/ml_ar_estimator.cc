#include "estimators/ml_ar_estimator.h"

namespace melody::estimators {

void MlAllRunsEstimator::register_worker(auction::WorkerId id) {
  states_.try_emplace(id);
}

void MlAllRunsEstimator::observe(auction::WorkerId id,
                                 const lds::ScoreSet& scores) {
  State& state = states_.at(id);
  state.score_sum += scores.sum;
  state.score_count += scores.count;
}

double MlAllRunsEstimator::estimate(auction::WorkerId id) const {
  const State& state = states_.at(id);
  if (state.score_count == 0) return initial_estimate_;
  return state.score_sum / state.score_count;
}

}  // namespace melody::estimators
