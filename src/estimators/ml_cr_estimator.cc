#include "estimators/ml_cr_estimator.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace melody::estimators {

void MlCurrentRunEstimator::register_worker(auction::WorkerId id) {
  estimates_.try_emplace(id, initial_estimate_);
}

void MlCurrentRunEstimator::observe(auction::WorkerId id,
                                    const lds::ScoreSet& scores) {
  if (scores.empty()) return;
  estimates_.at(id) = scores.mean();
}

double MlCurrentRunEstimator::estimate(auction::WorkerId id) const {
  return estimates_.at(id);
}

namespace {
constexpr char kMlCrHeader[] = "MELODY_ML_CR v1";
}

void MlCurrentRunEstimator::save(std::ostream& out) const {
  std::vector<auction::WorkerId> ids;
  ids.reserve(estimates_.size());
  for (const auto& [id, estimate] : estimates_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  out << kMlCrHeader << '\n' << ids.size() << '\n';
  out.precision(17);
  for (auction::WorkerId id : ids) {
    out << id << ' ' << estimates_.at(id) << '\n';
  }
  if (!out) {
    throw std::runtime_error("MlCurrentRunEstimator::save: write failed");
  }
}

void MlCurrentRunEstimator::load(std::istream& in) {
  std::string header;
  std::getline(in, header);
  if (header != kMlCrHeader) {
    throw std::runtime_error(
        "MlCurrentRunEstimator::load: bad snapshot header");
  }
  std::size_t worker_count = 0;
  if (!(in >> worker_count)) {
    throw std::runtime_error(
        "MlCurrentRunEstimator::load: missing worker count");
  }
  std::unordered_map<auction::WorkerId, double> loaded;
  loaded.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    auction::WorkerId id = -1;
    double estimate = 0.0;
    if (!(in >> id >> estimate)) {
      throw std::runtime_error(
          "MlCurrentRunEstimator::load: truncated record");
    }
    loaded.emplace(id, estimate);
  }
  estimates_ = std::move(loaded);
}

}  // namespace melody::estimators
