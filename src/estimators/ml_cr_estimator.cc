#include "estimators/ml_cr_estimator.h"

namespace melody::estimators {

void MlCurrentRunEstimator::register_worker(auction::WorkerId id) {
  estimates_.try_emplace(id, initial_estimate_);
}

void MlCurrentRunEstimator::observe(auction::WorkerId id,
                                    const lds::ScoreSet& scores) {
  if (scores.empty()) return;
  estimates_.at(id) = scores.mean();
}

double MlCurrentRunEstimator::estimate(auction::WorkerId id) const {
  return estimates_.at(id);
}

}  // namespace melody::estimators
