// Interface for the long-term quality estimators compared in Section 7.7:
// STATIC, ML-CR, ML-AR, and MELODY's LDS tracker.
//
// Protocol: the platform calls observe() exactly once per registered worker
// per run — with an empty ScoreSet when the worker received no tasks — so
// estimators see the full timeline and can model time explicitly. estimate()
// returns the quality mu_i to use in the *next* run's auction.
#pragma once

#include <string>

#include "auction/types.h"
#include "lds/gaussian.h"

namespace melody::estimators {

class QualityEstimator {
 public:
  virtual ~QualityEstimator() = default;

  /// Introduce a new worker; estimate() must be valid immediately after
  /// (newcomers get the platform's initial estimate).
  virtual void register_worker(auction::WorkerId id) = 0;

  /// Record the scores the worker received in the run that just ended.
  virtual void observe(auction::WorkerId id, const lds::ScoreSet& scores) = 0;

  /// Estimated quality for the next run. Throws std::out_of_range for an
  /// unregistered worker.
  virtual double estimate(auction::WorkerId id) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace melody::estimators
