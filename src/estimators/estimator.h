// Interface for the long-term quality estimators compared in Section 7.7:
// STATIC, ML-CR, ML-AR, and MELODY's LDS tracker.
//
// Protocol: the platform calls observe() exactly once per registered worker
// per run — with an empty ScoreSet when the worker received no tasks — so
// estimators see the full timeline and can model time explicitly. estimate()
// returns the quality mu_i to use in the *next* run's auction.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "auction/types.h"
#include "lds/gaussian.h"

namespace melody::estimators {

class QualityEstimator {
 public:
  virtual ~QualityEstimator() = default;

  /// Introduce a new worker; estimate() must be valid immediately after
  /// (newcomers get the platform's initial estimate).
  virtual void register_worker(auction::WorkerId id) = 0;

  /// Record the scores the worker received in the run that just ended.
  virtual void observe(auction::WorkerId id, const lds::ScoreSet& scores) = 0;

  /// Digest one whole run at once: `ids` and `scores` are parallel arrays
  /// covering every registered worker exactly once. The default forwards
  /// to observe() in array order. Estimators whose per-worker updates are
  /// independent (MELODY's Kalman/EM chains) override this to shard the
  /// batch across util::shared_pool(); overrides must produce state
  /// bit-identical to the serial order for any thread count.
  virtual void observe_run(std::span<const auction::WorkerId> ids,
                           std::span<const lds::ScoreSet> scores) {
    for (std::size_t i = 0; i < ids.size(); ++i) observe(ids[i], scores[i]);
  }

  /// Estimated quality for the next run. Throws std::out_of_range for an
  /// unregistered worker.
  virtual double estimate(auction::WorkerId id) const = 0;

  virtual std::string name() const = 0;

  /// Persist all learned per-worker state as a versioned text snapshot
  /// (each implementation writes its own magic+version header line), so a
  /// restarted platform resumes exactly where the old one stopped —
  /// estimates after load() are bit-identical to the saved instance's.
  /// Configuration is never part of a snapshot: construct the new estimator
  /// with the same config before load(). load() replaces all existing state
  /// wholesale. Both throw std::runtime_error on I/O failure or malformed
  /// input. Callers hold these through the base class — no downcasting to a
  /// concrete estimator is needed for persistence.
  virtual void save(std::ostream& out) const = 0;
  virtual void load(std::istream& in) = 0;
};

}  // namespace melody::estimators
