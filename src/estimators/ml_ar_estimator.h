// ML-AR baseline (Section 7.7): the maximum-likelihood estimate over All
// Runs — the mean of every score the worker has ever received, weighing all
// history equally. Under-fits workers whose quality drifts.
#pragma once

#include <unordered_map>

#include "estimators/estimator.h"

namespace melody::estimators {

class MlAllRunsEstimator final : public QualityEstimator {
 public:
  explicit MlAllRunsEstimator(double initial_estimate)
      : initial_estimate_(initial_estimate) {}

  void register_worker(auction::WorkerId id) override;
  void observe(auction::WorkerId id, const lds::ScoreSet& scores) override;
  double estimate(auction::WorkerId id) const override;
  std::string name() const override { return "ML-AR"; }

  /// Versioned text snapshot of the running sums (initial_estimate is
  /// config and is not saved).
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  struct State {
    double score_sum = 0.0;
    int score_count = 0;
  };

  double initial_estimate_;
  std::unordered_map<auction::WorkerId, State> states_;
};

}  // namespace melody::estimators
