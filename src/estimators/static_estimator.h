// STATIC baseline (Section 7.7): averages a worker's scores over a fixed
// warm-up window of runs, then freezes the estimate forever. Models prior
// mechanisms that treat worker quality as a given constant.
#pragma once

#include <unordered_map>

#include "estimators/estimator.h"

namespace melody::estimators {

class StaticEstimator final : public QualityEstimator {
 public:
  /// initial_estimate is used until the first warm-up score arrives;
  /// warmup_runs matches the paper's "a few (50) runs at the beginning".
  StaticEstimator(double initial_estimate, int warmup_runs = 50)
      : initial_estimate_(initial_estimate), warmup_runs_(warmup_runs) {}

  void register_worker(auction::WorkerId id) override;
  void observe(auction::WorkerId id, const lds::ScoreSet& scores) override;
  double estimate(auction::WorkerId id) const override;
  std::string name() const override { return "STATIC"; }

  /// Versioned text snapshot of the warm-up accumulators (the constructor
  /// arguments are config and are not saved).
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  struct State {
    int runs_seen = 0;
    double score_sum = 0.0;
    int score_count = 0;
  };

  double initial_estimate_;
  int warmup_runs_;
  std::unordered_map<auction::WorkerId, State> states_;
};

}  // namespace melody::estimators
