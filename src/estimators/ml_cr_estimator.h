// ML-CR baseline (Section 7.7): the maximum-likelihood estimate from the
// Current Run only — the mean of this run's scores. Over-fits to the
// latest observation; used by most prior short-term mechanisms.
#pragma once

#include <unordered_map>

#include "estimators/estimator.h"

namespace melody::estimators {

class MlCurrentRunEstimator final : public QualityEstimator {
 public:
  explicit MlCurrentRunEstimator(double initial_estimate)
      : initial_estimate_(initial_estimate) {}

  void register_worker(auction::WorkerId id) override;
  void observe(auction::WorkerId id, const lds::ScoreSet& scores) override;
  double estimate(auction::WorkerId id) const override;
  std::string name() const override { return "ML-CR"; }

  /// Versioned text snapshot of the per-worker estimates (initial_estimate
  /// is config and is not saved).
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  double initial_estimate_;
  // Runs with no scores keep the previous estimate (there is no current-run
  // evidence to overwrite it with).
  std::unordered_map<auction::WorkerId, double> estimates_;
};

}  // namespace melody::estimators
