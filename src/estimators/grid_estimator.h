// Quality tracker backed by the grid-based Theorem-2 filter instead of the
// closed-form Gaussian update — the "general form" the paper derives before
// specializing to Gaussians. Two uses:
//   * non-Gaussian emission families (Poisson counts, Beta accuracies, ...)
//     tracked end to end, as Section 5 says "any other distribution in the
//     exponential family could also be used";
//   * an independent cross-check of the Kalman tracker (for Gaussian
//     emissions the two agree to grid resolution).
//
// Hyper-parameters are fixed at construction (no EM): the grid filter's
// E-step analogue would require grid smoothing, which is out of scope for
// this tracker; pair it with parameters learned offline if needed.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>

#include "estimators/estimator.h"
#include "lds/grid_filter.h"

namespace melody::estimators {

struct GridEstimatorConfig {
  /// Grid support and resolution for the posterior density.
  double quality_min = 0.0;
  double quality_max = 12.0;
  std::size_t grid_points = 400;
  /// Initial posterior (truncated to the grid support).
  lds::Gaussian initial_posterior{5.5, 2.25};
  /// Transition parameters; the emission is supplied separately.
  lds::LdsParams params{1.0, 1.0, 9.0};
  /// Per-score emission log-density (defaults to the Gaussian of
  /// params.eta when null at construction).
  lds::EmissionLogDensity emission;
  /// Index the chain by participation, like the MELODY tracker default.
  bool advance_on_empty_runs = false;
};

/// Tracks each worker's posterior as a grid density. observe() needs raw
/// scores to evaluate arbitrary emission densities; the ScoreSet protocol
/// only carries sufficient statistics, so this estimator exposes an
/// additional observe_scores() and treats a plain ScoreSet as
/// `count` pseudo-observations at the set's mean (exact for Gaussian
/// emissions, an approximation otherwise).
class GridEstimator final : public QualityEstimator {
 public:
  explicit GridEstimator(GridEstimatorConfig config = {});

  void register_worker(auction::WorkerId id) override;
  void observe(auction::WorkerId id, const lds::ScoreSet& scores) override;
  double estimate(auction::WorkerId id) const override;
  std::string name() const override { return "GRID"; }

  /// Exact-path observation with the raw per-task scores.
  void observe_scores(auction::WorkerId id, std::span<const double> scores);

  double posterior_mean(auction::WorkerId id) const;
  double posterior_variance(auction::WorkerId id) const;

  /// Versioned text snapshot of every worker's posterior grid density.
  /// The config (grid support, params, emission callback) is not saved:
  /// construct the new estimator with the same config before load().
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  GridEstimatorConfig config_;
  std::unordered_map<auction::WorkerId, std::unique_ptr<lds::GridFilter>>
      filters_;
};

}  // namespace melody::estimators
