#include "estimators/static_estimator.h"

#include <stdexcept>

namespace melody::estimators {

void StaticEstimator::register_worker(auction::WorkerId id) {
  states_.try_emplace(id);
}

void StaticEstimator::observe(auction::WorkerId id, const lds::ScoreSet& scores) {
  State& state = states_.at(id);
  if (state.runs_seen >= warmup_runs_) return;  // frozen after warm-up
  ++state.runs_seen;
  state.score_sum += scores.sum;
  state.score_count += scores.count;
}

double StaticEstimator::estimate(auction::WorkerId id) const {
  const State& state = states_.at(id);
  if (state.score_count == 0) return initial_estimate_;
  return state.score_sum / state.score_count;
}

}  // namespace melody::estimators
