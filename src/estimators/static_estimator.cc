#include "estimators/static_estimator.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace melody::estimators {

void StaticEstimator::register_worker(auction::WorkerId id) {
  states_.try_emplace(id);
}

void StaticEstimator::observe(auction::WorkerId id, const lds::ScoreSet& scores) {
  State& state = states_.at(id);
  if (state.runs_seen >= warmup_runs_) return;  // frozen after warm-up
  ++state.runs_seen;
  state.score_sum += scores.sum;
  state.score_count += scores.count;
}

double StaticEstimator::estimate(auction::WorkerId id) const {
  const State& state = states_.at(id);
  if (state.score_count == 0) return initial_estimate_;
  return state.score_sum / state.score_count;
}

namespace {
constexpr char kStaticHeader[] = "MELODY_STATIC v1";
}

void StaticEstimator::save(std::ostream& out) const {
  // Sorted by id so snapshots are byte-identical across runs.
  std::vector<auction::WorkerId> ids;
  ids.reserve(states_.size());
  for (const auto& [id, state] : states_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  out << kStaticHeader << '\n' << ids.size() << '\n';
  out.precision(17);
  for (auction::WorkerId id : ids) {
    const State& s = states_.at(id);
    out << id << ' ' << s.runs_seen << ' ' << s.score_sum << ' '
        << s.score_count << '\n';
  }
  if (!out) throw std::runtime_error("StaticEstimator::save: write failed");
}

void StaticEstimator::load(std::istream& in) {
  std::string header;
  std::getline(in, header);
  if (header != kStaticHeader) {
    throw std::runtime_error("StaticEstimator::load: bad snapshot header");
  }
  std::size_t worker_count = 0;
  if (!(in >> worker_count)) {
    throw std::runtime_error("StaticEstimator::load: missing worker count");
  }
  std::unordered_map<auction::WorkerId, State> loaded;
  loaded.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    auction::WorkerId id = -1;
    State s;
    if (!(in >> id >> s.runs_seen >> s.score_sum >> s.score_count)) {
      throw std::runtime_error("StaticEstimator::load: truncated record");
    }
    loaded.emplace(id, s);
  }
  states_ = std::move(loaded);
}

}  // namespace melody::estimators
