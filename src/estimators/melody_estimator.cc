#include "estimators/melody_estimator.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/parallel_for.h"

namespace melody::estimators {

void MelodyEstimator::register_worker(auction::WorkerId id) {
  State state;
  state.posterior = config_.initial_posterior;  // newcomer: Alg. 3 line 2
  state.params = config_.initial_params;
  state.window_anchor = config_.initial_posterior;
  states_.try_emplace(id, std::move(state));
}

void MelodyEstimator::observe(auction::WorkerId id, const lds::ScoreSet& scores) {
  State& state = states_.at(id);
  ++state.runs_seen;
  if (scores.empty() && !config_.advance_on_empty_runs) {
    return;  // participation-indexed chain: idle runs change nothing
  }
  state.history.push_back(scores);
  if (!scores.empty()) ++state.observed_runs;
  if (config_.max_history > 0 &&
      static_cast<int>(state.history.size()) > config_.max_history) {
    // Slide the window: fold the oldest run into the anchor posterior.
    state.window_anchor =
        lds::filter_step(state.window_anchor, state.history.front(),
                         state.params);
    state.history.erase(state.history.begin());
  }

  // Theorem 3 update (empty score sets propagate the prior only).
  // Observability (gated on one relaxed load; handles cached in statics;
  // each Summary carries its own mutex, so the sharded observe_run path
  // records concurrently without touching the registry lock): innovation
  // |s-bar - a*mu-hat| diagnoses posterior divergence, posterior variance
  // tracks filter confidence. Neither value feeds back into the update.
  const bool collect = obs::enabled();
  if (collect && !scores.empty()) {
    static obs::Summary& innovation =
        obs::registry().summary("estimator/innovation_abs");
    innovation.record(
        std::abs(scores.mean() - state.params.a * state.posterior.mean));
  }
  state.posterior = lds::filter_step(state.posterior, scores, state.params);
  if (collect) {
    static obs::Counter& updates =
        obs::registry().counter("estimator/kalman_updates");
    static obs::Summary& posterior_var =
        obs::registry().summary("estimator/posterior_var");
    updates.add();
    posterior_var.record(state.posterior.var);
  }

  // Algorithm 3 lines 6-8: periodic EM re-estimation of theta.
  ++state.runs_since_em;
  if (config_.reestimation_period > 0 &&
      state.runs_since_em >= config_.reestimation_period &&
      state.observed_runs >= config_.min_history_for_em) {
    obs::ScopedTimer em_timer(collect
                                  ? &obs::registry().timer("estimator/em")
                                  : nullptr);
    const lds::EmResult em = lds::fit_lds(state.window_anchor, state.history,
                                          state.params, config_.em_options);
    state.params = em.params;
    state.runs_since_em = 0;
    ++state.em_count;
    if (collect) {
      static obs::Counter& em_runs =
          obs::registry().counter("estimator/em_runs");
      static obs::Summary& em_iterations =
          obs::registry().summary("estimator/em_iterations");
      em_runs.add();
      em_iterations.record(static_cast<double>(em.iterations));
    }
    if (config_.refilter_after_em) {
      state.posterior =
          lds::filter(state.window_anchor, state.history, state.params)
              .posteriors.back();
      if (collect) {
        static obs::Counter& refilters =
            obs::registry().counter("estimator/refilters");
        refilters.add();
      }
    }
  }
  state.posterior.mean = std::clamp(state.posterior.mean,
                                    config_.estimate_min, config_.estimate_max);
}

void MelodyEstimator::observe_run(std::span<const auction::WorkerId> ids,
                                  std::span<const lds::ScoreSet> scores) {
  // Each worker's filter/EM chain reads and writes only states_.at(id);
  // concurrent at() on distinct keys of an unchanging map is safe. The
  // grain keeps small populations on the calling thread — the crossover is
  // dominated by the EM runs, which are the expensive entries.
  util::parallel_for(
      util::shared_pool(), ids.size(),
      [&](std::size_t i) { observe(ids[i], scores[i]); },
      /*min_grain=*/16);
}

double MelodyEstimator::estimate(auction::WorkerId id) const {
  const State& state = states_.at(id);
  // Eq. (19): mu^{r+1} = a * mu-hat^r, clamped to the score range.
  double estimate = state.params.a * state.posterior.mean;
  if (config_.exploration_beta > 0.0) {
    estimate += config_.exploration_beta *
                std::sqrt(std::log(state.runs_seen + 1.0) /
                          (state.observed_runs + 1.0));
  }
  return std::clamp(estimate, config_.estimate_min, config_.estimate_max);
}

const lds::Gaussian& MelodyEstimator::posterior(auction::WorkerId id) const {
  return states_.at(id).posterior;
}

const lds::LdsParams& MelodyEstimator::params(auction::WorkerId id) const {
  return states_.at(id).params;
}

int MelodyEstimator::reestimation_count(auction::WorkerId id) const {
  return states_.at(id).em_count;
}

namespace {
constexpr char kSnapshotHeader[] = "MELODY_TRACKER v2";
}

void MelodyEstimator::save(std::ostream& out) const {
  // Sort by id so snapshots are byte-identical across runs.
  std::vector<auction::WorkerId> ids;
  ids.reserve(states_.size());
  for (const auto& [id, state] : states_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  out << kSnapshotHeader << '\n' << ids.size() << '\n';
  out.precision(17);
  for (auction::WorkerId id : ids) {
    const State& s = states_.at(id);
    out << id << ' ' << s.posterior.mean << ' ' << s.posterior.var << ' '
        << s.window_anchor.mean << ' ' << s.window_anchor.var << ' '
        << s.params.a << ' ' << s.params.gamma << ' ' << s.params.eta << ' '
        << s.runs_since_em << ' ' << s.runs_seen << ' ' << s.observed_runs
        << ' ' << s.em_count << ' ' << s.history.size() << '\n';
    for (const lds::ScoreSet& set : s.history) {
      out << set.count << ' ' << set.sum << ' ' << set.sum_squares << '\n';
    }
  }
  if (!out) throw std::runtime_error("MelodyEstimator::save: write failed");
}

void MelodyEstimator::load(std::istream& in) {
  std::string header;
  std::getline(in, header);
  if (header != kSnapshotHeader) {
    throw std::runtime_error("MelodyEstimator::load: bad snapshot header");
  }
  std::size_t worker_count = 0;
  if (!(in >> worker_count)) {
    throw std::runtime_error("MelodyEstimator::load: missing worker count");
  }
  std::unordered_map<auction::WorkerId, State> loaded;
  loaded.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    auction::WorkerId id = -1;
    State s;
    std::size_t history_size = 0;
    if (!(in >> id >> s.posterior.mean >> s.posterior.var >>
          s.window_anchor.mean >> s.window_anchor.var >> s.params.a >>
          s.params.gamma >> s.params.eta >> s.runs_since_em >> s.runs_seen >>
          s.observed_runs >> s.em_count >> history_size)) {
      throw std::runtime_error("MelodyEstimator::load: truncated worker record");
    }
    s.params.validate();
    if (s.posterior.var <= 0.0 || s.window_anchor.var <= 0.0) {
      throw std::runtime_error("MelodyEstimator::load: invalid posterior");
    }
    s.history.resize(history_size);
    for (lds::ScoreSet& set : s.history) {
      if (!(in >> set.count >> set.sum >> set.sum_squares)) {
        throw std::runtime_error("MelodyEstimator::load: truncated history");
      }
    }
    loaded.emplace(id, std::move(s));
  }
  states_ = std::move(loaded);
}

}  // namespace melody::estimators
