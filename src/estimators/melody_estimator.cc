#include "estimators/melody_estimator.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/parallel_for.h"

namespace melody::estimators {

namespace {
/// Null link / "no arena entry" marker for the arena history chains.
constexpr std::uint32_t kNoHistory = 0xffffffffu;
}  // namespace

void MelodyEstimator::register_worker(auction::WorkerId id) {
  const auto [it, inserted] = index_.try_emplace(id, ids_.size());
  if (!inserted) return;  // re-registration keeps the existing chain
  ids_.push_back(id);
  mean_.push_back(config_.initial_posterior.mean);  // newcomer: Alg. 3 line 2
  var_.push_back(config_.initial_posterior.var);
  anchor_mean_.push_back(config_.initial_posterior.mean);
  anchor_var_.push_back(config_.initial_posterior.var);
  a_.push_back(config_.initial_params.a);
  gamma_.push_back(config_.initial_params.gamma);
  eta_.push_back(config_.initial_params.eta);
  runs_since_em_.push_back(0);
  runs_seen_.push_back(0);
  observed_runs_.push_back(0);
  em_count_.push_back(0);
  if (arena_history()) {
    history_head_.push_back(kNoHistory);
    history_len_.push_back(0);
  } else {
    history_.emplace_back();
  }
}

const lds::ScoreHistory& MelodyEstimator::gathered_history(
    std::size_t slot) const {
  static thread_local lds::ScoreHistory scratch;
  scratch.resize(history_len_[slot]);
  std::uint32_t node = history_head_[slot];
  for (std::size_t k = scratch.size(); k-- > 0;) {
    scratch[k] = history_arena_[node].scores;
    node = history_arena_[node].prev;
  }
  return scratch;
}

void MelodyEstimator::observe_slot(std::size_t slot,
                                   const lds::ScoreSet& scores) {
  ++runs_seen_[slot];
  if (scores.empty() && !config_.advance_on_empty_runs) {
    return;  // participation-indexed chain: idle runs change nothing
  }
  std::uint32_t arena_pos = kNoHistory;
  if (arena_history()) {
    arena_pos = static_cast<std::uint32_t>(history_arena_.size());
    history_arena_.emplace_back();
  }
  observe_slot_at(slot, scores, arena_pos);
}

void MelodyEstimator::observe_slot_at(std::size_t slot,
                                      const lds::ScoreSet& scores,
                                      std::uint32_t arena_pos) {
  const lds::LdsParams params{a_[slot], gamma_[slot], eta_[slot]};
  if (arena_history()) {
    history_arena_[arena_pos] = {scores, history_head_[slot]};
    history_head_[slot] = arena_pos;
    ++history_len_[slot];
  } else {
    lds::ScoreHistory& history = history_[slot];
    history.push_back(scores);
    if (config_.max_history > 0 &&
        static_cast<int>(history.size()) > config_.max_history) {
      // Slide the window: fold the oldest run into the anchor posterior.
      const lds::Gaussian anchor = lds::filter_step(
          {anchor_mean_[slot], anchor_var_[slot]}, history.front(), params);
      anchor_mean_[slot] = anchor.mean;
      anchor_var_[slot] = anchor.var;
      history.erase(history.begin());
    }
  }
  if (!scores.empty()) ++observed_runs_[slot];

  // Theorem 3 update (empty score sets propagate the prior only).
  // Observability (gated on one relaxed load; handles cached in statics;
  // each Summary carries its own mutex, so the sharded observe_run path
  // records concurrently without touching the registry lock): innovation
  // |s-bar - a*mu-hat| diagnoses posterior divergence, posterior variance
  // tracks filter confidence. Neither value feeds back into the update.
  const bool collect = obs::enabled();
  if (collect && !scores.empty()) {
    static obs::Summary& innovation =
        obs::registry().summary("estimator/innovation_abs");
    innovation.record(std::abs(scores.mean() - params.a * mean_[slot]));
  }
  lds::Gaussian posterior =
      lds::filter_step({mean_[slot], var_[slot]}, scores, params);
  if (collect) {
    static obs::Counter& updates =
        obs::registry().counter("estimator/kalman_updates");
    static obs::Summary& posterior_var =
        obs::registry().summary("estimator/posterior_var");
    updates.add();
    posterior_var.record(posterior.var);
  }

  // Algorithm 3 lines 6-8: periodic EM re-estimation of theta.
  ++runs_since_em_[slot];
  if (config_.reestimation_period > 0 &&
      runs_since_em_[slot] >= config_.reestimation_period &&
      observed_runs_[slot] >= config_.min_history_for_em) {
    reestimate_slot(slot, params, posterior, collect);
  }
  mean_[slot] =
      std::clamp(posterior.mean, config_.estimate_min, config_.estimate_max);
  var_[slot] = posterior.var;
}

void MelodyEstimator::reestimate_slot(std::size_t slot,
                                      const lds::LdsParams& params,
                                      lds::Gaussian& posterior, bool collect) {
  obs::ScopedTimer em_timer(collect ? &obs::registry().timer("estimator/em")
                                    : nullptr);
  const lds::Gaussian anchor{anchor_mean_[slot], anchor_var_[slot]};
  const lds::ScoreHistory& history =
      arena_history() ? gathered_history(slot) : history_[slot];
  const lds::EmResult em =
      lds::fit_lds(anchor, history, params, config_.em_options);
  a_[slot] = em.params.a;
  gamma_[slot] = em.params.gamma;
  eta_[slot] = em.params.eta;
  runs_since_em_[slot] = 0;
  ++em_count_[slot];
  if (collect) {
    static obs::Counter& em_runs = obs::registry().counter("estimator/em_runs");
    static obs::Summary& em_iterations =
        obs::registry().summary("estimator/em_iterations");
    em_runs.add();
    em_iterations.record(static_cast<double>(em.iterations));
  }
  if (config_.refilter_after_em) {
    posterior = lds::filter(anchor, history, em.params).posteriors.back();
    if (collect) {
      static obs::Counter& refilters =
          obs::registry().counter("estimator/refilters");
      refilters.add();
    }
  }
}

void MelodyEstimator::update_arena_range(std::size_t begin, std::size_t end,
                                         std::span<const lds::ScoreSet> scores,
                                         const std::uint32_t* pos,
                                         const std::uint32_t* slots) {
  // Observability is sampled once per range, not once per worker: the
  // whole range runs under one collection decision, and the disabled case
  // (the production default, and what the perf suite times) pays no
  // atomic load inside the loop.
  const bool collect = obs::enabled();
  obs::Summary* innovation = nullptr;
  obs::Counter* updates = nullptr;
  obs::Summary* posterior_var = nullptr;
  if (collect) {
    obs::MetricsRegistry& reg = obs::registry();
    innovation = &reg.summary("estimator/innovation_abs");
    updates = &reg.counter("estimator/kalman_updates");
    posterior_var = &reg.summary("estimator/posterior_var");
  }
  const bool em_enabled = config_.reestimation_period > 0;
  const double estimate_min = config_.estimate_min;
  const double estimate_max = config_.estimate_max;
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t slot = slots != nullptr ? slots[i] : i;
    ++runs_seen_[slot];
    const std::uint32_t arena_pos = pos[i];
    if (arena_pos == kNoHistory) continue;  // idle, non-advancing run
    const lds::ScoreSet& set = scores[i];
    const lds::LdsParams params{a_[slot], gamma_[slot], eta_[slot]};
    history_arena_[arena_pos] = {set, history_head_[slot]};
    history_head_[slot] = arena_pos;
    ++history_len_[slot];
    if (!set.empty()) ++observed_runs_[slot];
    if (collect && !set.empty()) {
      innovation->record(std::abs(set.mean() - params.a * mean_[slot]));
    }
    lds::Gaussian posterior =
        lds::filter_step({mean_[slot], var_[slot]}, set, params);
    if (collect) {
      updates->add();
      posterior_var->record(posterior.var);
    }
    ++runs_since_em_[slot];
    if (em_enabled && runs_since_em_[slot] >= config_.reestimation_period &&
        observed_runs_[slot] >= config_.min_history_for_em) {
      reestimate_slot(slot, params, posterior, collect);
    }
    mean_[slot] = std::clamp(posterior.mean, estimate_min, estimate_max);
    var_[slot] = posterior.var;
  }
}

void MelodyEstimator::observe(auction::WorkerId id,
                              const lds::ScoreSet& scores) {
  observe_slot(index_.at(id), scores);
}

bool MelodyEstimator::matches_slot_order(
    std::span<const auction::WorkerId> ids) const {
  if (ids.size() != ids_.size()) return false;
  return std::equal(ids.begin(), ids.end(), ids_.begin());
}

void MelodyEstimator::observe_run(std::span<const auction::WorkerId> ids,
                                  std::span<const lds::ScoreSet> scores) {
  // Each worker's filter/EM chain reads and writes only its own slot of
  // the state arrays; slots are disjoint, so sharding is safe. The grain
  // keeps small populations on the calling thread — the crossover is
  // dominated by the EM runs, which are the expensive entries. The
  // platform observes workers in registration order, which is exactly the
  // dense slot order: one O(N) identity check then replaces N hash
  // lookups with direct slot indexing.
  // Crossover: a run that cannot trigger EM is one filter step per slot —
  // far cheaper than a fork-join — so it only leaves the calling thread
  // for very large populations. With EM enabled the expensive entries
  // dominate and sharding pays immediately. (Serial and parallel orders
  // are bit-identical either way; this is purely a cost decision.)
  const std::size_t min_grain =
      config_.reestimation_period > 0 ? 16 : 16384;
  const bool slot_order = matches_slot_order(ids);
  if (!arena_history()) {
    if (slot_order) {
      util::parallel_for(
          util::shared_pool(), ids.size(),
          [&](std::size_t i) { observe_slot(i, scores[i]); }, min_grain);
      return;
    }
    util::parallel_for(
        util::shared_pool(), ids.size(),
        [&](std::size_t i) { observe(ids[i], scores[i]); }, min_grain);
    return;
  }

  // Arena mode: the per-slot updates append to the shared arena, so a
  // serial prefix pass assigns every appending slot its position (in the
  // same order the serial loop would have appended) and sizes the arena
  // once. The sharded bodies then write disjoint, pre-sized entries —
  // same entries, same order, no race.
  std::vector<std::uint32_t>& pos = run_positions_;
  pos.resize(ids.size());
  std::uint32_t next = static_cast<std::uint32_t>(history_arena_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const bool appends = !scores[i].empty() || config_.advance_on_empty_runs;
    pos[i] = appends ? next++ : kNoHistory;
  }
  history_arena_.resize(next);
  const std::uint32_t* slot_of = nullptr;
  if (!slot_order) {
    std::vector<std::uint32_t>& slots = run_slots_;
    slots.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      slots[i] = static_cast<std::uint32_t>(index_.at(ids[i]));
    }
    slot_of = slots.data();
  }
  // Shard whole grain-sized ranges, not single slots: the fused range body
  // is where the batch update earns its throughput, and any partition of
  // disjoint slots produces identical state.
  const std::size_t grain = std::max<std::size_t>(min_grain, 1);
  const std::size_t chunks = (ids.size() + grain - 1) / grain;
  util::parallel_for(util::shared_pool(), chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(ids.size(), begin + grain);
    update_arena_range(begin, end, scores, pos.data(), slot_of);
  });
}

double MelodyEstimator::estimate(auction::WorkerId id) const {
  const std::size_t slot = index_.at(id);
  // Eq. (19): mu^{r+1} = a * mu-hat^r, clamped to the score range.
  double estimate = a_[slot] * mean_[slot];
  if (config_.exploration_beta > 0.0) {
    estimate += config_.exploration_beta *
                std::sqrt(std::log(runs_seen_[slot] + 1.0) /
                          (observed_runs_[slot] + 1.0));
  }
  return std::clamp(estimate, config_.estimate_min, config_.estimate_max);
}

lds::Gaussian MelodyEstimator::posterior(auction::WorkerId id) const {
  const std::size_t slot = index_.at(id);
  return {mean_[slot], var_[slot]};
}

lds::LdsParams MelodyEstimator::params(auction::WorkerId id) const {
  const std::size_t slot = index_.at(id);
  return {a_[slot], gamma_[slot], eta_[slot]};
}

int MelodyEstimator::reestimation_count(auction::WorkerId id) const {
  return em_count_[index_.at(id)];
}

namespace {
constexpr char kSnapshotHeader[] = "MELODY_TRACKER v2";
}

void MelodyEstimator::save(std::ostream& out) const {
  // Sort by id so snapshots are byte-identical across runs (and across
  // state layouts: this is the same record order the AoS code emitted).
  std::vector<auction::WorkerId> ids = ids_;
  std::sort(ids.begin(), ids.end());

  out << kSnapshotHeader << '\n' << ids.size() << '\n';
  out.precision(17);
  for (auction::WorkerId id : ids) {
    const std::size_t s = index_.at(id);
    // Arena mode gathers the slot's chain into the same oldest-first
    // per-worker sequence the window mode stores, so the snapshot bytes
    // are identical across storage modes.
    const lds::ScoreHistory& history =
        arena_history() ? gathered_history(s) : history_[s];
    out << id << ' ' << mean_[s] << ' ' << var_[s] << ' ' << anchor_mean_[s]
        << ' ' << anchor_var_[s] << ' ' << a_[s] << ' ' << gamma_[s] << ' '
        << eta_[s] << ' ' << runs_since_em_[s] << ' ' << runs_seen_[s] << ' '
        << observed_runs_[s] << ' ' << em_count_[s] << ' ' << history.size()
        << '\n';
    for (const lds::ScoreSet& set : history) {
      out << set.count << ' ' << set.sum << ' ' << set.sum_squares << '\n';
    }
  }
  if (!out) throw std::runtime_error("MelodyEstimator::save: write failed");
}

void MelodyEstimator::load(std::istream& in) {
  std::string header;
  std::getline(in, header);
  if (header != kSnapshotHeader) {
    throw std::runtime_error("MelodyEstimator::load: bad snapshot header");
  }
  std::size_t worker_count = 0;
  if (!(in >> worker_count)) {
    throw std::runtime_error("MelodyEstimator::load: missing worker count");
  }
  MelodyEstimator loaded(config_);
  loaded.ids_.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    auction::WorkerId id = -1;
    lds::Gaussian posterior;
    lds::Gaussian anchor;
    lds::LdsParams params;
    int runs_since_em = 0;
    int runs_seen = 0;
    int observed_runs = 0;
    int em_count = 0;
    std::size_t history_size = 0;
    if (!(in >> id >> posterior.mean >> posterior.var >> anchor.mean >>
          anchor.var >> params.a >> params.gamma >> params.eta >>
          runs_since_em >> runs_seen >> observed_runs >> em_count >>
          history_size)) {
      throw std::runtime_error(
          "MelodyEstimator::load: truncated worker record");
    }
    params.validate();
    if (posterior.var <= 0.0 || anchor.var <= 0.0) {
      throw std::runtime_error("MelodyEstimator::load: invalid posterior");
    }
    lds::ScoreHistory history(history_size);
    for (lds::ScoreSet& set : history) {
      if (!(in >> set.count >> set.sum >> set.sum_squares)) {
        throw std::runtime_error("MelodyEstimator::load: truncated history");
      }
    }
    if (loaded.index_.contains(id)) {
      throw std::runtime_error("MelodyEstimator::load: duplicate worker id");
    }
    loaded.index_.emplace(id, loaded.ids_.size());
    loaded.ids_.push_back(id);
    loaded.mean_.push_back(posterior.mean);
    loaded.var_.push_back(posterior.var);
    loaded.anchor_mean_.push_back(anchor.mean);
    loaded.anchor_var_.push_back(anchor.var);
    loaded.a_.push_back(params.a);
    loaded.gamma_.push_back(params.gamma);
    loaded.eta_.push_back(params.eta);
    loaded.runs_since_em_.push_back(runs_since_em);
    loaded.runs_seen_.push_back(runs_seen);
    loaded.observed_runs_.push_back(observed_runs);
    loaded.em_count_.push_back(em_count);
    if (loaded.arena_history()) {
      std::uint32_t head = kNoHistory;
      for (const lds::ScoreSet& set : history) {
        const auto node =
            static_cast<std::uint32_t>(loaded.history_arena_.size());
        loaded.history_arena_.push_back({set, head});
        head = node;
      }
      loaded.history_head_.push_back(head);
      loaded.history_len_.push_back(
          static_cast<std::uint32_t>(history.size()));
    } else {
      loaded.history_.push_back(std::move(history));
    }
  }
  *this = std::move(loaded);
}

}  // namespace melody::estimators
