// The one estimator construction path shared by the batch simulator
// (melody_sim), the online service (melody_serve / svc::AuctionService),
// the perf suite, and the figure benches. Every caller used to grow its own
// name -> constructor switch with slightly different defaults; serve-vs-
// batch bit-identity only holds when all of them build the identical stack,
// so the menu lives here and nowhere else.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "estimators/estimator.h"

namespace melody::estimators {

/// Everything the registry needs to configure any estimator kind. The
/// scenario-derived fields mirror sim::LongTermScenario's defaults; callers
/// holding a scenario copy its values in (estimators/ sits below sim/ in
/// the layering, so this struct speaks plain numbers, not scenarios).
struct MakeParams {
  double initial_mu = 5.5;       // mu-hat^0
  double initial_sigma = 2.25;   // sigma-hat^0
  int reestimation_period = 10;  // T (melody only; 0 disables EM)
  double exploration_beta = 0.0; // exploration bonus weight (melody only)
  int max_history = 0;           // melody score-history window (0: unbounded)
  int static_warmup_runs = 50;   // "static" estimator warm-up horizon
};

/// Canonical kind names, lowercase: "melody", "static", "ml-cr", "ml-ar".
/// Lookup is case-insensitive (the figure benches label series in
/// uppercase). Returns nullptr for an unknown kind.
std::unique_ptr<QualityEstimator> make(std::string_view kind,
                                       const MakeParams& params);

/// True when `kind` names a registered estimator (same case-folding as
/// make) — config validation without building anything.
bool known(std::string_view kind) noexcept;

/// The menu as "melody|static|ml-cr|ml-ar" for usage/error messages.
const std::string& known_kinds();

}  // namespace melody::estimators
