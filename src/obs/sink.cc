#include "obs/sink.h"

#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace melody::obs {

namespace {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

JsonLinesSink::JsonLinesSink(const std::string& path)
    : owned_(path, std::ios::out | std::ios::trunc), out_(&owned_) {
  if (!owned_) {
    throw std::runtime_error("JsonLinesSink: cannot open " + path);
  }
}

JsonLinesSink::JsonLinesSink(std::ostream& out) : out_(&out) {}

void JsonLinesSink::event(std::string_view name,
                          std::span<const Field> fields) {
  // Format into a local buffer first so one event is always one contiguous
  // line even under concurrent emitters.
  std::ostringstream line;
  line.precision(17);
  line << "{\"type\":\"event\",\"name\":";
  write_json_string(line, name);
  for (const Field& f : fields) {
    line << ',';
    write_json_string(line, f.key);
    line << ':';
    switch (f.kind) {
      case Field::Kind::kDouble:
        if (std::isfinite(f.num)) {
          line << f.num;
        } else {
          line << "null";
        }
        break;
      case Field::Kind::kInt:
        line << f.integer;
        break;
      case Field::Kind::kString:
        write_json_string(line, f.text);
        break;
    }
  }
  line << "}\n";

  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line.str();
  ++lines_;
}

void JsonLinesSink::append_registry(const MetricsRegistry& registry) {
  std::ostringstream dump;
  registry.write_json(dump);
  const std::string text = dump.str();
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << text;
  out_->flush();
  lines_ += lines;
}

std::size_t JsonLinesSink::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

namespace {
std::atomic<Sink*> g_sink{nullptr};
}  // namespace

Sink* sink() noexcept { return g_sink.load(std::memory_order_relaxed); }

void set_sink(Sink* s) noexcept {
  g_sink.store(s, std::memory_order_release);
}

void emit(std::string_view name, std::initializer_list<Field> fields) {
  Sink* s = g_sink.load(std::memory_order_acquire);
  if (s == nullptr) return;
  s->event(name, std::span<const Field>(fields.begin(), fields.size()));
}

void emit(std::string_view name, std::span<const Field> fields) {
  Sink* s = g_sink.load(std::memory_order_acquire);
  if (s == nullptr) return;
  s->event(name, fields);
}

}  // namespace melody::obs
