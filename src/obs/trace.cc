#include "obs/trace.h"

#include <atomic>

#include "obs/metrics.h"

namespace melody::obs {

namespace {

std::atomic<std::uint64_t> g_next_span{1};

TraceContext& current_slot() noexcept {
  thread_local TraceContext context;
  return context;
}

Counter& span_counter() {
  static Counter& counter = registry().counter("trace/spans");
  return counter;
}

}  // namespace

std::uint64_t mint_trace_id(std::uint64_t conn, std::uint64_t seq) noexcept {
  return (conn << 24) + seq + 1;
}

std::uint64_t next_span_id() noexcept {
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

TraceContext current_trace() noexcept { return current_slot(); }

ScopedTraceContext::ScopedTraceContext(const TraceContext& context) noexcept {
  if (!context.active()) return;
  previous_ = current_slot();
  current_slot() = context;
  installed_ = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (installed_) current_slot() = previous_;
}

ScopedSpan::ScopedSpan(std::string_view name,
                       const TraceContext& parent) noexcept
    : name_(name) {
  if (!enabled() || !parent.active()) return;
  active_ = true;
  context_ = {parent.trace_id, next_span_id(), parent.span_id};
  previous_ = current_slot();
  current_slot() = context_;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  current_slot() = previous_;
  span_counter().add();
  const double us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start_)
          .count();
  std::array<Field, kMaxAnnotations + 4> fields = {
      Field{"trace", static_cast<std::int64_t>(context_.trace_id)},
      Field{"span", static_cast<std::int64_t>(context_.span_id)},
      Field{"parent", static_cast<std::int64_t>(context_.parent_span_id)},
      Field{"us", us},
  };
  for (std::size_t i = 0; i < note_count_; ++i) fields[4 + i] = notes_[i];
  emit(name_, std::span<const Field>(fields.data(), 4 + note_count_));
}

void ScopedSpan::push(Field field) noexcept {
  if (!active_ || note_count_ >= kMaxAnnotations) return;
  notes_[note_count_++] = field;
}

void ScopedSpan::annotate(std::string_view key, std::int64_t value) noexcept {
  push(Field{key, value});
}

void ScopedSpan::annotate(std::string_view key, double value) noexcept {
  push(Field{key, value});
}

void ScopedSpan::annotate(std::string_view key,
                          std::string_view value) noexcept {
  push(Field{key, value});
}

std::uint64_t spans_emitted() noexcept { return span_counter().value(); }

}  // namespace melody::obs
