// Observability metrics for the auction/estimation hot paths: a process-wide
// thread-safe registry of counters, gauges, and Welford summaries (used both
// for value distributions and, via ScopedTimer, for phase timings with
// percentile estimates).
//
// Cost contract (see DESIGN.md, "Observability layer"):
//   * Collection is OFF by default. Every instrumentation site is gated on
//     obs::enabled() — a single relaxed atomic load — so uninstrumented runs
//     pay no clock reads, no locks, and no allocation.
//   * Metrics never feed back into any decision the mechanisms or estimators
//     make, so enabling them cannot perturb the PR-1 determinism contract:
//     RunRecords and posteriors are bit-identical with metrics on or off at
//     any thread count (asserted by test_parallel_determinism).
//   * Handles returned by the registry are stable for the process lifetime;
//     reset() zeroes values but never invalidates a handle, so hot paths may
//     cache `static Counter&` references.
//
// This header is deliberately self-contained (standard library only) so that
// util/ — the bottom of the dependency stack — can instrument itself.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace melody::obs {

/// Monotone event counter. add() is one relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe distribution summary: Welford mean/variance plus min/max/sum,
/// and a bounded ring of the most recent samples for percentile estimates
/// (a deterministic alternative to reservoir sampling — no RNG involved).
/// record() takes a per-summary mutex; callers gate on obs::enabled().
class Summary {
 public:
  /// Ring capacity for percentile estimation. Percentiles are computed over
  /// the last kRingCapacity samples only; mean/stddev/min/max/sum are exact
  /// over the full stream.
  static constexpr std::size_t kRingCapacity = 512;

  void record(double x) noexcept;

  struct Stats {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;  // population stddev of the full stream
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double p50 = 0.0;  // percentiles over the recent-sample ring
    double p90 = 0.0;
    double p99 = 0.0;
  };
  Stats stats() const;

  void reset() noexcept;

 private:
  mutable std::mutex mutex_;
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::vector<double> ring_;     // most recent samples, insertion order
  std::size_t ring_next_ = 0;    // next slot to overwrite once full
};

/// RAII phase timer: records elapsed seconds into a Summary on destruction.
/// A null summary disables the timer entirely — no clock read on either end
/// — which is how the obs::enabled() gate composes with scoping.
class ScopedTimer {
 public:
  explicit ScopedTimer(Summary* summary) noexcept : summary_(summary) {
    if (summary_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (summary_ != nullptr) {
      summary_->record(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Summary* summary_;
  std::chrono::steady_clock::time_point start_;
};

/// Read-only snapshot of every metric in a registry, sorted by name within
/// each kind (map iteration order), for tools and tests.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct SummaryEntry {
    std::string name;
    bool is_timer = false;  // true: samples are seconds (phase timings)
    Summary::Stats stats;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<SummaryEntry> summaries;
};

/// Name -> metric map with handle-stable storage. Lookup takes the registry
/// mutex; hot paths should look a handle up once (static local) and then
/// touch only the metric's own synchronization.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Distribution of arbitrary values (innovations, variances, ...).
  Summary& summary(std::string_view name);
  /// Distribution of durations in seconds; identical to summary() except it
  /// is tagged as a timer in snapshots and JSON output.
  Summary& timer(std::string_view name);

  /// Zero every metric's value. Existing handles stay valid.
  void reset();

  MetricsSnapshot snapshot() const;

  /// Write one JSON object per line for every metric, e.g.
  ///   {"type":"counter","name":"pool/jobs_executed","value":42}
  ///   {"type":"timer","name":"auction/rank_sort","unit":"seconds", ...}
  void write_json(std::ostream& out) const;

 private:
  Summary& summary_impl(std::string_view name, bool is_timer);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Summary>, std::less<>> summaries_;
  std::map<std::string, bool, std::less<>> summary_is_timer_;
};

/// The process-wide registry every instrumentation site records into.
/// Intentionally leaked at exit so handles cached in static locals stay
/// valid for the whole process lifetime.
MetricsRegistry& registry() noexcept;

/// Global collection switch (default off). One relaxed load to query.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// nullptr while collection is disabled, otherwise &registry().timer(name);
/// pairs with ScopedTimer so a disabled phase costs one load + branch.
Summary* timer_if_enabled(std::string_view name);
Summary* summary_if_enabled(std::string_view name);

/// Installs `on` for the current scope and restores the previous state on
/// destruction (tests, benches).
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) noexcept : previous_(enabled()) {
    set_enabled(on);
  }
  ~ScopedEnable() { set_enabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace melody::obs
