#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace melody::obs {

void Summary::record(double x) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  if (ring_.size() < kRingCapacity) {
    ring_.push_back(x);
  } else {
    ring_[ring_next_] = x;
    ring_next_ = (ring_next_ + 1) % kRingCapacity;
  }
}

namespace {

// q-th quantile with linear interpolation over a sorted copy.
double ring_quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

Summary::Stats Summary::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean = mean_;
  s.stddev = count_ > 1 ? std::sqrt(m2_ / static_cast<double>(count_)) : 0.0;
  s.min = min_;
  s.max = max_;
  s.sum = sum_;
  s.p50 = ring_quantile(ring_, 0.50);
  s.p90 = ring_quantile(ring_, 0.90);
  s.p99 = ring_quantile(ring_, 0.99);
  return s;
}

void Summary::reset() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  mean_ = m2_ = min_ = max_ = sum_ = 0.0;
  ring_.clear();
  ring_next_ = 0;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Summary& MetricsRegistry::summary_impl(std::string_view name, bool is_timer) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = summaries_.find(name);
  if (it == summaries_.end()) {
    it = summaries_.emplace(std::string(name), std::make_unique<Summary>())
             .first;
    summary_is_timer_.emplace(std::string(name), is_timer);
  }
  return *it->second;
}

Summary& MetricsRegistry::summary(std::string_view name) {
  return summary_impl(name, /*is_timer=*/false);
}

Summary& MetricsRegistry::timer(std::string_view name) {
  return summary_impl(name, /*is_timer=*/true);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, summary] : summaries_) summary->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.summaries.reserve(summaries_.size());
  for (const auto& [name, summary] : summaries_) {
    const auto timer_it = summary_is_timer_.find(name);
    snap.summaries.push_back(
        {name, timer_it != summary_is_timer_.end() && timer_it->second,
         summary->stats()});
  }
  return snap;
}

namespace {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// JSON has no Inf/NaN literals; clamp degenerate values to null.
void write_json_number(std::ostream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out) const {
  const MetricsSnapshot snap = snapshot();
  const auto precision = out.precision(17);
  for (const auto& c : snap.counters) {
    out << "{\"type\":\"counter\",\"name\":";
    write_json_string(out, c.name);
    out << ",\"value\":" << c.value << "}\n";
  }
  for (const auto& g : snap.gauges) {
    out << "{\"type\":\"gauge\",\"name\":";
    write_json_string(out, g.name);
    out << ",\"value\":";
    write_json_number(out, g.value);
    out << "}\n";
  }
  for (const auto& s : snap.summaries) {
    out << "{\"type\":\"" << (s.is_timer ? "timer" : "summary")
        << "\",\"name\":";
    write_json_string(out, s.name);
    if (s.is_timer) out << ",\"unit\":\"seconds\"";
    out << ",\"count\":" << s.stats.count << ",\"mean\":";
    write_json_number(out, s.stats.mean);
    out << ",\"stddev\":";
    write_json_number(out, s.stats.stddev);
    out << ",\"min\":";
    write_json_number(out, s.stats.min);
    out << ",\"max\":";
    write_json_number(out, s.stats.max);
    out << ",\"sum\":";
    write_json_number(out, s.stats.sum);
    out << ",\"p50\":";
    write_json_number(out, s.stats.p50);
    out << ",\"p90\":";
    write_json_number(out, s.stats.p90);
    out << ",\"p99\":";
    write_json_number(out, s.stats.p99);
    out << "}\n";
  }
  out.precision(precision);
}

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

MetricsRegistry& registry() noexcept {
  // Leaked on purpose: instrumentation sites cache `static Counter&`
  // handles, which must outlive every static destructor that might run.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

Summary* timer_if_enabled(std::string_view name) {
  return enabled() ? &registry().timer(name) : nullptr;
}

Summary* summary_if_enabled(std::string_view name) {
  return enabled() ? &registry().summary(name) : nullptr;
}

}  // namespace melody::obs
