// Request-scoped tracing on top of the metrics/sink layer: a TraceContext
// (trace id, span id, parent span id) is minted once per inbound wire frame
// by the serve front end, carried through the request's entire path — shard
// fan-out, AuctionService op handling, auction phases, checkpoint
// save/load — and every interesting stage opens a ScopedSpan that emits one
// structured event through the obs::Sink seam when it closes.
//
// Cost contract (same as the metrics layer): everything here is gated on
// obs::enabled(). With tracing off a ScopedSpan costs one relaxed load plus
// a branch — no clock reads, no thread-local writes, no emission — and an
// inactive TraceContext (trace_id == 0) propagates for free. Trace ids are
// deterministic functions of (connection, sequence), so two recordings of
// the same session mint the same ids; span ids come off one process-wide
// relaxed counter and are unique, not reproducible — identity lives in the
// trace id, ordering in the logical clocks the spans annotate.
//
// Propagation model: the serve path carries the context explicitly down to
// the shard consumer thread (Envelope), which installs it in a thread-local
// slot (ScopedTraceContext). From there nesting is automatic: ScopedSpan
// reads the slot, publishes its own child context for its scope, and
// restores the parent on close — so Platform::step and the mechanism phases
// pick up their parent span without any signature changes.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/sink.h"

namespace melody::obs {

/// One request's position in the trace tree. trace_id == 0 means "not
/// traced" and makes every span opened under it inert.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool active() const noexcept { return trace_id != 0; }
};

/// Deterministic trace id for the frame `seq` of connection `conn`:
/// conn * 2^24 + seq + 1. Human-decodable, never 0, and exact inside the
/// wire format's double for any plausible session (conn < 2^29 connections,
/// 16M frames per connection).
std::uint64_t mint_trace_id(std::uint64_t conn, std::uint64_t seq) noexcept;

/// Next span id off the process-wide relaxed counter (starts at 1).
std::uint64_t next_span_id() noexcept;

/// The calling thread's current trace context (inactive by default).
TraceContext current_trace() noexcept;

/// Installs `context` as the thread's current trace context for the scope
/// and restores the previous one on destruction. A no-op (no thread-local
/// write) for an inactive context — the tracing-off hot path.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context) noexcept;
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
  bool installed_ = false;
};

/// RAII span: child of `parent` (default: the thread's current context).
/// While alive it is the thread's current context; on close it emits one
/// event named `name` with trace/span/parent ids, the elapsed monotonic
/// time in microseconds, and any annotations. Inert — one enabled() load,
/// nothing else — when tracing is off or the parent is inactive.
///
/// `name` and string annotation values are captured as views and must
/// outlive the span (string literals and to_string(Op) results qualify).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) noexcept
      : ScopedSpan(name, current_trace()) {}
  ScopedSpan(std::string_view name, const TraceContext& parent) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a key/value to the close event (logical clocks: run index,
  /// tick seconds, batch size, shard index...). Silently dropped past
  /// kMaxAnnotations; a no-op on an inactive span.
  void annotate(std::string_view key, std::int64_t value) noexcept;
  void annotate(std::string_view key, int value) noexcept {
    annotate(key, static_cast<std::int64_t>(value));
  }
  void annotate(std::string_view key, double value) noexcept;
  void annotate(std::string_view key, std::string_view value) noexcept;

  bool active() const noexcept { return active_; }
  /// This span's own context (what children should parent on). Inactive
  /// when the span is.
  const TraceContext& context() const noexcept { return context_; }

  static constexpr std::size_t kMaxAnnotations = 6;

 private:
  void push(Field field) noexcept;

  std::string_view name_;
  TraceContext context_;
  TraceContext previous_;
  std::chrono::steady_clock::time_point start_;
  std::array<Field, kMaxAnnotations> notes_;
  std::size_t note_count_ = 0;
  bool active_ = false;
};

/// Spans closed (and emitted) since process start / the last registry
/// reset — the "trace/spans" counter's value.
std::uint64_t spans_emitted() noexcept;

}  // namespace melody::obs
