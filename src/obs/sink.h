// Structured event stream for per-run tracing: a pluggable Sink interface
// with a no-op NullSink (the default — a null global sink pointer behaves
// identically) and a JSON-lines sink for tools (`melody_sim --metrics-json`).
//
// Events are flat (name + typed key/value fields) and are emitted from the
// orchestration layer only — Platform::step's per-run record, auction-level
// summaries — never from sharded inner loops, so the emission order is the
// deterministic main-thread order regardless of thread count. Sinks must
// nevertheless be thread-safe: benches may drive several platforms at once.
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>

namespace melody::obs {

class MetricsRegistry;

/// One key/value field of a structured event. The value is a double, an
/// integer, or a string; integers keep run indices and counts exact in the
/// JSON output. Fields hold views — they are only valid for the duration of
/// the emit() call that carries them.
struct Field {
  enum class Kind { kDouble, kInt, kString };

  std::string_view key;
  Kind kind = Kind::kDouble;
  double num = 0.0;
  std::int64_t integer = 0;
  std::string_view text{};

  /// Default: an empty-key double 0 — a placeholder slot for fixed-size
  /// field arrays (obs/trace.h builds span events this way).
  Field() = default;
  Field(std::string_view k, double v) : key(k), kind(Kind::kDouble), num(v) {}
  Field(std::string_view k, std::int64_t v)
      : key(k), kind(Kind::kInt), integer(v) {}
  Field(std::string_view k, int v)
      : key(k), kind(Kind::kInt), integer(v) {}
  Field(std::string_view k, std::size_t v)
      : key(k), kind(Kind::kInt), integer(static_cast<std::int64_t>(v)) {}
  Field(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), text(v) {}
  Field(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), text(v) {}
};

/// Receiver of structured events. Implementations must tolerate concurrent
/// event() calls.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void event(std::string_view name, std::span<const Field> fields) = 0;
};

/// Discards everything; behaviourally identical to a null sink pointer.
/// Exists so APIs that require a non-null Sink& have a canonical no-op.
class NullSink final : public Sink {
 public:
  void event(std::string_view, std::span<const Field>) override {}
};

/// Writes one JSON object per event line:
///   {"type":"event","name":"platform/run","run":3,"assignments":17,...}
/// plus, via append_registry(), the metric summary lines documented in
/// MetricsRegistry::write_json. Writes are serialized by an internal mutex.
class JsonLinesSink final : public Sink {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit JsonLinesSink(const std::string& path);
  /// Borrows an existing stream (tests); the stream must outlive the sink.
  explicit JsonLinesSink(std::ostream& out);

  void event(std::string_view name, std::span<const Field> fields) override;

  /// Append every metric of `registry` as JSON lines (the end-of-run dump).
  void append_registry(const MetricsRegistry& registry);

  /// Lines written so far (events + registry lines).
  std::size_t lines_written() const;

 private:
  mutable std::mutex mutex_;
  std::ofstream owned_;
  std::ostream* out_;
  std::size_t lines_ = 0;
};

/// Process-wide event sink. Null by default (events are dropped for free);
/// the pointer is borrowed and must outlive its installation. Reset to
/// nullptr before destroying the sink.
Sink* sink() noexcept;
void set_sink(Sink* sink) noexcept;

/// Emit through the global sink; no-op (one relaxed load) when none is set.
void emit(std::string_view name, std::initializer_list<Field> fields);

/// Same, for callers that build their field set dynamically (span events).
void emit(std::string_view name, std::span<const Field> fields);

/// Installs a sink for the current scope and restores the previous one on
/// destruction (tests, tools).
class ScopedSink {
 public:
  explicit ScopedSink(Sink* s) noexcept : previous_(sink()) { set_sink(s); }
  ~ScopedSink() { set_sink(previous_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* previous_;
};

}  // namespace melody::obs
