#include "perf/suite.h"

#include <sys/resource.h>
#include <time.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <functional>
#include <memory>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "auction/bid_book.h"
#include "auction/melody_auction.h"
#include "cluster/coordinator.h"
#include "cluster/routing.h"
#include "estimators/factory.h"
#include "estimators/melody_estimator.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "perf/reference.h"
#include "sim/platform.h"
#include "sim/scenario.h"
#include "sim/worker_model.h"
#include "svc/loop.h"
#include "svc/protocol.h"
#include "svc/router.h"
#include "svc/trace_log.h"
#include "svc/service.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace melody::perf {

namespace {

/// Optimizer sink: every bench body folds a result-derived value in here so
/// the work cannot be dead-code eliminated.
volatile double g_sink = 0.0;

double wall_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double cpu_now_ms() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

std::int64_t peak_rss_kb_now() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::int64_t>(usage.ru_maxrss);  // KiB on Linux
}

/// Time `body` K times (after one untimed warm-up) and fill wall_ms/cpu_ms
/// sorted by ascending wall time, preserving the wall<->cpu pairing.
void time_repeats(int repeats, const std::function<void()>& body,
                  std::vector<double>& wall_ms, std::vector<double>& cpu_ms) {
  body();  // warm-up: page in inputs, size the allocator pools
  std::vector<std::pair<double, double>> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int k = 0; k < repeats; ++k) {
    const double wall0 = wall_now_ms();
    const double cpu0 = cpu_now_ms();
    body();
    const double cpu1 = cpu_now_ms();
    const double wall1 = wall_now_ms();
    samples.emplace_back(wall1 - wall0, cpu1 - cpu0);
  }
  std::sort(samples.begin(), samples.end());
  wall_ms.clear();
  cpu_ms.clear();
  for (const auto& [wall, cpu] : samples) {
    wall_ms.push_back(wall);
    cpu_ms.push_back(cpu);
  }
}

/// Run the matrix entry: K timed repeats with obs off (the production
/// default), an optional scalar-reference timing for the
/// speedup_vs_scalar counter, then one instrumented pass that harvests the
/// obs phase timers into BenchmarkResult::phases.
BenchmarkResult measure(std::string name, int repeats,
                        std::vector<std::pair<std::string, double>> config,
                        const std::function<void()>& body,
                        const std::function<void()>& scalar_body) {
  BenchmarkResult result;
  result.name = std::move(name);
  result.repeats = repeats;
  result.config = std::move(config);
  if (scalar_body) {
    // Paired design: alternate production and scalar repeats (after one
    // warm-up of each) so allocator state, page residency, and any clock
    // or load drift hit both sides equally — timing one side's full block
    // first would hand the other a pre-warmed process and bias the
    // speedup ratio.
    std::vector<std::pair<double, double>> samples;
    std::vector<std::pair<double, double>> scalar_samples;
    {
      obs::ScopedEnable off(false);
      body();
      scalar_body();
      for (int k = 0; k < repeats; ++k) {
        double wall0 = wall_now_ms();
        double cpu0 = cpu_now_ms();
        body();
        samples.emplace_back(wall_now_ms() - wall0, cpu_now_ms() - cpu0);
        wall0 = wall_now_ms();
        cpu0 = cpu_now_ms();
        scalar_body();
        scalar_samples.emplace_back(wall_now_ms() - wall0,
                                    cpu_now_ms() - cpu0);
      }
    }
    std::sort(samples.begin(), samples.end());
    std::vector<double> scalar_wall;
    for (const auto& [wall, cpu] : samples) {
      result.wall_ms.push_back(wall);
      result.cpu_ms.push_back(cpu);
    }
    for (const auto& [wall, cpu] : scalar_samples) {
      scalar_wall.push_back(wall);
    }
    result.median_wall_ms = median(result.wall_ms);
    result.median_cpu_ms = median(result.cpu_ms);
    result.counters.emplace_back("scalar_median_wall_ms",
                                 median(scalar_wall));
    result.counters.emplace_back(
        "speedup_vs_scalar",
        result.median_wall_ms > 0.0
            ? median(scalar_wall) / result.median_wall_ms
            : 0.0);
  } else {
    obs::ScopedEnable off(false);
    time_repeats(repeats, body, result.wall_ms, result.cpu_ms);
    result.median_wall_ms = median(result.wall_ms);
    result.median_cpu_ms = median(result.cpu_ms);
  }
  obs::registry().reset();
  {
    obs::ScopedEnable on(true);
    body();
  }
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  for (const auto& entry : snapshot.summaries) {
    if (!entry.is_timer || entry.stats.count == 0) continue;
    PhaseStats phase;
    phase.name = entry.name;
    phase.count = static_cast<std::int64_t>(entry.stats.count);
    phase.sum_ms = entry.stats.sum * 1e3;
    phase.p50_ms = entry.stats.p50 * 1e3;
    phase.p90_ms = entry.stats.p90 * 1e3;
    phase.p99_ms = entry.stats.p99 * 1e3;
    result.phases.push_back(std::move(phase));
  }
  obs::registry().reset();
  result.peak_rss_kb = peak_rss_kb_now();
  return result;
}

// ---------------------------------------------------------------------------
// Matrix entries. Inputs are sampled once per bench (setup, untimed); the
// timed bodies are pure functions of those inputs so every repeat measures
// the same work.

BenchmarkResult bench_greedy_scoring(bool quick, int repeats) {
  const int num_workers = quick ? 20000 : 100000;
  sim::SraScenario scenario;
  scenario.num_workers = num_workers;
  scenario.num_tasks = 500;
  scenario.budget = 2000.0;
  util::Rng rng(0x9ECD);
  const std::vector<auction::WorkerProfile> workers =
      scenario.sample_workers(rng);
  const std::vector<auction::Task> tasks = scenario.sample_tasks(rng);
  const auction::AuctionConfig config = scenario.auction_config();
  return measure(
      "greedy_scoring_100k", repeats,
      {{"workers", static_cast<double>(num_workers)},
       {"tasks", 500.0},
       {"budget", scenario.budget},
       {"seed", 0x9ECD}},
      [&] {
        auction::MelodyAuction mechanism(auction::PaymentRule::kCriticalValue);
        g_sink = g_sink +
                 mechanism.run({workers, tasks, config}).total_payment();
      },
      [&] {
        g_sink = g_sink +
                 reference::run_greedy(workers, tasks, config,
                                       auction::PaymentRule::kCriticalValue)
                     .total_payment();
      });
}

BenchmarkResult bench_auction_scale(bool quick, int repeats) {
  const int num_workers = quick ? 100000 : 1000000;
  sim::SraScenario scenario;
  scenario.num_workers = num_workers;
  scenario.num_tasks = 1000;
  scenario.budget = 8000.0;
  util::Rng rng(0xA5CA1E);
  const std::vector<auction::WorkerProfile> workers =
      scenario.sample_workers(rng);
  const std::vector<auction::Task> tasks = scenario.sample_tasks(rng);
  const auction::AuctionConfig config = scenario.auction_config();
  return measure(
      "auction_scale_1m", repeats,
      {{"workers", static_cast<double>(num_workers)},
       {"tasks", 1000.0},
       {"budget", scenario.budget},
       {"seed", 0xA5CA1E}},
      [&] {
        auction::MelodyAuction mechanism(auction::PaymentRule::kCriticalValue);
        g_sink = g_sink +
                 mechanism.run({workers, tasks, config}).total_payment();
      },
      nullptr);
}

BenchmarkResult bench_greedy_incremental(bool quick, int repeats) {
  // Low-churn re-run regime: a standing market where ~2% of the bids move
  // between consecutive auctions (rolling / continuous operation). The
  // production side keeps the persistent price-ladder bid book and ranks
  // the greedy queue from the ladder walk; the scalar reference applies the
  // identical churn to a plain profile vector and re-sorts from scratch
  // every round — the pre-PR-8 full-rebuild path. Allocation is
  // bit-identical by construction (the ladder holds the exact permutation
  // the rebuild sorts into); the tests assert that, this entry times it.
  const int num_workers = quick ? 20000 : 100000;
  const int rounds = 8;
  const int dirty_per_round = num_workers / 50;  // 2% of bids move per run
  sim::SraScenario scenario;
  scenario.num_workers = num_workers;
  scenario.num_tasks = 64;
  scenario.budget = 1200.0;
  util::Rng rng(0x1ADDE4);
  const std::vector<auction::WorkerProfile> base =
      scenario.sample_workers(rng);
  const std::vector<auction::Task> tasks = scenario.sample_tasks(rng);
  const auction::AuctionConfig config = scenario.auction_config();

  // Setup, untimed: the book exists before the first measured round, like
  // a service that has been running. It persists across repeats — that is
  // the point — so per-side epoch counters key the churn streams and the
  // paired repeats of the two sides see the same delta sequence.
  auction::BidBook book;
  book.bulk_load(base);
  std::vector<auction::WorkerProfile> scalar_profiles = base;
  std::uint64_t book_epoch = 0;
  std::uint64_t scalar_epoch = 0;

  // Deterministic churn for (epoch, round): dirty_per_round re-bids with a
  // fresh cost from the scenario's sampling range. Pure function of the
  // counters, so both sides replay identical sequences.
  const auto churn = [&](std::uint64_t epoch, int round,
                         const std::function<void(std::size_t,
                                                  const auction::WorkerProfile&)>&
                             touch) {
    util::Rng round_rng(util::derive_stream(
        0xC4A2, epoch, static_cast<std::uint64_t>(round)));
    for (int d = 0; d < dirty_per_round; ++d) {
      const auto slot = static_cast<std::size_t>(
          round_rng.uniform_int(0, num_workers - 1));
      auction::WorkerProfile profile = base[slot];
      profile.bid.cost = round_rng.uniform(1.0, 2.0);
      touch(slot, profile);
    }
  };

  return measure(
      "greedy_incremental_100k", repeats,
      {{"workers", static_cast<double>(num_workers)},
       {"tasks", 64.0},
       {"budget", scenario.budget},
       {"rounds", static_cast<double>(rounds)},
       {"dirty_per_round", static_cast<double>(dirty_per_round)},
       {"seed", static_cast<double>(0x1ADDE4)}},
      [&] {
        auction::MelodyAuction mechanism(auction::PaymentRule::kCriticalValue);
        std::vector<auction::BidDelta> deltas;
        double payment = 0.0;
        for (int round = 0; round < rounds; ++round) {
          deltas.clear();
          churn(book_epoch, round,
                [&](std::size_t, const auction::WorkerProfile& profile) {
                  deltas.push_back(
                      {auction::BidDelta::Kind::kUpsert, profile});
                });
          book.apply(deltas);
          auction::AuctionContext context{{}, tasks, config};
          context.book = &book;
          context.deltas = deltas;
          payment += mechanism.run(context).total_payment();
        }
        ++book_epoch;
        g_sink = g_sink + payment;
      },
      [&] {
        auction::MelodyAuction mechanism(auction::PaymentRule::kCriticalValue);
        double payment = 0.0;
        for (int round = 0; round < rounds; ++round) {
          churn(scalar_epoch, round,
                [&](std::size_t slot, const auction::WorkerProfile& profile) {
                  scalar_profiles[slot] = profile;
                });
          payment +=
              mechanism.run({scalar_profiles, tasks, config}).total_payment();
        }
        ++scalar_epoch;
        g_sink = g_sink + payment;
      });
}

/// Deterministic per-(worker, run) score sets for the estimator chains:
/// three scores in [1, 10] drawn from the counter-based stream the
/// simulation itself uses.
std::vector<std::vector<lds::ScoreSet>> make_score_table(int num_workers,
                                                         int runs,
                                                         std::uint64_t seed) {
  std::vector<std::vector<lds::ScoreSet>> table(
      static_cast<std::size_t>(runs));
  for (int run = 0; run < runs; ++run) {
    auto& row = table[static_cast<std::size_t>(run)];
    row.resize(static_cast<std::size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      util::Rng rng(util::derive_stream(seed, static_cast<std::uint64_t>(w),
                                        static_cast<std::uint64_t>(run)));
      for (int k = 0; k < 3; ++k) {
        row[static_cast<std::size_t>(w)].add(rng.uniform(1.0, 10.0));
      }
    }
  }
  return table;
}

BenchmarkResult bench_kalman_chain(const std::string& name, bool with_em,
                                   bool quick, int repeats) {
  // The filter-only variant runs a population large enough that per-worker
  // state outgrows the cache, with scattered (shuffled) worker ids — the
  // service regime, where ids are client-assigned handles, not dense
  // indices. That is where the layouts diverge: the batch SoA update
  // streams the state arrays in slot order regardless of id values, while
  // the AoS map pays a dependent cache miss per worker per run. The EM
  // variant is smaller (EM dominates) and keeps dense ids.
  const int num_workers =
      with_em ? (quick ? 200 : 500) : (quick ? 10000 : 50000);
  const int runs = with_em ? (quick ? 60 : 120) : (quick ? 10 : 20);
  estimators::MelodyEstimatorConfig config;
  config.reestimation_period = with_em ? 10 : 0;
  if (with_em) config.max_history = 20;
  const auto scores = make_score_table(num_workers, runs, 0xBE9C4);
  std::vector<auction::WorkerId> ids(static_cast<std::size_t>(num_workers));
  std::iota(ids.begin(), ids.end(), with_em ? 0 : 100000);
  if (!with_em) {
    // Deterministic Fisher-Yates shuffle; registration and observation use
    // the same order, so the batch path's slot-order fast path stays
    // applicable (as it is on the platform) while the id VALUES scatter.
    util::Rng shuffle_rng(0xD15C0);
    for (std::size_t i = ids.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(ids[i], ids[j]);
    }
  }
  return measure(
      name, repeats,
      {{"workers", static_cast<double>(num_workers)},
       {"runs", static_cast<double>(runs)},
       {"reestimation_period",
        static_cast<double>(config.reestimation_period)},
       {"max_history", static_cast<double>(config.max_history)},
       {"seed", static_cast<double>(0xBE9C4)}},
      [&] {
        estimators::MelodyEstimator estimator(config);
        for (auction::WorkerId id : ids) estimator.register_worker(id);
        for (int run = 0; run < runs; ++run) {
          estimator.observe_run(ids, scores[static_cast<std::size_t>(run)]);
        }
        g_sink = g_sink + estimator.estimate(ids[0]);
      },
      [&] {
        reference::AosKalmanChain chain(config);
        for (auction::WorkerId id : ids) chain.register_worker(id);
        for (int run = 0; run < runs; ++run) {
          const auto& row = scores[static_cast<std::size_t>(run)];
          for (std::size_t w = 0; w < ids.size(); ++w) {
            chain.observe(ids[w], row[w]);
          }
        }
        g_sink = g_sink + chain.estimate(ids[0]);
      });
}

BenchmarkResult bench_platform_step(bool quick, int repeats) {
  sim::LongTermScenario scenario;
  scenario.num_workers = 300;
  scenario.num_tasks = 500;
  scenario.runs = quick ? 30 : 100;
  util::Rng population_rng(2017);
  const std::vector<sim::SimWorker> population =
      sim::sample_population(scenario.population_config(), population_rng);
  return measure(
      "platform_step", repeats,
      {{"workers", static_cast<double>(scenario.num_workers)},
       {"tasks", static_cast<double>(scenario.num_tasks)},
       {"runs", static_cast<double>(scenario.runs)},
       {"budget", scenario.budget},
       {"seed", 2018.0}},
      [&] {
        auction::MelodyAuction mechanism;
        // Same shared-registry construction melody_sim/melody_serve use, so
        // this entry times the production estimator stack, not a local copy.
        const auto estimator = estimators::make(
            "melody", {.initial_mu = scenario.initial_mu,
                       .initial_sigma = scenario.initial_sigma,
                       .reestimation_period = scenario.reestimation_period});
        sim::Platform platform(scenario, mechanism, *estimator, population,
                               2018);
        double error = 0.0;
        while (!platform.finished()) error += platform.step().estimation_error;
        g_sink = g_sink + error;
      },
      nullptr);
}

/// Deterministic request mix mirroring melody_loadgen's distribution:
/// mostly bids (the batch trigger), some task postings, some reads. Shared
/// by svc_serve and svc_serve_traced so both time identical sessions.
std::string serve_request_mix(int num_requests) {
  std::string trace;
  util::Rng rng(0x5E7CE);
  for (int k = 0; k < num_requests; ++k) {
    svc::Request request;
    request.id = k + 1;
    const double pick = rng.uniform01();
    if (pick < 0.80) {
      request.op = svc::Op::kSubmitBid;
      request.worker = "w" + std::to_string(rng.uniform_int(0, 99));
    } else if (pick < 0.90) {
      request.op = svc::Op::kSubmitTasks;
      request.task_count = static_cast<int>(rng.uniform_int(50, 200));
      request.budget = rng.uniform(40.0, 160.0);
    } else if (pick < 0.96) {
      request.op = svc::Op::kQueryWorker;
      request.worker = "w" + std::to_string(rng.uniform_int(0, 99));
    } else {
      request.op = svc::Op::kStats;
    }
    trace += svc::format_request(request);
    trace += '\n';
  }
  return trace;
}

svc::ServiceConfig serve_bench_config() {
  svc::ServiceConfig config;
  config.scenario.num_workers = 100;
  config.scenario.num_tasks = 200;
  config.scenario.runs = 2000;
  config.manual_clock = true;
  config.seed = 2017;
  return config;
}

BenchmarkResult bench_svc_serve(bool quick, int repeats) {
  const int num_requests = quick ? 1500 : 6000;
  const svc::ServiceConfig config = serve_bench_config();
  const std::string trace = serve_request_mix(num_requests);
  return measure(
      "svc_serve", repeats,
      {{"requests", static_cast<double>(num_requests)},
       {"workers", 100.0},
       {"runs_horizon", static_cast<double>(config.scenario.runs)},
       {"seed", static_cast<double>(config.seed)}},
      [&] {
        svc::AuctionService service(config);
        svc::ServiceLoop loop(service, 256);
        std::istringstream in(trace);
        std::ostringstream out;
        const svc::StdioResult outcome = svc::run_stdio_session(loop, in, out);
        g_sink = g_sink + static_cast<double>(outcome.requests) +
                 static_cast<double>(out.str().size());
      },
      nullptr);
}

BenchmarkResult bench_svc_serve_traced(bool quick, int repeats) {
  // The tracing cost contract, measured: the svc_serve session served with
  // end-to-end tracing ON (span minting, per-frame root contexts, a live
  // MLDYTRC recorder) paired against the identical session with tracing
  // OFF. The headline median is the traced pass; counters record the
  // untraced median and the traced/untraced wall ratio. The gate the CI
  // perfsuite enforces is on svc_serve itself (tracing-disabled code must
  // stay within the usual threshold of the committed baseline) — this
  // entry pins what turning tracing on actually costs.
  const int num_requests = quick ? 1500 : 6000;
  const svc::ServiceConfig config = serve_bench_config();
  const std::string trace = serve_request_mix(num_requests);

  const auto session = [&](bool traced) {
    svc::ShardedService service(config);
    std::istringstream in(trace);
    std::ostringstream out;
    if (traced) {
      std::ostringstream trace_bytes;
      svc::TraceRecorder recorder(trace_bytes);
      const svc::StdioResult outcome =
          svc::run_stdio_session(service, in, out, &recorder);
      recorder.finish();
      g_sink = g_sink + static_cast<double>(outcome.requests) +
               static_cast<double>(trace_bytes.str().size());
    } else {
      const svc::StdioResult outcome = svc::run_stdio_session(service, in, out);
      g_sink = g_sink + static_cast<double>(outcome.requests);
    }
    g_sink = g_sink + static_cast<double>(out.str().size());
  };

  BenchmarkResult result;
  result.name = "svc_serve_traced";
  result.repeats = repeats;
  result.config = {{"requests", static_cast<double>(num_requests)},
                   {"workers", 100.0},
                   {"runs_horizon", static_cast<double>(config.scenario.runs)},
                   {"seed", static_cast<double>(config.seed)}};
  // Spans emit into a null sink: the bench times minting/propagation and
  // the recorder, not some sink's disk.
  obs::NullSink null_sink;
  // Paired design (see measure()): alternate traced and untraced repeats
  // after one warm-up of each so drift hits both sides equally.
  std::vector<std::pair<double, double>> traced_samples;
  std::vector<double> untraced_wall;
  {
    obs::ScopedSink scoped(&null_sink);
    {
      obs::ScopedEnable on(true);
      session(true);
    }
    {
      obs::ScopedEnable off(false);
      session(false);
    }
    for (int k = 0; k < repeats; ++k) {
      {
        obs::ScopedEnable on(true);
        const double wall0 = wall_now_ms();
        const double cpu0 = cpu_now_ms();
        session(true);
        traced_samples.emplace_back(wall_now_ms() - wall0,
                                    cpu_now_ms() - cpu0);
      }
      {
        obs::ScopedEnable off(false);
        const double wall0 = wall_now_ms();
        session(false);
        untraced_wall.push_back(wall_now_ms() - wall0);
      }
    }
  }
  std::sort(traced_samples.begin(), traced_samples.end());
  for (const auto& [wall, cpu] : traced_samples) {
    result.wall_ms.push_back(wall);
    result.cpu_ms.push_back(cpu);
  }
  result.median_wall_ms = median(result.wall_ms);
  result.median_cpu_ms = median(result.cpu_ms);
  const double untraced_median = median(untraced_wall);
  result.counters.emplace_back("untraced_median_wall_ms", untraced_median);
  result.counters.emplace_back(
      "tracing_overhead",
      untraced_median > 0.0 ? result.median_wall_ms / untraced_median : 0.0);
  obs::registry().reset();
  result.peak_rss_kb = peak_rss_kb_now();
  return result;
}

BenchmarkResult bench_svc_serve_sharded(bool quick, int repeats) {
  // Ingest throughput of the sharded front of house: routing, bounded-queue
  // handoff, per-shard consumer apply. The batch trigger sits above the bid
  // volume so no auction fires inside the timed body — auction execution
  // has its own entries — and the K million-worker platforms are built once
  // as setup (registering the population is construction, not serving).
  svc::ServiceConfig config;
  config.scenario.num_workers = quick ? 100000 : 1000000;
  config.scenario.num_tasks = 2000;
  config.scenario.runs = 50;
  config.shards = quick ? 4 : 8;
  config.queue_capacity = 4096;
  config.manual_clock = true;
  config.batch.min_bids = config.scenario.num_workers * 2;  // never fires
  config.seed = 2017;
  svc::ShardedService service(config);
  service.start();

  const int num_requests = quick ? 60000 : 240000;
  std::vector<svc::Request> requests(static_cast<std::size_t>(num_requests));
  util::Rng rng(0x5A4D);
  for (int k = 0; k < num_requests; ++k) {
    auto& request = requests[static_cast<std::size_t>(k)];
    request.id = k + 1;
    request.op = svc::Op::kSubmitBid;
    request.worker =
        "w" + std::to_string(
                  rng.uniform_int(0, config.scenario.num_workers - 1));
  }

  BenchmarkResult result = measure(
      "svc_serve_sharded", repeats,
      {{"workers", static_cast<double>(config.scenario.num_workers)},
       {"shards", static_cast<double>(config.shards)},
       {"requests", static_cast<double>(num_requests)},
       {"queue_capacity", static_cast<double>(config.queue_capacity)},
       {"seed", static_cast<double>(config.seed)}},
      [&] {
        std::atomic<int> delivered{0};
        const auto done = [&delivered](const svc::Response&) {
          delivered.fetch_add(1, std::memory_order_relaxed);
        };
        for (const svc::Request& request : requests) {
          // A full queue is backpressure, not loss: retry until the owning
          // shard accepts, like a client honoring retry_after_ms. Nothing
          // closes the service mid-bench, so kClosed would be a bug.
          svc::PushResult pushed;
          while ((pushed = service.submit(request, done)) ==
                 svc::PushResult::kFull) {
            std::this_thread::yield();
          }
          if (pushed != svc::PushResult::kOk) {
            throw std::runtime_error("svc_serve_sharded: service closed");
          }
        }
        while (delivered.load(std::memory_order_acquire) < num_requests) {
          std::this_thread::yield();
        }
        g_sink = g_sink + static_cast<double>(delivered.load());
      },
      nullptr);
  result.counters.emplace_back(
      "registered_workers", static_cast<double>(config.scenario.num_workers));
  result.counters.emplace_back(
      "submissions_per_sec",
      result.median_wall_ms > 0.0
          ? static_cast<double>(num_requests) / (result.median_wall_ms * 1e-3)
          : 0.0);
  return result;
}

BenchmarkResult bench_svc_serve_cluster(bool quick, int repeats) {
  // Same deployment and request stream as svc_serve_sharded, but split
  // across a two-member in-process cluster behind a Coordinator: each
  // member is a full global-K ShardedService serving half the shard mask,
  // and the timed body routes with the coordinator's RoutingTable (the
  // same shard_for arithmetic melody_loadgen --cluster uses) before the
  // queue handoff. The delta vs svc_serve_sharded is therefore the cluster
  // routing layer. After the timed stream, a ping-pong of live migrations
  // pins the per-shard unavailability window as migration_pause_ms.
  svc::ServiceConfig config;
  config.scenario.num_workers = quick ? 100000 : 1000000;
  config.scenario.num_tasks = 2000;
  config.scenario.runs = 50;
  config.shards = quick ? 4 : 8;
  config.queue_capacity = 4096;
  config.manual_clock = true;
  config.batch.min_bids = config.scenario.num_workers * 2;  // never fires
  config.seed = 2017;
  const int k = config.shards;

  std::array<std::unique_ptr<svc::ShardedService>, 2> members;
  for (int m = 0; m < 2; ++m) {
    members[static_cast<std::size_t>(m)] =
        std::make_unique<svc::ShardedService>(config);
    std::uint64_t mask = 0;
    for (int s = 0; s < k; ++s) {
      if ((s < k / 2) == (m == 0)) mask |= std::uint64_t{1} << s;
    }
    members[static_cast<std::size_t>(m)]->configure_cluster(mask, 1);
    members[static_cast<std::size_t>(m)]->start();
  }

  // The coordinator's data plane: submit into the named member and wait
  // for the consumer thread's delivery, exactly what the TCP transport
  // does for a one-command exchange.
  const auto rpc = [&members](const cluster::ClusterMember& member,
                              const svc::Request& request,
                              svc::Response* out) {
    svc::ShardedService& service =
        *members[member.name == "a" ? 0 : 1];
    std::atomic<bool> delivered{false};
    const auto done = [&](const svc::Response& response) {
      *out = response;
      delivered.store(true, std::memory_order_release);
    };
    svc::PushResult pushed;
    while ((pushed = service.submit(request, done)) ==
           svc::PushResult::kFull) {
      std::this_thread::yield();
    }
    if (pushed != svc::PushResult::kOk) return false;
    while (!delivered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return true;
  };

  const std::string publish_dir = "bench_cluster_tmp";
  std::filesystem::create_directories(publish_dir);
  cluster::CoordinatorOptions coordinator_options;
  coordinator_options.shards = k;
  coordinator_options.workers = config.scenario.num_workers;
  coordinator_options.expected_members = 2;
  coordinator_options.publish_dir = publish_dir;
  cluster::Coordinator coordinator(coordinator_options, rpc);
  for (int m = 0; m < 2; ++m) {
    svc::WireObject join;
    join.set("cmd", svc::WireValue::of("join"));
    join.set("member", svc::WireValue::of(m == 0 ? "a" : "b"));
    join.set("host", svc::WireValue::of("127.0.0.1"));
    join.set("port", svc::WireValue::of(static_cast<std::int64_t>(m + 1)));
    join.set("pid", svc::WireValue::of(static_cast<std::int64_t>(m + 1)));
    std::vector<double> shards;
    for (int s = 0; s < k; ++s) {
      if ((s < k / 2) == (m == 0)) shards.push_back(s);
    }
    join.set("shards", svc::WireValue::of(std::move(shards)));
    const svc::WireObject reply = coordinator.handle(join);
    if (!reply.boolean_or("ok", false)) {
      throw std::runtime_error("svc_serve_cluster: join failed: " +
                               reply.text_or("error", "?"));
    }
  }
  const cluster::RoutingTable table = coordinator.table();

  const int num_requests = quick ? 60000 : 240000;
  std::vector<svc::Request> requests(static_cast<std::size_t>(num_requests));
  util::Rng rng(0x5A4D);
  for (int j = 0; j < num_requests; ++j) {
    auto& request = requests[static_cast<std::size_t>(j)];
    request.id = j + 1;
    request.op = svc::Op::kSubmitBid;
    request.worker =
        "w" + std::to_string(
                  rng.uniform_int(0, config.scenario.num_workers - 1));
  }

  BenchmarkResult result = measure(
      "svc_serve_cluster", repeats,
      {{"workers", static_cast<double>(config.scenario.num_workers)},
       {"shards", static_cast<double>(k)},
       {"members", 2.0},
       {"requests", static_cast<double>(num_requests)},
       {"queue_capacity", static_cast<double>(config.queue_capacity)},
       {"seed", static_cast<double>(config.seed)}},
      [&] {
        std::atomic<int> delivered{0};
        std::atomic<int> rejected{0};
        const auto done = [&](const svc::Response& response) {
          if (!response.ok) rejected.fetch_add(1, std::memory_order_relaxed);
          delivered.fetch_add(1, std::memory_order_relaxed);
        };
        for (const svc::Request& request : requests) {
          const int shard = table.shard_for(request.worker);
          svc::ShardedService& service =
              *members[static_cast<std::size_t>(
                  table.owner[static_cast<std::size_t>(shard)])];
          svc::PushResult pushed;
          while ((pushed = service.submit(request, done)) ==
                 svc::PushResult::kFull) {
            std::this_thread::yield();
          }
          if (pushed != svc::PushResult::kOk) {
            throw std::runtime_error("svc_serve_cluster: service closed");
          }
        }
        while (delivered.load(std::memory_order_acquire) < num_requests) {
          std::this_thread::yield();
        }
        // Steady state has no migration in flight: a not_owner here means
        // the routing layer disagreed with the shard masks.
        if (rejected.load() != 0) {
          throw std::runtime_error("svc_serve_cluster: rejected submissions");
        }
        g_sink = g_sink + static_cast<double>(delivered.load());
      },
      nullptr);

  // Live-migration pause: ping-pong the last shard between the members and
  // record the coordinator-reported unavailability window (export detach to
  // import done) for each hop.
  const int migrations = 6;
  std::vector<double> pauses;
  pauses.reserve(static_cast<std::size_t>(migrations));
  for (int hop = 0; hop < migrations; ++hop) {
    svc::WireObject migrate;
    migrate.set("cmd", svc::WireValue::of("migrate"));
    migrate.set("shard", svc::WireValue::of(static_cast<std::int64_t>(k - 1)));
    migrate.set("to", svc::WireValue::of(hop % 2 == 0 ? "a" : "b"));
    const svc::WireObject reply = coordinator.handle(migrate);
    if (!reply.boolean_or("ok", false)) {
      throw std::runtime_error("svc_serve_cluster: migrate failed: " +
                               reply.text_or("error", "?"));
    }
    pauses.push_back(reply.number("pause_ms"));
  }
  std::sort(pauses.begin(), pauses.end());

  result.counters.emplace_back(
      "submissions_per_sec",
      result.median_wall_ms > 0.0
          ? static_cast<double>(num_requests) / (result.median_wall_ms * 1e-3)
          : 0.0);
  result.counters.emplace_back("migrations_timed",
                               static_cast<double>(migrations));
  result.counters.emplace_back("migration_pause_ms", median(pauses));
  std::error_code ec;
  std::filesystem::remove_all(publish_dir, ec);
  return result;
}

}  // namespace

std::vector<std::string> suite_bench_names() {
  return {"greedy_scoring_100k", "greedy_incremental_100k",
          "auction_scale_1m",    "kalman_chain",
          "kalman_em_chain",     "platform_step",
          "svc_serve",           "svc_serve_traced",
          "svc_serve_sharded",   "svc_serve_cluster"};
}

std::string detect_git_sha() {
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[128];
  std::string out;
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) out += buffer;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

std::string current_date() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  localtime_r(&now, &tm);
  char buffer[16];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", &tm);
  return buffer;
}

PerfArtifact run_suite(const SuiteOptions& options, std::ostream& log) {
  const std::vector<std::string> names = suite_bench_names();
  for (const std::string& name : options.only) {
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      throw std::invalid_argument("unknown benchmark '" + name + "'");
    }
  }
  const auto selected = [&](const std::string& name) {
    return options.only.empty() ||
           std::find(options.only.begin(), options.only.end(), name) !=
               options.only.end();
  };
  if (options.threads > 0) util::set_shared_thread_count(options.threads);

  PerfArtifact artifact;
  artifact.date = options.date.empty() ? current_date() : options.date;
  artifact.git_sha =
      options.git_sha.empty() ? detect_git_sha() : options.git_sha;
  artifact.quick = options.quick;
  artifact.threads = util::shared_thread_count();
  artifact.repeats =
      options.repeats > 0 ? options.repeats : (options.quick ? 3 : 5);

  const bool quick = options.quick;
  const int repeats = artifact.repeats;
  const std::vector<std::pair<std::string,
                              std::function<BenchmarkResult()>>> matrix = {
      {"greedy_scoring_100k",
       [&] { return bench_greedy_scoring(quick, repeats); }},
      {"greedy_incremental_100k",
       [&] { return bench_greedy_incremental(quick, repeats); }},
      {"auction_scale_1m", [&] { return bench_auction_scale(quick, repeats); }},
      {"kalman_chain",
       [&] { return bench_kalman_chain("kalman_chain", false, quick, repeats); }},
      {"kalman_em_chain",
       [&] {
         return bench_kalman_chain("kalman_em_chain", true, quick, repeats);
       }},
      {"platform_step", [&] { return bench_platform_step(quick, repeats); }},
      {"svc_serve", [&] { return bench_svc_serve(quick, repeats); }},
      {"svc_serve_traced",
       [&] { return bench_svc_serve_traced(quick, repeats); }},
      {"svc_serve_sharded",
       [&] { return bench_svc_serve_sharded(quick, repeats); }},
      {"svc_serve_cluster",
       [&] { return bench_svc_serve_cluster(quick, repeats); }},
  };
  for (const auto& [name, bench] : matrix) {
    if (!selected(name)) continue;
    BenchmarkResult result = bench();
    char line[160];
    const double speedup = result.counter_or("speedup_vs_scalar", 0.0);
    if (speedup > 0.0) {
      std::snprintf(line, sizeof line,
                    "%-22s median %10.3f ms  cpu %10.3f ms  %5.2fx vs scalar\n",
                    result.name.c_str(), result.median_wall_ms,
                    result.median_cpu_ms, speedup);
    } else {
      std::snprintf(line, sizeof line,
                    "%-22s median %10.3f ms  cpu %10.3f ms\n",
                    result.name.c_str(), result.median_wall_ms,
                    result.median_cpu_ms);
    }
    log << line << std::flush;
    artifact.benchmarks.push_back(std::move(result));
  }
  validate(artifact);
  return artifact;
}

}  // namespace melody::perf
