// Minimal JSON document model for the perf-trajectory artifacts: enough to
// write and re-read BENCH_*.json with full double round-tripping, with no
// external dependency. Objects preserve insertion order so emitted
// artifacts diff cleanly in review.
//
// This is deliberately NOT a general-purpose JSON library: no comments, no
// NaN/Inf extensions (the writer throws — a perf artifact with a NaN
// timing is a harness bug), UTF-8 passed through verbatim.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace melody::perf {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue string(std::string v);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on kind mismatch (artifact
  /// readers turn that into a schema error with the member path).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member by key, or nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const noexcept;

  /// Builders. set() replaces an existing key in place (order preserved).
  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

  /// Serialize with 2-space indentation and a trailing newline at the top
  /// level; numbers use shortest-exact formatting (%.17g trimmed), so a
  /// dump/parse round trip reproduces every double bit for bit.
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  void dump_to(std::string& out, int indent) const;
};

/// Parse one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). On failure returns null and sets *error to a message with
/// the byte offset; on success *error is cleared.
JsonValue parse_json(std::string_view text, std::string* error);

}  // namespace melody::perf
