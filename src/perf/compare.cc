#include "perf/compare.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace melody::perf {

CompareReport compare(const PerfArtifact& baseline,
                      const PerfArtifact& candidate,
                      const CompareOptions& options) {
  CompareReport report;
  if (!(options.threshold >= 0.0) || !std::isfinite(options.threshold)) {
    report.status = CompareStatus::kError;
    report.error = "threshold must be finite and >= 0";
    return report;
  }
  for (const BenchmarkResult& b : baseline.benchmarks) {
    const BenchmarkResult* c = candidate.find(b.name);
    if (c == nullptr) {
      report.missing.push_back(b.name);
      continue;
    }
    BenchComparison row;
    row.name = b.name;
    row.baseline_ms = b.median_wall_ms;
    row.candidate_ms = c->median_wall_ms;
    row.ratio =
        b.median_wall_ms > 0.0 ? c->median_wall_ms / b.median_wall_ms : 0.0;
    row.regression = row.ratio > 1.0 + options.threshold;
    report.rows.push_back(std::move(row));
  }
  for (const BenchmarkResult& c : candidate.benchmarks) {
    if (baseline.find(c.name) == nullptr) report.added.push_back(c.name);
  }
  if (report.rows.empty()) {
    report.status = CompareStatus::kError;
    report.error = "no benchmarks in common between baseline and candidate";
    return report;
  }
  if (options.require_all && !report.missing.empty()) {
    report.status = CompareStatus::kError;
    report.error = "candidate is missing " +
                   std::to_string(report.missing.size()) +
                   " baseline benchmark(s), first: " + report.missing.front();
    return report;
  }
  for (const BenchComparison& row : report.rows) {
    if (row.regression) {
      report.status = CompareStatus::kRegression;
      break;
    }
  }
  return report;
}

namespace {

void print_report(const CompareReport& report, const CompareOptions& options,
                  std::ostream& out) {
  char line[256];
  std::snprintf(line, sizeof line, "%-28s %12s %12s %8s  %s\n", "benchmark",
                "base ms", "cand ms", "ratio", "verdict");
  out << line;
  for (const BenchComparison& row : report.rows) {
    const char* verdict = row.regression          ? "REGRESSION"
                          : row.ratio < 1.0 - 1e-9 ? "improved"
                                                   : "ok";
    std::snprintf(line, sizeof line, "%-28s %12.3f %12.3f %8.3f  %s\n",
                  row.name.c_str(), row.baseline_ms, row.candidate_ms,
                  row.ratio, verdict);
    out << line;
  }
  for (const std::string& name : report.missing) {
    out << "note: baseline benchmark '" << name
        << "' absent from candidate\n";
  }
  for (const std::string& name : report.added) {
    out << "note: new benchmark '" << name << "' (no baseline)\n";
  }
  std::snprintf(line, sizeof line, "threshold: ratio <= %.3f\n",
                1.0 + options.threshold);
  out << line;
}

}  // namespace

CompareStatus compare_files(const std::string& baseline_path,
                            const std::string& candidate_path,
                            const CompareOptions& options, std::ostream& out) {
  PerfArtifact baseline;
  PerfArtifact candidate;
  try {
    baseline = read_artifact(baseline_path);
    candidate = read_artifact(candidate_path);
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return CompareStatus::kError;
  }
  const CompareReport report = compare(baseline, candidate, options);
  if (report.status == CompareStatus::kError) {
    out << "error: " << report.error << "\n";
    return report.status;
  }
  print_report(report, options, out);
  out << (report.status == CompareStatus::kRegression
              ? "RESULT: regression\n"
              : "RESULT: ok\n");
  return report.status;
}

}  // namespace melody::perf
