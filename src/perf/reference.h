// Scalar (pre-SoA) reference implementations of the two hot paths the SoA
// refactor rewrites: Algorithm 1's greedy ranking / pre-allocation /
// pricing over pointer-chasing AoS state, and the MELODY Kalman/EM chain
// stored as one hash-map node per worker.
//
// They are the refactor's ground truth twice over:
//   * tests/test_soa_equivalence.cc and test_mechanism_properties.cc assert
//     that the production (SoA) paths match these bit for bit on randomized
//     markets and score streams;
//   * tools/melody_perfsuite times them as the before-layout baseline, so
//     the committed BENCH_*.json artifacts carry a falsifiable
//     "speedup_vs_scalar" for every trajectory point.
//
// Deliberately serial and obs-free: this is the algorithm at its plainest,
// kept frozen while the production layout evolves. Do not "optimize" it.
#pragma once

#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "auction/melody_auction.h"
#include "auction/types.h"
#include "estimators/melody_estimator.h"
#include "lds/gaussian.h"
#include "lds/kalman.h"

namespace melody::perf::reference {

/// One pre-allocated task (mirror of auction::internal::PreAllocation).
struct PreAllocation {
  std::size_t task_index = 0;
  std::vector<std::size_t> winners;  // indices into the ranking queue
  std::vector<double> payments;      // parallel to winners
  double total_payment = 0.0;        // P_j
};

/// Algorithm 1 lines 1-2 over AoS profiles: qualification filter plus the
/// ranking queue (descending estimated quality per unit cost, ties by id),
/// with the ratio recomputed inside every comparison exactly as the
/// pre-refactor code did.
std::vector<const auction::WorkerProfile*> build_ranking_queue(
    std::span<const auction::WorkerProfile> workers,
    const auction::AuctionConfig& config);

/// Algorithm 1 lines 3-14: pre-allocation and pricing, walking the queue
/// through the profile pointers.
std::vector<PreAllocation> pre_allocate(
    const std::vector<const auction::WorkerProfile*>& queue,
    std::span<const auction::Task> tasks, auction::PaymentRule rule);

/// The full mechanism (stages 1 + 2 including the budget-ordered commit):
/// reference twin of auction::MelodyAuction::run.
auction::AllocationResult run_greedy(
    std::span<const auction::WorkerProfile> workers,
    std::span<const auction::Task> tasks,
    const auction::AuctionConfig& config, auction::PaymentRule rule);

/// AoS twin of estimators::MelodyEstimator: identical update semantics
/// (Theorem 3 filter step, periodic EM, window sliding, clamps) but the
/// per-worker state lives in one unordered_map node per worker — the layout
/// the SoA refactor replaced. save() emits the same "MELODY_TRACKER v2"
/// text snapshot, so a full snapshot string can be compared against the
/// production estimator's for bit-identity.
class AosKalmanChain {
 public:
  explicit AosKalmanChain(estimators::MelodyEstimatorConfig config = {})
      : config_(std::move(config)) {
    config_.initial_params.validate();
  }

  void register_worker(auction::WorkerId id);
  void observe(auction::WorkerId id, const lds::ScoreSet& scores);
  double estimate(auction::WorkerId id) const;
  void save(std::ostream& out) const;

  std::size_t worker_count() const noexcept { return states_.size(); }

 private:
  struct State {
    lds::Gaussian posterior;
    lds::LdsParams params;
    lds::ScoreHistory history;
    lds::Gaussian window_anchor;
    int runs_since_em = 0;
    int runs_seen = 0;
    int observed_runs = 0;
    int em_count = 0;
  };

  estimators::MelodyEstimatorConfig config_;
  std::unordered_map<auction::WorkerId, State> states_;
};

}  // namespace melody::perf::reference
