// The pinned perf-trajectory benchmark matrix behind tools/melody_perfsuite.
// One fixed set of benches, run median-of-K, emitted as a schema-v1
// PerfArtifact (see perf/artifact.h) that is committed at the repo root and
// diffed across PRs by tools/perf_compare.
//
// The matrix (sizes in the full / --quick variants):
//   greedy_scoring_100k  Algorithm 1 over 100k / 20k bids; also times the
//                        frozen scalar reference (perf/reference.h) and
//                        records counters.speedup_vs_scalar.
//   auction_scale_1m     fig8-style scaling point: one auction over 10^6 /
//                        10^5 bids.
//   kalman_chain         MELODY posterior updates, EM off: 50k x 20 /
//                        10k x 10 worker-runs with scattered (shuffled)
//                        worker ids, batch observe_run on the shared pool;
//                        speedup_vs_scalar against the AoS hash-map chain,
//                        which pays a dependent cache miss per worker per
//                        run once the population outgrows the cache.
//   kalman_em_chain      same chain with periodic EM + sliding window.
//   platform_step        full simulation steps (auction -> scoring ->
//                        estimator) on the Table-4 long-term scenario.
//   svc_serve            end-to-end service pass: a deterministic request
//                        trace driven through svc::run_stdio_session
//                        (same queue/backpressure path as the TCP server).
//   svc_serve_traced     the same session with end-to-end tracing ON (span
//                        minting + a live MLDYTRC recorder) paired against
//                        tracing OFF; counters.tracing_overhead pins the
//                        traced/untraced wall ratio. The tracing-disabled
//                        cost gate rides on svc_serve vs the baseline.
//   svc_serve_sharded    ingest throughput of the K-shard front of house
//                        (router + bounded-queue handoff + per-shard
//                        consumers) over 240k / 60k submissions into a
//                        1M / 100k-worker population;
//                        counters.submissions_per_sec.
//   svc_serve_cluster    the same stream routed through the cluster layer:
//                        two in-process members each serving half the
//                        shard mask behind a Coordinator, routing by the
//                        pushed RoutingTable; comparable
//                        counters.submissions_per_sec, plus
//                        counters.migration_pause_ms — the median per-shard
//                        unavailability window across a ping-pong of live
//                        migrations (export-detach to import-done).
//
// Timed repeats run with the obs layer OFF (the production default); one
// extra instrumented pass per bench collects the obs phase timers into
// BenchmarkResult::phases. Repeats re-run setup-free bodies on identical
// inputs, so medians isolate layout/concurrency effects from sampling.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "perf/artifact.h"

namespace melody::perf {

struct SuiteOptions {
  /// Smaller sizes + fewer repeats for CI (artifact records quick=true, so
  /// perf_compare never silently compares quick vs full numbers — the
  /// baseline for a quick run must itself be quick).
  bool quick = false;
  /// Median-of-K timed repeats per bench; 0 picks the default (5 full,
  /// 3 quick).
  int repeats = 0;
  /// Shared-pool concurrency for the run; 0 keeps the current setting.
  int threads = 0;
  /// Run only benches whose name is listed (empty: the full matrix).
  std::vector<std::string> only;
  /// Artifact stamp overrides; empty picks the wall-clock date and
  /// `git rev-parse --short HEAD` (or "unknown" outside a checkout).
  std::string date;
  std::string git_sha;
};

/// The bench names in matrix order (CLI validation, tests).
std::vector<std::string> suite_bench_names();

/// Run the (filtered) matrix, logging one line per bench to `log`.
/// Throws std::invalid_argument for an unknown name in options.only.
PerfArtifact run_suite(const SuiteOptions& options, std::ostream& log);

/// `git rev-parse --short HEAD` of the working directory, "unknown" when
/// git or the repo is unavailable.
std::string detect_git_sha();

/// Local wall-clock date as YYYY-MM-DD.
std::string current_date();

}  // namespace melody::perf
