// Regression gate between two perf-trajectory artifacts. Benchmarks are
// matched by name across the intersection of the two files and compared by
// median wall time; a ratio above (1 + threshold) is a regression. The CLI
// wrapper (tools/perf_compare) turns the outcome into an exit code so CI
// can gate on the committed baseline:
//   0 — within threshold (including improvements),
//   1 — at least one regression,
//   2 — malformed input, empty intersection, or (with require_all) a
//       baseline benchmark missing from the candidate.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "perf/artifact.h"

namespace melody::perf {

enum class CompareStatus { kOk = 0, kRegression = 1, kError = 2 };

struct BenchComparison {
  std::string name;
  double baseline_ms = 0.0;
  double candidate_ms = 0.0;
  double ratio = 0.0;  // candidate / baseline (0 when baseline is 0)
  bool regression = false;
};

struct CompareOptions {
  /// Allowed fractional slowdown: 0.25 passes ratios up to 1.25. CI uses a
  /// generous value because --quick medians on shared runners are noisy.
  double threshold = 0.25;
  /// Fail (kError) when a baseline benchmark has no candidate counterpart,
  /// instead of silently comparing the intersection.
  bool require_all = false;
};

struct CompareReport {
  CompareStatus status = CompareStatus::kOk;
  std::string error;  // set when status == kError
  std::vector<BenchComparison> rows;
  std::vector<std::string> missing;    // in baseline, not in candidate
  std::vector<std::string> added;      // in candidate, not in baseline
};

/// Pure comparison over in-memory artifacts (unit-tested directly).
CompareReport compare(const PerfArtifact& baseline,
                      const PerfArtifact& candidate,
                      const CompareOptions& options);

/// Load both files, compare, print a human-readable table to `out`, and
/// return the status (file/parse errors become kError, never throws).
CompareStatus compare_files(const std::string& baseline_path,
                            const std::string& candidate_path,
                            const CompareOptions& options, std::ostream& out);

}  // namespace melody::perf
