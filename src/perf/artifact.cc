#include "perf/artifact.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace melody::perf {

namespace {

[[noreturn]] void schema_error(const std::string& path,
                               const std::string& what) {
  throw std::runtime_error("perf artifact: " + path + ": " + what);
}

double require_number(const JsonValue& obj, const std::string& path,
                      const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) schema_error(path, "missing key '" + key + "'");
  if (!v->is_number()) schema_error(path + "." + key, "expected a number");
  return v->as_number();
}

std::string require_string(const JsonValue& obj, const std::string& path,
                           const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) schema_error(path, "missing key '" + key + "'");
  if (!v->is_string()) schema_error(path + "." + key, "expected a string");
  return v->as_string();
}

bool require_bool(const JsonValue& obj, const std::string& path,
                  const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) schema_error(path, "missing key '" + key + "'");
  if (!v->is_bool()) schema_error(path + "." + key, "expected a bool");
  return v->as_bool();
}

const JsonValue& require_array(const JsonValue& obj, const std::string& path,
                               const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) schema_error(path, "missing key '" + key + "'");
  if (!v->is_array()) schema_error(path + "." + key, "expected an array");
  return *v;
}

std::vector<double> number_array(const JsonValue& obj, const std::string& path,
                                 const std::string& key) {
  const JsonValue& arr = require_array(obj, path, key);
  std::vector<double> out;
  out.reserve(arr.items().size());
  for (std::size_t i = 0; i < arr.items().size(); ++i) {
    const JsonValue& v = arr.items()[i];
    if (!v.is_number()) {
      schema_error(path + "." + key + "[" + std::to_string(i) + "]",
                   "expected a number");
    }
    out.push_back(v.as_number());
  }
  return out;
}

std::vector<std::pair<std::string, double>> number_map(
    const JsonValue& obj, const std::string& path, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) schema_error(path, "missing key '" + key + "'");
  if (!v->is_object()) schema_error(path + "." + key, "expected an object");
  std::vector<std::pair<std::string, double>> out;
  out.reserve(v->members().size());
  for (const auto& [k, value] : v->members()) {
    if (!value.is_number()) {
      schema_error(path + "." + key + "." + k, "expected a number");
    }
    out.emplace_back(k, value.as_number());
  }
  return out;
}

int require_int(const JsonValue& obj, const std::string& path,
                const std::string& key) {
  const double v = require_number(obj, path, key);
  if (v != std::floor(v)) {
    schema_error(path + "." + key, "expected an integer");
  }
  return static_cast<int>(v);
}

JsonValue map_to_json(const std::vector<std::pair<std::string, double>>& map) {
  JsonValue obj = JsonValue::object();
  for (const auto& [k, v] : map) obj.set(k, JsonValue::number(v));
  return obj;
}

}  // namespace

double BenchmarkResult::counter_or(const std::string& key,
                                   double fallback) const {
  for (const auto& [k, v] : counters) {
    if (k == key) return v;
  }
  return fallback;
}

const BenchmarkResult* PerfArtifact::find(const std::string& name) const {
  for (const BenchmarkResult& b : benchmarks) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

double median(std::vector<double> values) {
  if (values.empty()) {
    throw std::invalid_argument("perf::median: empty sample");
  }
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

JsonValue to_json(const PerfArtifact& artifact) {
  JsonValue root = JsonValue::object();
  root.set("schema_version",
           JsonValue::number(static_cast<double>(artifact.schema_version)));
  root.set("date", JsonValue::string(artifact.date));
  root.set("git_sha", JsonValue::string(artifact.git_sha));
  root.set("quick", JsonValue::boolean(artifact.quick));
  root.set("threads",
           JsonValue::number(static_cast<double>(artifact.threads)));
  root.set("repeats",
           JsonValue::number(static_cast<double>(artifact.repeats)));
  JsonValue benches = JsonValue::array();
  for (const BenchmarkResult& b : artifact.benchmarks) {
    JsonValue obj = JsonValue::object();
    obj.set("name", JsonValue::string(b.name));
    obj.set("repeats", JsonValue::number(static_cast<double>(b.repeats)));
    JsonValue wall = JsonValue::array();
    for (double v : b.wall_ms) wall.push_back(JsonValue::number(v));
    obj.set("wall_ms", std::move(wall));
    JsonValue cpu = JsonValue::array();
    for (double v : b.cpu_ms) cpu.push_back(JsonValue::number(v));
    obj.set("cpu_ms", std::move(cpu));
    obj.set("median_wall_ms", JsonValue::number(b.median_wall_ms));
    obj.set("median_cpu_ms", JsonValue::number(b.median_cpu_ms));
    obj.set("peak_rss_kb",
            JsonValue::number(static_cast<double>(b.peak_rss_kb)));
    obj.set("config", map_to_json(b.config));
    obj.set("counters", map_to_json(b.counters));
    JsonValue phases = JsonValue::array();
    for (const PhaseStats& p : b.phases) {
      JsonValue pj = JsonValue::object();
      pj.set("name", JsonValue::string(p.name));
      pj.set("count", JsonValue::number(static_cast<double>(p.count)));
      pj.set("sum_ms", JsonValue::number(p.sum_ms));
      pj.set("p50_ms", JsonValue::number(p.p50_ms));
      pj.set("p90_ms", JsonValue::number(p.p90_ms));
      pj.set("p99_ms", JsonValue::number(p.p99_ms));
      phases.push_back(std::move(pj));
    }
    obj.set("phases", std::move(phases));
    benches.push_back(std::move(obj));
  }
  root.set("benchmarks", std::move(benches));
  return root;
}

PerfArtifact artifact_from_json(const JsonValue& json) {
  if (!json.is_object()) schema_error("$", "top level must be an object");
  PerfArtifact artifact;
  artifact.schema_version = require_int(json, "$", "schema_version");
  artifact.date = require_string(json, "$", "date");
  artifact.git_sha = require_string(json, "$", "git_sha");
  artifact.quick = require_bool(json, "$", "quick");
  artifact.threads = require_int(json, "$", "threads");
  artifact.repeats = require_int(json, "$", "repeats");
  const JsonValue& benches = require_array(json, "$", "benchmarks");
  for (std::size_t i = 0; i < benches.items().size(); ++i) {
    const std::string path = "$.benchmarks[" + std::to_string(i) + "]";
    const JsonValue& obj = benches.items()[i];
    if (!obj.is_object()) schema_error(path, "expected an object");
    BenchmarkResult b;
    b.name = require_string(obj, path, "name");
    b.repeats = require_int(obj, path, "repeats");
    b.wall_ms = number_array(obj, path, "wall_ms");
    b.cpu_ms = number_array(obj, path, "cpu_ms");
    b.median_wall_ms = require_number(obj, path, "median_wall_ms");
    b.median_cpu_ms = require_number(obj, path, "median_cpu_ms");
    b.peak_rss_kb =
        static_cast<std::int64_t>(require_number(obj, path, "peak_rss_kb"));
    b.config = number_map(obj, path, "config");
    b.counters = number_map(obj, path, "counters");
    const JsonValue& phases = require_array(obj, path, "phases");
    for (std::size_t j = 0; j < phases.items().size(); ++j) {
      const std::string ppath = path + ".phases[" + std::to_string(j) + "]";
      const JsonValue& pj = phases.items()[j];
      if (!pj.is_object()) schema_error(ppath, "expected an object");
      PhaseStats p;
      p.name = require_string(pj, ppath, "name");
      p.count =
          static_cast<std::int64_t>(require_number(pj, ppath, "count"));
      p.sum_ms = require_number(pj, ppath, "sum_ms");
      p.p50_ms = require_number(pj, ppath, "p50_ms");
      p.p90_ms = require_number(pj, ppath, "p90_ms");
      p.p99_ms = require_number(pj, ppath, "p99_ms");
      b.phases.push_back(std::move(p));
    }
    artifact.benchmarks.push_back(std::move(b));
  }
  validate(artifact);
  return artifact;
}

PerfArtifact parse_artifact(const std::string& text) {
  std::string error;
  JsonValue json = parse_json(text, &error);
  if (!error.empty()) {
    throw std::runtime_error("perf artifact: JSON parse error: " + error);
  }
  return artifact_from_json(json);
}

void validate(const PerfArtifact& artifact) {
  if (artifact.schema_version != kArtifactSchemaVersion) {
    schema_error("$.schema_version",
                 "unsupported version " +
                     std::to_string(artifact.schema_version) + " (expected " +
                     std::to_string(kArtifactSchemaVersion) + ")");
  }
  if (artifact.date.empty()) schema_error("$.date", "must not be empty");
  if (artifact.git_sha.empty()) {
    schema_error("$.git_sha", "must not be empty");
  }
  if (artifact.threads < 1) schema_error("$.threads", "must be >= 1");
  if (artifact.repeats < 1) schema_error("$.repeats", "must be >= 1");
  if (artifact.benchmarks.empty()) {
    schema_error("$.benchmarks", "must not be empty");
  }
  std::set<std::string> names;
  for (std::size_t i = 0; i < artifact.benchmarks.size(); ++i) {
    const BenchmarkResult& b = artifact.benchmarks[i];
    const std::string path = "$.benchmarks[" + std::to_string(i) + "]";
    if (b.name.empty()) schema_error(path + ".name", "must not be empty");
    if (!names.insert(b.name).second) {
      schema_error(path + ".name", "duplicate benchmark '" + b.name + "'");
    }
    if (b.repeats < 1) schema_error(path + ".repeats", "must be >= 1");
    if (b.wall_ms.size() != static_cast<std::size_t>(b.repeats)) {
      schema_error(path + ".wall_ms", "length must equal repeats");
    }
    if (b.cpu_ms.size() != static_cast<std::size_t>(b.repeats)) {
      schema_error(path + ".cpu_ms", "length must equal repeats");
    }
    for (double v : b.wall_ms) {
      if (!std::isfinite(v) || v < 0.0) {
        schema_error(path + ".wall_ms",
                     "entries must be finite and non-negative");
      }
    }
    for (double v : b.cpu_ms) {
      if (!std::isfinite(v) || v < 0.0) {
        schema_error(path + ".cpu_ms",
                     "entries must be finite and non-negative");
      }
    }
    if (!std::is_sorted(b.wall_ms.begin(), b.wall_ms.end())) {
      schema_error(path + ".wall_ms", "must be sorted ascending");
    }
    if (b.median_wall_ms != median(b.wall_ms)) {
      schema_error(path + ".median_wall_ms",
                   "does not match the median of wall_ms");
    }
    if (b.median_cpu_ms != median(b.cpu_ms)) {
      schema_error(path + ".median_cpu_ms",
                   "does not match the median of cpu_ms");
    }
    if (b.peak_rss_kb < 0) {
      schema_error(path + ".peak_rss_kb", "must be non-negative");
    }
    for (std::size_t j = 0; j < b.phases.size(); ++j) {
      const PhaseStats& p = b.phases[j];
      const std::string ppath = path + ".phases[" + std::to_string(j) + "]";
      if (p.name.empty()) schema_error(ppath + ".name", "must not be empty");
      if (p.count < 0) schema_error(ppath + ".count", "must be >= 0");
      for (const auto& [label, v] :
           {std::pair<const char*, double>{"sum_ms", p.sum_ms},
            {"p50_ms", p.p50_ms},
            {"p90_ms", p.p90_ms},
            {"p99_ms", p.p99_ms}}) {
        if (!std::isfinite(v) || v < 0.0) {
          schema_error(ppath + "." + label,
                       "must be finite and non-negative");
        }
      }
    }
  }
}

PerfArtifact read_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("perf artifact: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_artifact(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " (file '" + path +
                             "')");
  }
}

void write_artifact(const PerfArtifact& artifact, const std::string& path) {
  validate(artifact);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("perf artifact: cannot write '" + path + "'");
  }
  out << to_json(artifact).dump();
  out.flush();
  if (!out) {
    throw std::runtime_error("perf artifact: write failed for '" + path +
                             "'");
  }
}

std::string artifact_file_name(const PerfArtifact& artifact) {
  return "BENCH_" + artifact.date + "_" + artifact.git_sha + ".json";
}

}  // namespace melody::perf
