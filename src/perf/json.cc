#include "perf/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace melody::perf {

JsonValue JsonValue::boolean(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::number(double v) {
  if (!std::isfinite(v)) {
    throw std::runtime_error("JsonValue: non-finite number");
  }
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("JSON: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("JSON: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("JSON: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("JSON: not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) throw std::runtime_error("JSON: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) throw std::runtime_error("JSON: not an array");
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) throw std::runtime_error("JSON: not an object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Shortest decimal form that parses back to exactly the same double:
/// try increasing precision until strtod round-trips.
void append_number(std::string& out, double v) {
  if (v == static_cast<long long>(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void indent_to(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      append_number(out, number_);
      break;
    case Kind::kString:
      append_escaped(out, string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      // Arrays of scalars print inline; arrays holding any composite print
      // one element per line.
      bool flat = true;
      for (const JsonValue& v : items_) {
        if (v.is_array() || v.is_object()) flat = false;
      }
      if (flat) {
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
          if (i > 0) out += ", ";
          items_[i].dump_to(out, indent);
        }
        out += ']';
      } else {
        out += "[\n";
        for (std::size_t i = 0; i < items_.size(); ++i) {
          indent_to(out, indent + 1);
          items_[i].dump_to(out, indent + 1);
          if (i + 1 < items_.size()) out += ',';
          out += '\n';
        }
        indent_to(out, indent);
        out += ']';
      }
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent_to(out, indent + 1);
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      indent_to(out, indent);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  JsonValue run() {
    JsonValue v = parse_value();
    if (failed_) return JsonValue();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
      return JsonValue();
    }
    if (error_ != nullptr) error_->clear();
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (!failed_ && error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    failed_ = true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return JsonValue();
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue::string(parse_string());
    if (consume_literal("true")) return JsonValue::boolean(true);
    if (consume_literal("false")) return JsonValue::boolean(false);
    if (consume_literal("null")) return JsonValue();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
    return JsonValue();
  }

  JsonValue parse_number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      fail("malformed number");
      return JsonValue();
    }
    if (!std::isfinite(v)) {
      fail("non-finite number");
      return JsonValue();
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return JsonValue::number(v);
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      fail("expected string");
      return out;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return out;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
                return out;
              }
            }
            // Artifacts are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return out;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return out;
  }

  JsonValue parse_array() {
    JsonValue arr = JsonValue::array();
    consume('[');
    skip_ws();
    if (consume(']')) return arr;
    for (;;) {
      arr.push_back(parse_value());
      if (failed_) return arr;
      if (consume(',')) continue;
      if (consume(']')) return arr;
      fail("expected ',' or ']'");
      return arr;
    }
  }

  JsonValue parse_object() {
    JsonValue obj = JsonValue::object();
    consume('{');
    skip_ws();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      if (failed_) return obj;
      if (!consume(':')) {
        fail("expected ':'");
        return obj;
      }
      obj.set(std::move(key), parse_value());
      if (failed_) return obj;
      if (consume(',')) continue;
      if (consume('}')) return obj;
      fail("expected ',' or '}'");
      return obj;
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

JsonValue parse_json(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace melody::perf
